//! Factorized answer representations: answer sets as DAGs of unions and
//! products over shared `Oid` runs, instead of exploded binding tuples.
//!
//! The hot shape in closure-style PathLog queries is product-shaped: a
//! set-valued path `X..desc` has one answer per *(receiver, member)* pair,
//! yet the member column for a fixed receiver is exactly the stored run of
//! the fact table.  Materializing `|receivers| x |members|` [`Answer`]s
//! copies every run once per receiver and allocates one `Bindings` per
//! member.  The factorized form keeps the factors separate:
//!
//! ```text
//! Union_(r in receivers, sorted)  Product( Unit{X = r},  ObjRun(members(r)) )
//! ```
//!
//! where `ObjRun` holds the *same* `Arc` as the columnar fact storage
//! ([`OidRun`] is copy-on-write), so building the DAG is O(|receivers|)
//! regardless of how many answers it denotes.  This is the
//! d-representation idea of Olteanu et al.'s factorized databases,
//! specialised to the two query shapes the engine's closure paths emit.
//!
//! Enumeration ([`AnswerDag::for_each`]) is lazy and yields answers in
//! exactly the order the materializing enumerator
//! ([`answers`]) produces them — receivers in
//! ascending `Oid` order (the order `BTreeSet`-seeded receiver candidates
//! enumerate), members in ascending run order — so canonical dumps and
//! deterministic downstream merges are unaffected by which representation
//! produced the answers.
//!
//! [`factorized_answers`] builds a DAG for the supported shapes and falls
//! back to materialized answers otherwise; callers treat both through
//! [`FactorizedAnswers`].

use crate::error::Result;
use crate::names::Var;
use crate::structure::{Oid, OidRun, Structure};
use crate::term::Term;

use super::answers::{answers, ground_name_oid, resolved_method_oid, Answer};
use super::Bindings;

/// Index of a node in an [`AnswerDag`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeId(u32);

/// One node of a factorized answer DAG.
///
/// A node denotes an ordered sequence of `(valuation extension, object?)`
/// pairs.  Exactly one leaf along every root-to-leaf enumeration path
/// produces the answer object; the builder maintains this invariant.
#[derive(Debug, Clone)]
pub enum Node {
    /// Extend the valuation with fixed pairs; optionally produce the
    /// answer object.  Denotes exactly one element.
    Unit {
        /// Variable bindings added to the valuation.
        pairs: Vec<(Var, Oid)>,
        /// The answer object, when this leaf produces it.
        object: Option<Oid>,
    },
    /// The answer-object column: a shared sorted run, usually the same
    /// `Arc` as a fact-table column.  Denotes one element per member, in
    /// run (ascending `Oid`) order, binding no variable.
    ObjRun(OidRun),
    /// `var` ranges over a shared run; each member extends the valuation
    /// and, when `is_object`, is also the produced answer object.
    VarRun {
        /// The variable bound to each member in turn.
        var: Var,
        /// The shared member column.
        run: OidRun,
        /// Whether the member is also the produced answer object.
        is_object: bool,
    },
    /// Concatenation of the children's sequences, in child order.
    Union(Vec<NodeId>),
    /// Cross product of the children's sequences, enumerated left-to-right
    /// with the rightmost child varying fastest.
    Product(Vec<NodeId>),
}

/// A factorized answer set: an arena of [`Node`]s plus the seed valuation
/// every enumerated answer extends.
#[derive(Debug, Clone)]
pub struct AnswerDag {
    seed: Bindings,
    nodes: Vec<Node>,
    root: NodeId,
}

impl AnswerDag {
    /// Number of nodes in the DAG — the size of the *representation*.
    /// Sub-linear growth of `node_count()` against [`count()`](Self::count)
    /// is the whole point of factorization.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of answers denoted, computed without enumerating them.
    pub fn count(&self) -> u64 {
        self.count_node(self.root)
    }

    fn count_node(&self, id: NodeId) -> u64 {
        match &self.nodes[id.0 as usize] {
            Node::Unit { .. } => 1,
            Node::ObjRun(run) => run.len() as u64,
            Node::VarRun { run, .. } => run.len() as u64,
            Node::Union(children) => children.iter().map(|&c| self.count_node(c)).sum(),
            Node::Product(children) => children.iter().map(|&c| self.count_node(c)).product(),
        }
    }

    /// Enumerate the answers lazily, in canonical order, without building
    /// the product: `f` is called with a valuation extending the seed and
    /// the answer object.
    pub fn for_each(&self, f: &mut dyn FnMut(&Bindings, Oid)) {
        self.walk(self.root, &self.seed.clone(), None, f);
    }

    fn walk(&self, id: NodeId, bindings: &Bindings, object: Option<Oid>, f: &mut dyn FnMut(&Bindings, Oid)) {
        match &self.nodes[id.0 as usize] {
            Node::Unit { pairs, object: obj } => {
                let mut b = bindings.clone();
                for (v, o) in pairs {
                    if !b.bind_mut(v, *o) {
                        return; // conflicting extension denotes nothing
                    }
                }
                self.emit(&b, obj.or(object), f);
            }
            Node::ObjRun(run) => {
                for &m in run {
                    self.emit(bindings, Some(m), f);
                }
            }
            Node::VarRun { var, run, is_object } => {
                for &m in run {
                    if let Some(b) = bindings.bind(var, m) {
                        self.emit(&b, if *is_object { Some(m) } else { object }, f);
                    }
                }
            }
            Node::Union(children) => {
                for &c in children {
                    self.walk(c, bindings, object, f);
                }
            }
            Node::Product(children) => self.walk_product(children, bindings, object, f),
        }
    }

    fn walk_product(
        &self,
        children: &[NodeId],
        bindings: &Bindings,
        object: Option<Oid>,
        f: &mut dyn FnMut(&Bindings, Oid),
    ) {
        match children {
            [] => self.emit(bindings, object, f),
            [first, rest @ ..] => {
                // Each element of the first factor extends the valuation
                // (and possibly fixes the object) for the remaining factors.
                match &self.nodes[first.0 as usize] {
                    Node::Unit { pairs, object: obj } => {
                        let mut b = bindings.clone();
                        for (v, o) in pairs {
                            if !b.bind_mut(v, *o) {
                                return;
                            }
                        }
                        self.walk_product(rest, &b, obj.or(object), f);
                    }
                    Node::ObjRun(run) => {
                        for &m in run {
                            self.walk_product(rest, bindings, Some(m), f);
                        }
                    }
                    Node::VarRun { var, run, is_object } => {
                        for &m in run {
                            if let Some(b) = bindings.bind(var, m) {
                                self.walk_product(rest, &b, if *is_object { Some(m) } else { object }, f);
                            }
                        }
                    }
                    Node::Union(inner) => {
                        // Distribute: (A | B) x C enumerates A x C then B x C.
                        for &c in inner {
                            let mut nested = vec![c];
                            nested.extend_from_slice(rest);
                            self.walk_product(&nested, bindings, object, f);
                        }
                    }
                    Node::Product(inner) => {
                        let mut nested = inner.clone();
                        nested.extend_from_slice(rest);
                        self.walk_product(&nested, bindings, object, f);
                    }
                }
            }
        }
    }

    fn emit(&self, bindings: &Bindings, object: Option<Oid>, f: &mut dyn FnMut(&Bindings, Oid)) {
        debug_assert!(object.is_some(), "answer DAG path produced no object");
        if let Some(o) = object {
            f(bindings, o);
        }
    }

    /// Materialize the DAG into exploded [`Answer`] tuples, in enumeration
    /// order.  This is what the factorization avoids; it exists for
    /// equivalence checks and for callers that genuinely need tuples.
    pub fn to_answers(&self) -> Vec<Answer> {
        let mut out = Vec::new();
        self.for_each(&mut |b, o| out.push(Answer::new(b.clone(), o)));
        out
    }
}

/// Answers of a term, factorized when the term has one of the supported
/// product shapes and materialized otherwise.
#[derive(Debug, Clone)]
pub enum FactorizedAnswers {
    /// A factorized DAG sharing fact-table runs.
    Dag(AnswerDag),
    /// The materializing fallback: plain exploded tuples.
    Materialized(Vec<Answer>),
}

impl FactorizedAnswers {
    /// Is this the factorized representation (vs. the fallback)?
    pub fn is_factorized(&self) -> bool {
        matches!(self, FactorizedAnswers::Dag(_))
    }

    /// Size of the representation: DAG nodes, or tuples when materialized.
    pub fn node_count(&self) -> usize {
        match self {
            FactorizedAnswers::Dag(d) => d.node_count(),
            FactorizedAnswers::Materialized(v) => v.len(),
        }
    }

    /// Number of answers denoted.
    pub fn count(&self) -> u64 {
        match self {
            FactorizedAnswers::Dag(d) => d.count(),
            FactorizedAnswers::Materialized(v) => v.len() as u64,
        }
    }

    /// Enumerate the answers in canonical order without materializing
    /// tuples (for the DAG case; the fallback just iterates).
    pub fn for_each(&self, f: &mut dyn FnMut(&Bindings, Oid)) {
        match self {
            FactorizedAnswers::Dag(d) => d.for_each(f),
            FactorizedAnswers::Materialized(v) => {
                for a in v {
                    f(&a.bindings, a.object);
                }
            }
        }
    }

    /// Explode into answer tuples, in enumeration order.
    pub fn into_answers(self) -> Vec<Answer> {
        match self {
            FactorizedAnswers::Dag(d) => d.to_answers(),
            FactorizedAnswers::Materialized(v) => v,
        }
    }
}

/// Enumerate the answers of `term` extending `seed`, factorized when the
/// term is a supported path shape.
///
/// The factorized result enumerates bit-identically to
/// [`answers`] — same answers, same order — so the
/// two representations are interchangeable everywhere downstream.
pub fn factorized_answers(structure: &Structure, term: &Term, seed: &Bindings) -> Result<FactorizedAnswers> {
    match try_factorize(structure, term, seed) {
        Some(dag) => Ok(FactorizedAnswers::Dag(dag)),
        None => Ok(FactorizedAnswers::Materialized(answers(structure, term, seed)?)),
    }
}

/// Build a DAG for the supported shapes; `None` means "materialize".
///
/// Supported today: argument-free paths `recv.m` / `recv..m` whose method
/// resolves to a ground non-built-in object and whose receiver is either
/// ground (a name or bound variable) or an unbound variable (seeded from
/// the per-method fact index, like the materializing enumerator does).
fn try_factorize(structure: &Structure, term: &Term, seed: &Bindings) -> Option<AnswerDag> {
    let p = match term {
        Term::Path(p) => p,
        Term::Paren(inner) => return try_factorize(structure, inner, seed),
        _ => return None,
    };
    if !p.args.is_empty() {
        return None;
    }
    let method = resolved_method_oid(structure, &p.method, seed)?;
    // Bound-variable receivers resolve like names; a genuinely unbound
    // variable fans out over the per-method index.
    let mut nodes: Vec<Node> = Vec::new();
    let push = |nodes: &mut Vec<Node>, n: Node| -> NodeId {
        nodes.push(n);
        NodeId((nodes.len() - 1) as u32)
    };
    let root = match &p.receiver {
        Term::Var(v) if seed.get(v).is_none() => {
            // Mirror `index_seeded_receivers`: distinct receivers of the
            // method's facts, ascending (BTreeSet order).
            let mut receivers: Vec<Oid> = if p.set_valued {
                structure
                    .facts()
                    .set_facts_of_method(method)
                    .map(|f| f.receiver)
                    .collect()
            } else {
                structure
                    .facts()
                    .scalar_facts_of_method(method)
                    .map(|f| f.receiver)
                    .collect()
            };
            receivers.sort_unstable();
            receivers.dedup();
            let mut arms = Vec::with_capacity(receivers.len());
            for r in receivers {
                if p.set_valued {
                    let Some(run) = structure.apply_set(method, r, &[]) else {
                        continue;
                    };
                    if run.is_empty() {
                        continue;
                    }
                    let unit = push(
                        &mut nodes,
                        Node::Unit {
                            pairs: vec![(v.clone(), r)],
                            object: None,
                        },
                    );
                    let objs = push(&mut nodes, Node::ObjRun(run.clone()));
                    arms.push(push(&mut nodes, Node::Product(vec![unit, objs])));
                } else {
                    let Some(res) = structure.apply_scalar(method, r, &[]) else {
                        continue;
                    };
                    arms.push(push(
                        &mut nodes,
                        Node::Unit {
                            pairs: vec![(v.clone(), r)],
                            object: Some(res),
                        },
                    ));
                }
            }
            push(&mut nodes, Node::Union(arms))
        }
        recv => {
            let r = ground_name_oid(structure, recv, seed)?;
            if p.set_valued {
                let run = structure.apply_set(method, r, &[]).cloned().unwrap_or_default();
                push(&mut nodes, Node::ObjRun(run))
            } else {
                match structure.apply_scalar(method, r, &[]) {
                    Some(res) => push(
                        &mut nodes,
                        Node::Unit {
                            pairs: Vec::new(),
                            object: Some(res),
                        },
                    ),
                    None => push(&mut nodes, Node::Union(Vec::new())),
                }
            }
        }
    };
    Some(AnswerDag {
        seed: seed.clone(),
        nodes,
        root,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names::Name;

    /// A two-level kids tree: `root` has `fanout` kids, each of which has
    /// `fanout` kids of its own.
    fn tree(fanout: usize) -> Structure {
        let mut s = Structure::new();
        let kids = s.atom("kids");
        let root = s.atom("root");
        for i in 0..fanout {
            let c = s.atom(&format!("c{i}"));
            s.assert_set_member(kids, root, &[], c);
            for j in 0..fanout {
                let g = s.atom(&format!("g{i}_{j}"));
                s.assert_set_member(kids, c, &[], g);
            }
        }
        s
    }

    fn o(s: &Structure, n: &str) -> Oid {
        s.lookup_name(&Name::atom(n)).unwrap()
    }

    #[track_caller]
    fn assert_same_enumeration(s: &Structure, t: &Term) {
        let materialized = answers(s, t, &Bindings::new()).unwrap();
        let fact = factorized_answers(s, t, &Bindings::new()).unwrap();
        assert_eq!(fact.count() as usize, materialized.len(), "count for {t}");
        let exploded = fact.into_answers();
        assert_eq!(exploded, materialized, "enumeration order for {t}");
    }

    #[test]
    fn set_path_with_unbound_receiver_is_factorized() {
        let s = tree(4);
        let t = Term::var("X").set("kids");
        let fact = factorized_answers(&s, &t, &Bindings::new()).unwrap();
        assert!(fact.is_factorized());
        // 5 receivers x 4 members = 20 answers out of 5 * 2 + 1 ~ nodes.
        assert_eq!(fact.count(), 20);
        assert!(fact.node_count() < fact.count() as usize);
        assert_same_enumeration(&s, &t);
    }

    #[test]
    fn factorized_runs_share_the_fact_columns() {
        let s = tree(3);
        let t = Term::name("root").set("kids");
        let fact = factorized_answers(&s, &t, &Bindings::new()).unwrap();
        let FactorizedAnswers::Dag(dag) = &fact else {
            panic!("expected a DAG")
        };
        let stored = s.apply_set(o(&s, "kids"), o(&s, "root"), &[]).unwrap();
        let shares = dag
            .nodes
            .iter()
            .any(|n| matches!(n, Node::ObjRun(run) if run.as_slice().as_ptr() == stored.as_slice().as_ptr()));
        assert!(shares, "ObjRun must alias the stored column, not copy it");
        assert_same_enumeration(&s, &t);
    }

    #[test]
    fn scalar_paths_and_ground_receivers() {
        let mut s = tree(2);
        let age = s.atom("age");
        let c0 = o(&s, "c0");
        let root = o(&s, "root");
        let seven = s.int(7);
        let nine = s.int(9);
        s.assert_scalar(age, c0, &[], seven).unwrap();
        s.assert_scalar(age, root, &[], nine).unwrap();
        for t in [
            Term::var("X").scalar("age"),
            Term::name("c0").scalar("age"),
            Term::name("g0_0").scalar("age"), // undefined application
            Term::name("g0_0").set("kids"),   // empty set application
        ] {
            let fact = factorized_answers(&s, &t, &Bindings::new()).unwrap();
            assert!(fact.is_factorized(), "expected DAG for {t}");
            assert_same_enumeration(&s, &t);
        }
    }

    #[test]
    fn bound_variable_receiver_resolves_like_a_name() {
        let s = tree(3);
        let seed = Bindings::from_pairs([(Var::new("X"), o(&s, "c1"))]).unwrap();
        let t = Term::var("X").set("kids");
        let fact = factorized_answers(&s, &t, &seed).unwrap();
        assert!(fact.is_factorized());
        assert_eq!(fact.count(), 3);
        let materialized = answers(&s, &t, &seed).unwrap();
        assert_eq!(fact.into_answers(), materialized);
    }

    #[test]
    fn unsupported_shapes_fall_back_to_materialized() {
        let s = tree(2);
        for t in [
            Term::var("X").isa("root"),                                 // not a path
            Term::var("X").set("kids").set("kids"),                     // nested path receiver
            Term::name("root").scalar_args("kids", vec![Term::int(1)]), // args
            Term::var("X").set(Term::var("M")),                         // unresolved method
        ] {
            let fact = factorized_answers(&s, &t, &Bindings::new()).unwrap();
            assert!(!fact.is_factorized(), "expected fallback for {t}");
            let materialized = answers(&s, &t, &Bindings::new()).unwrap();
            assert_eq!(fact.into_answers(), materialized);
        }
    }

    #[test]
    fn node_count_grows_with_receivers_not_answers() {
        // Same receiver count, growing member runs: node_count stays flat
        // while count grows linearly — the factorization is sub-linear in
        // the answer-set size.
        let mut last_nodes = None;
        for fanout in [4, 8, 16] {
            let s = tree(fanout);
            let t = Term::var("X").set("kids");
            let fact = factorized_answers(&s, &t, &Bindings::new()).unwrap();
            assert_eq!(fact.count() as usize, (fanout + 1) * fanout);
            let per_receiver = fact.node_count() / (fanout + 1);
            if let Some(prev) = last_nodes {
                assert_eq!(per_receiver, prev, "nodes per receiver must not grow with fanout");
            }
            last_nodes = Some(per_receiver);
        }
    }

    #[test]
    fn lazy_for_each_never_materializes() {
        let s = tree(8);
        let t = Term::var("X").set("kids");
        let fact = factorized_answers(&s, &t, &Bindings::new()).unwrap();
        let mut n = 0u64;
        fact.for_each(&mut |b, obj| {
            assert!(b.get(&Var::new("X")).is_some());
            assert!(s.lookup_name(&Name::atom("root")) != Some(obj), "root is nobody's kid");
            n += 1;
        });
        assert_eq!(n, fact.count());
    }
}
