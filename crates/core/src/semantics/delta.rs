//! Delta-restricted answer enumeration — the workhorse of the engine's
//! semi-naive evaluation.
//!
//! Semi-naive bottom-up evaluation rests on one observation: a rule firing
//! can only contribute *new* information if the body solution it fires on
//! reads at least one fact that was itself derived in the previous
//! iteration.  [`delta_answers`] is the enumeration that makes this
//! exploitable for PathLog's composite references: it returns exactly the
//! answers of a reference whose derivation touches the *delta* — the facts
//! (scalar results, set members, is-a closure pairs, objects, signatures)
//! added between two [`EvalMarks`] watermarks — and it *drives* the
//! enumeration from the delta wherever an index allows, instead of
//! enumerating the full structure and filtering.
//!
//! The implementation follows the product rule of differentiation.  A path
//! `t0..m@(a)` reads facts in four places — the receiver derivation, the
//! method derivation, the argument derivations and the method application
//! itself — so its delta answers are the union of four parts, each with one
//! position restricted to the delta and the remaining positions evaluated
//! against the full structure (via the sibling [`answers`] module):
//!
//! ```text
//!   Δ(t0..m@(a)) = Δt0 ..m @(a)  ∪  t0 ..Δm @(a)  ∪  t0 ..m @(Δa)  ∪  t0 ..m @(a) |Δfacts
//! ```
//!
//! The last part is where the delta indexes earn their keep: instead of
//! enumerating every receiver, it walks the per-method delta slice directly
//! and *matches* the reference's receiver/method/argument sub-terms against
//! each new fact ([`answers_matching`]), which is O(delta) when the receiver
//! is an unbound variable.  Molecules, is-a references and filters decompose
//! the same way.  Duplicates between parts are harmless (head assertion is
//! idempotent and the engine deduplicates bindings); omissions would be
//! unsound, which is why positions that *cannot* change mid-stratum
//! (set-at-a-time right-hand sides, built-in methods) are the only ones
//! skipped.

use std::collections::{BTreeSet, HashMap, HashSet};

use crate::error::Result;
use crate::structure::{Oid, OidRun, Structure};
use crate::term::{Filter, FilterValue, Term};

use super::answers::{
    answers, answers_matching, arg_answers, element_answers, filter_answers, filter_value_answers, ground_name_oid,
    index_seeded_receivers, method_answers, receiver_answers_for_molecule, resolved_method_oid, Answer,
};
use super::{valuate, Bindings};

pub use crate::structure::EvalMarks;

/// Default fan-out threshold for [`DeltaView::shards`]: below this many log
/// entries a sharded solve is all thread overhead.
pub const DEFAULT_SHARD_MIN_ENTRIES: usize = 128;

/// A sliding snapshot window over a structure's insertion logs — the
/// iteration-boundary plumbing of the engine's cross-rule scheduling.
///
/// The window remembers the watermarks of its last capture; [`slide`]
/// advances them to the present and returns the [`DeltaView`] of everything
/// asserted in between.  One window per stratum, slid once per fixpoint
/// iteration, gives every rule of the stratum the *same* delta — the
/// scheduling contract that lets their solves run concurrently (see
/// `pathlog_core::engine::Schedule`).
///
/// [`slide`]: SnapshotWindow::slide
#[derive(Debug, Clone, Copy)]
pub struct SnapshotWindow {
    lo: EvalMarks,
}

impl SnapshotWindow {
    /// Open a window at the structure's current watermarks (the first
    /// [`slide`](SnapshotWindow::slide) covers everything asserted after
    /// this call).
    pub fn capture(structure: &Structure) -> Self {
        SnapshotWindow {
            lo: EvalMarks::capture(structure),
        }
    }

    /// The lower watermarks of the window (the structure state its next
    /// [`slide`](SnapshotWindow::slide) reaches back to).
    pub fn marks(&self) -> EvalMarks {
        self.lo
    }

    /// Advance the window to the structure's present and return the view of
    /// the facts asserted since the previous boundary.  O(window).
    pub fn slide(&mut self, structure: &Structure) -> DeltaView {
        let hi = EvalMarks::capture(structure);
        let view = DeltaView::between(structure, &self.lo, &hi);
        self.lo = hi;
        view
    }
}

/// The facts added between two watermarks, indexed for delta joins.
///
/// Building a view is O(delta): it slices the insertion logs of the fact
/// store and the is-a closure and groups the entries by method / class so
/// [`delta_answers`] can drive enumeration from them.
#[derive(Debug, Default)]
pub struct DeltaView {
    scalar_lo: usize,
    scalar_hi: usize,
    /// New scalar facts, grouped by method: dense-vector fact positions.
    scalar_by_method: HashMap<Oid, Vec<usize>>,
    /// New set members, grouped by method: `(application index, member)`.
    set_by_method: HashMap<Oid, Vec<(usize, Oid)>>,
    /// New set members, grouped by application index.
    set_by_app: HashMap<usize, BTreeSet<Oid>>,
    /// New is-a closure pairs.
    isa_pairs: HashSet<(Oid, Oid)>,
    /// New is-a closure pairs, grouped by class: the new instances.
    isa_by_class: HashMap<Oid, Vec<Oid>>,
    object_lo: usize,
    object_hi: usize,
    sigs_changed: bool,
}

impl DeltaView {
    /// The delta between watermarks `lo` and `hi` of `structure`.
    pub fn between(structure: &Structure, lo: &EvalMarks, hi: &EvalMarks) -> Self {
        let facts = structure.facts();
        let mut view = DeltaView {
            scalar_lo: lo.scalar_facts,
            scalar_hi: hi.scalar_facts,
            object_lo: lo.objects,
            object_hi: hi.objects,
            sigs_changed: hi.signatures > lo.signatures,
            ..DeltaView::default()
        };
        // The bounded log slices: entries past the `hi` watermark belong to
        // the next window and must not leak into this one.
        for (idx, fact) in facts.scalar_facts_in(lo.scalar_facts, hi.scalar_facts) {
            view.scalar_by_method.entry(fact.method).or_default().push(idx);
        }
        for (app_idx, member) in facts.set_members_in(lo.set_member_inserts, hi.set_member_inserts) {
            let method = facts.set_fact_at(app_idx).method;
            view.set_by_method.entry(method).or_default().push((app_idx, member));
            view.set_by_app.entry(app_idx).or_default().insert(member);
        }
        for &(sub, sup) in structure.isa().pairs_in(lo.isa_pairs, hi.isa_pairs) {
            view.isa_pairs.insert((sub, sup));
            view.isa_by_class.entry(sup).or_default().push(sub);
        }
        view
    }

    /// Is the delta empty (no new facts of any kind)?
    pub fn is_empty(&self) -> bool {
        self.scalar_lo == self.scalar_hi
            && self.set_by_method.is_empty()
            && self.isa_pairs.is_empty()
            && self.object_lo == self.object_hi
            && !self.sigs_changed
    }

    /// Were any objects created inside the window?  New (virtual) objects
    /// can satisfy literals through positions that read no named key — the
    /// engine treats every positive literal as delta-drivable when this
    /// holds.
    pub fn has_new_objects(&self) -> bool {
        self.object_lo != self.object_hi
    }

    /// Were any signature declarations added inside the window?
    /// Declarations carry no per-fact stamps, so readers must be re-matched
    /// conservatively.
    pub fn sigs_changed(&self) -> bool {
        self.sigs_changed
    }

    /// Does the window contain any fact — scalar result, set member or is-a
    /// pair — whose method/class position is `oid`?  This is what decides
    /// whether a body literal reading that key can be driven by this delta.
    pub fn has_new_facts_for(&self, oid: Oid) -> bool {
        self.scalar_by_method.contains_key(&oid)
            || self.set_by_method.contains_key(&oid)
            || self.isa_by_class.contains_key(&oid)
    }

    fn scalar_is_new(&self, idx: usize) -> bool {
        self.scalar_lo <= idx && idx < self.scalar_hi
    }

    fn new_scalar_facts_of_method(&self, method: Oid) -> &[usize] {
        self.scalar_by_method.get(&method).map_or(&[], Vec::as_slice)
    }

    pub(crate) fn new_set_entries_of_method(&self, method: Oid) -> &[(usize, Oid)] {
        self.set_by_method.get(&method).map_or(&[], Vec::as_slice)
    }

    fn new_members_of_app(&self, app_idx: usize) -> Option<&BTreeSet<Oid>> {
        self.set_by_app.get(&app_idx)
    }

    pub(crate) fn new_instances_of(&self, class: Oid) -> &[Oid] {
        self.isa_by_class.get(&class).map_or(&[], Vec::as_slice)
    }

    fn scalar_methods(&self) -> impl Iterator<Item = Oid> + '_ {
        self.scalar_by_method.keys().copied()
    }

    fn set_methods(&self) -> impl Iterator<Item = Oid> + '_ {
        self.set_by_method.keys().copied()
    }

    fn isa_classes(&self) -> impl Iterator<Item = Oid> + '_ {
        self.isa_by_class.keys().copied()
    }

    pub(crate) fn new_objects(&self) -> impl Iterator<Item = Oid> + '_ {
        (self.object_lo as u32..self.object_hi as u32).map(Oid)
    }

    /// Total number of log entries in the window (scalar facts, set members,
    /// is-a closure pairs) — the work a delta-driven solve is proportional to.
    pub fn entry_count(&self) -> usize {
        let scalars: usize = self.scalar_by_method.values().map(Vec::len).sum();
        let members: usize = self.set_by_method.values().map(Vec::len).sum();
        scalars + members + self.isa_pairs.len()
    }

    /// Split the view into `n` disjoint sub-views for parallel delta solves.
    ///
    /// Each per-method / per-class entry list is cut into `n` contiguous
    /// chunks and chunk `j` goes to shard `j`, so a single hot method (the
    /// usual shape of a recursive closure delta) is spread across all
    /// workers.  Sharding is sound because every delta answer's derivation
    /// reads at least one concrete log entry against the *full* structure
    /// elsewhere: the shard holding that entry re-derives the answer, shards
    /// not holding it derive at most a subset of the full view's answers, so
    /// the deduplicated union over shards equals the answers of `self`.
    ///
    /// The object window and the signature flag cannot be partitioned by
    /// method; every shard keeps them (answers driven only by those are
    /// found by several shards and deduplicated at the merge).  The scalar
    /// watermark range is likewise kept global: it is only used for "is this
    /// fact new" membership tests, where the full range is conservative but
    /// sound.
    ///
    /// Returns `None` when `n < 2` or the window holds fewer than
    /// `min_entries` log entries, below which a sharded solve is all thread
    /// overhead.  The threshold is a tunable
    /// ([`EvalOptions::shard_min_entries`](crate::engine::EvalOptions)), so
    /// ablations can force sharding at small scales; the engine default is
    /// [`DEFAULT_SHARD_MIN_ENTRIES`].
    pub fn shards(&self, n: usize, min_entries: usize) -> Option<Vec<DeltaView>> {
        if n < 2 || self.entry_count() < min_entries {
            return None;
        }
        let mut shards: Vec<DeltaView> = (0..n)
            .map(|_| DeltaView {
                scalar_lo: self.scalar_lo,
                scalar_hi: self.scalar_hi,
                object_lo: self.object_lo,
                object_hi: self.object_hi,
                sigs_changed: self.sigs_changed,
                ..DeltaView::default()
            })
            .collect();
        // Keys are visited in sorted order so each shard's entry vectors are
        // deterministic regardless of hash-map iteration order.
        let chunk = |len: usize, j: usize| (j * len / n, (j + 1) * len / n);
        let mut scalar_methods: Vec<Oid> = self.scalar_by_method.keys().copied().collect();
        scalar_methods.sort_unstable();
        for m in scalar_methods {
            let entries = &self.scalar_by_method[&m];
            for (j, shard) in shards.iter_mut().enumerate() {
                let (lo, hi) = chunk(entries.len(), j);
                if lo < hi {
                    shard.scalar_by_method.insert(m, entries[lo..hi].to_vec());
                }
            }
        }
        let mut set_methods: Vec<Oid> = self.set_by_method.keys().copied().collect();
        set_methods.sort_unstable();
        for m in set_methods {
            let entries = &self.set_by_method[&m];
            for (j, shard) in shards.iter_mut().enumerate() {
                let (lo, hi) = chunk(entries.len(), j);
                if lo < hi {
                    shard.set_by_method.insert(m, entries[lo..hi].to_vec());
                    for &(app_idx, member) in &entries[lo..hi] {
                        shard.set_by_app.entry(app_idx).or_default().insert(member);
                    }
                }
            }
        }
        let mut classes: Vec<Oid> = self.isa_by_class.keys().copied().collect();
        classes.sort_unstable();
        for c in classes {
            let instances = &self.isa_by_class[&c];
            for (j, shard) in shards.iter_mut().enumerate() {
                let (lo, hi) = chunk(instances.len(), j);
                if lo < hi {
                    shard.isa_by_class.insert(c, instances[lo..hi].to_vec());
                    for &sub in &instances[lo..hi] {
                        shard.isa_pairs.insert((sub, c));
                    }
                }
            }
        }
        Some(shards)
    }
}

/// Can this term's own derivation read method/class facts?  Names and
/// variables cannot (they resolve through `I_N` and the valuation only), so
/// their delta parts are empty; everything else must be differentiated.
fn reads_facts(term: &Term) -> bool {
    match term {
        Term::Name(_) | Term::Var(_) => false,
        Term::Paren(t) => reads_facts(t),
        Term::Path(_) | Term::IsA(_) | Term::Molecule(_) => true,
    }
}

/// Enumerate the answers of `term` (extending `seed`) whose derivation reads
/// at least one fact in `dv` — the delta-restricted counterpart of
/// [`answers`].
pub fn delta_answers(structure: &Structure, term: &Term, seed: &Bindings, dv: &DeltaView) -> Result<Vec<Answer>> {
    match term {
        // A name resolves through `I_N` only; never in the delta.
        Term::Name(_) => Ok(Vec::new()),
        // A bound variable reads nothing.  An unbound variable's universe
        // enumeration is new exactly for the objects created in the delta
        // (virtual objects may appear mid-stratum).
        Term::Var(v) => match seed.get(v) {
            Some(_) => Ok(Vec::new()),
            None => Ok(dv
                .new_objects()
                .filter_map(|o| seed.bind(v, o).map(|b| Answer::new(b, o)))
                .collect()),
        },
        Term::Paren(t) => delta_answers(structure, t, seed, dv),
        Term::Path(p) => delta_path_answers(structure, p, seed, dv),
        Term::IsA(i) => delta_isa_answers(structure, i, seed, dv),
        Term::Molecule(m) => delta_molecule_answers(structure, m, seed, dv),
    }
}

/// The valuations under which `term` denotes `expected` with a derivation
/// that reads the delta — the delta-restricted counterpart of
/// [`answers_matching`].
fn delta_answers_matching(
    structure: &Structure,
    term: &Term,
    seed: &Bindings,
    expected: Oid,
    dv: &DeltaView,
) -> Result<Vec<Bindings>> {
    match term {
        Term::Name(_) | Term::Var(_) => Ok(Vec::new()),
        Term::Paren(t) => delta_answers_matching(structure, t, seed, expected, dv),
        _ => Ok(delta_answers(structure, term, seed, dv)?
            .into_iter()
            .filter(|a| a.object == expected)
            .map(|a| a.bindings)
            .collect()),
    }
}

/// Match each argument term against the concrete argument tuple of a delta
/// fact.
fn tuple_matching(structure: &Structure, args: &[Term], seed: &Bindings, tuple: &[Oid]) -> Result<Vec<Bindings>> {
    debug_assert_eq!(args.len(), tuple.len());
    let mut states = vec![seed.clone()];
    for (term, &oid) in args.iter().zip(tuple) {
        let mut next = Vec::new();
        for b in &states {
            next.extend(answers_matching(structure, term, b, oid)?);
        }
        states = next;
        if states.is_empty() {
            break;
        }
    }
    Ok(states)
}

/// Bindings and argument tuples with the argument at `delta_pos` restricted
/// to the delta, the others full.
fn arg_answers_delta_at(
    structure: &Structure,
    args: &[Term],
    seed: &Bindings,
    delta_pos: usize,
    dv: &DeltaView,
) -> Result<Vec<(Bindings, Vec<Oid>)>> {
    let mut states = vec![(seed.clone(), Vec::new())];
    for (k, arg) in args.iter().enumerate() {
        let mut next = Vec::new();
        for (bindings, prefix) in &states {
            let arg_answers = if k == delta_pos {
                delta_answers(structure, arg, bindings, dv)?
            } else {
                answers(structure, arg, bindings)?
            };
            for a in arg_answers {
                let mut row = prefix.clone();
                row.push(a.object);
                next.push((a.bindings, row));
            }
        }
        states = next;
        if states.is_empty() {
            break;
        }
    }
    Ok(states)
}

/// Apply a resolved method to a resolved receiver against the full
/// structure, collecting answers.
fn apply_full(
    structure: &Structure,
    set_valued: bool,
    method: Oid,
    receiver: Oid,
    args: &[Oid],
    bindings: &Bindings,
    out: &mut Vec<Answer>,
) {
    if set_valued {
        if let Some(members) = structure.apply_set(method, receiver, args) {
            for &member in members {
                out.push(Answer::new(bindings.clone(), member));
            }
        }
    } else if let Some(res) = structure.apply_scalar(method, receiver, args) {
        out.push(Answer::new(bindings.clone(), res));
    }
}

/// Delta answers of a path `t0 (.|..) m @ (args)`: the four-part product
/// rule described in the module docs.
fn delta_path_answers(
    structure: &Structure,
    p: &crate::term::Path,
    seed: &Bindings,
    dv: &DeltaView,
) -> Result<Vec<Answer>> {
    let mut out = Vec::new();

    // Part 1: the receiver derivation reads the delta; method, arguments and
    // application against the full structure.
    for recv in delta_answers(structure, &p.receiver, seed, dv)? {
        for ma in method_answers(structure, &p.method, &recv.bindings, recv.object, p.set_valued)? {
            for (bindings, args) in arg_answers(structure, &p.args, &ma.bindings)? {
                apply_full(
                    structure,
                    p.set_valued,
                    ma.object,
                    recv.object,
                    &args,
                    &bindings,
                    &mut out,
                );
            }
        }
    }

    // Part 2: the *method* derivation reads the delta (e.g. the `(M.tc)`
    // fact of the generic transitive closure was just created).  An unbound
    // method variable reads nothing itself — any new fact it leads to is
    // caught by part 4 — so only fact-reading method terms contribute.
    if reads_facts(&p.method) {
        for ma in delta_answers(structure, &p.method, seed, dv)? {
            // A method *object* created inside (or after) the window — e.g.
            // the virtual `kids.tc` method right after its defining fact —
            // only has applications that postdate the window too; part 4
            // (or the next iteration's delta) covers every one of them.
            // This part exists for new derivations of *old* method objects,
            // whose stored applications part 4 cannot see.
            if ma.object.index() >= dv.object_lo {
                continue;
            }
            // Seed receivers from the per-method index for the now-known
            // method object instead of enumerating the universe; the shared
            // helper declines (full enumeration) for bound/complex receivers
            // and for built-in methods, which have no stored facts.
            let receivers: Vec<Answer> =
                match index_seeded_receivers(structure, &p.receiver, &ma.bindings, ma.object, p.set_valued) {
                    Some(seeded) => seeded,
                    None => answers(structure, &p.receiver, &ma.bindings)?,
                };
            for recv in receivers {
                for (bindings, args) in arg_answers(structure, &p.args, &recv.bindings)? {
                    apply_full(
                        structure,
                        p.set_valued,
                        ma.object,
                        recv.object,
                        &args,
                        &bindings,
                        &mut out,
                    );
                }
            }
        }
    }

    // Part 3: an argument derivation reads the delta.  The receiver/method
    // join is enumerated once, with the delta position varied innermost.
    // Arguments that are names or variables only read the delta through new
    // objects, so the whole pass is skipped when neither can apply.
    if p.args.iter().any(reads_facts) || (!p.args.is_empty() && dv.has_new_objects()) {
        for recv in super::answers::receiver_answers_for_path(structure, p, seed)? {
            for ma in method_answers(structure, &p.method, &recv.bindings, recv.object, p.set_valued)? {
                for k in 0..p.args.len() {
                    for (bindings, args) in arg_answers_delta_at(structure, &p.args, &ma.bindings, k, dv)? {
                        apply_full(
                            structure,
                            p.set_valued,
                            ma.object,
                            recv.object,
                            &args,
                            &bindings,
                            &mut out,
                        );
                    }
                }
            }
        }
    }

    // Part 4: the application itself reads a delta fact.  Driven from the
    // per-method delta slices: O(delta) when the receiver is an unbound
    // variable, independent of the size of the full structure.
    let resolved = resolved_method_oid(structure, &p.method, seed);
    if p.set_valued {
        let methods: Vec<Oid> = match resolved {
            Some(m) => vec![m],
            None => {
                // Sorted for run-to-run determinism (virtual objects are
                // allocated in answer order).
                let mut ms: Vec<Oid> = dv.set_methods().collect();
                ms.sort_unstable();
                ms
            }
        };
        for m_oid in methods {
            let entries = dv.new_set_entries_of_method(m_oid);
            if entries.is_empty() {
                continue;
            }
            for mb in answers_matching(structure, &p.method, seed, m_oid)? {
                for &(app_idx, member) in entries {
                    let fact = structure.facts().set_fact_at(app_idx);
                    for rb in answers_matching(structure, &p.receiver, &mb, fact.receiver)? {
                        if p.args.is_empty() {
                            out.push(Answer::new(rb, member));
                        } else {
                            for ab in tuple_matching(structure, &p.args, &rb, fact.args)? {
                                out.push(Answer::new(ab, member));
                            }
                        }
                    }
                }
            }
        }
    } else {
        let methods: Vec<Oid> = match resolved {
            Some(m) => vec![m],
            None => {
                let mut ms: Vec<Oid> = dv.scalar_methods().collect();
                ms.sort_unstable();
                ms
            }
        };
        for m_oid in methods {
            let indices = dv.new_scalar_facts_of_method(m_oid);
            if indices.is_empty() {
                continue;
            }
            for mb in answers_matching(structure, &p.method, seed, m_oid)? {
                for &idx in indices {
                    let fact = structure.facts().scalar_fact_at(idx);
                    for rb in answers_matching(structure, &p.receiver, &mb, fact.receiver)? {
                        if p.args.is_empty() {
                            out.push(Answer::new(rb, fact.result));
                        } else {
                            for ab in tuple_matching(structure, &p.args, &rb, fact.args)? {
                                out.push(Answer::new(ab, fact.result));
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Delta answers of `t0 : c`.
fn delta_isa_answers(
    structure: &Structure,
    i: &crate::term::IsA,
    seed: &Bindings,
    dv: &DeltaView,
) -> Result<Vec<Answer>> {
    let mut out = Vec::new();

    // Part 1: the membership pair itself is new, driven from the per-class
    // delta slices.
    let resolved = resolved_class_oid(structure, &i.class, seed);
    let classes: Vec<Oid> = match resolved {
        Some(c) => vec![c],
        None => {
            let mut cs: Vec<Oid> = dv.isa_classes().collect();
            cs.sort_unstable();
            cs
        }
    };
    for c in classes {
        let instances = dv.new_instances_of(c);
        if instances.is_empty() {
            continue;
        }
        for cb in answers_matching(structure, &i.class, seed, c)? {
            for &o in instances {
                for rb in answers_matching(structure, &i.receiver, &cb, o)? {
                    out.push(Answer::new(rb, o));
                }
            }
        }
    }

    // Part 2: the receiver derivation reads the delta; membership against
    // the full relation.
    for ra in delta_answers(structure, &i.receiver, seed, dv)? {
        if let Term::Var(v) = &i.class {
            if ra.bindings.get(v).is_none() {
                for class in structure.classes_of(ra.object) {
                    if let Some(b) = ra.bindings.bind(v, class) {
                        out.push(Answer::new(b, ra.object));
                    }
                }
                continue;
            }
        }
        for ca in answers(structure, &i.class, &ra.bindings)? {
            if structure.in_class(ra.object, ca.object) {
                out.push(Answer::new(ca.bindings, ra.object));
            }
        }
    }

    // Part 3: the class derivation reads the delta (e.g. `L : (integer.list)`
    // where the `list` fact was just derived); extent against the full
    // relation.
    if reads_facts(&i.class) {
        for ca in delta_answers(structure, &i.class, seed, dv)? {
            let members: Vec<Oid> = structure.instances_of(ca.object).collect();
            for o in members {
                for rb in answers_matching(structure, &i.receiver, &ca.bindings, o)? {
                    out.push(Answer::new(rb, o));
                }
            }
        }
    }
    Ok(out)
}

/// Like [`resolved_method_oid`] but for class positions (no built-in
/// exclusion applies to classes).
fn resolved_class_oid(structure: &Structure, class: &Term, seed: &Bindings) -> Option<Oid> {
    ground_name_oid(structure, class, seed).or_else(|| super::answers::single_ground_object(structure, class, seed))
}

/// Delta answers of a molecule `t0 [ filters ]`.
fn delta_molecule_answers(
    structure: &Structure,
    m: &crate::term::Molecule,
    seed: &Bindings,
    dv: &DeltaView,
) -> Result<Vec<Answer>> {
    let mut out = Vec::new();

    // Part 1: the receiver derivation reads the delta; every filter is
    // checked against the full structure.
    for ra in delta_answers(structure, &m.receiver, seed, dv)? {
        let mut states = vec![ra.bindings.clone()];
        for f in &m.filters {
            let mut next = Vec::new();
            for b in &states {
                next.extend(filter_answers(structure, ra.object, f, b)?);
            }
            states = next;
            if states.is_empty() {
                break;
            }
        }
        for b in states {
            out.push(Answer::new(b, ra.object));
        }
    }

    // Part 2: one filter reads the delta, the others (and the receiver) are
    // full.  Filters that provably cannot touch the delta are skipped, which
    // is what keeps an iteration O(delta) when only one method is growing.
    for (j, f) in m.filters.iter().enumerate() {
        if !filter_may_touch_delta(structure, f, seed, dv) {
            continue;
        }
        for ra in receivers_for_delta_filter(structure, m, seed, dv, j)? {
            let mut states = vec![ra.bindings.clone()];
            for (k, fk) in m.filters.iter().enumerate() {
                let mut next = Vec::new();
                for b in &states {
                    if k == j {
                        next.extend(filter_delta_answers(structure, ra.object, fk, b, dv)?);
                    } else {
                        next.extend(filter_answers(structure, ra.object, fk, b)?);
                    }
                }
                states = next;
                if states.is_empty() {
                    break;
                }
            }
            for b in states {
                out.push(Answer::new(b, ra.object));
            }
        }
    }
    Ok(out)
}

/// Can `filter` possibly have a delta-touching derivation on *any* receiver?
/// A cheap static+index test used to skip whole filter passes.
fn filter_may_touch_delta(structure: &Structure, f: &Filter, seed: &Bindings, dv: &DeltaView) -> bool {
    if reads_facts(&f.method) || f.args.iter().any(reads_facts) {
        return true;
    }
    match &f.value {
        FilterValue::Scalar(rt) => {
            if reads_facts(rt) {
                return true;
            }
        }
        FilterValue::SetRef(_) => {
            // The right-hand side is a strict (set-at-a-time) use computed in
            // an earlier stratum, but the application on the left can still
            // gain members.
        }
        FilterValue::SetExplicit(elems) => {
            if elems.iter().any(reads_facts) {
                return true;
            }
        }
        FilterValue::SigScalar(_) | FilterValue::SigSet(_) => {
            return dv.sigs_changed;
        }
    }
    // A built-in method's application reads no stored facts and can never
    // be new.
    if let Some(m) = ground_name_oid(structure, &f.method, seed) {
        if m == structure.self_method() || structure.is_comparison_method(m) {
            return false;
        }
    }
    let set_valued = matches!(
        f.value,
        FilterValue::SetRef(_) | FilterValue::SetExplicit(_) | FilterValue::SigSet(_)
    );
    match resolved_method_oid(structure, &f.method, seed) {
        Some(m) => {
            if set_valued {
                !dv.new_set_entries_of_method(m).is_empty()
            } else {
                !dv.new_scalar_facts_of_method(m).is_empty()
            }
        }
        // Unresolved method position (e.g. an unbound variable): any new
        // fact of the right kind could match.
        None => {
            if set_valued {
                !dv.set_by_method.is_empty()
            } else {
                dv.scalar_lo != dv.scalar_hi
            }
        }
    }
}

/// Receiver candidates for the part-2 pass of [`delta_molecule_answers`]
/// with filter `j` restricted to the delta.  When the receiver is an unbound
/// variable and the only way filter `j` can touch the delta is through its
/// own application, the candidates are exactly the receivers of the new
/// facts of that method — O(delta).  Otherwise fall back to the full,
/// index-seeded receiver enumeration.
fn receivers_for_delta_filter(
    structure: &Structure,
    m: &crate::term::Molecule,
    seed: &Bindings,
    dv: &DeltaView,
    j: usize,
) -> Result<Vec<Answer>> {
    let f = &m.filters[j];
    let delta_only_in_application = !reads_facts(&f.method)
        && !f.args.iter().any(reads_facts)
        && match &f.value {
            FilterValue::Scalar(rt) => !reads_facts(rt),
            FilterValue::SetRef(_) => true,
            FilterValue::SetExplicit(elems) => !elems.iter().any(reads_facts),
            FilterValue::SigScalar(_) | FilterValue::SigSet(_) => false,
        };
    if let Term::Var(v) = &m.receiver {
        if seed.get(v).is_none() && delta_only_in_application {
            if let Some(method) = resolved_method_oid(structure, &f.method, seed) {
                let set_valued = matches!(
                    f.value,
                    FilterValue::SetRef(_) | FilterValue::SetExplicit(_) | FilterValue::SigSet(_)
                );
                let mut candidates: BTreeSet<Oid> = BTreeSet::new();
                if set_valued {
                    for &(app_idx, _) in dv.new_set_entries_of_method(method) {
                        candidates.insert(structure.facts().set_fact_at(app_idx).receiver);
                    }
                } else {
                    for &idx in dv.new_scalar_facts_of_method(method) {
                        candidates.insert(structure.facts().scalar_fact_at(idx).receiver);
                    }
                }
                return Ok(candidates
                    .into_iter()
                    .filter_map(|o| seed.bind(v, o).map(|b| Answer::new(b, o)))
                    .collect());
            }
        }
    }
    receiver_answers_for_molecule(structure, m, seed)
}

/// Delta-restricted filter satisfaction: the valuations under which
/// `receiver` satisfies `filter` with a derivation that reads the delta.
fn filter_delta_answers(
    structure: &Structure,
    receiver: Oid,
    filter: &Filter,
    seed: &Bindings,
    dv: &DeltaView,
) -> Result<Vec<Bindings>> {
    let mut out = Vec::new();
    let set_valued_method = matches!(
        filter.value,
        FilterValue::SetRef(_) | FilterValue::SetExplicit(_) | FilterValue::SigSet(_)
    );

    // Part A: the *method* derivation reads the delta; everything else full.
    if reads_facts(&filter.method) {
        for ma in delta_answers(structure, &filter.method, seed, dv)? {
            for (bindings, args) in arg_answers(structure, &filter.args, &ma.bindings)? {
                out.extend(filter_value_answers(
                    structure, receiver, filter, ma.object, &args, &bindings,
                )?);
            }
        }
    }

    // Part B: an *argument* derivation reads the delta (names and variables
    // only through new objects — skip the pass when neither can apply).
    if filter.args.iter().any(reads_facts) || (!filter.args.is_empty() && dv.has_new_objects()) {
        for ma in method_answers(structure, &filter.method, seed, receiver, set_valued_method)? {
            for k in 0..filter.args.len() {
                for (bindings, args) in arg_answers_delta_at(structure, &filter.args, &ma.bindings, k, dv)? {
                    out.extend(filter_value_answers(
                        structure, receiver, filter, ma.object, &args, &bindings,
                    )?);
                }
            }
        }
    }

    // Part C: the application or the value derivation reads the delta.
    for ma in method_answers(structure, &filter.method, seed, receiver, set_valued_method)? {
        for (bindings, args) in arg_answers(structure, &filter.args, &ma.bindings)? {
            match &filter.value {
                FilterValue::Scalar(rt) => {
                    // C1: the scalar fact itself is new.
                    if let Some(idx) = structure.facts().scalar_index(ma.object, receiver, &args) {
                        if dv.scalar_is_new(idx) {
                            let res = structure.facts().scalar_fact_at(idx).result;
                            out.extend(answers_matching(structure, rt, &bindings, res)?);
                            continue; // the full match already covers Δrt
                        }
                    }
                    // C2: the fact is old but the result term's derivation
                    // reads the delta (e.g. `city -> X.boss.city` after a new
                    // `boss` fact).
                    if reads_facts(rt) {
                        if let Some(res) = structure.apply_scalar(ma.object, receiver, &args) {
                            out.extend(delta_answers_matching(structure, rt, &bindings, res, dv)?);
                        }
                    }
                }
                FilterValue::SetRef(rt) => {
                    // The required set is a strict use from an earlier
                    // stratum and cannot change mid-stratum; the application
                    // on the left can gain members, re-establishing the
                    // superset condition.
                    let app_is_new = structure
                        .facts()
                        .set_index(ma.object, receiver, &args)
                        .is_some_and(|idx| dv.new_members_of_app(idx).is_some());
                    if !app_is_new {
                        continue;
                    }
                    let members = structure.apply_set(ma.object, receiver, &args);
                    let required = valuate(structure, rt, &bindings)?;
                    let ok = match members {
                        Some(ms) => required.iter().all(|x| ms.contains(x)),
                        None => required.is_empty(),
                    };
                    if ok {
                        out.push(bindings.clone());
                    }
                }
                FilterValue::SetExplicit(elems) => {
                    let empty = BTreeSet::new();
                    let (full_members, new_members) = match structure.facts().set_index(ma.object, receiver, &args) {
                        Some(idx) => (
                            structure.facts().set_fact_at(idx).members,
                            dv.new_members_of_app(idx).unwrap_or(&empty),
                        ),
                        None => (OidRun::empty_ref(), &empty),
                    };
                    // One element witnesses the delta (a new member, or an
                    // element derivation that reads the delta); the others
                    // match the full member set.
                    for k in 0..elems.len() {
                        let mut states = vec![bindings.clone()];
                        for (e_idx, e) in elems.iter().enumerate() {
                            let mut next = Vec::new();
                            for b in &states {
                                if e_idx == k {
                                    next.extend(element_delta_answers(structure, e, b, full_members, new_members, dv)?);
                                } else {
                                    next.extend(element_answers(structure, e, b, full_members)?);
                                }
                            }
                            states = next;
                            if states.is_empty() {
                                break;
                            }
                        }
                        out.extend(states);
                    }
                }
                FilterValue::SigScalar(_) | FilterValue::SigSet(_) => {
                    // Signature declarations carry no per-fact stamps; when
                    // any were added, conservatively re-match in full.
                    if dv.sigs_changed {
                        out.extend(filter_answers(structure, receiver, filter, &bindings)?);
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Valuations under which `element` denotes a member whose access reads the
/// delta: either the member itself is new, or the element's own derivation
/// reads the delta and denotes an existing member.
fn element_delta_answers(
    structure: &Structure,
    element: &Term,
    seed: &Bindings,
    full_members: &OidRun,
    new_members: &BTreeSet<Oid>,
    dv: &DeltaView,
) -> Result<Vec<Bindings>> {
    if let Term::Var(v) = element {
        if seed.get(v).is_none() {
            return Ok(new_members.iter().filter_map(|&o| seed.bind(v, o)).collect());
        }
    }
    let mut out = Vec::new();
    for a in answers(structure, element, seed)? {
        if new_members.contains(&a.object) {
            out.push(a.bindings);
        }
    }
    if reads_facts(element) {
        for a in delta_answers(structure, element, seed, dv)? {
            if full_members.contains(&a.object) {
                out.push(a.bindings);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names::{Name, Var};
    use crate::term::Filter as TFilter;

    fn oid(s: &Structure, n: &str) -> Oid {
        s.lookup_name(&Name::atom(n)).unwrap()
    }

    /// Base structure, a captured mark, then new facts on top: the delta.
    fn base_and_delta() -> (Structure, EvalMarks) {
        let mut s = Structure::new();
        let (kids, desc, person) = (s.atom("kids"), s.atom("desc"), s.atom("person"));
        let (peter, tim, mary, sally) = (s.atom("peter"), s.atom("tim"), s.atom("mary"), s.atom("sally"));
        s.assert_set_member(kids, peter, &[], tim);
        s.assert_set_member(kids, peter, &[], mary);
        s.assert_set_member(kids, tim, &[], sally);
        s.assert_set_member(desc, peter, &[], tim);
        s.assert_set_member(desc, peter, &[], mary);
        s.add_isa(peter, person);
        let mark = EvalMarks::capture(&s);
        // Delta: one new desc member, one new isa edge, one new scalar fact.
        s.assert_set_member(desc, peter, &[], sally);
        s.add_isa(tim, person);
        let age = s.atom("age");
        let five = s.int(5);
        s.assert_scalar(age, sally, &[], five).unwrap();
        (s, mark)
    }

    #[test]
    fn delta_set_path_enumerates_only_new_members() {
        let (s, mark) = base_and_delta();
        let dv = DeltaView::between(&s, &mark, &EvalMarks::capture(&s));
        assert!(!dv.is_empty());
        // X..desc — full: 3 answers; delta: only the new (peter, sally) pair.
        let t = Term::var("X").set("desc");
        assert_eq!(answers(&s, &t, &Bindings::new()).unwrap().len(), 3);
        let d = delta_answers(&s, &t, &Bindings::new(), &dv).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].object, oid(&s, "sally"));
        assert_eq!(d[0].bindings.get(&Var::new("X")), Some(oid(&s, "peter")));
        // X..kids did not change: no delta answers.
        let t = Term::var("X").set("kids");
        assert!(delta_answers(&s, &t, &Bindings::new(), &dv).unwrap().is_empty());
    }

    #[test]
    fn delta_scalar_path_and_filter() {
        let (s, mark) = base_and_delta();
        let dv = DeltaView::between(&s, &mark, &EvalMarks::capture(&s));
        // X.age — only sally's age is new.
        let d = delta_answers(&s, &Term::var("X").scalar("age"), &Bindings::new(), &dv).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].bindings.get(&Var::new("X")), Some(oid(&s, "sally")));
        // X[age -> A] as a molecule filter.
        let t = Term::var("X").filter(TFilter::scalar("age", Term::var("A")));
        let d = delta_answers(&s, &t, &Bindings::new(), &dv).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].bindings.get(&Var::new("A")), s.lookup_name(&Name::int(5)));
    }

    #[test]
    fn delta_isa_enumerates_only_new_pairs() {
        let (s, mark) = base_and_delta();
        let dv = DeltaView::between(&s, &mark, &EvalMarks::capture(&s));
        let t = Term::var("X").isa("person");
        assert_eq!(answers(&s, &t, &Bindings::new()).unwrap().len(), 2);
        let d = delta_answers(&s, &t, &Bindings::new(), &dv).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].object, oid(&s, "tim"));
    }

    #[test]
    fn delta_recursive_literal_matches_semi_naive_expectation() {
        // The recursive closure literal X..desc[kids ->> {Y}]: delta answers
        // must be exactly the joins through the *new* desc member.
        let (s, mark) = base_and_delta();
        let dv = DeltaView::between(&s, &mark, &EvalMarks::capture(&s));
        let t = Term::var("X")
            .set("desc")
            .filter(TFilter::set("kids", vec![Term::var("Y")]));
        // Full: desc members {tim, mary, sally}; tim has kid sally — so the
        // (X=peter via tim, Y=sally) join exists in full...
        let full = answers(&s, &t, &Bindings::new()).unwrap();
        assert_eq!(full.len(), 1);
        // ...but the new desc member sally has no kids, so the delta-join is
        // empty: the old (peter, tim) edge may not be re-derived.
        let d = delta_answers(&s, &t, &Bindings::new(), &dv).unwrap();
        assert!(d.is_empty());
        // Now extend the delta with a kid for sally and re-check.
        let mut s2 = s.clone();
        let kids = oid(&s2, "kids");
        let tom = s2.atom("tom");
        s2.assert_set_member(kids, oid(&s2, "sally"), &[], tom);
        let dv2 = DeltaView::between(&s2, &mark, &EvalMarks::capture(&s2));
        // Both the new desc edge and the new kids fact derive the same join;
        // the parts of the union may report it more than once (the engine
        // deduplicates bindings), but it must be the only distinct answer.
        let d2: BTreeSet<(Vec<(String, u32)>, Oid)> = delta_answers(&s2, &t, &Bindings::new(), &dv2)
            .unwrap()
            .into_iter()
            .map(|a| (canon(&a.bindings), a.object))
            .collect();
        assert_eq!(d2.len(), 1);
        // The molecule denotes its receiver — the desc member sally — and
        // binds X to the root and Y to the new grandchild.
        let (bindings, object) = d2.into_iter().next().unwrap();
        assert_eq!(object, oid(&s2, "sally"));
        assert!(bindings.contains(&("X".to_string(), oid(&s2, "peter").0)));
        assert!(bindings.contains(&("Y".to_string(), tom.0)));
    }

    #[test]
    fn empty_delta_yields_no_answers() {
        let (s, _) = base_and_delta();
        let mark = EvalMarks::capture(&s);
        let dv = DeltaView::between(&s, &mark, &mark);
        assert!(dv.is_empty());
        for t in [
            Term::var("X").set("desc"),
            Term::var("X").scalar("age"),
            Term::var("X").isa("person"),
            Term::var("X").filter(TFilter::set("kids", vec![Term::var("Y")])),
        ] {
            assert!(delta_answers(&s, &t, &Bindings::new(), &dv).unwrap().is_empty());
        }
    }

    #[test]
    fn delta_answers_are_a_subset_of_full_answers() {
        let (s, mark) = base_and_delta();
        let dv = DeltaView::between(&s, &mark, &EvalMarks::capture(&s));
        let terms = vec![
            Term::var("X").set("desc"),
            Term::var("X").set("kids"),
            Term::var("X").scalar("age"),
            Term::var("X").isa("person"),
            Term::var("X").filter(TFilter::set("desc", vec![Term::var("Y")])),
            Term::var("X")
                .set("desc")
                .filter(TFilter::set("kids", vec![Term::var("Y")])),
        ];
        for t in terms {
            let full: BTreeSet<(Vec<(String, u32)>, Oid)> = answers(&s, &t, &Bindings::new())
                .unwrap()
                .into_iter()
                .map(|a| (canon(&a.bindings), a.object))
                .collect();
            for a in delta_answers(&s, &t, &Bindings::new(), &dv).unwrap() {
                assert!(
                    full.contains(&(canon(&a.bindings), a.object)),
                    "delta answer not in full answers for {t}"
                );
            }
        }
    }

    fn canon(b: &Bindings) -> Vec<(String, u32)> {
        let mut key: Vec<(String, u32)> = b.iter().map(|(v, o)| (v.0.to_string(), o.0)).collect();
        key.sort();
        key
    }

    #[test]
    fn small_deltas_are_not_worth_sharding() {
        let (s, mark) = base_and_delta();
        let dv = DeltaView::between(&s, &mark, &EvalMarks::capture(&s));
        assert!(dv.entry_count() < DEFAULT_SHARD_MIN_ENTRIES);
        assert!(dv.shards(4, DEFAULT_SHARD_MIN_ENTRIES).is_none());
        assert!(
            dv.shards(1, DEFAULT_SHARD_MIN_ENTRIES).is_none(),
            "a single shard is never useful"
        );
        // The threshold is a tunable: lowering it forces sharding even of a
        // tiny delta (the E19 ablation relies on this).
        assert!(dv.entry_count() > 1);
        assert!(dv.shards(4, 1).is_some(), "min_entries = 1 forces sharding");
    }

    /// A wide delta (many new members of one method, new isa pairs, new
    /// scalar facts) whose sharded delta answers must union to the full ones.
    #[test]
    fn shard_union_equals_full_delta_answers() {
        let mut s = Structure::new();
        let (kids, desc, person, age) = (s.atom("kids"), s.atom("desc"), s.atom("person"), s.atom("age"));
        let nodes: Vec<Oid> = (0..120).map(|i| s.atom(&format!("n{i}"))).collect();
        for w in nodes.windows(2) {
            s.assert_set_member(kids, w[0], &[], w[1]);
        }
        let mark = EvalMarks::capture(&s);
        // Delta: ~120 desc members on one hot method, plus isa + scalar noise.
        for (i, w) in nodes.windows(2).enumerate() {
            s.assert_set_member(desc, w[0], &[], w[1]);
            if i % 3 == 0 {
                s.add_isa(w[1], person);
            }
            if i % 4 == 0 {
                let v = s.int(i as i64);
                s.assert_scalar(age, w[1], &[], v).unwrap();
            }
        }
        let dv = DeltaView::between(&s, &mark, &EvalMarks::capture(&s));
        let shards = dv
            .shards(4, DEFAULT_SHARD_MIN_ENTRIES)
            .expect("delta is large enough to shard");
        assert_eq!(shards.len(), 4);
        let terms = vec![
            Term::var("X").set("desc"),
            Term::var("X")
                .set("desc")
                .filter(TFilter::set("kids", vec![Term::var("Y")])),
            Term::var("X").isa("person"),
            Term::var("X").scalar("age"),
            Term::var("X").filter(TFilter::scalar("age", Term::var("A"))),
        ];
        for t in terms {
            let full: BTreeSet<(Vec<(String, u32)>, Oid)> = delta_answers(&s, &t, &Bindings::new(), &dv)
                .unwrap()
                .into_iter()
                .map(|a| (canon(&a.bindings), a.object))
                .collect();
            let mut union: BTreeSet<(Vec<(String, u32)>, Oid)> = BTreeSet::new();
            for shard in &shards {
                for a in delta_answers(&s, &t, &Bindings::new(), shard).unwrap() {
                    union.insert((canon(&a.bindings), a.object));
                }
            }
            assert_eq!(union, full, "sharded union differs from full delta for {t}");
        }
        // Every log entry landed in exactly one shard.
        let total: usize = shards.iter().map(DeltaView::entry_count).sum();
        assert_eq!(total, dv.entry_count());
    }
}
