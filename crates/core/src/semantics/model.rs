//! Model checking: is a structure a model of a program?
//!
//! The engine computes a fixpoint that is intended to be a *model* of the
//! program: for every rule and every variable-valuation that satisfies the
//! body, the head must be entailed (Definition 5).  This module checks that
//! property directly against the definitions — independently of how the
//! engine derived the structure — and is used by the test suite to validate
//! the engine on every example and on randomly generated programs.

use crate::engine::solve_body;
use crate::error::Result;
use crate::program::{Program, Rule};
use crate::semantics::{entails, Bindings};
use crate::structure::Structure;

/// A witness that a rule is violated: the offending rule and a body
/// valuation under which the head is not entailed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Index of the violated rule in the program.
    pub rule_index: usize,
    /// The rule itself, rendered in concrete syntax.
    pub rule: String,
    /// The variable-valuation satisfying the body but not the head.
    pub bindings: Bindings,
}

/// Check whether `structure` is a model of `rule`: every valuation that
/// satisfies the body must entail the head.  Returns the first
/// counter-example, if any.
pub fn check_rule(structure: &Structure, rule_index: usize, rule: &Rule) -> Result<Option<Violation>> {
    let solutions = solve_body(structure, &rule.body, &Bindings::new())?;
    for bindings in solutions {
        if !entails(structure, &rule.head, &bindings)? {
            return Ok(Some(Violation {
                rule_index,
                rule: rule.to_string(),
                bindings,
            }));
        }
    }
    Ok(None)
}

/// Check whether `structure` is a model of every rule of `program`,
/// collecting all violations (one witness per violated rule).
pub fn violations(structure: &Structure, program: &Program) -> Result<Vec<Violation>> {
    let mut out = Vec::new();
    for (i, rule) in program.rules.iter().enumerate() {
        if let Some(v) = check_rule(structure, i, rule)? {
            out.push(v);
        }
    }
    Ok(out)
}

/// `true` iff `structure` is a model of `program`.
pub fn is_model(structure: &Structure, program: &Program) -> Result<bool> {
    Ok(violations(structure, program)?.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::program::{Literal, Rule};
    use crate::term::{Filter, Term};

    fn desc_program() -> Program {
        let mut p = Program::new();
        p.push_rule(Rule::fact(
            Term::name("peter").filter(Filter::set("kids", vec![Term::name("tim"), Term::name("mary")])),
        ));
        p.push_rule(Rule::fact(
            Term::name("tim").filter(Filter::set("kids", vec![Term::name("sally")])),
        ));
        p.push_rule(Rule::new(
            Term::var("X").filter(Filter::set("desc", vec![Term::var("Y")])),
            vec![Literal::pos(
                Term::var("X").filter(Filter::set("kids", vec![Term::var("Y")])),
            )],
        ));
        p.push_rule(Rule::new(
            Term::var("X").filter(Filter::set("desc", vec![Term::var("Y")])),
            vec![Literal::pos(
                Term::var("X")
                    .set("desc")
                    .filter(Filter::set("kids", vec![Term::var("Y")])),
            )],
        ));
        p
    }

    #[test]
    fn fixpoint_of_the_engine_is_a_model() {
        let program = desc_program();
        let mut s = Structure::new();
        Engine::new().load_program(&mut s, &program).unwrap();
        assert!(is_model(&s, &program).unwrap());
        assert!(violations(&s, &program).unwrap().is_empty());
    }

    #[test]
    fn missing_derived_facts_are_detected() {
        let program = desc_program();
        // Evaluate only the facts, not the rules: the result satisfies the
        // facts but violates the desc rules.
        let facts: Vec<Rule> = program.facts().cloned().collect();
        let mut s = Structure::new();
        Engine::new().run_rules(&mut s, &facts).unwrap();
        // register the rule names so entailment of the heads can be evaluated
        let vs = violations(&s, &program).unwrap();
        assert!(!vs.is_empty());
        assert!(vs.iter().all(|v| v.rule.contains("desc")));
        assert!(!is_model(&s, &program).unwrap());
    }

    #[test]
    fn an_unrelated_structure_violates_the_facts_too() {
        let program = desc_program();
        let s = Structure::new();
        let vs = violations(&s, &program).unwrap();
        // every fact (empty body, one empty valuation) is violated
        assert!(vs.len() >= 2);
        assert_eq!(vs[0].bindings.len(), 0);
    }

    #[test]
    fn violation_reports_the_offending_valuation() {
        // X : adult <- X[age -> 30].   with a fact but no rule evaluation
        let mut program = Program::new();
        program.push_rule(Rule::fact(
            Term::name("mary").filter(Filter::scalar("age", Term::int(30))),
        ));
        program.push_rule(Rule::new(
            Term::var("X").isa("adult"),
            vec![Literal::pos(
                Term::var("X").filter(Filter::scalar("age", Term::int(30))),
            )],
        ));
        let facts: Vec<Rule> = program.facts().cloned().collect();
        let mut s = Structure::new();
        Engine::new().run_rules(&mut s, &facts).unwrap();
        let vs = violations(&s, &program).unwrap();
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].rule_index, 1);
        let mary = s.lookup_name(&crate::names::Name::atom("mary")).unwrap();
        assert_eq!(vs[0].bindings.get(&crate::names::Var::new("X")), Some(mary));
    }
}
