//! The direct semantics of PathLog (Section 5 of the paper).
//!
//! A reference plays two roles at once:
//!
//! * as a **term** it denotes a set of objects — the *valuation*
//!   `nu_I : T -> 2^U` of Definition 4 ([`valuate`]);
//! * as a **formula** it is true iff it denotes at least one object —
//!   *entailment*, Definition 5 ([`entails`]).
//!
//! Both are computed against a [`Structure`] and a variable-valuation
//! ([`Bindings`]).  [`valuate`] requires every variable of the reference to
//! be bound (it implements the mathematical definition); the companion module
//! [`answers`](mod@answers) enumerates the variable-valuations under which a reference
//! denotes something, which is what rule evaluation needs.

pub mod answers;
pub mod delta;
pub mod factorized;
pub mod model;

pub use answers::{answers, answers_matching, Answer};
pub use delta::{delta_answers, DeltaView, EvalMarks, SnapshotWindow, DEFAULT_SHARD_MIN_ENTRIES};
pub use factorized::{factorized_answers, AnswerDag, FactorizedAnswers};
pub use model::{is_model, violations, Violation};

use std::collections::BTreeSet;

use crate::error::{Error, Result};
use crate::names::Var;
use crate::structure::{Oid, Structure};
use crate::term::{Filter, FilterValue, Term};

/// A variable-valuation `sigma : V -> U`, mapping variables to objects.
///
/// Stored as a persistent (structurally shared) linked list: extending a
/// valuation allocates one node and *cloning* one — which the engine's join
/// loops do once or more per enumerated answer — is a reference-count bump.
/// Rules bind only a handful of variables, so the linear lookup this costs
/// is cheaper than hashing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bindings {
    head: Option<std::sync::Arc<BindingNode>>,
    len: usize,
}

#[derive(Debug, PartialEq, Eq)]
struct BindingNode {
    var: Var,
    oid: Oid,
    next: Option<std::sync::Arc<BindingNode>>,
}

impl Bindings {
    /// The empty valuation.
    pub fn new() -> Self {
        Self::default()
    }

    /// The object assigned to `var`, if bound.
    pub fn get(&self, var: &Var) -> Option<Oid> {
        let mut node = self.head.as_deref();
        while let Some(n) = node {
            if &n.var == var {
                return Some(n.oid);
            }
            node = n.next.as_deref();
        }
        None
    }

    /// Is `var` bound?
    pub fn is_bound(&self, var: &Var) -> bool {
        self.get(var).is_some()
    }

    /// A new valuation extending `self` with `var -> oid`.  Binding an
    /// already-bound variable to a *different* object yields `None`.
    pub fn bind(&self, var: &Var, oid: Oid) -> Option<Bindings> {
        match self.get(var) {
            Some(existing) if existing == oid => Some(self.clone()),
            Some(_) => None,
            None => Some(Bindings {
                head: Some(std::sync::Arc::new(BindingNode {
                    var: var.clone(),
                    oid,
                    next: self.head.clone(),
                })),
                len: self.len + 1,
            }),
        }
    }

    /// Bind in place (asserts the variable is unbound or equal).
    pub fn bind_mut(&mut self, var: &Var, oid: Oid) -> bool {
        match self.get(var) {
            Some(existing) => existing == oid,
            None => {
                self.head = Some(std::sync::Arc::new(BindingNode {
                    var: var.clone(),
                    oid,
                    next: self.head.take(),
                }));
                self.len += 1;
                true
            }
        }
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate over the bound variables (most recently bound first).
    pub fn iter(&self) -> impl Iterator<Item = (&Var, Oid)> + '_ {
        std::iter::successors(self.head.as_deref(), |n| n.next.as_deref()).map(|n| (&n.var, n.oid))
    }

    /// Iterate over the bindings added on top of a prefix valuation of
    /// length `base_len` (most recently bound first).  Extending a valuation
    /// only ever prepends distinct variables to the shared cons list, so the
    /// first `len - base_len` nodes are exactly the extension — the compiled
    /// join path uses this to update its flat slot frames without re-walking
    /// the seed's bindings.
    pub fn added_since(&self, base_len: usize) -> impl Iterator<Item = (&Var, Oid)> + '_ {
        self.iter().take(self.len.saturating_sub(base_len))
    }

    /// Build a valuation from pairs (later pairs win is *not* supported —
    /// duplicate variables must agree).
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Var, Oid)>) -> Option<Self> {
        let mut b = Bindings::new();
        for (v, o) in pairs {
            if !b.bind_mut(&v, o) {
                return None;
            }
        }
        Some(b)
    }
}

/// Evaluate the valuation `nu_I(t)` of a reference under `bindings`
/// (Definition 4).  Every variable occurring in `t` must be bound; otherwise
/// [`Error::NotGround`] is returned.
///
/// Names that are not registered in the structure denote no object (their
/// valuation is empty); callers that want the paper's total `I_N` should
/// register names up front (the engine does).
pub fn valuate(structure: &Structure, term: &Term, bindings: &Bindings) -> Result<BTreeSet<Oid>> {
    match term {
        Term::Name(n) => Ok(structure.lookup_name(n).into_iter().collect()),
        Term::Var(v) => match bindings.get(v) {
            Some(o) => Ok(std::iter::once(o).collect()),
            None => Err(Error::NotGround(format!("variable {v} is unbound"))),
        },
        Term::Paren(t) => valuate(structure, t, bindings),
        Term::Path(p) => {
            let receivers = valuate(structure, &p.receiver, bindings)?;
            let methods = valuate(structure, &p.method, bindings)?;
            let arg_sets = p
                .args
                .iter()
                .map(|a| valuate(structure, a, bindings))
                .collect::<Result<Vec<_>>>()?;
            let mut out = BTreeSet::new();
            for &m in &methods {
                for &r in &receivers {
                    for args in cartesian(&arg_sets) {
                        if p.set_valued {
                            if let Some(members) = structure.apply_set(m, r, &args) {
                                out.extend(members.iter().copied());
                            }
                        } else if let Some(res) = structure.apply_scalar(m, r, &args) {
                            out.insert(res);
                        }
                    }
                }
            }
            Ok(out)
        }
        Term::IsA(i) => {
            let receivers = valuate(structure, &i.receiver, bindings)?;
            let classes = valuate(structure, &i.class, bindings)?;
            Ok(receivers
                .into_iter()
                .filter(|&r| classes.iter().any(|&c| structure.in_class(r, c)))
                .collect())
        }
        Term::Molecule(m) => {
            let receivers = valuate(structure, &m.receiver, bindings)?;
            let mut out = BTreeSet::new();
            'recv: for r in receivers {
                for f in &m.filters {
                    if !filter_holds(structure, r, f, bindings)? {
                        continue 'recv;
                    }
                }
                out.insert(r);
            }
            Ok(out)
        }
    }
}

/// Entailment `I |=_sigma t` (Definition 5): the reference denotes at least
/// one object.
pub fn entails(structure: &Structure, term: &Term, bindings: &Bindings) -> Result<bool> {
    Ok(!valuate(structure, term, bindings)?.is_empty())
}

/// Does object `receiver` satisfy `filter` under `bindings` (Definition 4,
/// items 6–8)?
fn filter_holds(structure: &Structure, receiver: Oid, filter: &Filter, bindings: &Bindings) -> Result<bool> {
    let methods = valuate(structure, &filter.method, bindings)?;
    let arg_sets = filter
        .args
        .iter()
        .map(|a| valuate(structure, a, bindings))
        .collect::<Result<Vec<_>>>()?;
    match &filter.value {
        FilterValue::Scalar(rt) => {
            let expected = valuate(structure, rt, bindings)?;
            for &m in &methods {
                for args in cartesian(&arg_sets) {
                    if let Some(res) = structure.apply_scalar(m, receiver, &args) {
                        if expected.contains(&res) {
                            return Ok(true);
                        }
                    }
                }
            }
            Ok(false)
        }
        FilterValue::SetRef(rt) => {
            let required = valuate(structure, rt, bindings)?;
            for &m in &methods {
                for args in cartesian(&arg_sets) {
                    let have = structure.apply_set(m, receiver, &args);
                    let superset = match have {
                        Some(members) => required.iter().all(|x| members.contains(x)),
                        // `I_->>` is a total function into sets; an undefined
                        // application is the empty set.
                        None => required.is_empty(),
                    };
                    if superset {
                        return Ok(true);
                    }
                }
            }
            Ok(false)
        }
        FilterValue::SetExplicit(elems) => {
            let mut required = BTreeSet::new();
            for e in elems {
                required.extend(valuate(structure, e, bindings)?);
            }
            for &m in &methods {
                for args in cartesian(&arg_sets) {
                    let have = structure.apply_set(m, receiver, &args);
                    let superset = match have {
                        Some(members) => required.iter().all(|x| members.contains(x)),
                        None => required.is_empty(),
                    };
                    if superset {
                        return Ok(true);
                    }
                }
            }
            Ok(false)
        }
        // Signature filters are declarations, not conditions on the state of
        // an object; as a formula they hold iff the declaration is recorded.
        FilterValue::SigScalar(results) | FilterValue::SigSet(results) => {
            let set_valued = matches!(filter.value, FilterValue::SigSet(_));
            let mut result_classes = BTreeSet::new();
            for r in results {
                result_classes.extend(valuate(structure, r, bindings)?);
            }
            for &m in &methods {
                for args in cartesian(&arg_sets) {
                    let found = structure.signatures().for_method(m).any(|sig| {
                        sig.set_valued == set_valued
                            && sig.class == receiver
                            && sig.arg_classes.as_ref() == args.as_slice()
                            && result_classes.iter().all(|rc| sig.result_classes.contains(rc))
                    });
                    if found {
                        return Ok(true);
                    }
                }
            }
            Ok(false)
        }
    }
}

/// Cartesian product of argument valuations.  With no arguments the product
/// is the single empty tuple.
pub(crate) fn cartesian(sets: &[BTreeSet<Oid>]) -> Vec<Vec<Oid>> {
    let mut out = vec![Vec::new()];
    for s in sets {
        let mut next = Vec::with_capacity(out.len() * s.len().max(1));
        for prefix in &out {
            for &x in s {
                let mut row = prefix.clone();
                row.push(x);
                next.push(row);
            }
        }
        out = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Filter as TFilter;

    /// The little family / company world used by the paper's examples.
    fn world() -> Structure {
        let mut s = Structure::new();
        let (mary, john, peter) = (s.atom("mary"), s.atom("john"), s.atom("peter"));
        let (spouse, age, boss) = (s.atom("spouse"), s.atom("age"), s.atom("boss"));
        let (kids, tim, sally) = (s.atom("kids"), s.atom("tim"), s.atom("sally"));
        let (employee, person) = (s.atom("employee"), s.atom("person"));
        let thirty = s.int(30);
        s.assert_scalar(spouse, mary, &[], peter).unwrap();
        s.assert_scalar(age, mary, &[], thirty).unwrap();
        s.assert_scalar(boss, peter, &[], mary).unwrap();
        s.assert_set_member(kids, mary, &[], tim);
        s.assert_set_member(kids, mary, &[], sally);
        s.add_isa(employee, person);
        s.add_isa(mary, employee);
        s.add_isa(john, person);
        s
    }

    fn oid(s: &Structure, n: &str) -> Oid {
        s.lookup_name(&crate::names::Name::atom(n)).unwrap()
    }

    #[test]
    fn bindings_bind_and_conflict() {
        let mut b = Bindings::new();
        assert!(b.is_empty());
        assert!(b.bind_mut(&Var::new("X"), Oid(1)));
        assert!(b.bind_mut(&Var::new("X"), Oid(1)));
        assert!(!b.bind_mut(&Var::new("X"), Oid(2)));
        assert_eq!(b.len(), 1);
        assert_eq!(b.get(&Var::new("X")), Some(Oid(1)));
        let b2 = b.bind(&Var::new("Y"), Oid(3)).unwrap();
        assert_eq!(b2.len(), 2);
        assert!(b.bind(&Var::new("X"), Oid(2)).is_none());
        assert!(Bindings::from_pairs([(Var::new("A"), Oid(1)), (Var::new("A"), Oid(2))]).is_none());
    }

    #[test]
    fn name_valuation_is_singleton_or_empty() {
        let s = world();
        let v = valuate(&s, &Term::name("mary"), &Bindings::new()).unwrap();
        assert_eq!(v.len(), 1);
        let v = valuate(&s, &Term::name("nobody"), &Bindings::new()).unwrap();
        assert!(v.is_empty());
    }

    #[test]
    fn unbound_variable_is_an_error() {
        let s = world();
        let err = valuate(&s, &Term::var("X"), &Bindings::new()).unwrap_err();
        assert!(matches!(err, Error::NotGround(_)));
    }

    #[test]
    fn scalar_path_denotes_the_result() {
        let s = world();
        let t = Term::name("mary").scalar("spouse");
        let v = valuate(&s, &t, &Bindings::new()).unwrap();
        assert_eq!(v.into_iter().collect::<Vec<_>>(), vec![oid(&s, "peter")]);
    }

    #[test]
    fn undefined_scalar_path_denotes_nothing_and_is_false() {
        // "for a bachelor john the path john.spouse does not denote an
        // object, consequently, this path is considered false"
        let s = world();
        let t = Term::name("john").scalar("spouse");
        assert!(valuate(&s, &t, &Bindings::new()).unwrap().is_empty());
        assert!(!entails(&s, &t, &Bindings::new()).unwrap());
        assert!(entails(&s, &Term::name("mary").scalar("spouse"), &Bindings::new()).unwrap());
    }

    #[test]
    fn composed_path_evaluates_left_to_right() {
        let s = world();
        // mary.spouse.boss = mary
        let t = Term::name("mary").scalar("spouse").scalar("boss");
        let v = valuate(&s, &t, &Bindings::new()).unwrap();
        assert_eq!(v.into_iter().collect::<Vec<_>>(), vec![oid(&s, "mary")]);
    }

    #[test]
    fn set_path_denotes_all_members() {
        let s = world();
        let t = Term::name("mary").set("kids");
        let v = valuate(&s, &t, &Bindings::new()).unwrap();
        assert_eq!(v.len(), 2);
        assert!(v.contains(&oid(&s, "tim")));
        assert!(v.contains(&oid(&s, "sally")));
    }

    #[test]
    fn isa_molecule_filters_by_class() {
        let s = world();
        let t = Term::name("mary").isa("person");
        assert!(entails(&s, &t, &Bindings::new()).unwrap());
        let t = Term::name("john").isa("employee");
        assert!(!entails(&s, &t, &Bindings::new()).unwrap());
        // The valuation of an IsA molecule is its receiver when membership holds.
        let t = Term::name("mary").isa("employee");
        let v = valuate(&s, &t, &Bindings::new()).unwrap();
        assert_eq!(v.into_iter().collect::<Vec<_>>(), vec![oid(&s, "mary")]);
    }

    #[test]
    fn scalar_filter_checks_method_result() {
        let s = world();
        let t = Term::name("mary").filter(TFilter::scalar("age", Term::int(30)));
        assert!(entails(&s, &t, &Bindings::new()).unwrap());
        let t = Term::name("mary").filter(TFilter::scalar("age", Term::int(31)));
        assert!(!entails(&s, &t, &Bindings::new()).unwrap());
        // Result side may itself be a path: mary[spouse -> mary.spouse]
        let t = Term::name("mary").filter(TFilter::scalar("spouse", Term::name("mary").scalar("spouse")));
        assert!(entails(&s, &t, &Bindings::new()).unwrap());
    }

    #[test]
    fn empty_filter_list_asserts_existence() {
        let s = world();
        assert!(entails(
            &s,
            &Term::name("mary").scalar("spouse").empty_filters(),
            &Bindings::new()
        )
        .unwrap());
        assert!(!entails(
            &s,
            &Term::name("john").scalar("spouse").empty_filters(),
            &Bindings::new()
        )
        .unwrap());
    }

    #[test]
    fn set_filters_explicit_and_reference() {
        let mut s = world();
        let (friends, p2) = (s.atom("friends"), s.atom("p2"));
        let (tim, sally) = (oid(&s, "tim"), oid(&s, "sally"));
        s.assert_set_member(friends, p2, &[], tim);
        s.assert_set_member(friends, p2, &[], sally);

        // p2[friends ->> {tim}] — subset of the stored set: holds.
        let t = Term::name("p2").filter(TFilter::set("friends", vec![Term::name("tim")]));
        assert!(entails(&s, &t, &Bindings::new()).unwrap());
        // p2[friends ->> {tim, john}] — john is not a friend: fails.
        let t = Term::name("p2").filter(TFilter::set("friends", vec![Term::name("tim"), Term::name("john")]));
        assert!(!entails(&s, &t, &Bindings::new()).unwrap());
        // p2[friends ->> mary..kids] — the kids of mary are exactly the friends: holds.
        let t = Term::name("p2").filter(TFilter::set_ref("friends", Term::name("mary").set("kids")));
        assert!(entails(&s, &t, &Bindings::new()).unwrap());
        // mary[kids ->> p2..friends] — symmetric, also holds here.
        let t = Term::name("mary").filter(TFilter::set_ref("kids", Term::name("p2").set("friends")));
        assert!(entails(&s, &t, &Bindings::new()).unwrap());
    }

    #[test]
    fn set_filter_on_undefined_application() {
        let s = world();
        // john has no kids recorded: required set empty -> holds; non-empty -> fails.
        let t = Term::name("john").filter(TFilter::set("kids", vec![]));
        assert!(entails(&s, &t, &Bindings::new()).unwrap());
        let t = Term::name("john").filter(TFilter::set("kids", vec![Term::name("tim")]));
        assert!(!entails(&s, &t, &Bindings::new()).unwrap());
    }

    #[test]
    fn scalar_method_applied_to_set_receiver() {
        let mut s = world();
        // ages for the kids
        let (age, tim, sally) = (s.atom("age"), oid(&s, "tim"), oid(&s, "sally"));
        let (five, seven) = (s.int(5), s.int(7));
        s.assert_scalar(age, tim, &[], five).unwrap();
        s.assert_scalar(age, sally, &[], seven).unwrap();
        // mary..kids.age denotes the set of the kids' ages.
        let t = Term::name("mary").set("kids").scalar("age");
        let v = valuate(&s, &t, &Bindings::new()).unwrap();
        assert_eq!(v.len(), 2);
        assert!(v.contains(&five) && v.contains(&seven));
    }

    #[test]
    fn no_nested_sets_in_double_set_path() {
        let mut s = Structure::new();
        // peter..kids..kids = grandchildren, a flat set ("does not denote a
        // set of sets, but simply the set of john's grandchildren").
        let kids = s.atom("kids");
        let (peter, tim, mary2, sally, tom, paul) = (
            s.atom("peter"),
            s.atom("tim"),
            s.atom("mary"),
            s.atom("sally"),
            s.atom("tom"),
            s.atom("paul"),
        );
        s.assert_set_member(kids, peter, &[], tim);
        s.assert_set_member(kids, peter, &[], mary2);
        s.assert_set_member(kids, tim, &[], sally);
        s.assert_set_member(kids, mary2, &[], tom);
        s.assert_set_member(kids, mary2, &[], paul);
        let t = Term::name("peter").set("kids").set("kids");
        let v = valuate(&s, &t, &Bindings::new()).unwrap();
        let mut got: Vec<_> = v.into_iter().collect();
        got.sort();
        let mut want = vec![sally, tom, paul];
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn selector_is_self_filter() {
        let s = world();
        let bindings = Bindings::from_pairs([(Var::new("Z"), oid(&s, "peter"))]).unwrap();
        let t = Term::name("mary").scalar("spouse").selector(Term::var("Z"));
        assert!(entails(&s, &t, &bindings).unwrap());
        let bad = Bindings::from_pairs([(Var::new("Z"), oid(&s, "john"))]).unwrap();
        assert!(!entails(&s, &t, &bad).unwrap());
    }

    #[test]
    fn method_call_with_arguments() {
        let mut s = Structure::new();
        let (salary, john) = (s.atom("salary"), s.atom("john"));
        let (y1994, amount) = (s.int(1994), s.int(60_000));
        s.assert_scalar(salary, john, &[y1994], amount).unwrap();
        let t = Term::name("john").scalar_args("salary", vec![Term::int(1994)]);
        let v = valuate(&s, &t, &Bindings::new()).unwrap();
        assert_eq!(v.into_iter().collect::<Vec<_>>(), vec![amount]);
        let t = Term::name("john").scalar_args("salary", vec![Term::int(1993)]);
        assert!(valuate(&s, &t, &Bindings::new()).unwrap().is_empty());
    }

    #[test]
    fn set_valued_argument_fans_out() {
        let mut s = Structure::new();
        let (paid, p1, vehicles) = (s.atom("paidFor"), s.atom("p1"), s.atom("vehicles"));
        let (v1, v2) = (s.atom("v1"), s.atom("v2"));
        let (price1, price2) = (s.int(100), s.int(200));
        s.assert_set_member(vehicles, p1, &[], v1);
        s.assert_set_member(vehicles, p1, &[], v2);
        s.assert_scalar(paid, p1, &[v1], price1).unwrap();
        s.assert_scalar(paid, p1, &[v2], price2).unwrap();
        // p1.paidFor@(p1..vehicles) denotes the set of prices p1 paid.
        let t = Term::name("p1").scalar_args("paidFor", vec![Term::name("p1").set("vehicles")]);
        let v = valuate(&s, &t, &Bindings::new()).unwrap();
        assert_eq!(v.len(), 2);
        assert!(v.contains(&price1) && v.contains(&price2));
    }

    #[test]
    fn paren_changes_evaluation_order() {
        let mut s = Structure::new();
        let (integer, list, int_list, l) = (s.atom("integer"), s.atom("list"), s.atom("intList"), s.atom("l1"));
        s.assert_scalar(list, integer, &[], int_list).unwrap();
        s.add_isa(l, int_list);
        // L : (integer.list) — membership in the class denoted by the path.
        let t = Term::name("l1").isa(Term::name("integer").scalar("list").paren());
        assert!(entails(&s, &t, &Bindings::new()).unwrap());
        // l1 : integer.list — "apply list to an integer l1 is member of";
        // l1 is not a member of integer, so this denotes nothing.
        let t = Term::name("l1").isa("integer").scalar("list");
        assert!(!entails(&s, &t, &Bindings::new()).unwrap());
    }

    #[test]
    fn cartesian_of_empty_is_one_empty_tuple() {
        assert_eq!(cartesian(&[]), vec![Vec::<Oid>::new()]);
        let s1: BTreeSet<_> = [Oid(1), Oid(2)].into_iter().collect();
        let s2: BTreeSet<_> = [Oid(3)].into_iter().collect();
        let rows = cartesian(&[s1, s2]);
        assert_eq!(rows.len(), 2);
        assert!(rows.contains(&vec![Oid(1), Oid(3)]));
        // an empty factor annihilates the product
        assert!(cartesian(&[BTreeSet::new()]).is_empty());
    }
}
