//! Answer enumeration: which variable-valuations make a reference denote
//! something, and what does it denote?
//!
//! [`valuate`] implements Definition 4 for a *given*
//! variable-valuation.  Rule evaluation needs the other direction: given a
//! body reference with free variables, enumerate the pairs
//! `(sigma', object)` such that `object ∈ nu_{I,sigma'}(t)` and `sigma'`
//! extends the incoming valuation.  That is what [`answers`] computes.
//!
//! The enumeration is index-directed where it matters:
//!
//! * an unbound variable at the *receiver* position of a path or molecule is
//!   seeded from the per-method indexes of the structure instead of scanning
//!   the whole universe;
//! * an unbound variable at the *result* position of a scalar filter is bound
//!   directly to the method result;
//! * an unbound variable at the *method* position (the paper's generic
//!   transitive closure `M.tc`) is seeded from the methods defined on the
//!   receiver;
//! * an unbound variable at the receiver of an `IsA` is seeded from the class
//!   extent.
//!
//! A bare unbound variable with no such context falls back to enumerating the
//! universe, which is correct but slow; the rule compiler orders body
//! literals to avoid this.

use std::collections::BTreeSet;

use crate::error::{Error, Result};
use crate::structure::{Oid, OidRun, Structure};
use crate::term::{Filter, FilterValue, Term};

use super::{valuate, Bindings};

/// One answer: an extended variable-valuation and one object the reference
/// denotes under it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Answer {
    /// The extended valuation.
    pub bindings: Bindings,
    /// One object in the valuation of the reference under `bindings`.
    pub object: Oid,
}

impl Answer {
    pub(crate) fn new(bindings: Bindings, object: Oid) -> Self {
        Answer { bindings, object }
    }
}

/// Enumerate all answers of `term` extending `seed`.
pub fn answers(structure: &Structure, term: &Term, seed: &Bindings) -> Result<Vec<Answer>> {
    match term {
        Term::Name(n) => Ok(structure
            .lookup_name(n)
            .map(|o| vec![Answer::new(seed.clone(), o)])
            .unwrap_or_default()),
        Term::Var(v) => match seed.get(v) {
            Some(o) => Ok(vec![Answer::new(seed.clone(), o)]),
            None => Ok(structure
                .objects()
                .filter_map(|o| seed.bind(v, o).map(|b| Answer::new(b, o)))
                .collect()),
        },
        Term::Paren(t) => answers(structure, t, seed),
        Term::Path(p) => path_answers(structure, p, seed),
        Term::IsA(i) => isa_answers(structure, i, seed),
        Term::Molecule(m) => molecule_answers(structure, m, seed),
    }
}

/// Enumerate the valuations under which `term` denotes `expected`.
///
/// This is the "match a reference against a known object" operation used for
/// filter results and explicit set members; it avoids the universe scan that
/// `answers` would do for a bare unbound variable by binding it directly.
pub fn answers_matching(structure: &Structure, term: &Term, seed: &Bindings, expected: Oid) -> Result<Vec<Bindings>> {
    match term {
        Term::Name(n) => Ok(match structure.lookup_name(n) {
            Some(o) if o == expected => vec![seed.clone()],
            _ => Vec::new(),
        }),
        Term::Var(v) => Ok(seed.bind(v, expected).into_iter().collect()),
        Term::Paren(t) => answers_matching(structure, t, seed, expected),
        _ => Ok(answers(structure, term, seed)?
            .into_iter()
            .filter(|a| a.object == expected)
            .map(|a| a.bindings)
            .collect()),
    }
}

/// Answers of a path `t0 (.|..) m @ (args)`.
pub(crate) fn path_answers(structure: &Structure, p: &crate::term::Path, seed: &Bindings) -> Result<Vec<Answer>> {
    let mut out = Vec::new();
    for recv in receiver_answers_for_path(structure, p, seed)? {
        for ma in method_answers(structure, &p.method, &recv.bindings, recv.object, p.set_valued)? {
            for (bindings, args) in arg_answers(structure, &p.args, &ma.bindings)? {
                if p.set_valued {
                    if let Some(members) = structure.apply_set(ma.object, recv.object, &args) {
                        for &member in members {
                            out.push(Answer::new(bindings.clone(), member));
                        }
                    }
                } else if let Some(res) = structure.apply_scalar(ma.object, recv.object, &args) {
                    out.push(Answer::new(bindings.clone(), res));
                }
            }
        }
    }
    Ok(out)
}

/// Answers of the receiver of a path.  If the receiver is an unbound
/// variable and the method is a ground name, seed candidates from the
/// per-method index instead of the whole universe.
pub(crate) fn receiver_answers_for_path(
    structure: &Structure,
    p: &crate::term::Path,
    seed: &Bindings,
) -> Result<Vec<Answer>> {
    if let Some(method) = resolved_method_oid(structure, &p.method, seed) {
        if let Some(seeded) = index_seeded_receivers(structure, &p.receiver, seed, method, p.set_valued) {
            return Ok(seeded);
        }
    }
    answers(structure, &p.receiver, seed)
}

/// Receiver candidates for a *known* method object, seeded from the
/// per-method fact indexes.  Applicable only when the receiver is an
/// unbound variable and the method is not a built-in (`self` and the
/// comparison methods apply without stored facts, so the indexes would
/// wrongly restrict them); returns `None` when the caller must fall back to
/// full receiver enumeration.  Shared by the full enumeration above and the
/// delta enumeration's method-derivation part, so the built-in guard lives
/// in exactly one place.
pub(crate) fn index_seeded_receivers(
    structure: &Structure,
    receiver: &Term,
    seed: &Bindings,
    method: Oid,
    set_valued: bool,
) -> Option<Vec<Answer>> {
    let Term::Var(v) = receiver else { return None };
    if seed.get(v).is_some() {
        return None;
    }
    if method == structure.self_method() || structure.is_comparison_method(method) {
        return None;
    }
    let mut receivers: BTreeSet<Oid> = BTreeSet::new();
    if set_valued {
        receivers.extend(structure.facts().set_facts_of_method(method).map(|f| f.receiver));
    } else {
        receivers.extend(structure.facts().scalar_facts_of_method(method).map(|f| f.receiver));
    }
    Some(
        receivers
            .into_iter()
            .filter_map(|o| seed.bind(v, o).map(|b| Answer::new(b, o)))
            .collect(),
    )
}

/// Answers of a method position.  An unbound variable is seeded from the
/// methods defined on the receiver (this is what makes the generic
/// `X[(M.tc) ->> {Y}]` rules of Section 6 evaluable).
pub(crate) fn method_answers(
    structure: &Structure,
    method: &Term,
    seed: &Bindings,
    receiver: Oid,
    set_valued: bool,
) -> Result<Vec<Answer>> {
    if let Term::Var(v) = method {
        if seed.get(v).is_none() {
            let mut methods: BTreeSet<Oid> = BTreeSet::new();
            if set_valued {
                methods.extend(structure.facts().set_facts_of_receiver(receiver).map(|f| f.method));
            } else {
                methods.extend(structure.facts().scalar_facts_of_receiver(receiver).map(|f| f.method));
                methods.insert(structure.self_method());
            }
            return Ok(methods
                .into_iter()
                .filter_map(|m| seed.bind(v, m).map(|b| Answer::new(b, m)))
                .collect());
        }
    }
    answers(structure, method, seed)
}

/// Enumerate bindings and concrete argument tuples for a call argument list.
pub(crate) fn arg_answers(structure: &Structure, args: &[Term], seed: &Bindings) -> Result<Vec<(Bindings, Vec<Oid>)>> {
    let mut states = vec![(seed.clone(), Vec::new())];
    for arg in args {
        let mut next = Vec::new();
        for (bindings, prefix) in &states {
            for a in answers(structure, arg, bindings)? {
                let mut row = prefix.clone();
                row.push(a.object);
                next.push((a.bindings, row));
            }
        }
        states = next;
    }
    Ok(states)
}

/// Answers of `t0 : c`.
pub(crate) fn isa_answers(structure: &Structure, i: &crate::term::IsA, seed: &Bindings) -> Result<Vec<Answer>> {
    // Unbound-variable receiver: enumerate the extent of the class.
    if let Term::Var(v) = &i.receiver {
        if seed.get(v).is_none() {
            let mut out = Vec::new();
            for ca in answers(structure, &i.class, seed)? {
                for member in structure.instances_of(ca.object) {
                    if let Some(b) = ca.bindings.bind(v, member) {
                        out.push(Answer::new(b, member));
                    }
                }
            }
            return Ok(out);
        }
    }
    let mut out = Vec::new();
    for ra in answers(structure, &i.receiver, seed)? {
        // Unbound-variable class: enumerate the classes of the receiver.
        if let Term::Var(v) = &i.class {
            if ra.bindings.get(v).is_none() {
                for class in structure.classes_of(ra.object) {
                    if let Some(b) = ra.bindings.bind(v, class) {
                        out.push(Answer::new(b, ra.object));
                    }
                }
                continue;
            }
        }
        for ca in answers(structure, &i.class, &ra.bindings)? {
            if structure.in_class(ra.object, ca.object) {
                out.push(Answer::new(ca.bindings, ra.object));
            }
        }
    }
    Ok(out)
}

/// Answers of a molecule `t0 [ filters ]`.
fn molecule_answers(structure: &Structure, m: &crate::term::Molecule, seed: &Bindings) -> Result<Vec<Answer>> {
    let receivers = receiver_answers_for_molecule(structure, m, seed)?;
    let mut out = Vec::new();
    for ra in receivers {
        let mut states = vec![ra.bindings.clone()];
        for f in &m.filters {
            let mut next = Vec::new();
            for b in &states {
                next.extend(filter_answers(structure, ra.object, f, b)?);
            }
            states = next;
            if states.is_empty() {
                break;
            }
        }
        for b in states {
            out.push(Answer::new(b, ra.object));
        }
    }
    Ok(out)
}

/// Answers of the receiver of a molecule, seeding unbound variables from the
/// most selective usable filter.
pub(crate) fn receiver_answers_for_molecule(
    structure: &Structure,
    m: &crate::term::Molecule,
    seed: &Bindings,
) -> Result<Vec<Answer>> {
    let Term::Var(v) = &m.receiver else {
        return answers(structure, &m.receiver, seed);
    };
    if seed.get(v).is_some() {
        return answers(structure, &m.receiver, seed);
    }
    // Try to find a filter whose method is fully determined; use its index.
    let mut candidates: Option<BTreeSet<Oid>> = None;
    for f in &m.filters {
        let Some(method) = resolved_method_oid(structure, &f.method, seed) else {
            continue;
        };
        let set = match &f.value {
            FilterValue::Scalar(rt) => {
                if let Some(expected) = single_ground_object(structure, rt, seed) {
                    structure
                        .facts()
                        .scalar_facts_with_result(method, expected)
                        .map(|f| f.receiver)
                        .collect::<BTreeSet<_>>()
                } else {
                    structure
                        .facts()
                        .scalar_facts_of_method(method)
                        .map(|f| f.receiver)
                        .collect()
                }
            }
            FilterValue::SetExplicit(elems) => {
                if let Some(first) = elems.iter().find_map(|e| single_ground_object(structure, e, seed)) {
                    structure
                        .facts()
                        .set_facts_containing(method, first)
                        .map(|f| f.receiver)
                        .collect()
                } else {
                    structure
                        .facts()
                        .set_facts_of_method(method)
                        .map(|f| f.receiver)
                        .collect()
                }
            }
            FilterValue::SetRef(_) => structure
                .facts()
                .set_facts_of_method(method)
                .map(|f| f.receiver)
                .collect(),
            FilterValue::SigScalar(_) | FilterValue::SigSet(_) => continue,
        };
        candidates = Some(match candidates {
            None => set,
            Some(prev) => {
                if set.len() < prev.len() {
                    set
                } else {
                    prev
                }
            }
        });
    }
    match candidates {
        Some(set) => Ok(set
            .into_iter()
            .filter_map(|o| seed.bind(v, o).map(|b| Answer::new(b, o)))
            .collect()),
        None => answers(structure, &m.receiver, seed),
    }
}

/// All valuations extending `seed` under which `receiver` satisfies `filter`.
pub(crate) fn filter_answers(
    structure: &Structure,
    receiver: Oid,
    filter: &Filter,
    seed: &Bindings,
) -> Result<Vec<Bindings>> {
    // Fast path for the overwhelmingly common shape — a ground zero-argument
    // method — skipping the method/argument enumeration ceremony.
    if filter.args.is_empty() {
        if let Some(method) = ground_name_oid(structure, &filter.method, seed) {
            return filter_value_answers(structure, receiver, filter, method, &[], seed);
        }
    }
    let mut out = Vec::new();
    let set_valued_method = matches!(
        filter.value,
        FilterValue::SetRef(_) | FilterValue::SetExplicit(_) | FilterValue::SigSet(_)
    );
    for ma in method_answers(structure, &filter.method, seed, receiver, set_valued_method)? {
        for (bindings, args) in arg_answers(structure, &filter.args, &ma.bindings)? {
            out.extend(filter_value_answers(
                structure, receiver, filter, ma.object, &args, &bindings,
            )?);
        }
    }
    Ok(out)
}

/// Match a filter's value for an already-resolved method application.
pub(crate) fn filter_value_answers(
    structure: &Structure,
    receiver: Oid,
    filter: &Filter,
    method: Oid,
    args: &[Oid],
    bindings: &Bindings,
) -> Result<Vec<Bindings>> {
    let mut out = Vec::new();
    match &filter.value {
        FilterValue::Scalar(rt) => {
            if let Some(res) = structure.apply_scalar(method, receiver, args) {
                out.extend(answers_matching(structure, rt, bindings, res)?);
            }
        }
        FilterValue::SetRef(rt) => {
            let members = structure.apply_set(method, receiver, args);
            // The right-hand side is read set-at-a-time; it must be
            // evaluable under the current valuation (the engine's
            // stratification and safety checks guarantee this).
            let required = valuate(structure, rt, bindings).map_err(|e| match e {
                Error::NotGround(msg) => Error::NotGround(format!(
                    "set-valued right-hand side `{rt}` must be bound by earlier literals: {msg}"
                )),
                other => other,
            })?;
            let ok = match members {
                Some(ms) => required.iter().all(|x| ms.contains(x)),
                None => required.is_empty(),
            };
            if ok {
                out.push(bindings.clone());
            }
        }
        FilterValue::SetExplicit(elems) => {
            let members = structure
                .apply_set(method, receiver, args)
                .unwrap_or(OidRun::empty_ref());
            let mut states = vec![bindings.clone()];
            for e in elems {
                let mut next = Vec::new();
                for b in &states {
                    next.extend(element_answers(structure, e, b, members)?);
                }
                states = next;
                if states.is_empty() {
                    break;
                }
            }
            out.extend(states);
        }
        FilterValue::SigScalar(results) | FilterValue::SigSet(results) => {
            let set_valued = matches!(filter.value, FilterValue::SigSet(_));
            // Signatures are matched against the declarations table.
            for sig in structure.signatures().for_method(method) {
                if sig.set_valued != set_valued || sig.class != receiver || sig.arg_classes.as_ref() != args {
                    continue;
                }
                let mut states = vec![bindings.clone()];
                for r in results {
                    let mut next = Vec::new();
                    for b in &states {
                        for &rc in &sig.result_classes {
                            next.extend(answers_matching(structure, r, b, rc)?);
                        }
                    }
                    states = next;
                    if states.is_empty() {
                        break;
                    }
                }
                out.extend(states);
            }
        }
    }
    Ok(out)
}

/// Valuations under which `element` denotes a member of `members`.
pub(crate) fn element_answers(
    structure: &Structure,
    element: &Term,
    seed: &Bindings,
    members: &OidRun,
) -> Result<Vec<Bindings>> {
    // Unbound variable: bind to every member (this is the paper's
    // "p1[assistants ->> {X[salary -> 1000]}]" access pattern).
    if let Term::Var(v) = element {
        if seed.get(v).is_none() {
            return Ok(members.iter().filter_map(|&o| seed.bind(v, o)).collect());
        }
    }
    let mut out = Vec::new();
    for a in answers(structure, element, seed)? {
        if members.contains(&a.object) {
            out.push(a.bindings);
        }
    }
    Ok(out)
}

/// If `term` is a ground name (or a bound variable), the object it denotes.
pub(crate) fn ground_name_oid(structure: &Structure, term: &Term, seed: &Bindings) -> Option<Oid> {
    match term {
        Term::Name(n) => structure.lookup_name(n),
        Term::Var(v) => seed.get(v),
        Term::Paren(t) => ground_name_oid(structure, t, seed),
        _ => None,
    }
}

/// The method object a method-position term denotes, when it is fully
/// determined under `seed`: a ground name or bound variable resolves
/// directly, and any other fully-bound term (e.g. the parenthesised `(M.tc)`
/// of the paper's generic transitive closure with `M` bound) is valuated.
/// Built-in methods (`self`, comparisons) yield `None`: they apply to
/// arbitrary receivers without stored facts, so the per-method fact indexes
/// must not be used to seed receiver candidates for them.
pub(crate) fn resolved_method_oid(structure: &Structure, method: &Term, seed: &Bindings) -> Option<Oid> {
    let oid = match ground_name_oid(structure, method, seed) {
        Some(oid) => oid,
        None => single_ground_object(structure, method, seed)?,
    };
    if oid == structure.self_method() || structure.is_comparison_method(oid) {
        return None;
    }
    Some(oid)
}

/// If `term` evaluates, under `seed`, to exactly one object without needing
/// further bindings, that object.
pub(crate) fn single_ground_object(structure: &Structure, term: &Term, seed: &Bindings) -> Option<Oid> {
    if !term.variables().iter().all(|v| seed.is_bound(v)) {
        return None;
    }
    let set = valuate(structure, term, seed).ok()?;
    if set.len() == 1 {
        set.into_iter().next()
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names::{Name, Var};
    use crate::term::Filter as TFilter;

    fn world() -> Structure {
        let mut s = Structure::new();
        let (employee, automobile, vehicle, person) = (
            s.atom("employee"),
            s.atom("automobile"),
            s.atom("vehicle"),
            s.atom("person"),
        );
        s.add_isa(employee, person);
        s.add_isa(automobile, vehicle);

        let (vehicles, color, cylinders, age, city) = (
            s.atom("vehicles"),
            s.atom("color"),
            s.atom("cylinders"),
            s.atom("age"),
            s.atom("city"),
        );
        let (red, blue, ny, detroit) = (s.atom("red"), s.atom("blue"), s.atom("newYork"), s.atom("detroit"));
        let (four, six, thirty, forty) = (s.int(4), s.int(6), s.int(30), s.int(40));

        // e1: 30, newYork, owns a1 (red, 4 cyl) and b1 (a plain vehicle)
        let (e1, e2) = (s.atom("e1"), s.atom("e2"));
        let (a1, a2, b1) = (s.atom("a1"), s.atom("a2"), s.atom("b1"));
        s.add_isa(e1, employee);
        s.add_isa(e2, employee);
        s.add_isa(a1, automobile);
        s.add_isa(a2, automobile);
        s.add_isa(b1, vehicle);
        s.assert_scalar(age, e1, &[], thirty).unwrap();
        s.assert_scalar(age, e2, &[], forty).unwrap();
        s.assert_scalar(city, e1, &[], ny).unwrap();
        s.assert_scalar(city, e2, &[], detroit).unwrap();
        s.assert_set_member(vehicles, e1, &[], a1);
        s.assert_set_member(vehicles, e1, &[], b1);
        s.assert_set_member(vehicles, e2, &[], a2);
        s.assert_scalar(color, a1, &[], red).unwrap();
        s.assert_scalar(color, a2, &[], blue).unwrap();
        s.assert_scalar(cylinders, a1, &[], four).unwrap();
        s.assert_scalar(cylinders, a2, &[], six).unwrap();
        s
    }

    fn o(s: &Structure, n: &str) -> Oid {
        s.lookup_name(&Name::atom(n)).unwrap()
    }

    #[test]
    fn name_and_bound_variable_answers() {
        let s = world();
        let a = answers(&s, &Term::name("e1"), &Bindings::new()).unwrap();
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].object, o(&s, "e1"));
        let seed = Bindings::from_pairs([(Var::new("X"), o(&s, "e1"))]).unwrap();
        let a = answers(&s, &Term::var("X"), &seed).unwrap();
        assert_eq!(a.len(), 1);
        let a = answers(&s, &Term::name("unknown"), &Bindings::new()).unwrap();
        assert!(a.is_empty());
    }

    #[test]
    fn unbound_variable_falls_back_to_universe() {
        let s = world();
        let a = answers(&s, &Term::var("X"), &Bindings::new()).unwrap();
        assert_eq!(a.len(), s.num_objects());
    }

    #[test]
    fn isa_enumerates_extent() {
        let s = world();
        let a = answers(&s, &Term::var("X").isa("employee"), &Bindings::new()).unwrap();
        let mut got: Vec<_> = a.iter().map(|x| x.object).collect();
        got.sort();
        let mut want = vec![o(&s, "e1"), o(&s, "e2")];
        want.sort();
        assert_eq!(got, want);
        // each answer binds X to the member
        for ans in &a {
            assert_eq!(ans.bindings.get(&Var::new("X")), Some(ans.object));
        }
    }

    #[test]
    fn isa_with_unbound_class_enumerates_classes() {
        let s = world();
        let seed = Bindings::from_pairs([(Var::new("X"), o(&s, "a1"))]).unwrap();
        let a = answers(&s, &Term::var("X").isa(Term::var("C")), &seed).unwrap();
        let mut classes: Vec<_> = a.iter().map(|x| x.bindings.get(&Var::new("C")).unwrap()).collect();
        classes.sort();
        classes.dedup();
        assert_eq!(classes.len(), 2); // automobile and vehicle
    }

    #[test]
    fn path_with_unbound_receiver_uses_method_index() {
        let s = world();
        // X..vehicles — receivers seeded from the `vehicles` method index.
        let a = answers(&s, &Term::var("X").set("vehicles"), &Bindings::new()).unwrap();
        assert_eq!(a.len(), 3); // a1, b1 for e1; a2 for e2
                                // X.color — scalar variant
        let a = answers(&s, &Term::var("X").scalar("color"), &Bindings::new()).unwrap();
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn molecule_with_unbound_receiver_uses_result_index() {
        let s = world();
        // X[color -> red] — only a1.
        let a = answers(
            &s,
            &Term::var("X").filter(TFilter::scalar("color", "red")),
            &Bindings::new(),
        )
        .unwrap();
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].object, o(&s, "a1"));
    }

    #[test]
    fn scalar_filter_binds_result_variable() {
        let s = world();
        // e1[age -> A]
        let t = Term::name("e1").filter(TFilter::scalar("age", Term::var("A")));
        let a = answers(&s, &t, &Bindings::new()).unwrap();
        assert_eq!(a.len(), 1);
        assert_eq!(
            a[0].bindings.get(&Var::new("A")),
            Some(o(&s, "e1")).map(|_| s.lookup_name(&Name::int(30)).unwrap())
        );
    }

    #[test]
    fn two_dimensional_reference_2_1() {
        let s = world();
        // X:employee[age->30; city->newYork]..vehicles:automobile[cylinders->4].color[Z]
        let t = Term::var("X")
            .isa("employee")
            .filters(vec![
                TFilter::scalar("age", Term::int(30)),
                TFilter::scalar("city", "newYork"),
            ])
            .set("vehicles")
            .isa("automobile")
            .filter(TFilter::scalar("cylinders", Term::int(4)))
            .scalar("color")
            .selector(Term::var("Z"));
        let a = answers(&s, &t, &Bindings::new()).unwrap();
        assert_eq!(a.len(), 1);
        let ans = &a[0];
        assert_eq!(ans.bindings.get(&Var::new("X")), Some(o(&s, "e1")));
        assert_eq!(ans.bindings.get(&Var::new("Z")), Some(o(&s, "red")));
        assert_eq!(ans.object, o(&s, "red"));
    }

    #[test]
    fn set_filter_element_variable_ranges_over_members() {
        let s = world();
        // e1[vehicles ->> {V}] — V successively bound to each vehicle.
        let t = Term::name("e1").filter(TFilter::set("vehicles", vec![Term::var("V")]));
        let a = answers(&s, &t, &Bindings::new()).unwrap();
        assert_eq!(a.len(), 2);
        let mut vs: Vec<_> = a.iter().map(|x| x.bindings.get(&Var::new("V")).unwrap()).collect();
        vs.sort();
        let mut want = vec![o(&s, "a1"), o(&s, "b1")];
        want.sort();
        assert_eq!(vs, want);
        // the molecule still denotes its receiver
        assert!(a.iter().all(|x| x.object == o(&s, "e1")));
    }

    #[test]
    fn unbound_method_variable_enumerates_defined_methods() {
        let s = world();
        // e1[M -> thirty]? enumerate scalar methods M with that result on e1.
        let t = Term::name("e1").filter(TFilter::scalar(Term::var("M"), Term::int(30)));
        let a = answers(&s, &t, &Bindings::new()).unwrap();
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].bindings.get(&Var::new("M")), Some(o(&s, "age")));
    }

    #[test]
    fn set_ref_rhs_requires_bound_variables() {
        let s = world();
        // e1[vehicles ->> Y..vehicles] with Y unbound: must be an error, the
        // engine's stratification/safety pass prevents this situation.
        let t = Term::name("e1").filter(TFilter::set_ref("vehicles", Term::var("Y").set("vehicles")));
        assert!(answers(&s, &t, &Bindings::new()).is_err());
        // With Y bound to e1 it holds (every vehicle of e1 is a vehicle of e1).
        let seed = Bindings::from_pairs([(Var::new("Y"), o(&s, "e1"))]).unwrap();
        let a = answers(&s, &t, &seed).unwrap();
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn answers_matching_binds_or_checks() {
        let s = world();
        let red = o(&s, "red");
        let b = answers_matching(&s, &Term::var("Z"), &Bindings::new(), red).unwrap();
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].get(&Var::new("Z")), Some(red));
        let b = answers_matching(&s, &Term::name("red"), &Bindings::new(), red).unwrap();
        assert_eq!(b.len(), 1);
        let b = answers_matching(&s, &Term::name("blue"), &Bindings::new(), red).unwrap();
        assert!(b.is_empty());
        // complex term: a1.color matched against red
        let b = answers_matching(&s, &Term::name("a1").scalar("color"), &Bindings::new(), red).unwrap();
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn answers_agree_with_valuate_on_ground_terms() {
        let s = world();
        let terms = vec![
            Term::name("e1").set("vehicles"),
            Term::name("e1").set("vehicles").scalar("color"),
            Term::name("e1").filter(TFilter::scalar("age", Term::int(30))),
            Term::name("e2").filter(TFilter::scalar("age", Term::int(30))),
            Term::name("a1").isa("vehicle"),
        ];
        for t in terms {
            let via_answers: BTreeSet<_> = answers(&s, &t, &Bindings::new())
                .unwrap()
                .into_iter()
                .map(|a| a.object)
                .collect();
            let via_valuate = valuate(&s, &t, &Bindings::new()).unwrap();
            assert_eq!(via_answers, via_valuate, "mismatch for {t}");
        }
    }

    #[test]
    fn nested_path_in_filter_value() {
        let mut s = world();
        // boss city equality: e1's boss is e2; ask X[city -> X.boss.city].
        let boss = s.atom("boss");
        let (e1, e2) = (o(&s, "e1"), o(&s, "e2"));
        s.assert_scalar(boss, e1, &[], e2).unwrap();
        // e1 lives in newYork, e2 in detroit -> no answer.
        let t = Term::var("X").filter(TFilter::scalar("city", Term::var("X").scalar("boss").scalar("city")));
        let a = answers(&s, &t, &Bindings::new()).unwrap();
        assert!(a.is_empty());
        // Move e2 to newYork -> one answer (e1).
        let city = o(&s, "city");
        let ny = o(&s, "newYork");
        let mut s2 = world();
        let boss2 = s2.atom("boss");
        s2.assert_scalar(boss2, e1, &[], e2).unwrap();
        // overwrite by building fresh: assert e2 city newYork in a new world
        // (scalar conflict would be an error otherwise).
        let _ = (city, ny);
        let mut s3 = Structure::new();
        let (employee, age2, city3) = (s3.atom("employee"), s3.atom("age"), s3.atom("city"));
        let (f1, f2) = (s3.atom("f1"), s3.atom("f2"));
        let ny3 = s3.atom("newYork");
        let boss3 = s3.atom("boss");
        let t30 = s3.int(30);
        s3.add_isa(f1, employee);
        s3.add_isa(f2, employee);
        s3.assert_scalar(age2, f1, &[], t30).unwrap();
        s3.assert_scalar(city3, f1, &[], ny3).unwrap();
        s3.assert_scalar(city3, f2, &[], ny3).unwrap();
        s3.assert_scalar(boss3, f1, &[], f2).unwrap();
        let a = answers(&s3, &t, &Bindings::new()).unwrap();
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].object, f1);
    }
}
