//! Static program analysis: dependency graphs, safety/lint diagnostics and
//! cost annotations.
//!
//! Every consumer of PathLog rule sets — the engine's stratifier, the
//! constraint checker's read-key gating, the reactive crate's trigger
//! matching — works from the same `(method/class, polarity)` dependency
//! keys.  This module makes that view explicit: [`analyze`] takes any
//! combination of a [`Program`], a [`ConstraintSet`], reactive-rule
//! summaries and an optional [`Structure`] snapshot, builds one shared
//! [`DependencyGraph`], and produces:
//!
//! * a [`Diagnostics`] report with stable `PL0xx` codes, severities and
//!   parser spans — safety/range-restriction errors (PL001–PL005), liveness
//!   lints (PL006–PL009) and cascade warnings (PL010–PL011);
//! * the engine's [`Stratification`] (bit-identical to what evaluation
//!   uses — `engine/stratify.rs` delegates to the same graph);
//! * per-rule [`RulePlanReport`]s annotating each body literal with its
//!   access path and selectivity class — the front end for cost-based join
//!   planning;
//! * a [`CascadeReport`] bounding reactive trigger cascades statically.
//!
//! The analyzer never rejects anything itself; `Engine::install_checked`
//! turns `Error`-severity diagnostics into [`crate::error::Error::StaticRejected`]
//! when [`crate::engine::StaticChecks::Enforce`] is configured.  The
//! guarantee the enforcement relies on (and a proptest pins down): every
//! program [`crate::program::validate_rule`] or the stratifier rejects
//! carries at least one `Error`-severity diagnostic here.

mod cascade;
mod cost;
mod diagnostics;
mod graph;
mod liveness;
mod safety;

pub use cascade::{analyze_cascades, CascadeBound, CascadeReport, ReactiveRuleSummary};
pub use cost::{AccessPath, LiteralPlan, MethodStats, RulePlanReport, Selectivity};
pub use diagnostics::{json_escape, DiagCode, Diagnostic, Diagnostics, Severity, Span};
pub use graph::{keys_intersect, DependencyGraph, Edge, Polarity, RuleKind, RuleNode};

use std::collections::BTreeSet;

use crate::constraints::ConstraintSet;
use crate::engine::Stratification;
use crate::program::{literal_reads, rule_info, DepKey, Literal, Program, Rule};
use crate::structure::Structure;
use crate::term::Term;

/// Annotate one rule's body with per-literal access paths, selectivity
/// classes and fact-count estimates — the same annotations [`analyze`]
/// attaches, exposed as the entry point the engine's cost-based join
/// planner ([`crate::plan`]) consumes against *live* [`MethodStats`] at
/// evaluation time.  `derived` is the set of dependency keys some rule
/// writes (e.g. the union of every rule's `defines`): keys with no stored
/// facts that appear there classify as [`Selectivity::Unknown`] instead of
/// `Empty`, so a planner never orders a to-be-derived literal as if it
/// pruned everything.
pub fn plan_rule(rule: &Rule, stats: Option<&MethodStats>, derived: Option<&BTreeSet<DepKey>>) -> RulePlanReport {
    let kind = if rule.is_fact() { RuleKind::Fact } else { RuleKind::Rule };
    cost::plan_body(&rule.to_string(), kind, None, &rule.body, stats, derived)
}

/// Everything one analysis run looks at.  Build with the fluent setters and
/// pass to [`analyze`] (or call [`AnalysisInput::run`]).
#[derive(Default)]
pub struct AnalysisInput<'a> {
    program: Option<&'a Program>,
    rule_spans: Vec<Span>,
    query_spans: Vec<Span>,
    constraints: Option<&'a ConstraintSet>,
    reactive: Vec<ReactiveRuleSummary>,
    max_cascade_depth: Option<usize>,
    structure: Option<&'a Structure>,
}

impl<'a> AnalysisInput<'a> {
    /// An empty input.
    pub fn new() -> Self {
        Self::default()
    }

    /// Analyze this program's rules, facts and queries.
    pub fn program(mut self, program: &'a Program) -> Self {
        self.program = Some(program);
        self
    }

    /// Statement start positions for the program's rules, parallel to
    /// `program.rules` (as produced by the parser's spanned entry point).
    pub fn rule_spans(mut self, spans: &[(usize, usize)]) -> Self {
        self.rule_spans = spans.iter().map(|&(l, c)| Span::new(l, c)).collect();
        self
    }

    /// Statement start positions for the program's queries, parallel to
    /// `program.queries`.
    pub fn query_spans(mut self, spans: &[(usize, usize)]) -> Self {
        self.query_spans = spans.iter().map(|&(l, c)| Span::new(l, c)).collect();
        self
    }

    /// Also analyze these denial constraints (their bodies join the graph as
    /// consumer nodes).
    pub fn constraints(mut self, constraints: &'a ConstraintSet) -> Self {
        self.constraints = Some(constraints);
        self
    }

    /// Also analyze a reactive rule (production or ECA), described by its
    /// dependency summary.
    pub fn reactive_rule(mut self, summary: ReactiveRuleSummary) -> Self {
        self.reactive.push(summary);
        self
    }

    /// The runtime cascade-depth limit to check the static bound against
    /// (PL011 fires when the bound exceeds it).
    pub fn max_cascade_depth(mut self, depth: usize) -> Self {
        self.max_cascade_depth = Some(depth);
        self
    }

    /// Use this structure's stored facts for liveness (externally stored
    /// keys are not "always empty") and for selectivity estimates.
    pub fn structure(mut self, structure: &'a Structure) -> Self {
        self.structure = Some(structure);
        self
    }

    /// Run the analysis.
    pub fn run(self) -> Analysis {
        analyze(self)
    }
}

/// The result of one [`analyze`] run.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// The shared dependency graph (program statements first, then
    /// constraints, then reactive rules, in input order).
    pub graph: DependencyGraph,
    /// The stratification of the program's rules — exactly what the engine
    /// evaluates with; `None` when the rules are not stratifiable (PL005).
    pub strata: Option<Stratification>,
    /// All diagnostics, sorted by source position.
    pub diagnostics: Diagnostics,
    /// Per-statement plan reports (proper rules, queries and constraints —
    /// facts have no body to plan).
    pub plans: Vec<RulePlanReport>,
    /// Cascade analysis, when reactive rules were supplied.
    pub cascade: Option<CascadeReport>,
}

impl Analysis {
    /// `true` when no `Error`-severity diagnostic was reported.
    pub fn no_errors(&self) -> bool {
        self.diagnostics.no_errors()
    }
}

/// Analyze `input` — see the module docs for what this produces.
pub fn analyze(input: AnalysisInput<'_>) -> Analysis {
    let AnalysisInput {
        program,
        rule_spans,
        query_spans,
        constraints,
        reactive,
        max_cascade_depth,
        structure,
    } = input;

    let stats = structure.map(MethodStats::capture);
    let mut diags = Diagnostics::new();
    let mut graph = DependencyGraph::new();
    // Plan inputs are collected while the graph is built and planned *after*
    // it is complete: selectivity classification needs to know which read
    // keys some rule writes (`writers_of`), and writers may appear later in
    // the input than their readers.
    let mut pending_plans: Vec<(String, RuleKind, Option<Span>, &[Literal])> = Vec::new();

    // -- program rules, facts and queries -----------------------------------
    let mut rule_infos = Vec::new();
    if let Some(program) = program {
        let mut proper: Vec<(&Rule, Option<Span>)> = Vec::new();
        for (i, rule) in program.rules.iter().enumerate() {
            let span = rule_spans.get(i).copied();
            let info = rule_info(rule);
            rule_infos.push(info.clone());
            let kind = if rule.is_fact() { RuleKind::Fact } else { RuleKind::Rule };
            graph.push(RuleNode::from_info(kind, rule.to_string(), span, info));
            safety::check_rule(rule, span, &mut diags);
            if !rule.is_fact() {
                proper.push((rule, span));
                pending_plans.push((rule.to_string(), kind, span, &rule.body));
            }
        }
        for (i, query) in program.queries.iter().enumerate() {
            let span = query_spans.get(i).copied();
            let label = query.to_string();
            // A query is a body with no head: reuse the rule collectors via a
            // synthetic ground head that defines nothing.
            let info = rule_info(&Rule::new(Term::name("__query").empty_filters(), query.body.clone()));
            graph.push(RuleNode::from_info(RuleKind::Query, label.clone(), span, info));
            safety::check_body(&label, &query.body, span, &mut diags);
            pending_plans.push((label, RuleKind::Query, span, &query.body));
        }
        liveness::check_scalar_conflicts(&proper, &mut diags);
    }

    // -- constraint bodies ---------------------------------------------------
    if let Some(constraints) = constraints {
        for c in constraints.iter() {
            let label = format!("constraint `{}`", c.name());
            let info = rule_info(&Rule::new(
                Term::name("__constraint").empty_filters(),
                c.body().to_vec(),
            ));
            graph.push(RuleNode::from_info(RuleKind::Constraint, label.clone(), None, info));
            safety::check_body(&label, c.body(), None, &mut diags);
            pending_plans.push((label, RuleKind::Constraint, None, c.body()));
        }
    }

    // -- reactive rules ------------------------------------------------------
    for summary in &reactive {
        let mut node = RuleNode {
            kind: summary.kind,
            label: summary.name.clone(),
            span: None,
            defines: summary.action_keys(),
            uses: summary.condition_reads.clone(),
            strict_uses: Default::default(),
        };
        node.uses.extend(summary.trigger.iter().cloned());
        graph.push(node);
    }

    // -- stratification (PL005): over exactly the rule set the engine sees --
    let strata = match DependencyGraph::from_rule_infos(&rule_infos).stratify() {
        Ok(s) => Some(s),
        Err(e) => {
            diags.push(Diagnostic::new(
                DiagCode::NotStratifiable,
                None,
                "program".to_string(),
                e.to_string(),
            ));
            None
        }
    };

    // -- cost annotations ----------------------------------------------------
    // Classify each read key as derived when the completed graph knows a
    // writer for it, so factless-but-written keys report `Unknown` instead
    // of `Empty` (the planner must not order a to-be-derived literal as if
    // it pruned everything).
    let derived: BTreeSet<DepKey> = pending_plans
        .iter()
        .flat_map(|(_, _, _, body)| body.iter())
        .flat_map(|lit| literal_reads(&lit.term))
        .collect::<BTreeSet<_>>()
        .into_iter()
        .filter(|key| {
            let singleton: BTreeSet<DepKey> = std::iter::once(key.clone()).collect();
            !graph.writers_of(&singleton).is_empty()
        })
        .collect();
    let plans: Vec<RulePlanReport> = pending_plans
        .into_iter()
        .map(|(label, kind, span, body)| cost::plan_body(&label, kind, span, body, stats.as_ref(), Some(&derived)))
        .collect();

    // -- liveness ------------------------------------------------------------
    liveness::check_always_empty(&graph, stats.as_ref(), &mut diags);
    liveness::check_dead_rules(&graph, &mut diags);

    // -- cascades ------------------------------------------------------------
    let cascade = if reactive.is_empty() {
        None
    } else {
        Some(analyze_cascades(&reactive, max_cascade_depth, &mut diags))
    };

    diags.sort();
    Analysis {
        graph,
        strata,
        diagnostics: diags,
        plans,
        cascade,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Literal, Query};
    use crate::term::Filter;

    fn tc_program() -> Program {
        let mut p = Program::new();
        p.push_rule(Rule::fact(
            Term::name("peter").filter(Filter::set("kids", vec![Term::name("tim"), Term::name("mary")])),
        ));
        p.push_rule(Rule::new(
            Term::var("X").filter(Filter::set("desc", vec![Term::var("Y")])),
            vec![Literal::pos(
                Term::var("X").filter(Filter::set("kids", vec![Term::var("Y")])),
            )],
        ));
        p.push_rule(Rule::new(
            Term::var("X").filter(Filter::set("desc", vec![Term::var("Y")])),
            vec![Literal::pos(
                Term::var("X")
                    .set("desc")
                    .filter(Filter::set("kids", vec![Term::var("Y")])),
            )],
        ));
        p.push_query(Query::single(Term::name("peter").set("desc").selector(Term::var("D"))));
        p
    }

    #[test]
    fn clean_program_analyzes_clean() {
        let p = tc_program();
        let a = AnalysisInput::new().program(&p).run();
        assert!(a.diagnostics.is_empty(), "{}", a.diagnostics);
        assert!(a.strata.is_some());
        assert_eq!(a.graph.len(), 4); // 1 fact + 2 rules + 1 query
        assert_eq!(a.plans.len(), 3); // 2 rules + 1 query
    }

    #[test]
    fn strata_match_engine_stratify() {
        let p = tc_program();
        let infos = crate::program::validate_program(&p).unwrap();
        let engine_strata = crate::engine::stratify(&infos).unwrap();
        let a = AnalysisInput::new().program(&p).run();
        assert_eq!(a.strata.unwrap(), engine_strata);
    }

    #[test]
    fn spans_attach_to_rule_diagnostics() {
        let mut p = Program::new();
        p.push_rule(Rule::fact(Term::var("X").isa("person")));
        let a = AnalysisInput::new().program(&p).rule_spans(&[(7, 3)]).run();
        let d: Vec<_> = a.diagnostics.iter().collect();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, DiagCode::UnsafeHeadVariable);
        assert_eq!(d[0].span, Some(Span::new(7, 3)));
    }

    #[test]
    fn unstratifiable_program_is_pl005() {
        let mut p = Program::new();
        p.push_rule(Rule::new(
            Term::var("X").filter(Filter::set("friends", vec![Term::var("Y")])),
            vec![Literal::pos(
                Term::var("X").filter(Filter::set_ref("friends", Term::var("Y").set("friends"))),
            )],
        ));
        let a = AnalysisInput::new().program(&p).run();
        assert!(a.strata.is_none());
        assert!(a.diagnostics.codes().contains(&DiagCode::NotStratifiable));
        assert!(!a.no_errors());
    }

    #[test]
    fn constraint_bodies_join_the_graph_and_anchor_liveness() {
        let mut p = Program::new();
        p.push_rule(Rule::new(
            Term::var("X").isa("adult"),
            vec![Literal::pos(
                Term::var("X").filter(Filter::scalar("age", Term::var("_A"))),
            )],
        ));
        let mut cs = ConstraintSet::new();
        cs.push(
            crate::constraints::Constraint::new(
                "no-adult",
                vec![Literal::pos(Term::var("X").isa("adult"))],
                crate::constraints::ConstraintPolicy::Reject,
            )
            .unwrap(),
        );
        let a = AnalysisInput::new().program(&p).constraints(&cs).run();
        // The constraint is a consumer: the rule is NOT dead...
        assert!(!a.diagnostics.codes().contains(&DiagCode::DeadRule));
        // ...but `age` is never defined anywhere: PL006.
        assert!(a.diagnostics.codes().contains(&DiagCode::AlwaysEmptyLiteral));
        assert_eq!(a.graph.len(), 2);
    }

    #[test]
    fn structure_facts_quiet_pl006_and_feed_selectivity() {
        let mut p = Program::new();
        p.push_rule(Rule::new(
            Term::var("X").isa("adult"),
            vec![Literal::pos(
                Term::var("X").filter(Filter::scalar("age", Term::var("_A"))),
            )],
        ));
        let mut s = Structure::new();
        let mary = s.atom("mary");
        let age = s.atom("age");
        let thirty = s.int(30);
        s.assert_scalar(age, mary, &[], thirty).unwrap();
        let a = AnalysisInput::new().program(&p).structure(&s).run();
        assert!(a.diagnostics.is_empty(), "{}", a.diagnostics);
        assert_eq!(a.plans[0].literals[0].selectivity, Selectivity::Singleton);
    }

    #[test]
    fn reactive_summaries_produce_cascade_reports() {
        use std::collections::BTreeSet;
        let key = |s: &str| {
            let mut set = BTreeSet::new();
            set.insert(crate::program::DepKey::Known(crate::names::Name::atom(s)));
            set
        };
        let ping = ReactiveRuleSummary {
            name: "ping".into(),
            kind: RuleKind::Production,
            trigger: key("a"),
            condition_reads: key("a"),
            writes: key("b"),
            retracts: BTreeSet::new(),
        };
        let pong = ReactiveRuleSummary {
            name: "pong".into(),
            kind: RuleKind::Production,
            trigger: key("b"),
            condition_reads: key("b"),
            writes: key("a"),
            retracts: BTreeSet::new(),
        };
        let a = AnalysisInput::new()
            .reactive_rule(ping)
            .reactive_rule(pong)
            .max_cascade_depth(32)
            .run();
        let cascade = a.cascade.unwrap();
        assert_eq!(cascade.bound, CascadeBound::Unbounded);
        assert!(a.diagnostics.codes().contains(&DiagCode::CascadeCycle));
        assert!(a.diagnostics.codes().contains(&DiagCode::CascadeBound));
    }
}
