//! Diagnostics: stable codes, severities, spans and rendering.
//!
//! Every problem the analyzer can report carries a stable `PL0xx` code
//! ([`DiagCode`]), a [`Severity`], an optional source [`Span`] (when the
//! program came through the parser) and a human-readable message.  Codes are
//! append-only: a code never changes meaning between releases, so tooling
//! (CI jobs, editors) can match on them.

use std::fmt;

/// A 1-based source position: where the statement that produced a
/// diagnostic starts.  The parser tracks statement-level spans
/// (`pathlog_parser::parse_program_spanned`); programs built through the
/// term API have none.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Span {
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column.
    pub column: usize,
}

impl Span {
    /// A span at `(line, column)`.
    pub fn new(line: usize, column: usize) -> Self {
        Span { line, column }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory only.
    Info,
    /// The program will run, but something is likely unintended.
    Warning,
    /// The program will be rejected (or fail) at evaluation time.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable diagnostic codes.  The numeric part is the public contract;
/// variant names are internal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DiagCode {
    /// `PL001` — a reference violates well-formedness (Definition 3).
    IllFormed,
    /// `PL002` — a rule head is a set-valued reference (Section 6 forbids
    /// set-valued heads: the described object is not uniquely determined).
    SetValuedHead,
    /// `PL003` — a head variable does not occur in a positive body literal
    /// (for facts: the fact is not ground).
    UnsafeHeadVariable,
    /// `PL004` — a variable of a negated literal does not occur in a
    /// positive literal (range restriction).
    UnsafeNegationVariable,
    /// `PL005` — the rule set cannot be stratified: a rule depends on its
    /// own definitions through a `->>` right-hand side or a negated use.
    NotStratifiable,
    /// `PL006` — a body literal reads a method or class that no fact, rule
    /// head or reactive action ever defines: the literal can never hold.
    AlwaysEmptyLiteral,
    /// `PL007` — a rule's definitions are read by no query, rule body,
    /// constraint or reactive condition: the rule cannot contribute to any
    /// answer.
    DeadRule,
    /// `PL008` — a variable occurs exactly once in a rule.  Often a typo;
    /// prefix intentional singletons with `_`.
    SingletonVariable,
    /// `PL009` — a scalar (`->`) method is assigned by more than one rule:
    /// firings may derive conflicting results for the same receiver, which
    /// the fact store rejects at runtime.
    ScalarConflict,
    /// `PL010` — reactive rules form a trigger cycle: each rule's actions
    /// can re-trigger the others, so a cascade may only terminate by
    /// hitting the runtime depth limit.
    CascadeCycle,
    /// `PL011` — the static cascade bound exceeds (or, for cycles, has no
    /// bound below) the configured `max_cascade_depth`: some cascades will
    /// be cut off at runtime.
    CascadeBound,
}

impl DiagCode {
    /// The stable `PL0xx` code string.
    pub fn code(self) -> &'static str {
        match self {
            DiagCode::IllFormed => "PL001",
            DiagCode::SetValuedHead => "PL002",
            DiagCode::UnsafeHeadVariable => "PL003",
            DiagCode::UnsafeNegationVariable => "PL004",
            DiagCode::NotStratifiable => "PL005",
            DiagCode::AlwaysEmptyLiteral => "PL006",
            DiagCode::DeadRule => "PL007",
            DiagCode::SingletonVariable => "PL008",
            DiagCode::ScalarConflict => "PL009",
            DiagCode::CascadeCycle => "PL010",
            DiagCode::CascadeBound => "PL011",
        }
    }

    /// The severity this code is reported at.
    pub fn severity(self) -> Severity {
        match self {
            DiagCode::IllFormed
            | DiagCode::SetValuedHead
            | DiagCode::UnsafeHeadVariable
            | DiagCode::UnsafeNegationVariable
            | DiagCode::NotStratifiable => Severity::Error,
            DiagCode::AlwaysEmptyLiteral
            | DiagCode::DeadRule
            | DiagCode::SingletonVariable
            | DiagCode::ScalarConflict
            | DiagCode::CascadeCycle
            | DiagCode::CascadeBound => Severity::Warning,
        }
    }

    /// All codes, in numeric order (used by tests and docs).
    pub fn all() -> &'static [DiagCode] {
        &[
            DiagCode::IllFormed,
            DiagCode::SetValuedHead,
            DiagCode::UnsafeHeadVariable,
            DiagCode::UnsafeNegationVariable,
            DiagCode::NotStratifiable,
            DiagCode::AlwaysEmptyLiteral,
            DiagCode::DeadRule,
            DiagCode::SingletonVariable,
            DiagCode::ScalarConflict,
            DiagCode::CascadeCycle,
            DiagCode::CascadeBound,
        ]
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// One reported problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable code.
    pub code: DiagCode,
    /// Severity (always `code.severity()` today; kept on the value so a
    /// future suppression layer can downgrade individual diagnostics).
    pub severity: Severity,
    /// Where the offending statement starts, when known.
    pub span: Option<Span>,
    /// The rule/query/constraint the diagnostic is about, as displayed
    /// source text.
    pub subject: String,
    /// What is wrong.
    pub message: String,
}

impl Diagnostic {
    /// A diagnostic for `code` at `span` about `subject`.
    pub fn new(code: DiagCode, span: Option<Span>, subject: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            span,
            subject: subject.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(span) = self.span {
            write!(f, "{span}: ")?;
        }
        write!(f, "{} {}: {}", self.code, self.severity, self.message)
    }
}

/// The ordered collection of diagnostics one analysis produced.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// An empty report.
    pub fn new() -> Self {
        Diagnostics::default()
    }

    /// Add a diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.items.push(d);
    }

    /// The diagnostics, in source order (after [`Diagnostics::sort`]).
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.items.iter()
    }

    /// Number of diagnostics.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when nothing was reported.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of `Error`-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.items.iter().filter(|d| d.severity == Severity::Error).count()
    }

    /// Number of `Warning`-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.items.iter().filter(|d| d.severity == Severity::Warning).count()
    }

    /// `true` when no diagnostic is an error.
    pub fn no_errors(&self) -> bool {
        self.error_count() == 0
    }

    /// `true` when nothing of `Warning` severity or above was reported —
    /// the bar the shipped example/test corpus is held to.
    pub fn is_clean(&self) -> bool {
        self.items.iter().all(|d| d.severity < Severity::Warning)
    }

    /// Sort by source position, then code, then subject (stable order for
    /// golden tests and rendered output).
    pub fn sort(&mut self) {
        self.items.sort_by(|a, b| {
            let ka = (a.span.map(|s| (s.line, s.column)), a.code, &a.subject, &a.message);
            let kb = (b.span.map(|s| (s.line, s.column)), b.code, &b.subject, &b.message);
            ka.cmp(&kb)
        });
    }

    /// All distinct codes reported.
    pub fn codes(&self) -> Vec<DiagCode> {
        let mut out: Vec<DiagCode> = self.items.iter().map(|d| d.code).collect();
        out.sort();
        out.dedup();
        out
    }

    /// Render as one line per diagnostic.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.items {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out
    }

    /// Render as a JSON array (hand-rolled; the workspace has no JSON
    /// dependency).  Each element carries `code`, `severity`, `line`,
    /// `column` (absent when the span is unknown), `subject` and `message`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, d) in self.items.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"code\":\"{}\",\"severity\":\"{}\"", d.code, d.severity));
            if let Some(span) = d.span {
                out.push_str(&format!(",\"line\":{},\"column\":{}", span.line, span.column));
            }
            out.push_str(&format!(
                ",\"subject\":\"{}\",\"message\":\"{}\"}}",
                json_escape(&d.subject),
                json_escape(&d.message)
            ));
        }
        out.push(']');
        out
    }
}

impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// Escape a string for embedding in a JSON literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let codes: Vec<&str> = DiagCode::all().iter().map(|c| c.code()).collect();
        assert_eq!(codes.len(), 11);
        let mut dedup = codes.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), codes.len(), "codes must be unique");
        assert!(codes.iter().all(|c| c.starts_with("PL0")));
    }

    #[test]
    fn severity_ordering_supports_is_clean() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        let mut d = Diagnostics::new();
        assert!(d.is_clean());
        d.push(Diagnostic::new(DiagCode::DeadRule, None, "r", "dead"));
        assert!(!d.is_clean());
        assert!(d.no_errors());
        d.push(Diagnostic::new(DiagCode::IllFormed, Some(Span::new(3, 1)), "r", "bad"));
        assert!(!d.no_errors());
        assert_eq!(d.error_count(), 1);
        assert_eq!(d.warning_count(), 1);
    }

    #[test]
    fn sort_orders_by_span_then_code() {
        let mut d = Diagnostics::new();
        d.push(Diagnostic::new(DiagCode::DeadRule, Some(Span::new(5, 1)), "b", "m"));
        d.push(Diagnostic::new(DiagCode::IllFormed, Some(Span::new(2, 1)), "a", "m"));
        d.sort();
        assert_eq!(d.iter().next().unwrap().code, DiagCode::IllFormed);
    }

    #[test]
    fn json_escapes_special_characters() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let mut d = Diagnostics::new();
        d.push(Diagnostic::new(DiagCode::IllFormed, Some(Span::new(1, 2)), "x\"y", "m"));
        let json = d.to_json();
        assert!(json.contains("\"code\":\"PL001\""));
        assert!(json.contains("\"line\":1"));
        assert!(json.contains("x\\\"y"));
    }

    #[test]
    fn display_includes_span_code_and_severity() {
        let d = Diagnostic::new(DiagCode::AlwaysEmptyLiteral, Some(Span::new(4, 7)), "r", "never holds");
        assert_eq!(d.to_string(), "4:7: PL006 warning: never holds");
    }
}
