//! Liveness lints over the dependency graph (PL006, PL007, PL009).
//!
//! * PL006 (*always-empty literal*): a body reads a method or class key that
//!   no fact, rule head, reactive action or stored fact ever defines — the
//!   literal can never hold, so the rule can never fire.
//! * PL007 (*dead rule*): a rule's definitions are transitively read by no
//!   query, constraint or reactive condition.  Only reported when the
//!   analyzed input actually has consumers; a bare rule library is not dead,
//!   merely unused so far.
//! * PL009 (*scalar conflict*): a scalar (`->`) method is assigned by more
//!   than one proper rule.  Different firings may then derive different
//!   results for the same receiver — which the fact store rejects at
//!   runtime — so the overlap deserves a static warning.

use std::collections::{BTreeMap, BTreeSet};

use crate::builtins::ALL_BUILTINS;
use crate::names::Name;
use crate::program::{DepKey, Rule};
use crate::term::{FilterValue, Term};

use super::cost::MethodStats;
use super::diagnostics::{DiagCode, Diagnostic, Diagnostics, Span};
use super::graph::{keys_intersect, DependencyGraph, RuleKind};

/// PL006: report reads of keys nothing defines.
pub(super) fn check_always_empty(graph: &DependencyGraph, stats: Option<&MethodStats>, diags: &mut Diagnostics) {
    let mut defined: BTreeSet<DepKey> = BTreeSet::new();
    for node in graph.nodes() {
        defined.extend(node.defines.iter().cloned());
    }
    // A wildcard definer (generic rules such as `X[(M.tc) ->> {Y}]`) can
    // define any key — no read is provably empty.
    if defined.contains(&DepKey::Unknown) {
        return;
    }
    for b in ALL_BUILTINS {
        defined.insert(DepKey::Known(Name::atom(*b)));
    }
    if let Some(stats) = stats {
        for n in stats.names() {
            defined.insert(DepKey::Known(n.clone()));
        }
    }
    for node in graph.nodes() {
        for key in node.uses.iter().chain(node.strict_uses.iter()) {
            let DepKey::Known(name) = key else { continue };
            if !defined.contains(key) {
                diags.push(Diagnostic::new(
                    DiagCode::AlwaysEmptyLiteral,
                    node.span,
                    node.label.clone(),
                    format!("`{name}` is never asserted, derived or stored: a literal over it can never hold"),
                ));
            }
        }
    }
}

/// PL007: report rules no consumer transitively reads.
pub(super) fn check_dead_rules(graph: &DependencyGraph, diags: &mut Diagnostics) {
    // Without consumers there is nothing to be reachable *from*: analyzing a
    // rule library on its own should not flag every rule as dead.
    if !graph.nodes().iter().any(|n| n.kind.is_consumer()) {
        return;
    }
    let n = graph.len();
    let mut live = vec![false; n];
    for (i, node) in graph.nodes().iter().enumerate() {
        if node.kind.is_consumer() {
            live[i] = true;
        }
    }
    // Backward reachability: a node is live when some live node reads what
    // it defines.  The graph is small (statements, not facts); the quadratic
    // fixpoint mirrors the stratifier's and keeps the code obvious.
    loop {
        let mut changed = false;
        for (i, node) in graph.nodes().iter().enumerate() {
            if live[i] {
                continue;
            }
            let read_by_live = graph.nodes().iter().enumerate().any(|(j, reader)| {
                live[j]
                    && (keys_intersect(&node.defines, &reader.uses)
                        || keys_intersect(&node.defines, &reader.strict_uses))
            });
            if read_by_live {
                live[i] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for (i, node) in graph.nodes().iter().enumerate() {
        // Facts are data, not derivation steps; only proper rules are
        // reported as dead.
        if node.kind == RuleKind::Rule && !live[i] {
            diags.push(Diagnostic::new(
                DiagCode::DeadRule,
                node.span,
                node.label.clone(),
                format!(
                    "no query, rule, constraint or reactive condition reads what `{}` defines",
                    node.label
                ),
            ));
        }
    }
}

/// PL009: report scalar methods assigned by more than one proper rule.
///
/// `rules` pairs each proper rule with its graph span/label; facts are the
/// caller's responsibility to exclude (a fact fixes one receiver, so two
/// facts only collide if identical receivers disagree — a runtime error the
/// store already reports eagerly).
pub(super) fn check_scalar_conflicts(rules: &[(&Rule, Option<Span>)], diags: &mut Diagnostics) {
    let mut assigners: BTreeMap<Name, Vec<usize>> = BTreeMap::new();
    for (i, (rule, _)) in rules.iter().enumerate() {
        for m in scalar_head_methods(&rule.head) {
            assigners.entry(m).or_default().push(i);
        }
    }
    for (method, idxs) in assigners {
        if idxs.len() < 2 {
            continue;
        }
        // Anchor the warning on the *second* assigning rule: the first one
        // established the method, the second introduced the overlap.
        let (rule, span) = rules[idxs[1]];
        diags.push(Diagnostic::new(
            DiagCode::ScalarConflict,
            span,
            rule.to_string(),
            format!(
                "scalar method `{method}` is assigned by {} rules; firings may derive conflicting \
                 results for the same receiver, which the fact store rejects at runtime",
                idxs.len()
            ),
        ));
    }
}

/// The named methods a head assigns *scalar* results to: `-> value` filters
/// and scalar path steps.  Set-valued (`->>`) assignments accumulate members
/// and cannot conflict.
fn scalar_head_methods(head: &Term) -> BTreeSet<Name> {
    let mut out = BTreeSet::new();
    collect_scalar_methods(head, &mut out);
    out
}

fn collect_scalar_methods(term: &Term, out: &mut BTreeSet<Name>) {
    match term {
        Term::Name(_) | Term::Var(_) => {}
        Term::Paren(t) => collect_scalar_methods(t, out),
        Term::Path(p) => {
            if !p.set_valued {
                if let Term::Name(n) = &p.method {
                    out.insert(n.clone());
                }
            }
            collect_scalar_methods(&p.receiver, out);
        }
        Term::IsA(i) => collect_scalar_methods(&i.receiver, out),
        Term::Molecule(m) => {
            collect_scalar_methods(&m.receiver, out);
            for f in &m.filters {
                if let FilterValue::Scalar(_) = &f.value {
                    if let Term::Name(n) = &f.method {
                        out.insert(n.clone());
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Literal;
    use crate::term::Filter;

    use super::super::graph::RuleNode;
    use crate::program::rule_info;

    fn graph_of(statements: &[(RuleKind, &Rule)]) -> DependencyGraph {
        let mut g = DependencyGraph::new();
        for (kind, rule) in statements {
            g.push(RuleNode::from_info(*kind, rule.to_string(), None, rule_info(rule)));
        }
        g
    }

    #[test]
    fn unwritten_method_is_always_empty() {
        let rule = Rule::new(
            Term::var("X").isa("flagged"),
            vec![Literal::pos(
                Term::var("X").filter(Filter::scalar("salary", Term::var("_S"))),
            )],
        );
        let g = graph_of(&[(RuleKind::Rule, &rule)]);
        let mut d = Diagnostics::new();
        check_always_empty(&g, None, &mut d);
        assert_eq!(d.codes(), vec![DiagCode::AlwaysEmptyLiteral]);
        assert!(d.iter().any(|x| x.message.contains("salary")));
    }

    #[test]
    fn defined_and_stored_keys_are_not_empty() {
        let fact = Rule::fact(Term::name("mary").filter(Filter::scalar("salary", Term::int(9))));
        let rule = Rule::new(
            Term::var("X").isa("flagged"),
            vec![Literal::pos(
                Term::var("X").filter(Filter::scalar("salary", Term::var("_S"))),
            )],
        );
        let g = graph_of(&[(RuleKind::Fact, &fact), (RuleKind::Rule, &rule)]);
        let mut d = Diagnostics::new();
        check_always_empty(&g, None, &mut d);
        // `flagged` is only *defined* here (head of the rule) — defining an
        // unread key is PL007's business, not PL006's.
        assert!(d.is_empty(), "{d}");
    }

    #[test]
    fn wildcard_definer_suppresses_pl006() {
        let generic = Rule::new(
            Term::var("X").filter(Filter::set(Term::var("M").scalar("tc").paren(), vec![Term::var("Y")])),
            vec![Literal::pos(
                Term::var("X").filter(Filter::set(Term::var("M"), vec![Term::var("Y")])),
            )],
        );
        let reader = Rule::new(
            Term::var("X").isa("flagged"),
            vec![Literal::pos(
                Term::var("X").filter(Filter::scalar("whatever", Term::var("X"))),
            )],
        );
        let g = graph_of(&[(RuleKind::Rule, &generic), (RuleKind::Rule, &reader)]);
        let mut d = Diagnostics::new();
        check_always_empty(&g, None, &mut d);
        assert!(d.is_empty());
    }

    #[test]
    fn unread_rule_is_dead_only_with_consumers() {
        let used = Rule::new(
            Term::var("X").isa("tall"),
            vec![Literal::pos(Term::var("X").isa("person"))],
        );
        let unused = Rule::new(
            Term::var("X").isa("ghost"),
            vec![Literal::pos(Term::var("X").isa("person"))],
        );
        let query = Rule::new(
            Term::name("__query").empty_filters(),
            vec![Literal::pos(Term::var("X").isa("tall"))],
        );

        // Without consumers: nothing reported.
        let g = graph_of(&[(RuleKind::Rule, &used), (RuleKind::Rule, &unused)]);
        let mut d = Diagnostics::new();
        check_dead_rules(&g, &mut d);
        assert!(d.is_empty());

        // With a query reading `tall`: only `ghost` is dead.
        let g = graph_of(&[
            (RuleKind::Rule, &used),
            (RuleKind::Rule, &unused),
            (RuleKind::Query, &query),
        ]);
        let mut d = Diagnostics::new();
        check_dead_rules(&g, &mut d);
        assert_eq!(d.codes(), vec![DiagCode::DeadRule]);
        assert!(d.iter().all(|x| x.subject.contains("ghost")));
    }

    #[test]
    fn transitive_reachability_keeps_chains_alive() {
        let base = Rule::new(
            Term::var("X").isa("adult"),
            vec![Literal::pos(Term::var("X").isa("person"))],
        );
        let derived = Rule::new(
            Term::var("X").isa("voter"),
            vec![Literal::pos(Term::var("X").isa("adult"))],
        );
        let query = Rule::new(
            Term::name("__query").empty_filters(),
            vec![Literal::pos(Term::var("X").isa("voter"))],
        );
        let g = graph_of(&[
            (RuleKind::Rule, &base),
            (RuleKind::Rule, &derived),
            (RuleKind::Query, &query),
        ]);
        let mut d = Diagnostics::new();
        check_dead_rules(&g, &mut d);
        assert!(d.is_empty(), "{d}");
    }

    #[test]
    fn two_rules_assigning_one_scalar_method_conflict() {
        let r1 = Rule::new(
            Term::var("X").filter(Filter::scalar("status", Term::name("good"))),
            vec![Literal::pos(Term::var("X").isa("person"))],
        );
        let r2 = Rule::new(
            Term::var("X").filter(Filter::scalar("status", Term::name("bad"))),
            vec![Literal::pos(Term::var("X").isa("robot"))],
        );
        let mut d = Diagnostics::new();
        check_scalar_conflicts(&[(&r1, None), (&r2, None)], &mut d);
        assert_eq!(d.codes(), vec![DiagCode::ScalarConflict]);
        assert!(d.iter().any(|x| x.message.contains("status")));

        // Set-valued assignments accumulate; no conflict.
        let s1 = Rule::new(
            Term::var("X").filter(Filter::set("tags", vec![Term::name("a")])),
            vec![Literal::pos(Term::var("X").isa("person"))],
        );
        let s2 = Rule::new(
            Term::var("X").filter(Filter::set("tags", vec![Term::name("b")])),
            vec![Literal::pos(Term::var("X").isa("robot"))],
        );
        let mut d = Diagnostics::new();
        check_scalar_conflicts(&[(&s1, None), (&s2, None)], &mut d);
        assert!(d.is_empty());
    }
}
