//! Static cost annotations: per-literal access paths and selectivity classes.
//!
//! When a [`Structure`] snapshot is supplied, the analyzer annotates every
//! body literal with how the engine can evaluate it (index-backed through the
//! `(method, receiver)` group indexes, a scan, or a built-in comparison) and
//! a coarse selectivity class derived from the fact store's per-method
//! counts.  This is the analysis front end of the ROADMAP's cost-based join
//! planning item: a planner only needs to order literals by these classes.

use std::collections::{BTreeMap, BTreeSet};

use crate::builtins::{is_comparison, SELF_METHOD};
use crate::names::Name;
use crate::program::{literal_reads, DepKey, Literal};
use crate::structure::Structure;
use crate::term::Term;

use super::diagnostics::Span;
use super::graph::RuleKind;

/// Per-method/class fact counts captured from a [`Structure`] snapshot.
///
/// Counts cover scalar facts, set members and class-extent sizes, keyed by
/// the method/class *name* (anonymous virtual methods cannot be named by a
/// program and are skipped).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MethodStats {
    counts: BTreeMap<Name, usize>,
}

impl MethodStats {
    /// Capture per-method counts from a structure.
    pub fn capture(structure: &Structure) -> Self {
        let mut counts: BTreeMap<Name, usize> = BTreeMap::new();
        let facts = structure.facts();
        for f in facts.scalar_facts() {
            if let Some(n) = structure.name_of(f.method) {
                *counts.entry(n.clone()).or_insert(0) += 1;
            }
        }
        for f in facts.set_facts() {
            if let Some(n) = structure.name_of(f.method) {
                *counts.entry(n.clone()).or_insert(0) += f.members.len();
            }
        }
        for (_, class) in structure.isa().direct_edges() {
            if let Some(n) = structure.name_of(class) {
                let size = structure.isa().extent_size(class);
                let e = counts.entry(n.clone()).or_insert(0);
                if *e < size {
                    *e = size;
                }
            }
        }
        MethodStats { counts }
    }

    /// Number of stored facts for `name`, if any are known.
    pub fn count(&self, name: &Name) -> Option<usize> {
        self.counts.get(name).copied()
    }

    /// The names with at least one stored fact.
    pub fn names(&self) -> impl Iterator<Item = &Name> {
        self.counts.keys()
    }

    /// `true` when no facts were captured at all.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }
}

/// How the engine can evaluate a literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessPath {
    /// The anchor of the literal is a known name: evaluation starts from the
    /// `(method, receiver)` group indexes.
    IndexBacked,
    /// The anchor is a variable: evaluation enumerates candidate objects
    /// (per-method scan).
    Scan,
    /// The literal only applies built-in comparisons to already-bound
    /// values; it never touches the fact store.
    Builtin,
}

/// Coarse selectivity class of a literal, from stored fact counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Selectivity {
    /// No stored facts match any read key (the literal can only be satisfied
    /// by derived facts).
    Empty,
    /// Exactly one stored fact.
    Singleton,
    /// At most 32 stored facts.
    Small,
    /// More than 32 stored facts.
    Large,
    /// No structure supplied, or the literal reads no known key.
    Unknown,
}

impl Selectivity {
    /// Classify a fact count.
    pub fn from_count(n: usize) -> Self {
        match n {
            0 => Selectivity::Empty,
            1 => Selectivity::Singleton,
            2..=32 => Selectivity::Small,
            _ => Selectivity::Large,
        }
    }
}

/// The static plan annotation of one body literal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiteralPlan {
    /// The literal as displayed source text.
    pub literal: String,
    /// `false` for negated literals.
    pub positive: bool,
    /// Every method/class key the literal reads.
    pub reads: BTreeSet<DepKey>,
    /// How the engine evaluates it.
    pub access: AccessPath,
    /// Selectivity class (see [`Selectivity`]).
    pub selectivity: Selectivity,
    /// The bounding fact count the class was derived from, when known:
    /// the *minimum* count over the literal's known read keys (a join can
    /// never produce more bindings than its most selective index allows).
    pub estimated_facts: Option<usize>,
}

/// The per-rule plan report: one [`LiteralPlan`] per body literal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RulePlanReport {
    /// The rule as displayed source text.
    pub label: String,
    /// What kind of statement the rule is.
    pub kind: RuleKind,
    /// Where the rule starts, when parsed from source.
    pub span: Option<Span>,
    /// Plans for the body literals, in body order.
    pub literals: Vec<LiteralPlan>,
}

/// Annotate one body with per-literal plans.  `derived` is the set of
/// dependency keys some rule writes: a key with no stored facts that
/// appears there is *to-be-derived*, not empty, and contributes no
/// selectivity bound.
pub(super) fn plan_body(
    label: &str,
    kind: RuleKind,
    span: Option<Span>,
    body: &[Literal],
    stats: Option<&MethodStats>,
    derived: Option<&BTreeSet<DepKey>>,
) -> RulePlanReport {
    let literals = body
        .iter()
        .map(|lit| {
            let reads = literal_reads(&lit.term);
            let access = classify_access(&lit.term, &reads);
            let (selectivity, estimated_facts) = match (access, stats) {
                (AccessPath::Builtin, _) => (Selectivity::Unknown, None),
                (_, Some(stats)) => estimate(&reads, stats, derived),
                (_, None) => (Selectivity::Unknown, None),
            };
            LiteralPlan {
                literal: lit.to_string(),
                positive: lit.positive,
                reads,
                access,
                selectivity,
                estimated_facts,
            }
        })
        .collect();
    RulePlanReport {
        label: label.to_string(),
        kind,
        span,
        literals,
    }
}

/// Classify how a literal is evaluated: built-in-only, index-backed from a
/// named anchor, or a scan.
fn classify_access(term: &Term, reads: &BTreeSet<DepKey>) -> AccessPath {
    let known: Vec<&Name> = reads
        .iter()
        .filter_map(|k| match k {
            DepKey::Known(n) => Some(n),
            DepKey::Unknown => None,
        })
        .collect();
    let all_builtin = !known.is_empty()
        && reads.len() == known.len()
        && known.iter().all(|n| match n.as_atom() {
            Some(s) => is_comparison(s) || s == SELF_METHOD,
            None => false,
        });
    if all_builtin {
        return AccessPath::Builtin;
    }
    match resolve_anchor(term.anchor()) {
        Term::Name(_) => AccessPath::IndexBacked,
        _ => AccessPath::Scan,
    }
}

/// Look through parentheses to the real anchor.
fn resolve_anchor(anchor: &Term) -> &Term {
    match anchor {
        Term::Paren(t) => resolve_anchor(t.anchor()),
        other => other,
    }
}

/// Selectivity of a literal: the minimum stored-fact count over its known,
/// non-builtin read keys.  Builtin keys are excluded (they filter, they are
/// not stored); an `Unknown` key alone yields `Unknown`.  A key with no
/// stored facts that some rule *writes* (it appears in `derived`, or a
/// writer defines the catch-all `DepKey::Unknown`) is to-be-derived: its
/// count is unknowable statically, so it contributes no bound — without
/// this, a recursive literal would be misclassified `Empty` and a planner
/// would order it as if it pruned everything.
fn estimate(
    reads: &BTreeSet<DepKey>,
    stats: &MethodStats,
    derived: Option<&BTreeSet<DepKey>>,
) -> (Selectivity, Option<usize>) {
    let is_derived = |key: &DepKey| derived.is_some_and(|d| d.contains(key) || d.contains(&DepKey::Unknown));
    let mut best: Option<usize> = None;
    for key in reads {
        let DepKey::Known(n) = key else { continue };
        if let Some(s) = n.as_atom() {
            if is_comparison(s) || s == SELF_METHOD {
                continue;
            }
        }
        let count = match stats.count(n) {
            Some(c) => c,
            None if is_derived(key) => continue,
            None => 0,
        };
        best = Some(best.map_or(count, |b| b.min(count)));
    }
    match best {
        Some(n) => (Selectivity::from_count(n), Some(n)),
        None => (Selectivity::Unknown, None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Literal;
    use crate::term::Filter;

    fn small_structure() -> Structure {
        let mut s = Structure::new();
        let mary = s.ensure_name(&Name::atom("mary"));
        let peter = s.ensure_name(&Name::atom("peter"));
        let age = s.ensure_name(&Name::atom("age"));
        let kids = s.ensure_name(&Name::atom("kids"));
        let person = s.ensure_name(&Name::atom("person"));
        let thirty = s.ensure_name(&Name::int(30));
        s.assert_scalar(age, mary, &[], thirty).unwrap();
        s.assert_set_member(kids, peter, &[], mary);
        s.add_isa(mary, person);
        s.add_isa(peter, person);
        s
    }

    #[test]
    fn stats_capture_counts_per_method() {
        let s = small_structure();
        let stats = MethodStats::capture(&s);
        assert_eq!(stats.count(&Name::atom("age")), Some(1));
        assert_eq!(stats.count(&Name::atom("kids")), Some(1));
        assert_eq!(stats.count(&Name::atom("person")), Some(2));
        assert_eq!(stats.count(&Name::atom("salary")), None);
    }

    #[test]
    fn named_anchor_is_index_backed_variable_anchor_scans() {
        let s = small_structure();
        let stats = MethodStats::capture(&s);
        let body = vec![
            Literal::pos(Term::name("mary").filter(Filter::scalar("age", Term::var("A")))),
            Literal::pos(Term::var("X").isa("person")),
            Literal::pos(Term::var("A").filter(Filter::scalar(Term::name(crate::builtins::LT), Term::var("A")))),
        ];
        let plan = plan_body("r", RuleKind::Rule, None, &body, Some(&stats), None);
        assert_eq!(plan.literals[0].access, AccessPath::IndexBacked);
        assert_eq!(plan.literals[0].selectivity, Selectivity::Singleton);
        assert_eq!(plan.literals[1].access, AccessPath::Scan);
        assert_eq!(plan.literals[1].estimated_facts, Some(2));
        assert_eq!(plan.literals[2].access, AccessPath::Builtin);
        assert_eq!(plan.literals[2].selectivity, Selectivity::Unknown);
    }

    #[test]
    fn no_structure_means_unknown_selectivity() {
        let body = vec![Literal::pos(Term::var("X").isa("person"))];
        let plan = plan_body("r", RuleKind::Rule, None, &body, None, None);
        assert_eq!(plan.literals[0].selectivity, Selectivity::Unknown);
        assert_eq!(plan.literals[0].estimated_facts, None);
    }

    #[test]
    fn unread_method_is_empty_selectivity() {
        let s = small_structure();
        let stats = MethodStats::capture(&s);
        let body = vec![Literal::pos(
            Term::var("X").filter(Filter::scalar("salary", Term::var("Y"))),
        )];
        let plan = plan_body("r", RuleKind::Rule, None, &body, Some(&stats), None);
        assert_eq!(plan.literals[0].selectivity, Selectivity::Empty);
        assert_eq!(plan.literals[0].estimated_facts, Some(0));
    }

    #[test]
    fn derived_method_without_facts_is_unknown_not_empty() {
        // `salary` has no stored facts, but a rule writes it: the planner
        // must not treat the literal as pruning everything.
        let s = small_structure();
        let stats = MethodStats::capture(&s);
        let body = vec![Literal::pos(
            Term::var("X").filter(Filter::scalar("salary", Term::var("Y"))),
        )];
        let mut derived = BTreeSet::new();
        derived.insert(DepKey::Known(Name::atom("salary")));
        let plan = plan_body("r", RuleKind::Rule, None, &body, Some(&stats), Some(&derived));
        assert_eq!(plan.literals[0].selectivity, Selectivity::Unknown);
        assert_eq!(plan.literals[0].estimated_facts, None);
        // A writer of the catch-all key makes every factless key derived.
        let mut catch_all = BTreeSet::new();
        catch_all.insert(DepKey::Unknown);
        let plan = plan_body("r", RuleKind::Rule, None, &body, Some(&stats), Some(&catch_all));
        assert_eq!(plan.literals[0].selectivity, Selectivity::Unknown);
    }

    #[test]
    fn selectivity_classes() {
        assert_eq!(Selectivity::from_count(0), Selectivity::Empty);
        assert_eq!(Selectivity::from_count(1), Selectivity::Singleton);
        assert_eq!(Selectivity::from_count(32), Selectivity::Small);
        assert_eq!(Selectivity::from_count(33), Selectivity::Large);
    }
}
