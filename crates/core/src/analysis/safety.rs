//! Safety and range-restriction checks (PL001–PL004, PL008).
//!
//! These generalise the per-rule rejections of
//! [`validate_rule`](crate::program::validate_rule) — well-formedness,
//! set-valued heads, unsafe head variables, variables only under negation —
//! into *diagnostics*: instead of stopping at the first problem, the analyzer
//! reports every one, with spans, and the same checks run over query and
//! constraint bodies too.  Everything [`validate_rule`] rejects produces an
//! `Error`-severity diagnostic here (the property the analyzer's proptest
//! pins down), so `Engine::install_checked` can rely on "no errors" implying
//! the engine will accept the program.

use std::collections::BTreeSet;

use crate::names::Var;
use crate::program::{Literal, Rule};
use crate::scalarity::is_set_valued;
use crate::term::{FilterValue, Term};
use crate::wellformed::check_well_formed;

use super::diagnostics::{DiagCode, Diagnostic, Diagnostics, Span};

/// Run the safety checks of [`crate::program::validate_rule`] over one rule,
/// reporting every violation instead of stopping at the first.
pub(super) fn check_rule(rule: &Rule, span: Option<Span>, diags: &mut Diagnostics) {
    let label = rule.to_string();

    // PL001 — well-formedness (Definition 3) of head and body references.
    if let Err(e) = check_well_formed(&rule.head) {
        diags.push(Diagnostic::new(
            DiagCode::IllFormed,
            span,
            label.clone(),
            format!("head of `{label}` is ill-formed: {e}"),
        ));
    }
    for lit in &rule.body {
        if let Err(e) = check_well_formed(&lit.term) {
            diags.push(Diagnostic::new(
                DiagCode::IllFormed,
                span,
                label.clone(),
                format!("body literal `{}` is ill-formed: {e}", lit.term),
            ));
        }
    }

    // PL002 — set-valued head (Section 6: the object a set-valued reference
    // describes is not uniquely determined, so it cannot be asserted).
    if is_set_valued(&rule.head) {
        diags.push(Diagnostic::new(
            DiagCode::SetValuedHead,
            span,
            label.clone(),
            format!("the head of `{label}` is a set-valued reference and cannot be asserted"),
        ));
    }

    // PL003 — head variables must occur in a positive body literal; for
    // facts this is exactly groundness.
    let positive: BTreeSet<_> = rule.positive_body_variables().into_iter().collect();
    for v in rule.head_variables() {
        if !positive.contains(&v) {
            let message = if rule.is_fact() {
                format!("fact `{label}` is not ground: variable {v} has no binding")
            } else {
                format!("head variable {v} of `{label}` does not occur in a positive body literal")
            };
            diags.push(Diagnostic::new(
                DiagCode::UnsafeHeadVariable,
                span,
                label.clone(),
                message,
            ));
        }
    }

    // PL004 — range restriction for negated literals.
    check_negation(&label, &rule.body, span, diags);

    // PL008 — singleton variables (proper rules only: facts with variables
    // are already PL003, and in queries a single occurrence is the normal
    // way to project an answer).  The `_` prefix marks intentional
    // singletons, mirroring the usual logic-programming convention.
    if !rule.is_fact() {
        let mut occurrences: Vec<Var> = Vec::new();
        var_occurrences(&rule.head, &mut occurrences);
        for lit in &rule.body {
            var_occurrences(&lit.term, &mut occurrences);
        }
        let mut seen: Vec<&Var> = Vec::new();
        for v in &occurrences {
            if seen.contains(&v) {
                continue;
            }
            seen.push(v);
            let count = occurrences.iter().filter(|o| *o == v).count();
            if count == 1 && !v.name().starts_with('_') {
                diags.push(Diagnostic::new(
                    DiagCode::SingletonVariable,
                    span,
                    label.clone(),
                    format!("variable {v} occurs only once in `{label}`; prefix it with `_` if this is intentional"),
                ));
            }
        }
    }
}

/// Range-restriction check (PL004) for a stand-alone body — queries,
/// constraint denial bodies, reactive conditions.  Also reports PL001 for
/// ill-formed references in the body.
pub(super) fn check_body(label: &str, body: &[Literal], span: Option<Span>, diags: &mut Diagnostics) {
    for lit in body {
        if let Err(e) = check_well_formed(&lit.term) {
            diags.push(Diagnostic::new(
                DiagCode::IllFormed,
                span,
                label.to_string(),
                format!("literal `{}` is ill-formed: {e}", lit.term),
            ));
        }
    }
    check_negation(label, body, span, diags);
}

/// PL004 for one body: every variable of a negated literal must occur in a
/// positive literal of the same body.
fn check_negation(label: &str, body: &[Literal], span: Option<Span>, diags: &mut Diagnostics) {
    let positive: BTreeSet<Var> = body
        .iter()
        .filter(|l| l.positive)
        .flat_map(|l| l.term.variables())
        .collect();
    for lit in body.iter().filter(|l| !l.positive) {
        for v in lit.term.variables() {
            if !positive.contains(&v) {
                diags.push(Diagnostic::new(
                    DiagCode::UnsafeNegationVariable,
                    span,
                    label.to_string(),
                    format!(
                        "variable {v} of negated literal `{}` does not occur in a positive literal",
                        lit.term
                    ),
                ));
            }
        }
    }
}

/// Collect every variable *occurrence* (not deduplicated —
/// [`Term::variables`] dedups, which would hide repeats from the singleton
/// count).
fn var_occurrences(term: &Term, out: &mut Vec<Var>) {
    match term {
        Term::Name(_) => {}
        Term::Var(v) => out.push(v.clone()),
        Term::Paren(t) => var_occurrences(t, out),
        Term::Path(p) => {
            var_occurrences(&p.receiver, out);
            var_occurrences(&p.method, out);
            for a in &p.args {
                var_occurrences(a, out);
            }
        }
        Term::Molecule(m) => {
            var_occurrences(&m.receiver, out);
            for f in &m.filters {
                var_occurrences(&f.method, out);
                for a in &f.args {
                    var_occurrences(a, out);
                }
                match &f.value {
                    FilterValue::Scalar(t) | FilterValue::SetRef(t) => var_occurrences(t, out),
                    FilterValue::SetExplicit(ts) | FilterValue::SigScalar(ts) | FilterValue::SigSet(ts) => {
                        for t in ts {
                            var_occurrences(t, out);
                        }
                    }
                }
            }
        }
        Term::IsA(i) => {
            var_occurrences(&i.receiver, out);
            var_occurrences(&i.class, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Filter;

    fn diags_for(rule: &Rule) -> Diagnostics {
        let mut d = Diagnostics::new();
        check_rule(rule, Some(Span::new(1, 1)), &mut d);
        d
    }

    #[test]
    fn clean_rule_has_no_diagnostics() {
        let rule = Rule::new(
            Term::var("X").filter(Filter::scalar("power", Term::var("Y"))),
            vec![Literal::pos(
                Term::var("X")
                    .isa("automobile")
                    .scalar("engine")
                    .filter(Filter::scalar("power", Term::var("Y"))),
            )],
        );
        assert!(diags_for(&rule).is_empty());
    }

    #[test]
    fn set_valued_head_is_pl002() {
        let rule = Rule::new(
            Term::var("X").set("kids").filter(Filter::scalar("age", Term::int(5))),
            vec![Literal::pos(Term::var("X").isa("person"))],
        );
        let d = diags_for(&rule);
        assert_eq!(d.codes(), vec![DiagCode::SetValuedHead]);
    }

    #[test]
    fn unsafe_head_variable_is_pl003() {
        let rule = Rule::new(
            Term::var("X").filter(Filter::scalar("likes", Term::var("Y"))),
            vec![Literal::pos(Term::var("X").isa("person"))],
        );
        let d = diags_for(&rule);
        assert!(d.codes().contains(&DiagCode::UnsafeHeadVariable));
    }

    #[test]
    fn non_ground_fact_is_pl003_with_fact_wording() {
        let d = diags_for(&Rule::fact(Term::var("X").isa("person")));
        assert!(d.codes().contains(&DiagCode::UnsafeHeadVariable));
        assert!(d.iter().any(|x| x.message.contains("not ground")));
    }

    #[test]
    fn unsafe_negation_is_pl004_in_rules_and_bodies() {
        let rule = Rule::new(
            Term::var("X").isa("lonely"),
            vec![
                Literal::pos(Term::var("X").isa("person")),
                Literal::neg(Term::var("Y").isa("friendOf")),
            ],
        );
        let d = diags_for(&rule);
        assert!(d.codes().contains(&DiagCode::UnsafeNegationVariable));

        let mut d = Diagnostics::new();
        check_body(
            "?- not X : person.",
            &[Literal::neg(Term::var("X").isa("person"))],
            None,
            &mut d,
        );
        assert_eq!(d.codes(), vec![DiagCode::UnsafeNegationVariable]);
    }

    #[test]
    fn ill_formed_head_is_pl001() {
        let rule = Rule::fact(Term::name("p2").filter(Filter::scalar("boss", Term::name("p1").set("assistants"))));
        let d = diags_for(&rule);
        assert!(d.codes().contains(&DiagCode::IllFormed));
    }

    #[test]
    fn singleton_variable_is_pl008_unless_underscored() {
        let rule = Rule::new(
            Term::var("X").isa("flagged"),
            vec![Literal::pos(
                Term::var("X").filter(Filter::scalar("age", Term::var("Age"))),
            )],
        );
        let d = diags_for(&rule);
        assert_eq!(d.codes(), vec![DiagCode::SingletonVariable]);
        assert!(d.iter().any(|x| x.message.contains("Age")));

        let rule = Rule::new(
            Term::var("X").isa("flagged"),
            vec![Literal::pos(
                Term::var("X").filter(Filter::scalar("age", Term::var("_Age"))),
            )],
        );
        assert!(diags_for(&rule).is_empty());
    }

    #[test]
    fn every_validate_rejection_is_an_error_diagnostic() {
        // The guarantee install_checked relies on: if validate_rule rejects,
        // the analyzer reports at least one Error-severity diagnostic.
        let bad: Vec<Rule> = vec![
            Rule::fact(Term::var("X").isa("person")),
            Rule::new(
                Term::var("X").set("kids").empty_filters(),
                vec![Literal::pos(Term::var("X").isa("person"))],
            ),
            Rule::new(
                Term::var("X").filter(Filter::scalar("likes", Term::var("Y"))),
                vec![Literal::pos(Term::var("X").isa("person"))],
            ),
            Rule::new(
                Term::var("X").isa("lonely"),
                vec![
                    Literal::pos(Term::var("X").isa("person")),
                    Literal::neg(Term::var("Y").isa("friendOf")),
                ],
            ),
        ];
        for rule in &bad {
            assert!(
                crate::program::validate_rule(rule).is_err(),
                "expected rejection: {rule}"
            );
            let d = diags_for(rule);
            assert!(!d.no_errors(), "analyzer missed: {rule}");
        }
    }
}
