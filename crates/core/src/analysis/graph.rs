//! The shared dependency graph.
//!
//! Every analysis in this module — stratification, liveness, cascade bounds —
//! runs over the same [`DependencyGraph`]: one node per statement (fact,
//! rule, query, constraint body, production/ECA rule) carrying the
//! `(method/class, polarity)` read/write key sets already used by the
//! engine's `EvalMarks`/`DeltaView` gating, and edges wherever one node's
//! definitions intersect another's uses.

use std::collections::BTreeSet;

use crate::engine::Stratification;
use crate::error::{Error, Result};
use crate::program::{DepKey, RuleInfo};

use super::diagnostics::Span;

/// What kind of statement a graph node describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleKind {
    /// A ground fact (rule with an empty body).
    Fact,
    /// A proper rule (non-empty body).
    Rule,
    /// A query body (`?- ...`): pure consumer, defines nothing.
    Query,
    /// A denial-constraint body: pure consumer.
    Constraint,
    /// A condition-action production rule (reactive crate).
    Production,
    /// An event-condition-action rule (reactive crate).
    Eca,
}

impl RuleKind {
    /// `true` for node kinds that only *read* (queries, constraints and
    /// reactive conditions): they anchor liveness but never define keys
    /// for the deductive strata.
    pub fn is_consumer(self) -> bool {
        matches!(
            self,
            RuleKind::Query | RuleKind::Constraint | RuleKind::Production | RuleKind::Eca
        )
    }
}

/// One node of the dependency graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleNode {
    /// What kind of statement this is.
    pub kind: RuleKind,
    /// The statement as displayed source text (used in diagnostics).
    pub label: String,
    /// Where the statement starts, when the program came through the parser.
    pub span: Option<Span>,
    /// Keys the statement defines (head writes, reactive action writes).
    pub defines: BTreeSet<DepKey>,
    /// Keys the statement reads object-at-a-time.
    pub uses: BTreeSet<DepKey>,
    /// Keys the statement reads set-at-a-time (`->>` right-hand sides,
    /// negated literals) — these force stratum separation.
    pub strict_uses: BTreeSet<DepKey>,
}

impl RuleNode {
    /// A node built from a [`RuleInfo`] dependency summary.
    pub fn from_info(kind: RuleKind, label: String, span: Option<Span>, info: RuleInfo) -> Self {
        RuleNode {
            kind,
            label,
            span,
            defines: info.defines,
            uses: info.uses,
            strict_uses: info.strict_uses,
        }
    }

    /// All keys this node reads, strict and ordinary alike.
    pub fn all_uses(&self) -> BTreeSet<DepKey> {
        self.uses.union(&self.strict_uses).cloned().collect()
    }
}

/// Polarity of a dependency edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Polarity {
    /// An ordinary (object-at-a-time) read of the definer's keys.
    Positive,
    /// A set-at-a-time or negated read: the definer must be fully computed
    /// in an earlier stratum.
    Strict,
}

/// A dependency edge: `reader` reads keys that `definer` defines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    /// Index of the node doing the reading.
    pub reader: usize,
    /// Index of the node whose definitions are read.
    pub definer: usize,
    /// Whether the read is ordinary or strict.
    pub polarity: Polarity,
}

/// Do two key sets overlap, treating [`DepKey::Unknown`] as a wildcard?
pub fn keys_intersect(defines: &BTreeSet<DepKey>, uses: &BTreeSet<DepKey>) -> bool {
    if defines.is_empty() || uses.is_empty() {
        return false;
    }
    if defines.contains(&DepKey::Unknown) || uses.contains(&DepKey::Unknown) {
        return true;
    }
    defines.iter().any(|k| uses.contains(k))
}

/// The shared dependency graph over every statement of a program (and,
/// optionally, its constraints and reactive rules).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DependencyGraph {
    nodes: Vec<RuleNode>,
}

impl DependencyGraph {
    /// An empty graph.
    pub fn new() -> Self {
        DependencyGraph::default()
    }

    /// Build a graph holding one `Rule`-kind node per dependency summary —
    /// the exact input shape the engine's stratifier works from.
    pub fn from_rule_infos(infos: &[RuleInfo]) -> Self {
        let mut g = DependencyGraph::new();
        for info in infos {
            g.push(RuleNode::from_info(RuleKind::Rule, String::new(), None, info.clone()));
        }
        g
    }

    /// Add a node, returning its index.
    pub fn push(&mut self, node: RuleNode) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// The nodes, in insertion (source) order.
    pub fn nodes(&self) -> &[RuleNode] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All dependency edges: one per `(reader, definer)` pair whose key sets
    /// intersect, with [`Polarity::Strict`] when the strict uses intersect
    /// (a pair can yield both edge polarities).
    pub fn edges(&self) -> Vec<Edge> {
        let mut out = Vec::new();
        for (r, reader) in self.nodes.iter().enumerate() {
            for (d, definer) in self.nodes.iter().enumerate() {
                if keys_intersect(&definer.defines, &reader.uses) {
                    out.push(Edge {
                        reader: r,
                        definer: d,
                        polarity: Polarity::Positive,
                    });
                }
                if keys_intersect(&definer.defines, &reader.strict_uses) {
                    out.push(Edge {
                        reader: r,
                        definer: d,
                        polarity: Polarity::Strict,
                    });
                }
            }
        }
        out
    }

    /// Indexes of nodes whose definitions intersect `keys`.
    pub fn writers_of(&self, keys: &BTreeSet<DepKey>) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| keys_intersect(&n.defines, keys))
            .map(|(i, _)| i)
            .collect()
    }

    /// Indexes of nodes that read any of `keys` (ordinary or strict).
    pub fn readers_of(&self, keys: &BTreeSet<DepKey>) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| keys_intersect(keys, &n.uses) || keys_intersect(keys, &n.strict_uses))
            .map(|(i, _)| i)
            .collect()
    }

    /// Compute a stratification of the graph's nodes.
    ///
    /// This hosts the engine's relaxation fixpoint: strata start at 1 and a
    /// reader is lifted to its definer's stratum (ordinary read) or above it
    /// (strict read) until nothing changes; a stratum exceeding the node
    /// count proves a strict cycle.  `engine/stratify.rs` delegates here, so
    /// the strata the engine evaluates with are exactly the ones reported by
    /// the analyzer.
    ///
    /// Returns [`Error::NotStratifiable`] when a node (transitively) depends
    /// on its own definitions through a strict use.
    pub fn stratify(&self) -> Result<Stratification> {
        let infos = &self.nodes;
        let n = infos.len();
        let mut stratum = vec![1usize; n];
        if n == 0 {
            return Ok(Stratification {
                strata: Vec::new(),
                stratum_of: stratum,
            });
        }

        loop {
            let mut changed = false;
            for (r, info_r) in infos.iter().enumerate() {
                for (s, info_s) in infos.iter().enumerate() {
                    if keys_intersect(&info_s.defines, &info_r.uses) && stratum[r] < stratum[s] {
                        stratum[r] = stratum[s];
                        changed = true;
                    }
                    if keys_intersect(&info_s.defines, &info_r.strict_uses) && stratum[r] < stratum[s] + 1 {
                        stratum[r] = stratum[s] + 1;
                        changed = true;
                    }
                }
                if stratum[r] > n {
                    return Err(Error::NotStratifiable(format!(
                        "rule {r} depends on its own definitions through a set-at-a-time (`->>` right-hand side) \
                         or negated use; such rules must read only methods computed in earlier strata"
                    )));
                }
            }
            if !changed {
                break;
            }
        }

        let max = stratum.iter().copied().max().unwrap_or(1);
        let mut strata = vec![Vec::new(); max];
        for (r, &s) in stratum.iter().enumerate() {
            strata[s - 1].push(r);
        }
        // Drop empty strata (can appear when numbering has gaps) while keeping order.
        let strata: Vec<Vec<usize>> = strata.into_iter().filter(|s| !s.is_empty()).collect();
        // Re-derive stratum_of from the compacted strata.
        let mut stratum_of = vec![0usize; n];
        for (i, group) in strata.iter().enumerate() {
            for &r in group {
                stratum_of[r] = i;
            }
        }
        Ok(Stratification { strata, stratum_of })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names::Name;

    fn node(kind: RuleKind, defines: &[&str], uses: &[&str], strict: &[&str]) -> RuleNode {
        RuleNode {
            kind,
            label: String::new(),
            span: None,
            defines: defines.iter().map(|s| DepKey::Known(Name::atom(*s))).collect(),
            uses: uses.iter().map(|s| DepKey::Known(Name::atom(*s))).collect(),
            strict_uses: strict.iter().map(|s| DepKey::Known(Name::atom(*s))).collect(),
        }
    }

    #[test]
    fn edges_carry_polarity() {
        let mut g = DependencyGraph::new();
        g.push(node(RuleKind::Rule, &["a"], &[], &[]));
        g.push(node(RuleKind::Rule, &["b"], &["a"], &[]));
        g.push(node(RuleKind::Rule, &["c"], &[], &["b"]));
        let edges = g.edges();
        assert!(edges.contains(&Edge {
            reader: 1,
            definer: 0,
            polarity: Polarity::Positive
        }));
        assert!(edges.contains(&Edge {
            reader: 2,
            definer: 1,
            polarity: Polarity::Strict
        }));
        assert_eq!(edges.len(), 2);
    }

    #[test]
    fn writers_and_readers_respect_wildcards() {
        let mut g = DependencyGraph::new();
        g.push(node(RuleKind::Rule, &["a"], &[], &[]));
        let mut wild = node(RuleKind::Rule, &[], &[], &[]);
        wild.defines.insert(DepKey::Unknown);
        g.push(wild);
        let keys: BTreeSet<DepKey> = [DepKey::Known(Name::atom("a"))].into_iter().collect();
        assert_eq!(g.writers_of(&keys), vec![0, 1]);
        let keys: BTreeSet<DepKey> = [DepKey::Known(Name::atom("zzz"))].into_iter().collect();
        assert_eq!(g.writers_of(&keys), vec![1]);
    }

    #[test]
    fn graph_stratify_matches_engine_shape() {
        let mut g = DependencyGraph::new();
        g.push(node(RuleKind::Rule, &["assistants"], &["worksFor"], &[]));
        g.push(node(RuleKind::Rule, &["friendly"], &[], &["assistants"]));
        let s = g.stratify().unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.stratum_of, vec![0, 1]);
    }

    #[test]
    fn graph_strict_cycle_rejected() {
        let mut g = DependencyGraph::new();
        g.push(node(RuleKind::Rule, &["friends"], &[], &["friends"]));
        assert!(matches!(g.stratify().unwrap_err(), Error::NotStratifiable(_)));
    }

    #[test]
    fn consumer_kinds() {
        assert!(RuleKind::Query.is_consumer());
        assert!(RuleKind::Constraint.is_consumer());
        assert!(RuleKind::Production.is_consumer());
        assert!(!RuleKind::Rule.is_consumer());
        assert!(!RuleKind::Fact.is_consumer());
    }
}
