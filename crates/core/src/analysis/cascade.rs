//! Static cascade analysis for reactive (production / ECA) rules
//! (PL010, PL011).
//!
//! Reactive rules fire in cascades: a rule's actions change the structure,
//! which may trigger further rules.  The runtime cuts runaway cascades at
//! `max_cascade_depth`, but only *after* doing the work.  This module builds
//! the trigger graph statically — an edge `i -> j` wherever rule `i`'s
//! action-write keys intersect rule `j`'s trigger keys — and reports
//! potential trigger cycles (PL010) plus a safe static bound on cascade
//! depth to compare against the configured limit (PL011).
//!
//! The core crate knows nothing about the reactive crate's rule types, so
//! the reactive installers describe their rules with
//! [`ReactiveRuleSummary`] values (see `pathlog_reactive`'s `analyze`
//! helpers) and hand them to [`analyze_cascades`].

use std::collections::BTreeSet;

use crate::program::DepKey;

use super::diagnostics::{DiagCode, Diagnostic, Diagnostics};
use super::graph::{keys_intersect, RuleKind};

/// A dependency summary of one reactive rule, supplied by the reactive
/// crate's installers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReactiveRuleSummary {
    /// The rule's name (unique within its rule set).
    pub name: String,
    /// [`RuleKind::Production`] or [`RuleKind::Eca`].
    pub kind: RuleKind,
    /// Keys whose changes can make this rule fire: the triggering event's
    /// method/class for ECA rules, the condition's read keys for production
    /// rules (which re-match whenever a read key changes).
    pub trigger: BTreeSet<DepKey>,
    /// Keys the condition reads (for production rules this equals
    /// `trigger`; ECA conditions may read more than the event key).
    pub condition_reads: BTreeSet<DepKey>,
    /// Keys the actions assert (scalar/set/isa writes).
    pub writes: BTreeSet<DepKey>,
    /// Keys the actions retract.
    pub retracts: BTreeSet<DepKey>,
}

impl ReactiveRuleSummary {
    /// All keys whose stored facts the actions touch — retractions trigger
    /// re-matching just like assertions do.
    pub fn action_keys(&self) -> BTreeSet<DepKey> {
        self.writes.union(&self.retracts).cloned().collect()
    }
}

/// The static bound on cascade depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CascadeBound {
    /// Every cascade settles after at most this many rule firings — the
    /// longest path through the (acyclic) trigger graph, counted in rules.
    Bounded(usize),
    /// The trigger graph has a cycle: no static bound exists and termination
    /// depends on the data reaching a fixpoint (or the runtime limit).
    Unbounded,
}

/// The result of static cascade analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CascadeReport {
    /// One entry per analyzed rule, in input order.
    pub rules: Vec<ReactiveRuleSummary>,
    /// Trigger edges `(writer, triggered)` by rule index.
    pub edges: Vec<(usize, usize)>,
    /// Trigger cycles, each listed as the rule indexes on it (strongly
    /// connected components with at least one internal edge).
    pub cycles: Vec<Vec<usize>>,
    /// The static depth bound.
    pub bound: CascadeBound,
}

/// Build the trigger graph over `rules`, detect cycles and bound the cascade
/// depth; report PL010 for each cycle and PL011 when the bound is unbounded
/// or exceeds `max_cascade_depth`.
pub fn analyze_cascades(
    rules: &[ReactiveRuleSummary],
    max_cascade_depth: Option<usize>,
    diags: &mut Diagnostics,
) -> CascadeReport {
    let n = rules.len();
    let mut edges = Vec::new();
    for (i, writer) in rules.iter().enumerate() {
        let action_keys = writer.action_keys();
        for (j, reader) in rules.iter().enumerate() {
            if keys_intersect(&action_keys, &reader.trigger) {
                edges.push((i, j));
            }
        }
    }

    // Boolean transitive closure over the (tiny) rule graph.
    let mut reach = vec![vec![false; n]; n];
    for &(i, j) in &edges {
        reach[i][j] = true;
    }
    for k in 0..n {
        for i in 0..n {
            if reach[i][k] {
                let via = reach[k].clone();
                for (cell, &step) in reach[i].iter_mut().zip(&via) {
                    *cell |= step;
                }
            }
        }
    }

    // Cycles: strongly connected components that contain an edge, i.e. any
    // node that can reach itself, grouped by mutual reachability.
    let mut cycles: Vec<Vec<usize>> = Vec::new();
    let mut in_cycle = vec![false; n];
    for i in 0..n {
        if reach[i][i] && !in_cycle[i] {
            let mut component = vec![i];
            in_cycle[i] = true;
            for j in (i + 1)..n {
                if reach[i][j] && reach[j][i] {
                    component.push(j);
                    in_cycle[j] = true;
                }
            }
            cycles.push(component);
        }
    }

    for cycle in &cycles {
        let names: Vec<&str> = cycle.iter().map(|&i| rules[i].name.as_str()).collect();
        let subject = names.join(" -> ");
        diags.push(Diagnostic::new(
            DiagCode::CascadeCycle,
            None,
            subject.clone(),
            format!(
                "reactive rules form a trigger cycle ({subject}): each rule's actions can \
                 re-trigger the others, so cascades terminate only by reaching a data fixpoint \
                 or the runtime depth limit"
            ),
        ));
    }

    let bound = if cycles.is_empty() {
        // Longest path through the DAG, counted in rules: memoised depth
        // where depth(i) = 1 + max depth over successors.
        let mut memo = vec![0usize; n];
        let mut order: Vec<usize> = (0..n).collect();
        // Process in reverse topological order: a node after everything it
        // reaches.  Sorting by reachable-set size gives such an order on a
        // DAG (successors reach strictly fewer nodes).
        order.sort_by_key(|&i| reach[i].iter().filter(|&&b| b).count());
        for &i in &order {
            let succ_max = edges
                .iter()
                .filter(|&&(a, _)| a == i)
                .map(|&(_, b)| memo[b])
                .max()
                .unwrap_or(0);
            memo[i] = 1 + succ_max;
        }
        CascadeBound::Bounded(memo.iter().copied().max().unwrap_or(0))
    } else {
        CascadeBound::Unbounded
    };

    if let Some(max) = max_cascade_depth {
        match bound {
            CascadeBound::Unbounded => {
                diags.push(Diagnostic::new(
                    DiagCode::CascadeBound,
                    None,
                    "cascade".to_string(),
                    format!(
                        "no static cascade bound exists (trigger cycle); cascades deeper than \
                         max_cascade_depth = {max} will be cut off at runtime"
                    ),
                ));
            }
            CascadeBound::Bounded(b) if b > max => {
                diags.push(Diagnostic::new(
                    DiagCode::CascadeBound,
                    None,
                    "cascade".to_string(),
                    format!(
                        "the static cascade bound is {b} rules, which exceeds \
                         max_cascade_depth = {max}; some cascades will be cut off at runtime"
                    ),
                ));
            }
            CascadeBound::Bounded(_) => {}
        }
    }

    CascadeReport {
        rules: rules.to_vec(),
        edges,
        cycles,
        bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names::Name;

    fn summary(name: &str, trigger: &[&str], writes: &[&str]) -> ReactiveRuleSummary {
        let keyset = |ks: &[&str]| ks.iter().map(|s| DepKey::Known(Name::atom(*s))).collect();
        ReactiveRuleSummary {
            name: name.to_string(),
            kind: RuleKind::Production,
            trigger: keyset(trigger),
            condition_reads: keyset(trigger),
            writes: keyset(writes),
            retracts: BTreeSet::new(),
        }
    }

    #[test]
    fn acyclic_chain_is_bounded_by_its_length() {
        let rules = vec![
            summary("a", &["x"], &["y"]),
            summary("b", &["y"], &["z"]),
            summary("c", &["z"], &["w"]),
        ];
        let mut d = Diagnostics::new();
        let report = analyze_cascades(&rules, Some(32), &mut d);
        assert_eq!(report.bound, CascadeBound::Bounded(3));
        assert!(report.cycles.is_empty());
        assert!(d.is_empty(), "{d}");
    }

    #[test]
    fn ping_pong_rules_are_a_cycle() {
        let rules = vec![summary("ping", &["a"], &["b"]), summary("pong", &["b"], &["a"])];
        let mut d = Diagnostics::new();
        let report = analyze_cascades(&rules, Some(32), &mut d);
        assert_eq!(report.bound, CascadeBound::Unbounded);
        assert_eq!(report.cycles, vec![vec![0, 1]]);
        let codes = d.codes();
        assert!(codes.contains(&DiagCode::CascadeCycle));
        assert!(codes.contains(&DiagCode::CascadeBound));
    }

    #[test]
    fn self_triggering_rule_is_a_cycle() {
        let rules = vec![summary("loop", &["a"], &["a"])];
        let mut d = Diagnostics::new();
        let report = analyze_cascades(&rules, None, &mut d);
        assert_eq!(report.cycles, vec![vec![0]]);
        // Without a configured limit only the cycle itself is reported.
        assert_eq!(d.codes(), vec![DiagCode::CascadeCycle]);
    }

    #[test]
    fn bound_exceeding_the_limit_is_reported() {
        let rules = vec![
            summary("a", &["k0"], &["k1"]),
            summary("b", &["k1"], &["k2"]),
            summary("c", &["k2"], &["k3"]),
        ];
        let mut d = Diagnostics::new();
        let report = analyze_cascades(&rules, Some(2), &mut d);
        assert_eq!(report.bound, CascadeBound::Bounded(3));
        assert_eq!(d.codes(), vec![DiagCode::CascadeBound]);
    }

    #[test]
    fn retractions_trigger_too() {
        let mut a = summary("a", &["x"], &[]);
        a.retracts = [DepKey::Known(Name::atom("y"))].into_iter().collect();
        let b = summary("b", &["y"], &["x"]);
        let mut d = Diagnostics::new();
        let report = analyze_cascades(&[a, b], None, &mut d);
        assert_eq!(report.cycles.len(), 1);
    }

    #[test]
    fn independent_rules_have_bound_one() {
        let rules = vec![summary("a", &["x"], &["y"]), summary("b", &["p"], &["q"])];
        let mut d = Diagnostics::new();
        let report = analyze_cascades(&rules, Some(32), &mut d);
        assert_eq!(report.bound, CascadeBound::Bounded(1));
        assert!(report.edges.is_empty());
    }
}
