//! Well-formedness of references (Definition 3 of the paper).
//!
//! Well-formedness restricts where *set-valued* references may appear inside
//! molecules (they are unrestricted inside paths):
//!
//! * in a scalar filter `t0[m@(t1..tk) -> tr]` the method, all arguments and
//!   the result must be scalar;
//! * in a set filter `t0[m@(t1..tk) ->> s]` the method and all arguments must
//!   be scalar, and `s` must either be a set-valued reference or an explicit
//!   set `{t'1, ..., t'l}` of scalar references;
//! * in `t0 : c` the class must be scalar.
//!
//! In addition, Definition 1 requires the method and class positions to be
//! *simple* references (a name, a variable, or a parenthesised reference such
//! as `(kids.tc)`); this structural constraint is enforced here as well so
//! that programmatically constructed terms are checked like parsed ones.

use crate::error::{Error, Result};
use crate::scalarity::{is_scalar, is_set_valued};
use crate::term::{Filter, FilterValue, Term};

/// Check a reference for well-formedness; returns the first violation found.
pub fn check_well_formed(term: &Term) -> Result<()> {
    match term {
        Term::Name(_) | Term::Var(_) => Ok(()),
        Term::Paren(t) => check_well_formed(t),
        Term::Path(p) => {
            check_well_formed(&p.receiver)?;
            check_method_position(&p.method)?;
            for a in &p.args {
                check_well_formed(a)?;
            }
            Ok(())
        }
        Term::Molecule(m) => {
            check_well_formed(&m.receiver)?;
            for f in &m.filters {
                check_filter(f)?;
            }
            Ok(())
        }
        Term::IsA(i) => {
            check_well_formed(&i.receiver)?;
            check_class_position(&i.class)?;
            Ok(())
        }
    }
}

/// `true` iff the reference satisfies Definition 3 (and the simple-reference
/// requirements of Definition 1).
pub fn is_well_formed(term: &Term) -> bool {
    check_well_formed(term).is_ok()
}

fn check_method_position(method: &Term) -> Result<()> {
    check_well_formed(method)?;
    if !method.is_simple() {
        return Err(Error::IllFormed(format!(
            "method position must be a simple reference (name, variable or parenthesised reference), got `{method}`"
        )));
    }
    if is_set_valued(method) {
        return Err(Error::IllFormed(format!(
            "method position must be a scalar reference, got set-valued `{method}`"
        )));
    }
    Ok(())
}

fn check_class_position(class: &Term) -> Result<()> {
    check_well_formed(class)?;
    if !class.is_simple() {
        return Err(Error::IllFormed(format!(
            "class position must be a simple reference, got `{class}`"
        )));
    }
    if is_set_valued(class) {
        return Err(Error::IllFormed(format!(
            "class position must be a scalar reference, got set-valued `{class}`"
        )));
    }
    Ok(())
}

fn check_filter(filter: &Filter) -> Result<()> {
    check_method_position(&filter.method)?;
    for a in &filter.args {
        check_well_formed(a)?;
        if is_set_valued(a) {
            return Err(Error::IllFormed(format!(
                "arguments inside a molecule must be scalar references, got set-valued `{a}`"
            )));
        }
    }
    match &filter.value {
        FilterValue::Scalar(r) => {
            check_well_formed(r)?;
            if is_set_valued(r) {
                return Err(Error::IllFormed(format!(
                    "result of a scalar method must be a scalar reference, got set-valued `{r}` \
                     (cf. the ill-formed example p2[boss -> p1..assistants], (4.5) in the paper)"
                )));
            }
            Ok(())
        }
        FilterValue::SetRef(r) => {
            check_well_formed(r)?;
            if !is_set_valued(r) {
                return Err(Error::IllFormed(format!(
                    "the right-hand side of `->>` must be a set-valued reference or an explicit set; \
                     `{r}` is scalar — write `{{{r}}}` instead"
                )));
            }
            Ok(())
        }
        FilterValue::SetExplicit(rs) => {
            for r in rs {
                check_well_formed(r)?;
                if is_set_valued(r) {
                    return Err(Error::IllFormed(format!(
                        "elements of an explicit set must be scalar references, got set-valued `{r}`"
                    )));
                }
            }
            Ok(())
        }
        FilterValue::SigScalar(rs) | FilterValue::SigSet(rs) => {
            for r in rs {
                check_well_formed(r)?;
                if is_set_valued(r) {
                    return Err(Error::IllFormed(format!(
                        "signature result classes must be scalar references, got set-valued `{r}`"
                    )));
                }
                if !r.is_simple() {
                    return Err(Error::IllFormed(format!(
                        "signature result classes must be simple references, got `{r}`"
                    )));
                }
            }
            Ok(())
        }
    }
}

// keep is_scalar imported usage explicit for readers of this module
#[allow(dead_code)]
fn _scalar_is_the_negation_of_set_valued(t: &Term) -> bool {
    is_scalar(t) != is_set_valued(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Filter;

    #[test]
    fn paper_examples_are_well_formed() {
        // (2.1)
        let t = Term::var("X")
            .isa("employee")
            .filters(vec![
                Filter::scalar("age", Term::int(30)),
                Filter::scalar("city", "newYork"),
            ])
            .set("vehicles")
            .isa("automobile")
            .filter(Filter::scalar("cylinders", Term::int(4)))
            .scalar("color")
            .selector(Term::var("Z"));
        assert!(is_well_formed(&t));

        // (4.2) p1..assistants[salary -> 1000]
        let t = Term::name("p1")
            .set("assistants")
            .filter(Filter::scalar("salary", Term::int(1000)));
        assert!(is_well_formed(&t));

        // (4.4) p2[friends ->> p1..assistants]
        let t = Term::name("p2").filter(Filter::set_ref("friends", Term::name("p1").set("assistants")));
        assert!(is_well_formed(&t));

        // (4.3) p2[friends ->> {p3, p4}]
        let t = Term::name("p2").filter(Filter::set("friends", vec![Term::name("p3"), Term::name("p4")]));
        assert!(is_well_formed(&t));

        // p1.paidFor@(p1..vehicles): set-valued arguments are fine in paths.
        let t = Term::name("p1").scalar_args("paidFor", vec![Term::name("p1").set("vehicles")]);
        assert!(is_well_formed(&t));
    }

    #[test]
    fn example_4_5_is_rejected() {
        // p2[boss -> p1..assistants] assigns a set-valued reference as the
        // result of a scalar method — ill-formed.
        let t = Term::name("p2").filter(Filter::scalar("boss", Term::name("p1").set("assistants")));
        let err = check_well_formed(&t).unwrap_err();
        assert!(matches!(err, Error::IllFormed(_)));
        assert!(err.to_string().contains("scalar method"));
    }

    #[test]
    fn set_arrow_with_scalar_rhs_is_rejected() {
        let t = Term::name("p2").filter(Filter::set_ref("friends", Term::name("p3")));
        assert!(!is_well_formed(&t));
    }

    #[test]
    fn set_valued_class_is_rejected() {
        let t = Term::var("X").isa(Term::name("p1").set("classes").paren());
        assert!(!is_well_formed(&t));
    }

    #[test]
    fn non_simple_method_position_is_rejected() {
        // X.(kids.tc) is fine (parenthesised), X.kids.tc is a different term
        // (and fine), but using a *molecule* as a method must be rejected.
        let ok = Term::var("X").set_args(Term::name("kids").scalar("tc").paren(), vec![]);
        assert!(is_well_formed(&ok));
        let bad = Term::var("X").scalar(Term::name("kids").filter(Filter::scalar("a", "b")));
        assert!(!is_well_formed(&bad));
    }

    #[test]
    fn set_valued_arguments_in_molecules_are_rejected() {
        let f = Filter {
            method: Term::name("m"),
            args: vec![Term::name("p1").set("vehicles")],
            value: FilterValue::Scalar(Term::name("x")),
        };
        let t = Term::name("p2").filter(f);
        assert!(!is_well_formed(&t));
    }

    #[test]
    fn set_valued_elements_in_explicit_sets_are_rejected() {
        let t = Term::name("p2").filter(Filter::set("friends", vec![Term::name("p1").set("assistants")]));
        assert!(!is_well_formed(&t));
    }

    #[test]
    fn nested_violations_are_found() {
        // A violation buried inside a path argument must still be reported.
        let bad_molecule = Term::name("p2").filter(Filter::scalar("boss", Term::name("p1").set("assistants")));
        let t = Term::name("a").scalar_args("m", vec![bad_molecule]);
        assert!(!is_well_formed(&t));
    }

    #[test]
    fn signatures_require_simple_scalar_result_classes() {
        let ok = Term::name("person").filter(Filter {
            method: Term::name("age"),
            args: vec![],
            value: FilterValue::SigScalar(vec![Term::name("integer")]),
        });
        assert!(is_well_formed(&ok));
        let bad = Term::name("person").filter(Filter {
            method: Term::name("kids"),
            args: vec![],
            value: FilterValue::SigSet(vec![Term::name("p1").set("assistants")]),
        });
        assert!(!is_well_formed(&bad));
    }
}
