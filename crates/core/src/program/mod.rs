//! Rules, facts, queries and programs (Section 6 of the paper).
//!
//! A PathLog rule is `head <- body.` where the head is a single reference and
//! the body a conjunction of (possibly negated — an extension) references.
//! A fact is a ground reference asserted directly.  A query `?- body.` asks
//! for the variable-valuations that entail the body.
//!
//! Rules define *intensional* knowledge: intensionally defined methods on
//! existing objects (`X[power -> Y] <- X:automobile.engine[power -> Y]`) and
//! *virtual objects* referenced through paths in the head
//! (`X.address[street -> X.street] <- X:person`).

mod validate;

pub use validate::{literal_reads, rule_info, validate_program, validate_rule, DepKey, RuleInfo};

use std::fmt;

use crate::names::Var;
use crate::term::Term;

/// A body literal: a reference, possibly negated.
///
/// Negation is not part of the paper and is provided as an extension; the
/// engine stratifies negated dependencies like the set-at-a-time ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Literal {
    /// `false` for `not t`.
    pub positive: bool,
    /// The reference.
    pub term: Term,
}

impl Literal {
    /// A positive literal.
    pub fn pos(term: Term) -> Self {
        Literal { positive: true, term }
    }

    /// A negated literal (extension).
    pub fn neg(term: Term) -> Self {
        Literal { positive: false, term }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.positive {
            write!(f, "{}", self.term)
        } else {
            write!(f, "not {}", self.term)
        }
    }
}

/// A rule `head <- body.`; a fact is a rule with an empty body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// The head reference.
    pub head: Term,
    /// The body conjunction.
    pub body: Vec<Literal>,
}

impl Rule {
    /// A rule with the given head and body.
    pub fn new(head: Term, body: Vec<Literal>) -> Self {
        Rule { head, body }
    }

    /// A fact (empty body).
    pub fn fact(head: Term) -> Self {
        Rule { head, body: Vec::new() }
    }

    /// `true` if this rule has an empty body.
    pub fn is_fact(&self) -> bool {
        self.body.is_empty()
    }

    /// Variables of the head.
    pub fn head_variables(&self) -> Vec<Var> {
        self.head.variables()
    }

    /// Variables occurring in positive body literals.
    pub fn positive_body_variables(&self) -> Vec<Var> {
        let mut out = Vec::new();
        for l in self.body.iter().filter(|l| l.positive) {
            for v in l.term.variables() {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.head)?;
        if !self.body.is_empty() {
            write!(f, " <- ")?;
            for (i, l) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{l}")?;
            }
        }
        write!(f, ".")
    }
}

/// A query `?- body.`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// The conjunction of literals to satisfy.
    pub body: Vec<Literal>,
}

impl Query {
    /// A query over the given body.
    pub fn new(body: Vec<Literal>) -> Self {
        Query { body }
    }

    /// A query with a single positive literal.
    pub fn single(term: Term) -> Self {
        Query {
            body: vec![Literal::pos(term)],
        }
    }

    /// The variables of the query, in order of first occurrence.
    pub fn variables(&self) -> Vec<Var> {
        let mut out = Vec::new();
        for l in &self.body {
            for v in l.term.variables() {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?- ")?;
        for (i, l) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, ".")
    }
}

/// A program: facts, rules and queries in source order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// Rules (facts are rules with empty bodies).
    pub rules: Vec<Rule>,
    /// Queries.
    pub queries: Vec<Query>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a rule or fact.
    pub fn push_rule(&mut self, rule: Rule) -> &mut Self {
        self.rules.push(rule);
        self
    }

    /// Add a query.
    pub fn push_query(&mut self, query: Query) -> &mut Self {
        self.queries.push(query);
        self
    }

    /// The facts (rules with empty bodies).
    pub fn facts(&self) -> impl Iterator<Item = &Rule> + '_ {
        self.rules.iter().filter(|r| r.is_fact())
    }

    /// The proper rules (non-empty bodies).
    pub fn proper_rules(&self) -> impl Iterator<Item = &Rule> + '_ {
        self.rules.iter().filter(|r| !r.is_fact())
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        for q in &self.queries {
            writeln!(f, "{q}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Filter;

    #[test]
    fn rule_display() {
        // X[power -> Y] <- X : automobile.engine[power -> Y].
        let rule = Rule::new(
            Term::var("X").filter(Filter::scalar("power", Term::var("Y"))),
            vec![Literal::pos(
                Term::var("X")
                    .isa("automobile")
                    .scalar("engine")
                    .filter(Filter::scalar("power", Term::var("Y"))),
            )],
        );
        assert_eq!(rule.to_string(), "X[power -> Y] <- X : automobile.engine[power -> Y].");
        assert!(!rule.is_fact());
    }

    #[test]
    fn fact_display_and_predicates() {
        let f =
            Rule::fact(Term::name("peter").filter(Filter::set("kids", vec![Term::name("tim"), Term::name("mary")])));
        assert_eq!(f.to_string(), "peter[kids ->> {tim, mary}].");
        assert!(f.is_fact());
    }

    #[test]
    fn query_display_and_variables() {
        let q = Query::new(vec![
            Literal::pos(Term::var("X").isa("employee")),
            Literal::neg(Term::var("X").filter(Filter::scalar("city", "detroit"))),
        ]);
        assert_eq!(q.to_string(), "?- X : employee, not X[city -> detroit].");
        assert_eq!(q.variables(), vec![crate::names::Var::new("X")]);
    }

    #[test]
    fn rule_variable_partitions() {
        let rule = Rule::new(
            Term::var("X").filter(Filter::scalar("power", Term::var("Y"))),
            vec![
                Literal::pos(Term::var("X").isa("automobile")),
                Literal::neg(Term::var("Z").isa("broken")),
            ],
        );
        assert_eq!(rule.head_variables().len(), 2);
        // Z occurs only in a negative literal, so it is not a positive body variable.
        assert_eq!(rule.positive_body_variables(), vec![crate::names::Var::new("X")]);
    }

    #[test]
    fn program_collects_and_partitions() {
        let mut p = Program::new();
        p.push_rule(Rule::fact(Term::name("a").isa("b")));
        p.push_rule(Rule::new(
            Term::var("X").isa("c"),
            vec![Literal::pos(Term::var("X").isa("b"))],
        ));
        p.push_query(Query::single(Term::var("X").isa("c")));
        assert_eq!(p.facts().count(), 1);
        assert_eq!(p.proper_rules().count(), 1);
        assert_eq!(p.queries.len(), 1);
        let text = p.to_string();
        assert!(text.contains("a : b."));
        assert!(text.contains("?- X : c."));
    }
}
