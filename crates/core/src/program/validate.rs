//! Static validation of rules and programs.
//!
//! The checks implement the restrictions stated or implied in Section 6 of
//! the paper, plus the usual safety conditions of deductive databases:
//!
//! 1. every reference must be well-formed (Definition 3);
//! 2. the head must be a *scalar* reference — "the usage of set valued
//!    references in rule heads should be forbidden";
//! 3. safety: every head variable and every variable of a negated literal
//!    must occur in a positive body literal; facts must be ground;
//! 4. the head must be *assertable*: a name, a scalar path, an `IsA`, or a
//!    molecule over those (signature filters are allowed and become
//!    declarations).
//!
//! Validation also derives the [`RuleInfo`] dependency summary used by the
//! stratifier: which method/class names a rule *defines* (through its head)
//! and which it *uses*, distinguishing ordinary uses from set-at-a-time uses
//! (the right-hand side of `->>` filters read as whole sets, and everything
//! under negation), which require stratification as in \[NT89\].

use std::collections::BTreeSet;

use crate::error::{Error, Result};
use crate::names::Name;
use crate::program::{Program, Rule};
use crate::scalarity::is_set_valued;
use crate::term::{FilterValue, Term};
use crate::wellformed::check_well_formed;

/// A dependency key: a known method/class name, or "unknown" when the method
/// or class position is not a plain name (a variable or a parenthesised
/// path such as `(M.tc)`), in which case the analysis is conservative.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DepKey {
    /// A known method or class name.
    Known(Name),
    /// Anything — forces a dependency on every definition.
    Unknown,
}

/// Dependency summary of one rule, consumed by the stratifier and by the
/// semi-naive evaluation loop.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuleInfo {
    /// Keys (method names, class names) this rule's head defines.
    pub defines: BTreeSet<DepKey>,
    /// Keys the positive body reads object-at-a-time.
    pub uses: BTreeSet<DepKey>,
    /// Keys the body reads set-at-a-time (must be fully computed in an
    /// earlier stratum): `->>` right-hand sides and negated literals.
    pub strict_uses: BTreeSet<DepKey>,
}

/// Validate a single rule and compute its dependency summary.
pub fn validate_rule(rule: &Rule) -> Result<RuleInfo> {
    check_well_formed(&rule.head).map_err(|e| Error::InvalidRule(format!("head of `{rule}`: {e}")))?;
    for lit in &rule.body {
        check_well_formed(&lit.term).map_err(|e| Error::InvalidRule(format!("body of `{rule}`: {e}")))?;
    }

    if is_set_valued(&rule.head) {
        return Err(Error::InvalidRule(format!(
            "the head of `{rule}` is a set-valued reference; set-valued references cannot be used in rule heads \
             because the object they describe is not uniquely determined (Section 6 of the paper)"
        )));
    }
    check_head_assertable(&rule.head).map_err(|e| Error::InvalidRule(format!("head of `{rule}`: {e}")))?;

    // Safety.
    let positive: BTreeSet<_> = rule.positive_body_variables().into_iter().collect();
    for v in rule.head_variables() {
        if !positive.contains(&v) {
            return Err(Error::InvalidRule(format!(
                "unsafe rule `{rule}`: head variable {v} does not occur in a positive body literal"
            )));
        }
    }
    for lit in rule.body.iter().filter(|l| !l.positive) {
        for v in lit.term.variables() {
            if !positive.contains(&v) {
                return Err(Error::InvalidRule(format!(
                    "unsafe rule `{rule}`: variable {v} of negated literal `{}` does not occur in a positive literal",
                    lit.term
                )));
            }
        }
    }

    Ok(rule_info(rule))
}

/// Compute a rule's dependency summary without validating it.
///
/// This is the collector half of [`validate_rule`], exposed so the static
/// analyzer can build dependency-graph nodes even for rules that fail one of
/// the safety checks (it wants to report *all* problems, not stop at the
/// first).
pub fn rule_info(rule: &Rule) -> RuleInfo {
    let mut info = RuleInfo::default();
    collect_defines(&rule.head, &mut info.defines);
    // A `->>` filter in the *head* whose right-hand side is a set-valued
    // reference copies that set when the rule fires; the methods it reads are
    // therefore strict uses as well (the set must be complete).
    collect_head_set_reads(&rule.head, &mut info.strict_uses);
    for lit in &rule.body {
        if lit.positive {
            collect_uses(&lit.term, &mut info.uses, &mut info.strict_uses);
        } else {
            // Everything under negation is a strict use.
            collect_keys(&lit.term, &mut info.strict_uses);
        }
    }
    info
}

/// Validate every rule of a program.
pub fn validate_program(program: &Program) -> Result<Vec<RuleInfo>> {
    program.rules.iter().map(validate_rule).collect()
}

/// Every method/class key a reference reads, conservatively (object-at-a-time
/// and set-at-a-time alike).  The engine uses this per body literal to decide
/// which literals an iteration's delta can drive.
pub fn literal_reads(term: &Term) -> BTreeSet<DepKey> {
    let mut out = BTreeSet::new();
    collect_keys(term, &mut out);
    out
}

/// Can this reference be made true by adding facts (and virtual objects)?
fn check_head_assertable(head: &Term) -> Result<()> {
    match head {
        Term::Name(_) => Ok(()),
        Term::Var(_) => Ok(()),
        Term::Paren(t) => check_head_assertable(t),
        Term::Path(p) => {
            if p.set_valued {
                return Err(Error::InvalidRule(format!(
                    "set-valued path `{head}` cannot be asserted in a head"
                )));
            }
            check_head_assertable(&p.receiver)
        }
        Term::IsA(i) => check_head_assertable(&i.receiver),
        // Every filter kind is assertable: scalar and set filters become
        // facts, `->>` with a set-valued reference adds all denoted members,
        // signature filters become declarations.  Only the receiver chain
        // needs checking.
        Term::Molecule(m) => check_head_assertable(&m.receiver),
    }
}

/// The dependency key of a method/class position.
fn dep_key(term: &Term) -> DepKey {
    match term {
        Term::Name(n) => DepKey::Known(n.clone()),
        Term::Paren(t) => dep_key(t),
        _ => DepKey::Unknown,
    }
}

/// Collect the keys defined by a head reference.
fn collect_defines(head: &Term, out: &mut BTreeSet<DepKey>) {
    match head {
        Term::Name(_) | Term::Var(_) => {}
        Term::Paren(t) => collect_defines(t, out),
        Term::Path(p) => {
            // A scalar path in a head defines the method (a virtual object may
            // be created for it).
            out.insert(dep_key(&p.method));
            collect_defines(&p.receiver, out);
        }
        Term::IsA(i) => {
            out.insert(dep_key(&i.class));
            collect_defines(&i.receiver, out);
        }
        Term::Molecule(m) => {
            collect_defines(&m.receiver, out);
            for f in &m.filters {
                out.insert(dep_key(&f.method));
                // Paths in filter *values* of a head may also create virtual
                // objects, hence also define their methods.
                match &f.value {
                    FilterValue::Scalar(t) => collect_value_defines(t, out),
                    FilterValue::SetExplicit(ts) => {
                        for t in ts {
                            collect_value_defines(t, out);
                        }
                    }
                    FilterValue::SetRef(_) | FilterValue::SigScalar(_) | FilterValue::SigSet(_) => {}
                }
            }
        }
    }
}

/// Keys defined by a head *value* position (only paths create facts there).
fn collect_value_defines(term: &Term, out: &mut BTreeSet<DepKey>) {
    match term {
        Term::Name(_) | Term::Var(_) => {}
        Term::Paren(t) => collect_value_defines(t, out),
        Term::Path(p) => {
            out.insert(dep_key(&p.method));
            collect_value_defines(&p.receiver, out);
        }
        Term::IsA(i) => collect_value_defines(&i.receiver, out),
        Term::Molecule(m) => {
            collect_value_defines(&m.receiver, out);
            for f in &m.filters {
                out.insert(dep_key(&f.method));
            }
        }
    }
}

/// Collect strict (set-at-a-time) reads performed by a head: the right-hand
/// sides of `->>` filters that are set-valued references.
fn collect_head_set_reads(head: &Term, strict: &mut BTreeSet<DepKey>) {
    match head {
        Term::Name(_) | Term::Var(_) => {}
        Term::Paren(t) => collect_head_set_reads(t, strict),
        Term::Path(p) => collect_head_set_reads(&p.receiver, strict),
        Term::IsA(i) => collect_head_set_reads(&i.receiver, strict),
        Term::Molecule(m) => {
            collect_head_set_reads(&m.receiver, strict);
            for f in &m.filters {
                if let FilterValue::SetRef(t) = &f.value {
                    collect_keys(t, strict);
                }
            }
        }
    }
}

/// Collect *every* method/class key occurring anywhere in a reference.
/// Used for positions read set-at-a-time and for negated literals.
fn collect_keys(term: &Term, out: &mut BTreeSet<DepKey>) {
    match term {
        Term::Name(_) | Term::Var(_) => {}
        Term::Paren(t) => collect_keys(t, out),
        Term::Path(p) => {
            out.insert(dep_key(&p.method));
            collect_keys(&p.receiver, out);
            for a in &p.args {
                collect_keys(a, out);
            }
        }
        Term::IsA(i) => {
            out.insert(dep_key(&i.class));
            collect_keys(&i.receiver, out);
            collect_keys(&i.class, out);
        }
        Term::Molecule(m) => {
            collect_keys(&m.receiver, out);
            for f in &m.filters {
                out.insert(dep_key(&f.method));
                for a in &f.args {
                    collect_keys(a, out);
                }
                match &f.value {
                    FilterValue::Scalar(t) | FilterValue::SetRef(t) => collect_keys(t, out),
                    FilterValue::SetExplicit(ts) | FilterValue::SigScalar(ts) | FilterValue::SigSet(ts) => {
                        for t in ts {
                            collect_keys(t, out);
                        }
                    }
                }
            }
        }
    }
}

/// Collect the keys used by a positive body reference: method/class positions
/// go to `normal`, except that the right-hand side of a `->>` filter is read
/// set-at-a-time and all of its keys go to `strict` (cf. the discussion of
/// `X[friends ->> p1..assistants]` in Section 6).
fn collect_uses(term: &Term, normal: &mut BTreeSet<DepKey>, strict: &mut BTreeSet<DepKey>) {
    match term {
        Term::Name(_) | Term::Var(_) => {}
        Term::Paren(t) => collect_uses(t, normal, strict),
        Term::Path(p) => {
            normal.insert(dep_key(&p.method));
            collect_uses(&p.receiver, normal, strict);
            for a in &p.args {
                collect_uses(a, normal, strict);
            }
        }
        Term::IsA(i) => {
            normal.insert(dep_key(&i.class));
            collect_uses(&i.receiver, normal, strict);
            collect_uses(&i.class, normal, strict);
        }
        Term::Molecule(m) => {
            collect_uses(&m.receiver, normal, strict);
            for f in &m.filters {
                normal.insert(dep_key(&f.method));
                for a in &f.args {
                    collect_uses(a, normal, strict);
                }
                match &f.value {
                    FilterValue::Scalar(t) => collect_uses(t, normal, strict),
                    FilterValue::SetRef(t) => collect_keys(t, strict),
                    FilterValue::SetExplicit(ts) => {
                        for t in ts {
                            collect_uses(t, normal, strict);
                        }
                    }
                    FilterValue::SigScalar(ts) | FilterValue::SigSet(ts) => {
                        for t in ts {
                            collect_uses(t, normal, strict);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Literal;
    use crate::term::Filter;

    fn key(n: &str) -> DepKey {
        DepKey::Known(Name::atom(n))
    }

    #[test]
    fn power_rule_is_valid() {
        // X[power -> Y] <- X : automobile.engine[power -> Y].
        let rule = Rule::new(
            Term::var("X").filter(Filter::scalar("power", Term::var("Y"))),
            vec![Literal::pos(
                Term::var("X")
                    .isa("automobile")
                    .scalar("engine")
                    .filter(Filter::scalar("power", Term::var("Y"))),
            )],
        );
        let info = validate_rule(&rule).unwrap();
        assert!(info.defines.contains(&key("power")));
        assert!(info.uses.contains(&key("engine")));
        assert!(info.uses.contains(&key("power")));
        assert!(info.uses.contains(&key("automobile")));
        assert!(info.strict_uses.is_empty());
    }

    #[test]
    fn virtual_boss_rule_defines_boss_and_worksfor() {
        // X.boss[worksFor -> D] <- X : employee[worksFor -> D].
        let rule = Rule::new(
            Term::var("X")
                .scalar("boss")
                .filter(Filter::scalar("worksFor", Term::var("D"))),
            vec![Literal::pos(
                Term::var("X")
                    .isa("employee")
                    .filter(Filter::scalar("worksFor", Term::var("D"))),
            )],
        );
        let info = validate_rule(&rule).unwrap();
        assert!(info.defines.contains(&key("boss")));
        assert!(info.defines.contains(&key("worksFor")));
    }

    #[test]
    fn set_valued_head_is_rejected() {
        // X..kids[age -> 5] <- X : person.  (set-valued head)
        let rule = Rule::new(
            Term::var("X").set("kids").filter(Filter::scalar("age", Term::int(5))),
            vec![Literal::pos(Term::var("X").isa("person"))],
        );
        let err = validate_rule(&rule).unwrap_err();
        assert!(err.to_string().contains("set-valued"));
    }

    #[test]
    fn unsafe_head_variable_is_rejected() {
        // X[likes -> Y] <- X : person.   (Y unbound)
        let rule = Rule::new(
            Term::var("X").filter(Filter::scalar("likes", Term::var("Y"))),
            vec![Literal::pos(Term::var("X").isa("person"))],
        );
        assert!(validate_rule(&rule).is_err());
    }

    #[test]
    fn non_ground_fact_is_rejected() {
        let fact = Rule::fact(Term::var("X").isa("person"));
        assert!(validate_rule(&fact).is_err());
        let fact = Rule::fact(Term::name("mary").isa("person"));
        assert!(validate_rule(&fact).is_ok());
    }

    #[test]
    fn unsafe_negation_is_rejected() {
        // X : lonely <- X : person, not Y : friendOf.   (Y only under not)
        let rule = Rule::new(
            Term::var("X").isa("lonely"),
            vec![
                Literal::pos(Term::var("X").isa("person")),
                Literal::neg(Term::var("Y").isa("friendOf")),
            ],
        );
        assert!(validate_rule(&rule).is_err());
    }

    #[test]
    fn ill_formed_head_is_rejected() {
        // head p2[boss -> p1..assistants] is ill-formed (example 4.5)
        let rule = Rule::fact(Term::name("p2").filter(Filter::scalar("boss", Term::name("p1").set("assistants"))));
        let err = validate_rule(&rule).unwrap_err();
        assert!(matches!(err, Error::InvalidRule(_)));
    }

    #[test]
    fn set_ref_rhs_in_body_is_a_strict_use() {
        // X[friends ->> p1..assistants] in a body: `assistants` must be fully
        // computed first — a strict use.
        let rule = Rule::new(
            Term::var("X").isa("sociable"),
            vec![Literal::pos(
                Term::var("X").filter(Filter::set_ref("friends", Term::name("p1").set("assistants"))),
            )],
        );
        let info = validate_rule(&rule).unwrap();
        assert!(info.strict_uses.contains(&key("assistants")));
        assert!(info.uses.contains(&key("friends")));
    }

    #[test]
    fn negated_literal_uses_are_strict() {
        let rule = Rule::new(
            Term::var("X").isa("single"),
            vec![
                Literal::pos(Term::var("X").isa("person")),
                Literal::neg(Term::var("X").scalar("spouse").empty_filters()),
            ],
        );
        let info = validate_rule(&rule).unwrap();
        assert!(info.strict_uses.contains(&key("spouse")));
        assert!(info.uses.contains(&key("person")));
    }

    #[test]
    fn generic_tc_rules_have_unknown_keys() {
        // X[(M.tc) ->> {Y}] <- X[M ->> {Y}].
        let rule = Rule::new(
            Term::var("X").filter(Filter::set(Term::var("M").scalar("tc").paren(), vec![Term::var("Y")])),
            vec![Literal::pos(
                Term::var("X").filter(Filter::set(Term::var("M"), vec![Term::var("Y")])),
            )],
        );
        let info = validate_rule(&rule).unwrap();
        assert!(info.defines.contains(&DepKey::Unknown));
        assert!(info.uses.contains(&DepKey::Unknown));
    }

    #[test]
    fn transitive_closure_rules_validate() {
        // X[desc ->> {Y}] <- X[kids ->> {Y}].
        // X[desc ->> {Y}] <- X..desc[kids ->> {Y}].
        let r1 = Rule::new(
            Term::var("X").filter(Filter::set("desc", vec![Term::var("Y")])),
            vec![Literal::pos(
                Term::var("X").filter(Filter::set("kids", vec![Term::var("Y")])),
            )],
        );
        let r2 = Rule::new(
            Term::var("X").filter(Filter::set("desc", vec![Term::var("Y")])),
            vec![Literal::pos(
                Term::var("X")
                    .set("desc")
                    .filter(Filter::set("kids", vec![Term::var("Y")])),
            )],
        );
        let mut p = Program::new();
        p.push_rule(r1);
        p.push_rule(r2);
        let infos = validate_program(&p).unwrap();
        assert_eq!(infos.len(), 2);
        assert!(infos[1].uses.contains(&key("desc")));
        assert!(infos[1].defines.contains(&key("desc")));
    }

    #[test]
    fn address_rule_defines_value_paths_too() {
        // X.address[street -> X.street; city -> X.city] <- X : person.
        let rule = Rule::new(
            Term::var("X").scalar("address").filters(vec![
                Filter::scalar("street", Term::var("X").scalar("street")),
                Filter::scalar("city", Term::var("X").scalar("city")),
            ]),
            vec![Literal::pos(Term::var("X").isa("person"))],
        );
        let info = validate_rule(&rule).unwrap();
        assert!(info.defines.contains(&key("address")));
        assert!(info.defines.contains(&key("street")));
        assert!(info.defines.contains(&key("city")));
        assert!(info.uses.contains(&key("person")));
    }
}
