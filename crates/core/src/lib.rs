//! # pathlog-core
//!
//! A complete implementation of **PathLog** — the rule language of
//! *Access to Objects by Path Expressions and Rules* (Frohn, Lausen, Uphoff,
//! 1994).  PathLog generalises path expressions for object-oriented
//! databases in two ways:
//!
//! 1. it adds a **second dimension**: filters (molecules) can be attached to
//!    every object referenced inside a path, so one reference such as
//!    `X:employee[age->30]..vehicles:automobile[cylinders->4].color[Z]`
//!    replaces a conjunction of one-dimensional paths; and
//! 2. a path in a rule head can reference **virtual objects**: if
//!    `X.address` is undefined, evaluating
//!    `X.address[street -> X.street] <- X:person` creates one.
//!
//! The crate provides, layer by layer:
//!
//! * [`names`], [`term`] — the alphabet and the reference syntax
//!   (Definition 1), with a builder API and pretty-printing;
//! * [`scalarity`], [`wellformed`] — Definitions 2 and 3;
//! * [`structure`] — semantic structures `I = (U, isa, I_N, I_->, I_->>)`
//!   with indexes;
//! * [`semantics`] — the direct semantics: valuation (Definition 4),
//!   entailment (Definition 5) and answer enumeration;
//! * [`program`] — rules, facts, queries, validation;
//! * [`engine`] — stratified bottom-up evaluation with virtual-object
//!   creation;
//! * [`snapshot`] — epoch-stamped immutable `Arc<Structure>` snapshots and
//!   the pin/reclaim registry behind the MVCC serving layer;
//! * [`typing`] — signature-based type checking;
//! * [`analysis`] — static program analysis: dependency graphs, `PL0xx`
//!   diagnostics, cascade bounds and per-literal cost annotations;
//! * [`builtins`] — the `self` method and comparison extensions.
//!
//! ## Quick example
//!
//! ```
//! use pathlog_core::prelude::*;
//!
//! // Facts: peter's kids, and a transitive-closure rule for descendants.
//! let rules = vec![
//!     Rule::fact(Term::name("peter").filter(Filter::set("kids", vec![Term::name("tim"), Term::name("mary")]))),
//!     Rule::fact(Term::name("tim").filter(Filter::set("kids", vec![Term::name("sally")]))),
//!     Rule::new(
//!         Term::var("X").filter(Filter::set("desc", vec![Term::var("Y")])),
//!         vec![Literal::pos(Term::var("X").filter(Filter::set("kids", vec![Term::var("Y")])))],
//!     ),
//!     Rule::new(
//!         Term::var("X").filter(Filter::set("desc", vec![Term::var("Y")])),
//!         vec![Literal::pos(Term::var("X").set("desc").filter(Filter::set("kids", vec![Term::var("Y")])))],
//!     ),
//! ];
//!
//! let mut structure = Structure::new();
//! let engine = Engine::new();
//! engine.run_rules(&mut structure, &rules).unwrap();
//!
//! // peter..desc denotes all of peter's descendants.
//! let descendants = engine
//!     .eval_ground(&structure, &Term::name("peter").set("desc"))
//!     .unwrap();
//! assert_eq!(descendants.len(), 3);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod builtins;
pub mod constraints;
pub mod engine;
pub mod error;
pub mod names;
pub mod plan;
pub mod program;
pub mod scalarity;
pub mod semantics;
pub mod snapshot;
pub mod structure;
pub mod term;
pub mod typing;
pub mod wellformed;

/// The most commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::analysis::{
        analyze, Analysis, AnalysisInput, CascadeBound, CascadeReport, DiagCode, Diagnostic, Diagnostics,
        ReactiveRuleSummary, RulePlanReport, Severity, Span,
    };
    pub use crate::constraints::{
        tolerant_query, CheckStats, ConsistencyStatus, Constraint, ConstraintChecker, ConstraintPolicy, ConstraintSet,
        ConstraintViolation, Quarantine, TolerantAnswer, TolerantAnswers,
    };
    pub use crate::engine::{
        solve_body, Engine, EvalMode, EvalOptions, EvalStats, ExecutorKind, Schedule, StaticChecks, Tolerance,
    };
    pub use crate::error::{Error, Result};
    pub use crate::names::{Name, Var};
    pub use crate::plan::Planner;
    pub use crate::program::{Literal, Program, Query, Rule};
    pub use crate::scalarity::{is_scalar, is_set_valued, Scalarity};
    pub use crate::semantics::{
        answers, entails, factorized_answers, is_model, valuate, violations, Answer, AnswerDag, Bindings,
        FactorizedAnswers, Violation,
    };
    pub use crate::snapshot::{Epoch, PinnedSnapshot, Snapshot, SnapshotRegistry, SnapshotStats};
    pub use crate::structure::{Oid, Signature, Structure, StructureStats};
    pub use crate::term::{Filter, FilterValue, Term};
    pub use crate::typing::{type_check, type_check_with, TypeCheckOptions, TypeError};
    pub use crate::wellformed::{check_well_formed, is_well_formed};
}

#[cfg(test)]
mod lib_tests {
    use crate::prelude::*;

    #[test]
    fn prelude_exposes_the_core_workflow() {
        let mut s = Structure::new();
        let engine = Engine::new();
        let rules = vec![Rule::fact(Term::name("mary").isa("employee"))];
        engine.run_rules(&mut s, &rules).unwrap();
        let q = Query::single(Term::var("X").isa("employee"));
        let solutions = engine.query(&s, &q).unwrap();
        assert_eq!(solutions.len(), 1);
    }
}
