//! Cost-based join planning and the compiled rule-body IR.
//!
//! The interpreted engine solves body literals in written order
//! (`solve_body_pass`), deduplicating every join stage through the string-y
//! canonical [`binding_key`](crate::engine::binding_key) — computed once for
//! the stage's hash set and a second time when the pass's output is sorted
//! into its canonical run.  On the delta-driven hot path (the per-literal
//! semi-naive passes of every stratum iteration) both costs are avoidable:
//!
//! * **Planning.**  [`pass_order`] reorders a rule's positive literals by
//!   estimated cost, consuming the [`RulePlanReport`] annotations the
//!   analysis subsystem already derives from live
//!   [`MethodStats`](crate::analysis::MethodStats) (PR 8)
//!   rather than re-deriving them.  Delta-drivable literals cost
//!   `min(static estimate, delta entry count)`, so a small delta seeds the
//!   join; when an index-backed literal is estimated *below* the delta
//!   cardinality the planner seeds from it instead (a *seed flip*, counted
//!   in [`EvalStats::seed_flips`](crate::engine::EvalStats)).  After the
//!   seed, literals sharing a bound variable are preferred over disconnected
//!   ones (no accidental cross products), and built-in guards are hoisted to
//!   the earliest position where all their variables are bound — never
//!   earlier.  Orders are recomputed per stratum iteration as the stats
//!   evolve ([`EvalStats::replans`](crate::engine::EvalStats)).
//!
//! * **Compilation.**  [`compile`] lowers a rule body once into a
//!   [`CompiledRule`]: every body variable gets a fixed *slot* index, and
//!   each join state carries a flat `Vec<u32>` frame (slot → object id + 1,
//!   `0` = unbound) alongside its persistent [`Bindings`] cons list.  Stage
//!   deduplication hashes the flat frames — two `u32` words per variable,
//!   no `Arc<str>` clones, no per-answer sort — and the canonical
//!   [`BindingKey`] of a surviving solution is materialized exactly once at
//!   the end, from the frame, through a pre-computed name-sorted slot
//!   permutation.
//!
//! **Why only delta passes.**  A delta pass's output always flows through
//! the sorted-run protocol (`sorted_run` / `merge_sorted_runs`), so the
//! order in which a pass *enumerates* solutions cannot influence the order
//! in which the single writer commits them — reordering is invisible to the
//! structure, the insertion logs and virtual-object allocation.  Full solves
//! (first iteration of a stratum, the naive ablation arm) and query
//! enumeration commit in enumeration order, which written-order evaluation
//! pins; they stay on the interpreted path.  This is what keeps the
//! project's core invariant — planned parallel runs bit-identical to
//! unplanned sequential runs at any worker count — true *by construction*;
//! the E21 experiment and `properties_planner` proptests assert it.
//!
//! Completeness of reordered delta passes follows from the same argument as
//! written-order semi-naive evaluation, applied to the planned order: all of
//! a rule's passes share one iteration order, so for any solution whose
//! derivation reads the window there is an *earliest* planned position whose
//! literal does — every position before it joins delta-free and is found by
//! full enumeration, and the pass restricting that literal recovers the
//! delta-reading extension (new-object channels included: the first binding
//! position of a variable is always at-or-before any later use, so the
//! variable is still unbound when the restricted literal enumerates the
//! window's new objects).
//!
//! Rules whose shape the compiler does not support — a built-in guard whose
//! variables are not bound by preceding positive literals in written order —
//! fall back to the interpreted path ([`compile`] returns `None`), as does
//! everything when [`Planner::Off`] is selected (the ablation arm).

use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

use crate::analysis::{AccessPath, RulePlanReport};
use crate::engine::executor::SortedRun;
use crate::engine::BindingKey;
use crate::error::Result;
use crate::names::{Name, Var};
use crate::program::{Literal, Rule};
use crate::semantics::{answers, delta_answers, Bindings, DeltaView};
use crate::structure::{Oid, Structure};
use crate::term::{FilterValue, Term};

/// Which rule-body evaluation strategy the engine's delta passes use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Planner {
    /// Interpreted written-order solving everywhere — the ablation arm and
    /// the reference the planned path is proven bit-identical against.
    Off,
    /// Cost-based literal reordering + the compiled slot-frame IR on every
    /// delta pass (the default).  Falls back to the interpreted path per
    /// rule when compilation does not apply.
    #[default]
    CostBased,
}

/// A pre-resolved `(method, receiver)` access path for frame-native
/// enumeration of the dominant literal shapes.  Compiled stages read the
/// fact-store indexes and write slot frames directly — no per-candidate
/// [`Bindings`] cons cells, no [`Answer`](crate::semantics::Answer)
/// allocation — until the first stage without a supported shape, where the
/// executor falls back to the interpreted `answers()` machinery.
///
/// Soundness/completeness contract: a compiled delta stage may
/// *over-approximate* the interpreted delta restriction (re-deriving a
/// solution whose derivation does not read the window is an idempotent
/// no-op under the sorted-run merge and the idempotent commit), but it must
/// emit **every** solution whose derivation does, and **only** true
/// solutions of the literal against the full structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Access {
    /// No supported shape — this stage (and the rest of the pass) runs
    /// through the interpreted `answers()` path.
    Generic,
    /// `R[m ->> {M}]`: variable receiver, name method, no arguments, one
    /// explicit variable member.
    SetMember {
        /// The method name.
        method: Name,
        /// Receiver slot.
        receiver: usize,
        /// Member slot.
        member: usize,
    },
    /// `O..p[f ->> {M}]`: a set-valued path from a variable origin through a
    /// name method, filtered by one explicit-member set filter.
    PathSetMember {
        /// The path method name (`p`).
        path: Name,
        /// Origin slot (`O`).
        origin: usize,
        /// The filter method name (`f`).
        filter: Name,
        /// Member slot (`M`).
        member: usize,
    },
    /// `V : c`: variable instance of a named class.
    IsaInstance {
        /// The class name.
        class: Name,
        /// Instance slot.
        instance: usize,
    },
}

/// One positive body literal of a [`CompiledRule`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledLiteral {
    /// Index of the literal in the rule body.
    pub body_index: usize,
    /// Slots of the variables occurring in the literal.
    pub slots: Vec<usize>,
    /// `true` for built-in guards (comparisons / `self`), which are hoisted
    /// rather than cost-ordered.
    pub builtin: bool,
    /// Estimated stored-fact cost from the [`RulePlanReport`] annotation
    /// (`usize::MAX` when unknown — e.g. a derived-only literal).
    pub cost: usize,
    /// The pre-resolved access path for frame-native enumeration.
    pub access: Access,
}

/// A pre-resolved head access path for the dominant recursive head shape
/// `X[m ->> {Y}]` (a variable receiver, one explicit set filter with a name
/// method and a single variable member).  The commit loop resolves the
/// method name to an oid once per rule batch and asserts set members
/// directly, skipping the generic head-term walk of `assert_head` — with
/// effect counters identical by construction (this shape can never create
/// virtual objects, scalar facts, is-a edges or signatures).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledHead {
    /// The head method name (resolved to an oid at commit time).
    pub method: Name,
    /// The variable the receiver is bound to.
    pub receiver: Var,
    /// The variable the inserted set member is bound to.
    pub member: Var,
    /// The receiver variable's body slot.
    pub receiver_slot: usize,
    /// The member variable's body slot.
    pub member_slot: usize,
}

/// A rule body lowered to the slot-addressed form: fixed slot indices for
/// every body variable, per-literal slot lists and cost annotations, and the
/// name-sorted slot permutation that materializes canonical binding keys
/// without a per-solution sort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledRule {
    /// Slot `i` holds the binding of `vars[i]`.
    vars: Vec<Var>,
    /// Slot indices in variable-name order — [`BindingKey`] materialization
    /// order.
    canonical: Vec<usize>,
    /// The positive literals, in body order.
    positives: Vec<CompiledLiteral>,
    /// Body indices of the negated literals, in body order.
    negations: Vec<usize>,
    /// The head fast path, when the head has the supported shape.
    head: Option<CompiledHead>,
}

impl CompiledRule {
    /// Number of variable slots.
    pub fn slot_count(&self) -> usize {
        self.vars.len()
    }

    /// The variable held by slot `i`.
    pub fn slot_var(&self, i: usize) -> &Var {
        &self.vars[i]
    }

    /// The slot of `var`, if it occurs in the body.  Bodies bind a handful
    /// of variables, so a linear scan beats hashing.
    pub fn slot_of(&self, var: &Var) -> Option<usize> {
        self.vars.iter().position(|v| v == var)
    }

    /// The compiled positive literals, in body order.
    pub fn positives(&self) -> &[CompiledLiteral] {
        &self.positives
    }

    /// Body indices of the negated literals.
    pub fn negations(&self) -> &[usize] {
        &self.negations
    }

    /// The compiled head fast path, when the head shape supports one.
    pub fn head(&self) -> Option<&CompiledHead> {
        self.head.as_ref()
    }

    /// Slot indices in variable-name order — the canonical key projection.
    pub fn canonical(&self) -> &[usize] {
        &self.canonical
    }

    /// The canonical [`BindingKey`] of a slot frame: `(name, oid)` pairs in
    /// name-sorted order, unbound slots skipped.  Identical to
    /// [`binding_key`](crate::engine::binding_key) of the corresponding
    /// [`Bindings`], computed without sorting per solution.
    fn key_of(&self, frame: &[u32]) -> BindingKey {
        self.canonical
            .iter()
            .filter_map(|&s| {
                let v = frame[s];
                (v != 0).then(|| (self.vars[s].0.clone(), v - 1))
            })
            .collect()
    }

    /// Materialize the [`Bindings`] of a slot frame (bound slots only).
    fn bindings_of(&self, frame: &[u32]) -> Bindings {
        let mut b = Bindings::new();
        for (s, &v) in frame.iter().enumerate() {
            if v != 0 {
                b = b
                    .bind(&self.vars[s], crate::structure::Oid(v - 1))
                    .expect("distinct slot variables cannot conflict");
            }
        }
        b
    }
}

/// Lower `rule`'s body into slot-addressed form, consuming the cost
/// annotations of `report` (one [`LiteralPlan`](crate::analysis::LiteralPlan)
/// per body literal, as produced by [`crate::analysis::plan_rule`]).
///
/// Returns `None` — interpreted fallback — when a built-in guard's variables
/// are not all bound by *preceding* positive non-builtin literals in written
/// order: such a guard enumerates rather than filters, and reordering it is
/// not semantics-preserving against the written-order reference.
pub fn compile(rule: &Rule, report: &RulePlanReport) -> Option<CompiledRule> {
    if report.literals.len() != rule.body.len() {
        return None;
    }
    let mut vars: Vec<Var> = Vec::new();
    let slots_of = |term: &Term, vars: &mut Vec<Var>| -> Vec<usize> {
        let mut slots: Vec<usize> = Vec::new();
        term.visit(&mut |t| {
            if let Term::Var(v) = t {
                let slot = match vars.iter().position(|w| w == v) {
                    Some(s) => s,
                    None => {
                        vars.push(v.clone());
                        vars.len() - 1
                    }
                };
                if !slots.contains(&slot) {
                    slots.push(slot);
                }
            }
        });
        slots
    };

    let mut positives = Vec::new();
    let mut negations = Vec::new();
    let mut bound: HashSet<usize> = HashSet::new();
    for (i, lit) in rule.body.iter().enumerate() {
        let slots = slots_of(&lit.term, &mut vars);
        if !lit.positive {
            negations.push(i);
            continue;
        }
        let plan = &report.literals[i];
        let builtin = plan.access == AccessPath::Builtin;
        if builtin {
            // The written-order reference only ever *filters* through this
            // guard if its variables are bound by then; anything else is not
            // safely reorderable.
            if !slots.iter().all(|s| bound.contains(s)) {
                return None;
            }
        } else {
            bound.extend(slots.iter().copied());
        }
        let cost = plan.estimated_facts.unwrap_or(usize::MAX);
        let access = if builtin {
            Access::Generic
        } else {
            compile_access(&lit.term, &vars)
        };
        positives.push(CompiledLiteral {
            body_index: i,
            slots,
            builtin,
            cost,
            access,
        });
    }

    let mut canonical: Vec<usize> = (0..vars.len()).collect();
    canonical.sort_by(|&a, &b| vars[a].0.cmp(&vars[b].0));
    let head = compile_head(&rule.head, &vars);
    Some(CompiledRule {
        vars,
        canonical,
        positives,
        negations,
        head,
    })
}

/// Recognise a literal's pre-resolvable access path (see [`Access`]).
fn compile_access(term: &Term, vars: &[Var]) -> Access {
    let slot = |v: &Var| vars.iter().position(|w| w == v);
    match term {
        Term::IsA(i) => {
            if let (Term::Var(v), Term::Name(c)) = (&i.receiver, &i.class) {
                if let Some(instance) = slot(v) {
                    return Access::IsaInstance {
                        class: c.clone(),
                        instance,
                    };
                }
            }
            Access::Generic
        }
        Term::Molecule(m) => {
            let [f] = m.filters.as_slice() else {
                return Access::Generic;
            };
            let (Term::Name(fm), [], FilterValue::SetExplicit(values)) = (&f.method, f.args.as_slice(), &f.value)
            else {
                return Access::Generic;
            };
            let [Term::Var(mv)] = values.as_slice() else {
                return Access::Generic;
            };
            let Some(member) = slot(mv) else {
                return Access::Generic;
            };
            match &m.receiver {
                Term::Var(rv) => match slot(rv) {
                    Some(receiver) => Access::SetMember {
                        method: fm.clone(),
                        receiver,
                        member,
                    },
                    None => Access::Generic,
                },
                Term::Path(p) if p.set_valued && p.args.is_empty() => {
                    let (Term::Var(ov), Term::Name(pm)) = (&p.receiver, &p.method) else {
                        return Access::Generic;
                    };
                    match slot(ov) {
                        Some(origin) => Access::PathSetMember {
                            path: pm.clone(),
                            origin,
                            filter: fm.clone(),
                            member,
                        },
                        None => Access::Generic,
                    }
                }
                _ => Access::Generic,
            }
        }
        _ => Access::Generic,
    }
}

/// Recognise the `X[m ->> {Y}]` head shape for the commit fast path.  Both
/// head variables must hold body slots (range restriction); anything else
/// keeps the generic `assert_head` walk.
fn compile_head(head: &Term, vars: &[Var]) -> Option<CompiledHead> {
    let Term::Molecule(m) = head else { return None };
    let (Term::Var(receiver), [f]) = (&m.receiver, m.filters.as_slice()) else {
        return None;
    };
    let (Term::Name(method), [], FilterValue::SetExplicit(values)) = (&f.method, f.args.as_slice(), &f.value) else {
        return None;
    };
    let [Term::Var(member)] = values.as_slice() else {
        return None;
    };
    let receiver_slot = vars.iter().position(|v| v == receiver)?;
    let member_slot = vars.iter().position(|v| v == member)?;
    Some(CompiledHead {
        method: method.clone(),
        receiver: receiver.clone(),
        member: member.clone(),
        receiver_slot,
        member_slot,
    })
}

/// The execution order of one iteration's delta passes over a compiled rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassOrder {
    /// Body indices of the positive literals, in execution order.
    pub positions: Vec<usize>,
    /// `false` when the planner put a literal cheaper than the delta ahead
    /// of every delta-drivable literal — a *seed flip*.
    pub seeded_from_delta: bool,
}

/// Order a compiled rule's positive literals for the current iteration.
///
/// `drivable` are the body indices the iteration window can drive (the
/// engine's `delta_literals` selection) and `delta_entries` the window's
/// entry count; a drivable literal costs `min(static estimate,
/// delta_entries)`.  The order is greedy: cheapest literal first, then
/// repeatedly the cheapest literal *connected* to the bound variables (ties
/// broken by body position; disconnected literals only when nothing
/// connected remains), with built-in guards emitted at the earliest position
/// where all their variables are bound.  One order is computed per rule per
/// iteration and shared by all of the rule's passes — the completeness
/// argument in the module docs relies on that.
pub fn pass_order(compiled: &CompiledRule, drivable: &[usize], delta_entries: usize) -> PassOrder {
    let mut remaining: Vec<&CompiledLiteral> = compiled.positives.iter().filter(|l| !l.builtin).collect();
    let mut builtins: Vec<&CompiledLiteral> = compiled.positives.iter().filter(|l| l.builtin).collect();
    let eff = |l: &CompiledLiteral| {
        if drivable.contains(&l.body_index) {
            l.cost.min(delta_entries)
        } else {
            l.cost
        }
    };
    let mut positions = Vec::with_capacity(compiled.positives.len());
    let mut bound: HashSet<usize> = HashSet::new();
    let flush_builtins = |bound: &HashSet<usize>, positions: &mut Vec<usize>, builtins: &mut Vec<&CompiledLiteral>| {
        builtins.retain(|b| {
            if b.slots.iter().all(|s| bound.contains(s)) {
                positions.push(b.body_index);
                false
            } else {
                true
            }
        });
    };
    while !remaining.is_empty() {
        flush_builtins(&bound, &mut positions, &mut builtins);
        let connected =
            |l: &CompiledLiteral| bound.is_empty() || l.slots.is_empty() || l.slots.iter().any(|s| bound.contains(s));
        let next = remaining
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| (!connected(l), eff(l), l.body_index))
            .map(|(i, _)| i)
            .expect("remaining is non-empty");
        let lit = remaining.remove(next);
        bound.extend(lit.slots.iter().copied());
        positions.push(lit.body_index);
    }
    flush_builtins(&bound, &mut positions, &mut builtins);
    // Guards whose variables are never bound cannot occur: `compile`
    // rejected any body where the written order leaves one unbound, and the
    // planned order binds the same variable set.
    debug_assert!(builtins.is_empty(), "unbound builtin guard survived planning");
    positions.extend(builtins.iter().map(|b| b.body_index));
    let seeded_from_delta = positions.first().is_some_and(|j| drivable.contains(j));
    PassOrder {
        positions,
        seeded_from_delta,
    }
}

/// The compiled plans one iteration's solve batch carries: per-rule compiled
/// bodies (shared across iterations of a stratum via the `Arc`) and the
/// iteration's per-rule pass orders.  Rules without an entry fall back to
/// the interpreted path.
#[derive(Debug)]
pub struct IterationPlans {
    /// Per-rule compiled bodies, indexed like the batch's rule slice
    /// (`None` = interpreted fallback).
    pub compiled: Arc<Vec<Option<CompiledRule>>>,
    /// This iteration's execution order per scheduled rule.
    pub orders: BTreeMap<usize, PassOrder>,
}

impl IterationPlans {
    /// The compiled body and iteration order for `rule`, when both exist.
    pub fn for_rule(&self, rule: usize) -> Option<(&CompiledRule, &PassOrder)> {
        match (self.compiled.get(rule), self.orders.get(&rule)) {
            (Some(Some(c)), Some(o)) => Some((c, o)),
            _ => None,
        }
    }
}

/// An [`Access`] with its names resolved to object ids against a concrete
/// structure, once per pass.  A non-generic access whose name the structure
/// does not know denotes nothing — the literal can have no stored facts and
/// no delta entries, so the pass is empty (`resolve_access` returns `Err`).
enum ResolvedAccess {
    SetMember {
        method: Oid,
        receiver: usize,
        member: usize,
    },
    PathSetMember {
        path: Oid,
        origin: usize,
        filter: Oid,
        member: usize,
    },
    IsaInstance {
        class: Oid,
        instance: usize,
    },
}

/// Resolve `access` against `structure`: `Ok(None)` = generic stage,
/// `Ok(Some(op))` = frame-native stage, `Err(())` = a name is unknown and
/// the stage (hence the pass) has no solutions.
#[allow(clippy::result_unit_err)]
fn resolve_access(structure: &Structure, access: &Access) -> std::result::Result<Option<ResolvedAccess>, ()> {
    let oid = |n: &Name| structure.lookup_name(n).ok_or(());
    match access {
        Access::Generic => Ok(None),
        Access::SetMember {
            method,
            receiver,
            member,
        } => Ok(Some(ResolvedAccess::SetMember {
            method: oid(method)?,
            receiver: *receiver,
            member: *member,
        })),
        Access::PathSetMember {
            path,
            origin,
            filter,
            member,
        } => Ok(Some(ResolvedAccess::PathSetMember {
            path: oid(path)?,
            origin: *origin,
            filter: oid(filter)?,
            member: *member,
        })),
        Access::IsaInstance { class, instance } => Ok(Some(ResolvedAccess::IsaInstance {
            class: oid(class)?,
            instance: *instance,
        })),
    }
}

/// Enumerate one frame-native stage against the full structure.  `emit`
/// receives the slot assignments of one candidate; the caller rejects
/// assignments conflicting with already-bound slots.
fn step_full(structure: &Structure, op: &ResolvedAccess, frame: &[u32], emit: &mut impl FnMut(&[(usize, Oid)])) {
    let facts = structure.facts();
    match *op {
        ResolvedAccess::SetMember {
            method,
            receiver,
            member,
        } => match (frame[receiver], frame[member]) {
            (0, 0) => {
                for fact in facts.set_facts_of_method(method) {
                    if fact.args.is_empty() {
                        for &m in fact.members.iter() {
                            emit(&[(receiver, fact.receiver), (member, m)]);
                        }
                    }
                }
            }
            (0, mv) => {
                for fact in facts.set_facts_containing(method, Oid(mv - 1)) {
                    if fact.args.is_empty() {
                        emit(&[(receiver, fact.receiver)]);
                    }
                }
            }
            (rv, 0) => {
                for fact in facts.set_facts_of_method_receiver(method, Oid(rv - 1)) {
                    if fact.args.is_empty() {
                        for &m in fact.members.iter() {
                            emit(&[(member, m)]);
                        }
                    }
                }
            }
            (rv, mv) => {
                if structure
                    .apply_set(method, Oid(rv - 1), &[])
                    .is_some_and(|run| run.contains(&Oid(mv - 1)))
                {
                    emit(&[]);
                }
            }
        },
        ResolvedAccess::PathSetMember {
            path,
            origin,
            filter,
            member,
        } => {
            let path_facts: Box<dyn Iterator<Item = crate::structure::SetFactView<'_>>> = match frame[origin] {
                0 => Box::new(facts.set_facts_of_method(path)),
                ov => Box::new(facts.set_facts_of_method_receiver(path, Oid(ov - 1))),
            };
            for pf in path_facts {
                if !pf.args.is_empty() {
                    continue;
                }
                for &t in pf.members.iter() {
                    for ff in facts.set_facts_of_method_receiver(filter, t) {
                        if ff.args.is_empty() {
                            for &y in ff.members.iter() {
                                emit(&[(origin, pf.receiver), (member, y)]);
                            }
                        }
                    }
                }
            }
        }
        ResolvedAccess::IsaInstance { class, instance } => match frame[instance] {
            0 => {
                for o in structure.instances_of(class) {
                    emit(&[(instance, o)]);
                }
            }
            iv => {
                if structure.in_class(Oid(iv - 1), class) {
                    emit(&[]);
                }
            }
        },
    }
}

/// Enumerate one frame-native stage restricted to the window `dv`.
///
/// Completeness rests on fact monotonicity: an answer of one of these
/// literal shapes is attributable to the window iff at least one fact it
/// reads entered the window's log — set-member insertion logs for the set
/// shapes (a new object cannot carry pre-window facts, so no separate
/// new-object channel is needed), and the *closure-pair* insertion log for
/// is-a (transitively derived memberships are logged pairs themselves).
fn step_delta(
    structure: &Structure,
    dv: &DeltaView,
    op: &ResolvedAccess,
    frame: &[u32],
    emit: &mut impl FnMut(&[(usize, Oid)]),
) {
    let _ = frame;
    let facts = structure.facts();
    match *op {
        ResolvedAccess::SetMember {
            method,
            receiver,
            member,
        } => {
            for &(app_idx, m) in dv.new_set_entries_of_method(method) {
                let fact = facts.set_fact_at(app_idx);
                if fact.args.is_empty() {
                    emit(&[(receiver, fact.receiver), (member, m)]);
                }
            }
        }
        ResolvedAccess::PathSetMember {
            path,
            origin,
            filter,
            member,
        } => {
            // Channel A: a new path entry `t` of some origin, joined with
            // the filter's full member sets.
            for &(app_idx, t) in dv.new_set_entries_of_method(path) {
                let pf = facts.set_fact_at(app_idx);
                if !pf.args.is_empty() {
                    continue;
                }
                for ff in facts.set_facts_of_method_receiver(filter, t) {
                    if ff.args.is_empty() {
                        for &y in ff.members.iter() {
                            emit(&[(origin, pf.receiver), (member, y)]);
                        }
                    }
                }
            }
            // Channel B: a new filter entry `y` under receiver `t`, joined
            // backwards through the member index of the path method.
            for &(app_idx, y) in dv.new_set_entries_of_method(filter) {
                let ff = facts.set_fact_at(app_idx);
                if !ff.args.is_empty() {
                    continue;
                }
                for pf in facts.set_facts_containing(path, ff.receiver) {
                    if pf.args.is_empty() {
                        emit(&[(origin, pf.receiver), (member, y)]);
                    }
                }
            }
        }
        ResolvedAccess::IsaInstance { class, instance } => {
            for &o in dv.new_instances_of(class) {
                emit(&[(instance, o)]);
            }
        }
    }
}

/// A pass's solutions as raw slot frames in canonical key order, deduplicated
/// — the allocation-free counterpart of a [`SortedRun`], produced when every
/// stage of a pass ran frame-native *and* the rule's head has a compiled
/// fast path (so the commit loop never needs `Bindings` or keys: it reads
/// the head oids straight out of each frame).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameRun {
    /// The frames, `slots` words each, in canonical key order.
    pub arena: Vec<u32>,
    /// Words per frame.
    pub slots: usize,
}

impl FrameRun {
    /// The frames, in canonical key order.
    pub fn frames(&self) -> impl Iterator<Item = &[u32]> + '_ {
        self.arena.chunks_exact(self.slots.max(1))
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.arena.len().checked_div(self.slots).unwrap_or(0)
    }

    /// Is the run empty?
    pub fn is_empty(&self) -> bool {
        self.arena.is_empty()
    }
}

/// The output of one compiled delta pass: a keyed sorted run for the generic
/// commit path, or raw frames when the rule's compiled head can commit them
/// directly.
#[derive(Debug)]
pub enum PassRun {
    /// Keyed solutions for the generic merge + `assert_head` commit.
    Sorted(SortedRun),
    /// Raw canonical-order frames for the compiled-head commit.
    Frames(FrameRun),
}

/// Merge sharded [`FrameRun`]s of one rule into a single deduplicated run in
/// canonical key order (the projection through `canonical`).  Frames that
/// compare equal under the projection are equal outright — every frame of a
/// pass binds every slot — so adjacent deduplication after the sort is
/// exact.
pub fn merge_frame_runs(mut runs: Vec<FrameRun>, canonical: &[usize]) -> FrameRun {
    if runs.len() == 1 {
        return runs.pop().expect("just checked length");
    }
    let slots = runs.first().map_or(0, |r| r.slots);
    let mut arena: Vec<u32> = Vec::with_capacity(runs.iter().map(|r| r.arena.len()).sum());
    for r in runs {
        debug_assert_eq!(r.slots, slots, "sharded runs of one rule share a slot layout");
        arena.extend_from_slice(&r.arena);
    }
    if slots == 0 {
        return FrameRun { arena, slots };
    }
    let n = arena.len() / slots;
    let mut idx: Vec<u32> = (0..n as u32).collect();
    let frame = |i: u32| &arena[i as usize * slots..i as usize * slots + slots];
    idx.sort_unstable_by(|&a, &b| {
        let (fa, fb) = (frame(a), frame(b));
        for &s in canonical {
            match fa[s].cmp(&fb[s]) {
                std::cmp::Ordering::Equal => continue,
                ord => return ord,
            }
        }
        std::cmp::Ordering::Equal
    });
    idx.dedup_by(|&mut a, &mut b| frame(a) == frame(b));
    let mut out = Vec::with_capacity(idx.len() * slots);
    for i in idx {
        out.extend_from_slice(frame(i));
    }
    FrameRun { arena: out, slots }
}

/// Sort-and-deduplicate a flat frame arena (`slots` words per frame),
/// returning the compacted arena.  Frames between stages are value sets —
/// the final canonical sort fixes the output order — so any deterministic
/// intermediate order will do.
fn dedup_frames(arena: Vec<u32>, slots: usize) -> Vec<u32> {
    let n = arena.len() / slots;
    if n < 2 {
        return arena;
    }
    let mut idx: Vec<u32> = (0..n as u32).collect();
    let frame = |i: u32| &arena[i as usize * slots..i as usize * slots + slots];
    idx.sort_unstable_by(|&a, &b| frame(a).cmp(frame(b)));
    idx.dedup_by(|&mut a, &mut b| frame(a) == frame(b));
    let mut out = Vec::with_capacity(idx.len() * slots);
    for i in idx {
        out.extend_from_slice(frame(i));
    }
    out
}

/// Execute one delta pass of `compiled` over `body` in the planned `order`:
/// positive literal `delta_lit` restricted to the window `dv`, every other
/// literal joined against the full structure.  Returns the pass's solutions
/// as a canonical [`SortedRun`] — exactly what the interpreted path produces
/// through `solve_body_pass` + `sorted_run` (up to the documented
/// over-approximation of [`Access`] delta stages, absorbed by the
/// deduplicating merge and the idempotent commit).
///
/// Execution is two segments.  Segment 1 runs the leading stages whose
/// literals have a resolved [`Access`] shape entirely on flat `u32` frames —
/// no `Bindings` cons cells, no `Answer` allocation, fact-store index walks
/// instead of term valuation.  The first built-in or generic stage ends the
/// segment: `Bindings` are materialized once per surviving frame and the
/// remaining stages (and all negation checks) run interpreted.
pub fn execute_delta(
    structure: &Structure,
    body: &[Literal],
    compiled: &CompiledRule,
    order: &PassOrder,
    delta_lit: usize,
    dv: &DeltaView,
) -> Result<PassRun> {
    let slots = compiled.slot_count();
    let last_stage = order.positions.len().saturating_sub(1);

    // Frames live in one flat arena, `slots` words per frame — one
    // allocation per stage instead of one per candidate.  A ground body has
    // no slots (no frame representation); it runs fully interpreted.
    let mut arena: Vec<u32> = vec![0; slots];
    let mut resume = 0;
    while slots > 0 && resume < order.positions.len() {
        let j = order.positions[resume];
        let lit = compiled
            .positives
            .iter()
            .find(|l| l.body_index == j)
            .expect("planned positions index positive literals");
        if lit.builtin {
            break;
        }
        let op = match resolve_access(structure, &lit.access) {
            Ok(Some(op)) => op,
            Ok(None) => break,
            Err(()) => return Ok(PassRun::Sorted(Vec::new())),
        };
        // Intermediate stages deduplicate — a duplicate frame would fan out
        // duplicated downstream work.  Frames are just value sets here
        // (the final canonical sort fixes the output order), so sort-based
        // deduplication over the arena beats a hash set: no per-candidate
        // allocation, and the rebuilt arena is scanned in order by the next
        // stage.  The final stage feeds the canonical sort, which
        // deduplicates anyway, so it skips the extra pass.
        let dedup = resume != last_stage || !compiled.negations.is_empty();
        let mut next: Vec<u32> = Vec::new();
        for frame in arena.chunks_exact(slots) {
            let mut emit = |assign: &[(usize, Oid)]| {
                let base = next.len();
                next.extend_from_slice(frame);
                for &(s, o) in assign {
                    let v = o.0 + 1;
                    let cell = &mut next[base + s];
                    if *cell != 0 && *cell != v {
                        next.truncate(base);
                        return;
                    }
                    *cell = v;
                }
            };
            if j == delta_lit {
                step_delta(structure, dv, &op, frame, &mut emit);
            } else {
                step_full(structure, &op, frame, &mut emit);
            }
        }
        arena = if dedup { dedup_frames(next, slots) } else { next };
        if arena.is_empty() {
            return Ok(PassRun::Sorted(Vec::new()));
        }
        resume += 1;
    }

    if slots > 0 && resume > last_stage && compiled.negations.is_empty() {
        // Every stage ran frame-native: sort and deduplicate the raw frames
        // through an index permutation into canonical key order.
        let mut idx: Vec<u32> = (0..(arena.len() / slots) as u32).collect();
        let canon = &compiled.canonical;
        let frame = |i: u32| &arena[i as usize * slots..i as usize * slots + slots];
        idx.sort_unstable_by(|&a, &b| {
            let (fa, fb) = (frame(a), frame(b));
            for &s in canon {
                match fa[s].cmp(&fb[s]) {
                    std::cmp::Ordering::Equal => continue,
                    ord => return ord,
                }
            }
            std::cmp::Ordering::Equal
        });
        idx.dedup_by(|&mut a, &mut b| frame(a) == frame(b));
        if compiled.head.is_some() {
            // The compiled head commits straight from the frames — no keys,
            // no `Bindings`, no per-solution allocation at all.
            let mut out = Vec::with_capacity(idx.len() * slots);
            for i in idx {
                out.extend_from_slice(frame(i));
            }
            return Ok(PassRun::Frames(FrameRun { arena: out, slots }));
        }
        return Ok(PassRun::Sorted(
            idx.into_iter()
                .map(|i| {
                    let f = frame(i);
                    (compiled.key_of(f), compiled.bindings_of(f))
                })
                .collect(),
        ));
    }

    let mut states: Vec<(Vec<u32>, Bindings)> = if slots == 0 {
        vec![(Vec::new(), Bindings::new())]
    } else {
        arena
            .chunks_exact(slots)
            .map(|f| {
                let b = compiled.bindings_of(f);
                (f.to_vec(), b)
            })
            .collect()
    };
    for (pos, &j) in order.positions.iter().enumerate().skip(resume) {
        let lit = &body[j];
        let dedup = pos != last_stage || !compiled.negations.is_empty();
        let mut next: Vec<(Vec<u32>, Bindings)> = Vec::new();
        let mut seen: HashSet<Vec<u32>> = HashSet::new();
        for (frame, s) in &states {
            let base_len = s.len();
            let lit_answers = if j == delta_lit {
                delta_answers(structure, &lit.term, s, dv)?
            } else {
                answers(structure, &lit.term, s)?
            };
            for a in lit_answers {
                let mut f = frame.clone();
                for (v, oid) in a.bindings.added_since(base_len) {
                    match compiled.slot_of(v) {
                        Some(slot) => f[slot] = oid.0 + 1,
                        // Answers only bind variables occurring in the
                        // literal, all of which have slots.
                        None => debug_assert!(false, "answer bound a variable without a slot"),
                    }
                }
                if !dedup || seen.insert(f.clone()) {
                    next.push((f, a.bindings));
                }
            }
        }
        states = next;
        if states.is_empty() {
            return Ok(PassRun::Sorted(Vec::new()));
        }
    }
    for &j in &compiled.negations {
        let lit = &body[j];
        let mut next = Vec::with_capacity(states.len());
        for (f, s) in states {
            if answers(structure, &lit.term, &s)?.is_empty() {
                next.push((f, s));
            }
        }
        states = next;
        if states.is_empty() {
            return Ok(PassRun::Sorted(Vec::new()));
        }
    }
    // Canonical order without touching strings: every surviving frame binds
    // every slot, so all keys carry the same variable-name sequence and key
    // order reduces to the object-id sequence in canonical slot order.  Sort
    // and deduplicate on the `u32` frames, then materialize one key per
    // distinct solution.
    states.sort_by(|a, b| {
        compiled
            .canonical
            .iter()
            .map(|&s| a.0[s])
            .cmp(compiled.canonical.iter().map(|&s| b.0[s]))
    });
    states.dedup_by(|a, b| a.0 == b.0);
    Ok(PassRun::Sorted(
        states.into_iter().map(|(f, b)| (compiled.key_of(&f), b)).collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::plan_rule;
    use crate::builtins::LT;
    use crate::engine::{binding_key, sorted_run};
    use crate::names::Name;
    use crate::program::Literal;
    use crate::semantics::SnapshotWindow;
    use crate::term::Filter;

    fn kids_structure() -> Structure {
        let mut s = Structure::new();
        let kids = s.ensure_name(&Name::atom("kids"));
        let person = s.ensure_name(&Name::atom("person"));
        let names = ["a", "b", "c", "d"].map(|n| s.ensure_name(&Name::atom(n)));
        s.assert_set_member(kids, names[0], &[], names[1]);
        s.assert_set_member(kids, names[1], &[], names[2]);
        s.assert_set_member(kids, names[2], &[], names[3]);
        for &n in &names {
            s.add_isa(n, person);
        }
        s
    }

    fn tc_rule() -> Rule {
        // X[desc ->> {Y}] <- X[kids ->> {Y}]
        Rule::new(
            Term::var("X").filter(Filter::set("desc", vec![Term::var("Y")])),
            vec![Literal::pos(
                Term::var("X").filter(Filter::set("kids", vec![Term::var("Y")])),
            )],
        )
    }

    fn three_literal_rule() -> Rule {
        // X[gk ->> {Z}] <- X[kids ->> {Y}], Y[kids ->> {Z}], Z : person
        Rule::new(
            Term::var("X").filter(Filter::set("gk", vec![Term::var("Z")])),
            vec![
                Literal::pos(Term::var("X").filter(Filter::set("kids", vec![Term::var("Y")]))),
                Literal::pos(Term::var("Y").filter(Filter::set("kids", vec![Term::var("Z")]))),
                Literal::pos(Term::var("Z").isa("person")),
            ],
        )
    }

    fn compile_with_stats(rule: &Rule, s: &Structure) -> CompiledRule {
        let stats = crate::analysis::MethodStats::capture(s);
        compile(rule, &plan_rule(rule, Some(&stats), None)).expect("compilable")
    }

    #[test]
    fn slots_are_first_occurrence_ordered_and_canonical_is_name_sorted() {
        let s = kids_structure();
        let rule = three_literal_rule();
        let c = compile_with_stats(&rule, &s);
        assert_eq!(c.slot_count(), 3);
        assert_eq!(c.slot_var(0), &Var::new("X"));
        assert_eq!(c.slot_var(1), &Var::new("Y"));
        assert_eq!(c.slot_var(2), &Var::new("Z"));
        assert_eq!(c.slot_of(&Var::new("Z")), Some(2));
        assert_eq!(c.canonical, vec![0, 1, 2]);
        assert_eq!(c.positives().len(), 3);
        assert_eq!(c.positives()[1].slots, vec![1, 2]);
    }

    #[test]
    fn negations_are_recorded_not_ordered() {
        let rule = Rule::new(
            Term::var("X").isa("childless"),
            vec![
                Literal::pos(Term::var("X").isa("person")),
                Literal::neg(Term::var("X").filter(Filter::set("kids", vec![Term::var("_Y")]))),
            ],
        );
        let s = kids_structure();
        let c = compile_with_stats(&rule, &s);
        assert_eq!(c.positives().len(), 1);
        assert_eq!(c.negations(), &[1]);
        let order = pass_order(&c, &[0], 10);
        assert_eq!(order.positions, vec![0]);
    }

    #[test]
    fn builtin_guard_is_hoisted_to_earliest_bound_position() {
        // A : person, B : person, A[lt -> B] — the guard can run as soon as
        // A and B are bound, i.e. right after the first two literals in any
        // order.
        let rule = Rule::new(
            Term::var("A").isa("small"),
            vec![
                Literal::pos(Term::var("A").isa("person")),
                Literal::pos(Term::var("B").isa("person")),
                Literal::pos(Term::var("A").filter(Filter::scalar(Term::name(LT), Term::var("B")))),
            ],
        );
        let s = kids_structure();
        let c = compile_with_stats(&rule, &s);
        assert!(c.positives()[2].builtin);
        let order = pass_order(&c, &[0, 1], usize::MAX);
        // Both person literals precede the guard; the guard sits right after
        // the position that binds its second variable.
        assert_eq!(order.positions.len(), 3);
        assert_eq!(order.positions[2], 2);
    }

    #[test]
    fn builtin_before_binding_literal_is_not_compiled() {
        // The guard reads B before any positive literal binds it: the
        // written-order reference never filters here, so the body is not
        // safely reorderable.
        let rule = Rule::new(
            Term::var("A").isa("small"),
            vec![
                Literal::pos(Term::var("A").isa("person")),
                Literal::pos(Term::var("A").filter(Filter::scalar(Term::name(LT), Term::var("B")))),
                Literal::pos(Term::var("B").isa("person")),
            ],
        );
        let s = kids_structure();
        let stats = crate::analysis::MethodStats::capture(&s);
        assert!(compile(&rule, &plan_rule(&rule, Some(&stats), None)).is_none());
    }

    #[test]
    fn small_delta_seeds_the_drivable_literal() {
        let s = kids_structure();
        let rule = three_literal_rule();
        let c = compile_with_stats(&rule, &s);
        // Delta of 1 entry drives literal 1: it seeds, its join partner
        // (literal 0, connected through Y) comes before the disconnected
        // person scan would otherwise win on cost.
        let order = pass_order(&c, &[1], 1);
        assert!(order.seeded_from_delta);
        assert_eq!(order.positions[0], 1);
        assert_eq!(order.positions[1], 0);
    }

    #[test]
    fn huge_delta_flips_the_seed_side() {
        let s = kids_structure();
        let rule = three_literal_rule();
        let c = compile_with_stats(&rule, &s);
        // With a delta larger than every static estimate the planner seeds
        // from the cheapest index-backed literal instead.
        let order = pass_order(&c, &[1], 1_000_000);
        assert!(!order.seeded_from_delta);
    }

    /// Normalize a pass output to a keyed run (frame runs materialize their
    /// keys and bindings through the compiled rule, exactly as the keyed
    /// exit would have).
    fn keyed(run: PassRun, compiled: &CompiledRule) -> SortedRun {
        match run {
            PassRun::Sorted(r) => r,
            PassRun::Frames(fr) => fr
                .frames()
                .map(|f| (compiled.key_of(f), compiled.bindings_of(f)))
                .collect(),
        }
    }

    #[test]
    fn single_literal_rule_compiles_and_executes_without_final_dedup() {
        let mut s = kids_structure();
        let mut window = SnapshotWindow::capture(&s);
        let kids = s.ensure_name(&Name::atom("kids"));
        let d = s.ensure_name(&Name::atom("d"));
        let a = s.ensure_name(&Name::atom("a"));
        s.assert_set_member(kids, d, &[], a);
        let dv = window.slide(&s);
        let rule = tc_rule();
        let c = compile_with_stats(&rule, &s);
        assert_eq!(c.slot_count(), 2);
        let order = pass_order(&c, &[0], 1);
        assert!(order.seeded_from_delta);
        let run = keyed(execute_delta(&s, &rule.body, &c, &order, 0, &dv).unwrap(), &c);
        let interpreted =
            sorted_run(crate::engine::solve_body_delta(&s, &rule.body, &Bindings::new(), &[0], &dv).unwrap());
        assert_eq!(
            run.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>(),
            interpreted.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn access_paths_and_head_are_recognised() {
        let s = kids_structure();
        // X[desc ->> {Y}] <- X..desc[kids ->> {Y}], X : person
        let rule = Rule::new(
            Term::var("X").filter(Filter::set("desc", vec![Term::var("Y")])),
            vec![
                Literal::pos(
                    Term::var("X")
                        .set("desc")
                        .filter(Filter::set("kids", vec![Term::var("Y")])),
                ),
                Literal::pos(Term::var("X").isa("person")),
            ],
        );
        let c = compile_with_stats(&rule, &s);
        assert_eq!(
            c.positives()[0].access,
            Access::PathSetMember {
                path: Name::atom("desc"),
                origin: 0,
                filter: Name::atom("kids"),
                member: 1,
            }
        );
        assert_eq!(
            c.positives()[1].access,
            Access::IsaInstance {
                class: Name::atom("person"),
                instance: 0,
            }
        );
        let tc = compile_with_stats(&tc_rule(), &s);
        assert_eq!(
            tc.positives()[0].access,
            Access::SetMember {
                method: Name::atom("kids"),
                receiver: 0,
                member: 1,
            }
        );
        let head = tc.head().expect("X[desc ->> {Y}] has the compiled head shape");
        assert_eq!(head.method, Name::atom("desc"));
        assert_eq!((head.receiver_slot, head.member_slot), (0, 1));
    }

    #[test]
    fn compiled_head_rules_return_frame_runs() {
        let mut s = kids_structure();
        let mut window = SnapshotWindow::capture(&s);
        let kids = s.ensure_name(&Name::atom("kids"));
        let (a, b) = (s.ensure_name(&Name::atom("a")), s.ensure_name(&Name::atom("b")));
        s.assert_set_member(kids, b, &[], a);
        let dv = window.slide(&s);
        let rule = tc_rule();
        let c = compile_with_stats(&rule, &s);
        let order = pass_order(&c, &[0], 1);
        let PassRun::Frames(fr) = execute_delta(&s, &rule.body, &c, &order, 0, &dv).unwrap() else {
            panic!("compiled-head rule with frame-native stages must yield frames");
        };
        assert_eq!(fr.slots, 2);
        let head = c.head().unwrap();
        let frames: Vec<(Oid, Oid)> = fr
            .frames()
            .map(|f| (Oid(f[head.receiver_slot] - 1), Oid(f[head.member_slot] - 1)))
            .collect();
        assert_eq!(frames, vec![(b, a)]);
    }

    #[test]
    fn negated_body_executes_like_interpreted() {
        // X[leaf_kids ->> {Y}] <- X[kids ->> {Y}], not Y[kids ->> {Z}]
        let rule = Rule::new(
            Term::var("X").filter(Filter::set("leaf_kids", vec![Term::var("Y")])),
            vec![
                Literal::pos(Term::var("X").filter(Filter::set("kids", vec![Term::var("Y")]))),
                Literal::neg(Term::var("Y").filter(Filter::set("kids", vec![Term::var("Z")]))),
            ],
        );
        let mut s = kids_structure();
        let mut window = SnapshotWindow::capture(&s);
        let kids = s.ensure_name(&Name::atom("kids"));
        let (b, e) = (s.ensure_name(&Name::atom("b")), s.ensure_name(&Name::atom("e")));
        s.assert_set_member(kids, b, &[], e);
        let dv = window.slide(&s);
        let c = compile_with_stats(&rule, &s);
        let order = pass_order(&c, &[0], dv.entry_count());
        let run = keyed(execute_delta(&s, &rule.body, &c, &order, 0, &dv).unwrap(), &c);
        let interpreted =
            sorted_run(crate::engine::solve_body_delta(&s, &rule.body, &Bindings::new(), &[0], &dv).unwrap());
        let keys: Vec<_> = run.iter().map(|(k, _)| k.clone()).collect();
        let expected: Vec<_> = interpreted.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(keys, expected);
        assert!(!run.is_empty(), "the new edge's leaf member must survive the negation");
    }

    #[test]
    fn execute_delta_matches_interpreted_pass_union() {
        let mut s = kids_structure();
        let window = SnapshotWindow::capture(&s);
        // Grow the structure: one new kids edge (d -> a closes a cycle).
        let kids = s.ensure_name(&Name::atom("kids"));
        let d = s.ensure_name(&Name::atom("d"));
        let a = s.ensure_name(&Name::atom("a"));
        s.assert_set_member(kids, d, &[], a);
        let mut window = window;
        let dv = window.slide(&s);
        let rule = three_literal_rule();
        let c = compile_with_stats(&rule, &s);

        for delta_lit in [0usize, 1] {
            let interpreted = {
                let states =
                    crate::engine::solve_body_delta(&s, &rule.body, &Bindings::new(), &[delta_lit], &dv).unwrap();
                sorted_run(states)
            };
            for delta_entries in [1usize, usize::MAX] {
                let order = pass_order(&c, &[delta_lit], delta_entries);
                let run = keyed(execute_delta(&s, &rule.body, &c, &order, delta_lit, &dv).unwrap(), &c);
                let keys: Vec<_> = run.iter().map(|(k, _)| k.clone()).collect();
                let expected: Vec<_> = interpreted.iter().map(|(k, _)| k.clone()).collect();
                assert_eq!(keys, expected, "delta_lit {delta_lit} entries {delta_entries}");
                // The frame-materialized keys agree with binding_key.
                for (k, b) in &run {
                    assert_eq!(k, &binding_key(b));
                }
            }
        }
    }
}
