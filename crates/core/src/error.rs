//! Error types shared across the core crate.

use std::fmt;

/// Errors raised while validating or evaluating PathLog references, rules and
/// programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A reference violates the well-formedness conditions of Definition 3.
    IllFormed(String),
    /// A rule violates a restriction on rule syntax (safety, set-valued head,
    /// unknown construct in a head, ...).
    InvalidRule(String),
    /// The program cannot be stratified (cyclic dependency through a
    /// set-at-a-time or negated body literal).
    NotStratifiable(String),
    /// A reference that had to be ground (variable-free under the current
    /// bindings) was not.
    NotGround(String),
    /// A name used in a read-only context is not known to the structure.
    UnknownName(String),
    /// A type (signature) violation detected by the checker.
    TypeViolation(String),
    /// Budget exceeded (fixpoint iteration or derived-fact limit).
    LimitExceeded(String),
    /// Anything else.
    Other(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::IllFormed(m) => write!(f, "ill-formed reference: {m}"),
            Error::InvalidRule(m) => write!(f, "invalid rule: {m}"),
            Error::NotStratifiable(m) => write!(f, "program is not stratifiable: {m}"),
            Error::NotGround(m) => write!(f, "reference is not ground: {m}"),
            Error::UnknownName(m) => write!(f, "unknown name: {m}"),
            Error::TypeViolation(m) => write!(f, "type violation: {m}"),
            Error::LimitExceeded(m) => write!(f, "limit exceeded: {m}"),
            Error::Other(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let e = Error::IllFormed("set valued result of scalar method".into());
        assert!(e.to_string().contains("ill-formed"));
        assert!(e.to_string().contains("scalar method"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::Other("x".into()), Error::Other("x".into()));
        assert_ne!(Error::Other("x".into()), Error::Other("y".into()));
    }
}
