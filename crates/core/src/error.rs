//! Error types shared across the core crate.

use std::fmt;

/// Which evaluation budget was exhausted (see [`Error::LimitExceeded`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LimitKind {
    /// The fixpoint did not converge within
    /// [`EvalOptions::max_iterations`](crate::engine::EvalOptions).
    Iterations,
    /// More facts were derived than
    /// [`EvalOptions::max_derived`](crate::engine::EvalOptions) allows — the
    /// guard against runaway virtual-object creation.
    DerivedFacts,
}

impl fmt::Display for LimitKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LimitKind::Iterations => write!(f, "fixpoint iterations"),
            LimitKind::DerivedFacts => write!(f, "derived facts"),
        }
    }
}

/// Errors raised while validating or evaluating PathLog references, rules and
/// programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A reference violates the well-formedness conditions of Definition 3.
    IllFormed(String),
    /// A rule violates a restriction on rule syntax (safety, set-valued head,
    /// unknown construct in a head, ...).
    InvalidRule(String),
    /// The program cannot be stratified (cyclic dependency through a
    /// set-at-a-time or negated body literal).
    NotStratifiable(String),
    /// A reference that had to be ground (variable-free under the current
    /// bindings) was not.
    NotGround(String),
    /// A name used in a read-only context is not known to the structure.
    UnknownName(String),
    /// A type (signature) violation detected by the checker.
    TypeViolation(String),
    /// An evaluation budget was exhausted.  Carries which limit was hit, its
    /// configured value and the observed count, so callers can react to the
    /// kind (retry with a larger budget, report the overshoot) without
    /// matching on formatted strings.
    LimitExceeded {
        /// Which budget was exhausted.
        kind: LimitKind,
        /// The configured limit.
        limit: usize,
        /// The value actually observed when the limit tripped.
        observed: usize,
    },
    /// A parallel executor failed to produce a result for every task of a
    /// batch — `completed` of `expected` results arrived.  This is a
    /// defensive invariant check: the executors recover panicked tasks by
    /// re-running them on the coordinator, so this error indicates a
    /// scheduling bug, not a task panic.
    LostWork {
        /// Task results that did arrive.
        completed: usize,
        /// Tasks the batch contained.
        expected: usize,
    },
    /// The static analyzer reported `Error`-severity diagnostics and the
    /// engine was configured to enforce them
    /// ([`StaticChecks::Enforce`](crate::engine::StaticChecks)).  Carries
    /// the rendered diagnostics report.
    StaticRejected(String),
    /// Anything else.
    Other(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::IllFormed(m) => write!(f, "ill-formed reference: {m}"),
            Error::InvalidRule(m) => write!(f, "invalid rule: {m}"),
            Error::NotStratifiable(m) => write!(f, "program is not stratifiable: {m}"),
            Error::NotGround(m) => write!(f, "reference is not ground: {m}"),
            Error::UnknownName(m) => write!(f, "unknown name: {m}"),
            Error::TypeViolation(m) => write!(f, "type violation: {m}"),
            Error::LimitExceeded { kind, limit, observed } => {
                write!(f, "limit exceeded: {kind} over budget ({observed} > {limit})")
            }
            Error::LostWork { completed, expected } => {
                write!(f, "parallel solve lost work items: {completed} of {expected} completed")
            }
            Error::StaticRejected(report) => {
                write!(f, "program rejected by static analysis:\n{report}")
            }
            Error::Other(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let e = Error::IllFormed("set valued result of scalar method".into());
        assert!(e.to_string().contains("ill-formed"));
        assert!(e.to_string().contains("scalar method"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::Other("x".into()), Error::Other("x".into()));
        assert_ne!(Error::Other("x".into()), Error::Other("y".into()));
    }

    #[test]
    fn limit_exceeded_carries_kind_and_values() {
        let e = Error::LimitExceeded {
            kind: LimitKind::Iterations,
            limit: 10,
            observed: 11,
        };
        assert!(e.to_string().contains("fixpoint iterations"));
        assert!(e.to_string().contains("11 > 10"));
        let e = Error::LimitExceeded {
            kind: LimitKind::DerivedFacts,
            limit: 100,
            observed: 150,
        };
        assert!(e.to_string().contains("derived facts"));
    }

    #[test]
    fn lost_work_reports_counts() {
        let e = Error::LostWork {
            completed: 3,
            expected: 5,
        };
        assert!(e.to_string().contains("3 of 5"));
    }
}
