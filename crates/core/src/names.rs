//! Names and variables — the alphabet of PathLog (Section 3 of the paper).
//!
//! The alphabet consists of a set of names `N` (which, for simplicity, also
//! contains integers and strings: the paper does not distinguish objects from
//! values) and a set of variables `V`.  Names denote objects through the name
//! interpretation `I_N`; variables are assigned objects by a
//! variable-valuation.

use std::fmt;
use std::sync::Arc;

/// A name from the alphabet `N`.
///
/// Names denote objects via `I_N` (see
/// [`Structure`](crate::structure::Structure)).  Because the paper folds
/// values into the set of names, integers and strings are names too.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Name {
    /// A symbolic name such as `employee`, `mary` or `color`.
    Atom(String),
    /// An integer literal such as `4` or `1994`.
    Int(i64),
    /// A string literal such as `"red"`.
    Str(String),
}

impl Name {
    /// Construct an atomic (symbolic) name.
    pub fn atom(s: impl Into<String>) -> Self {
        Name::Atom(s.into())
    }

    /// Construct an integer name.
    pub fn int(i: i64) -> Self {
        Name::Int(i)
    }

    /// Construct a string name.
    pub fn string(s: impl Into<String>) -> Self {
        Name::Str(s.into())
    }

    /// The symbolic text of an atom, if this name is an atom.
    pub fn as_atom(&self) -> Option<&str> {
        match self {
            Name::Atom(s) => Some(s),
            _ => None,
        }
    }

    /// The integer value, if this name is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Name::Int(i) => Some(*i),
            _ => None,
        }
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Name::Atom(s) => write!(f, "{s}"),
            Name::Int(i) => write!(f, "{i}"),
            Name::Str(s) => write!(f, "\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\"")),
        }
    }
}

impl From<&str> for Name {
    fn from(s: &str) -> Self {
        Name::Atom(s.to_owned())
    }
}

impl From<String> for Name {
    fn from(s: String) -> Self {
        Name::Atom(s)
    }
}

impl From<i64> for Name {
    fn from(i: i64) -> Self {
        Name::Int(i)
    }
}

/// A variable from the alphabet `V`.  Variables are capitalised in the
/// concrete syntax (`X`, `Boss`, `Z2`).
///
/// The name is stored behind an `Arc<str>` so that cloning a variable — and
/// with it a whole variable-valuation, which the engine's join loops do per
/// answer — is a reference-count bump instead of a string allocation.
/// Ordering, equality and hashing still compare the textual name.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub Arc<str>);

impl Var {
    /// Construct a variable from its textual name.
    pub fn new(s: impl Into<String>) -> Self {
        Var(Arc::from(s.into()))
    }

    /// The textual name of the variable.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Var {
    fn from(s: &str) -> Self {
        Var(Arc::from(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_atom_int_string() {
        assert_eq!(Name::atom("employee").to_string(), "employee");
        assert_eq!(Name::int(4).to_string(), "4");
        assert_eq!(Name::string("red").to_string(), "\"red\"");
    }

    #[test]
    fn display_string_escapes_quotes() {
        assert_eq!(Name::string("a\"b").to_string(), "\"a\\\"b\"");
        assert_eq!(Name::string("a\\b").to_string(), "\"a\\\\b\"");
    }

    #[test]
    fn accessors() {
        assert_eq!(Name::atom("x").as_atom(), Some("x"));
        assert_eq!(Name::int(7).as_atom(), None);
        assert_eq!(Name::int(7).as_int(), Some(7));
        assert_eq!(Name::atom("x").as_int(), None);
    }

    #[test]
    fn conversions() {
        assert_eq!(Name::from("mary"), Name::atom("mary"));
        assert_eq!(Name::from(30), Name::int(30));
        assert_eq!(Var::from("X"), Var::new("X"));
        assert_eq!(Var::new("Boss").name(), "Boss");
    }

    #[test]
    fn names_order_and_hash_consistently() {
        use std::collections::BTreeSet;
        let mut s = BTreeSet::new();
        s.insert(Name::atom("a"));
        s.insert(Name::int(1));
        s.insert(Name::string("a"));
        s.insert(Name::atom("a"));
        assert_eq!(s.len(), 3);
    }
}
