//! Head assertion and virtual-object creation.
//!
//! When a rule body is satisfied under a variable-valuation, the head must be
//! made true in the structure.  For molecules and `IsA` this means adding
//! method facts and class memberships.  For *paths* in the head the paper's
//! central idea applies (Section 6): "a path in a rule head may lead to the
//! definition of virtual objects".  If `X.boss` is undefined for the current
//! `X`, a fresh unnamed object is created and stored as the scalar result of
//! `boss` on `X`; because the object is addressed through that stored fact,
//! re-firing the rule is idempotent — the path itself is the skolem term.
//!
//! The same mechanism makes the generic transitive closure of Section 6 work:
//! asserting `X[(kids.tc) ->> {Y}]` first materialises an object for the
//! *method* `kids.tc` (a virtual method), then adds members to it.

use crate::error::{Error, Result};
use crate::semantics::{valuate, Bindings};
use crate::structure::{Oid, Signature, Structure};
use crate::term::{FilterValue, Term};

/// Counters describing what one head assertion added.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AssertEffect {
    /// New scalar facts.
    pub scalar_facts: usize,
    /// New set members.
    pub set_members: usize,
    /// New class memberships.
    pub isa_edges: usize,
    /// New signature declarations.
    pub signatures: usize,
    /// Virtual objects created.
    pub virtual_objects: usize,
}

impl AssertEffect {
    /// Did the assertion add anything?
    pub fn changed(&self) -> bool {
        self.scalar_facts + self.set_members + self.isa_edges + self.signatures + self.virtual_objects > 0
    }

    /// Accumulate another effect.
    pub fn absorb(&mut self, other: AssertEffect) {
        self.scalar_facts += other.scalar_facts;
        self.set_members += other.set_members;
        self.isa_edges += other.isa_edges;
        self.signatures += other.signatures;
        self.virtual_objects += other.virtual_objects;
    }
}

/// Options controlling head assertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AssertOptions {
    /// Create virtual objects for undefined scalar paths in heads.  When
    /// disabled, such heads are an error (rule (6.2)-style behaviour can be
    /// obtained by writing the path in the body instead).
    pub create_virtuals: bool,
}

impl Default for AssertOptions {
    fn default() -> Self {
        AssertOptions { create_virtuals: true }
    }
}

/// Make `head` true under `bindings`, adding facts (and virtual objects) as
/// needed.  Returns the object denoted by the head and the effect counters.
pub fn assert_head(
    structure: &mut Structure,
    head: &Term,
    bindings: &Bindings,
    options: AssertOptions,
) -> Result<(Oid, AssertEffect)> {
    let mut effect = AssertEffect::default();
    let oid = assert_term(structure, head, bindings, options, &mut effect)?;
    Ok((oid, effect))
}

/// Resolve a head sub-reference to an object, creating virtual objects for
/// undefined scalar paths, and asserting any filters it carries.
fn assert_term(
    structure: &mut Structure,
    term: &Term,
    bindings: &Bindings,
    options: AssertOptions,
    effect: &mut AssertEffect,
) -> Result<Oid> {
    match term {
        Term::Name(n) => Ok(structure.ensure_name(n)),
        Term::Var(v) => bindings.get(v).ok_or_else(|| {
            Error::InvalidRule(format!(
                "head variable {v} is unbound (unsafe rule slipped through validation)"
            ))
        }),
        Term::Paren(t) => assert_term(structure, t, bindings, options, effect),
        Term::Path(p) => {
            if p.set_valued {
                return Err(Error::InvalidRule(format!(
                    "set-valued path `{term}` cannot be asserted in a rule head"
                )));
            }
            let receiver = assert_term(structure, &p.receiver, bindings, options, effect)?;
            let method = assert_term(structure, &p.method, bindings, options, effect)?;
            let args = p
                .args
                .iter()
                .map(|a| assert_term(structure, a, bindings, options, effect))
                .collect::<Result<Vec<_>>>()?;
            if let Some(existing) = structure.apply_scalar(method, receiver, &args) {
                return Ok(existing);
            }
            if !options.create_virtuals {
                return Err(Error::InvalidRule(format!(
                    "path `{term}` is undefined and virtual-object creation is disabled"
                )));
            }
            let fresh = structure.new_virtual();
            effect.virtual_objects += 1;
            if structure.assert_scalar(method, receiver, &args, fresh)?.is_new() {
                effect.scalar_facts += 1;
            }
            Ok(fresh)
        }
        Term::IsA(i) => {
            let receiver = assert_term(structure, &i.receiver, bindings, options, effect)?;
            let class = assert_term(structure, &i.class, bindings, options, effect)?;
            if structure.add_isa(receiver, class) {
                effect.isa_edges += 1;
            }
            Ok(receiver)
        }
        Term::Molecule(m) => {
            let receiver = assert_term(structure, &m.receiver, bindings, options, effect)?;
            for f in &m.filters {
                let method = assert_term(structure, &f.method, bindings, options, effect)?;
                let args = f
                    .args
                    .iter()
                    .map(|a| assert_term(structure, a, bindings, options, effect))
                    .collect::<Result<Vec<_>>>()?;
                match &f.value {
                    FilterValue::Scalar(value) => {
                        let result = assert_term(structure, value, bindings, options, effect)?;
                        if structure.assert_scalar(method, receiver, &args, result)?.is_new() {
                            effect.scalar_facts += 1;
                        }
                    }
                    FilterValue::SetExplicit(values) => {
                        for value in values {
                            let member = assert_term(structure, value, bindings, options, effect)?;
                            if structure.assert_set_member(method, receiver, &args, member).is_new() {
                                effect.set_members += 1;
                            }
                        }
                    }
                    FilterValue::SetRef(value) => {
                        // The right-hand side is read, not created: its members
                        // must already exist (stratification guarantees the
                        // defining methods are computed).
                        let members = valuate(structure, value, bindings)?;
                        for member in members {
                            if structure.assert_set_member(method, receiver, &args, member).is_new() {
                                effect.set_members += 1;
                            }
                        }
                    }
                    FilterValue::SigScalar(results) | FilterValue::SigSet(results) => {
                        let set_valued = matches!(f.value, FilterValue::SigSet(_));
                        let result_classes = results
                            .iter()
                            .map(|r| assert_term(structure, r, bindings, options, effect))
                            .collect::<Result<Vec<_>>>()?;
                        let sig = Signature {
                            class: receiver,
                            method,
                            arg_classes: args.clone().into_boxed_slice(),
                            result_classes,
                            set_valued,
                        };
                        if structure.add_signature(sig) {
                            effect.signatures += 1;
                        }
                    }
                }
            }
            Ok(receiver)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names::{Name, Var};
    use crate::term::Filter;

    fn oid(s: &Structure, n: &str) -> Oid {
        s.lookup_name(&Name::atom(n)).unwrap()
    }

    #[test]
    fn asserting_a_ground_molecule_adds_facts() {
        let mut s = Structure::new();
        let head = Term::name("mary").filters(vec![
            Filter::scalar("age", Term::int(30)),
            Filter::set("kids", vec![Term::name("tim"), Term::name("sally")]),
        ]);
        let (obj, eff) = assert_head(&mut s, &head, &Bindings::new(), AssertOptions::default()).unwrap();
        assert_eq!(obj, oid(&s, "mary"));
        assert_eq!(eff.scalar_facts, 1);
        assert_eq!(eff.set_members, 2);
        assert_eq!(eff.virtual_objects, 0);
        assert!(eff.changed());
        // idempotent
        let (_, eff2) = assert_head(&mut s, &head, &Bindings::new(), AssertOptions::default()).unwrap();
        assert!(!eff2.changed());
    }

    #[test]
    fn asserting_isa_adds_membership() {
        let mut s = Structure::new();
        let head = Term::name("a1").isa("automobile");
        let (_, eff) = assert_head(&mut s, &head, &Bindings::new(), AssertOptions::default()).unwrap();
        assert_eq!(eff.isa_edges, 1);
        assert!(s.in_class(oid(&s, "a1"), oid(&s, "automobile")));
    }

    #[test]
    fn undefined_scalar_path_creates_a_virtual_object() {
        // X.boss[worksFor -> D] with X=p1, D=cs1 — boss undefined for p1.
        let mut s = Structure::new();
        let p1 = s.atom("p1");
        let cs1 = s.atom("cs1");
        let bindings = Bindings::from_pairs([(Var::new("X"), p1), (Var::new("D"), cs1)]).unwrap();
        let head = Term::var("X")
            .scalar("boss")
            .filter(Filter::scalar("worksFor", Term::var("D")));
        let (boss, eff) = assert_head(&mut s, &head, &bindings, AssertOptions::default()).unwrap();
        assert!(s.is_virtual(boss));
        assert_eq!(eff.virtual_objects, 1);
        assert_eq!(eff.scalar_facts, 2); // boss(p1)=v and worksFor(v)=cs1
                                         // Re-asserting reuses the same virtual object: the path is the skolem.
        let (boss2, eff2) = assert_head(&mut s, &head, &bindings, AssertOptions::default()).unwrap();
        assert_eq!(boss, boss2);
        assert!(!eff2.changed());
    }

    #[test]
    fn existing_path_result_is_reused() {
        let mut s = Structure::new();
        let (boss, p1, mary) = (s.atom("boss"), s.atom("p1"), s.atom("mary"));
        s.assert_scalar(boss, p1, &[], mary).unwrap();
        let head = Term::name("p1")
            .scalar("boss")
            .filter(Filter::scalar("age", Term::int(50)));
        let (obj, eff) = assert_head(&mut s, &head, &Bindings::new(), AssertOptions::default()).unwrap();
        assert_eq!(obj, mary);
        assert_eq!(eff.virtual_objects, 0);
        assert_eq!(eff.scalar_facts, 1);
    }

    #[test]
    fn disabled_virtuals_reject_undefined_paths() {
        let mut s = Structure::new();
        s.atom("p1");
        let head = Term::name("p1").scalar("boss");
        let err = assert_head(
            &mut s,
            &head,
            &Bindings::new(),
            AssertOptions { create_virtuals: false },
        )
        .unwrap_err();
        assert!(err.to_string().contains("virtual"));
    }

    #[test]
    fn set_valued_path_in_head_is_rejected() {
        let mut s = Structure::new();
        let head = Term::name("p1").set("kids");
        assert!(assert_head(&mut s, &head, &Bindings::new(), AssertOptions::default()).is_err());
    }

    #[test]
    fn set_ref_filter_copies_existing_members() {
        // p2[friends ->> p1..assistants]  (example 4.4)
        let mut s = Structure::new();
        let (assistants, p1) = (s.atom("assistants"), s.atom("p1"));
        let (a, b) = (s.atom("anna"), s.atom("bert"));
        s.assert_set_member(assistants, p1, &[], a);
        s.assert_set_member(assistants, p1, &[], b);
        s.atom("p2");
        s.atom("friends");
        let head = Term::name("p2").filter(Filter::set_ref("friends", Term::name("p1").set("assistants")));
        let (_, eff) = assert_head(&mut s, &head, &Bindings::new(), AssertOptions::default()).unwrap();
        assert_eq!(eff.set_members, 2);
        let friends = s.apply_set(oid(&s, "friends"), oid(&s, "p2"), &[]).unwrap();
        assert!(friends.contains(&a) && friends.contains(&b));
    }

    #[test]
    fn virtual_method_object_for_generic_tc() {
        // Asserting X[(kids.tc) ->> {tim}] creates an object for kids.tc.
        let mut s = Structure::new();
        let peter = s.atom("peter");
        let tim = s.atom("tim");
        let bindings = Bindings::from_pairs([(Var::new("X"), peter), (Var::new("Y"), tim)]).unwrap();
        let head = Term::var("X").filter(Filter::set(
            Term::name("kids").scalar("tc").paren(),
            vec![Term::var("Y")],
        ));
        let (_, eff) = assert_head(&mut s, &head, &bindings, AssertOptions::default()).unwrap();
        assert_eq!(eff.virtual_objects, 1, "an object for the method kids.tc");
        assert_eq!(eff.set_members, 1);
        // The virtual method is addressable through the path kids.tc.
        let kids = oid(&s, "kids");
        let tc = oid(&s, "tc");
        let method = s.apply_scalar(tc, kids, &[]).unwrap();
        assert!(s.apply_set(method, peter, &[]).unwrap().contains(&tim));
    }

    #[test]
    fn signature_filters_become_declarations() {
        let mut s = Structure::new();
        let head = Term::name("person").filters(vec![
            Filter {
                method: Term::name("age"),
                args: vec![],
                value: FilterValue::SigScalar(vec![Term::name("integer")]),
            },
            Filter {
                method: Term::name("kids"),
                args: vec![],
                value: FilterValue::SigSet(vec![Term::name("person")]),
            },
        ]);
        let (_, eff) = assert_head(&mut s, &head, &Bindings::new(), AssertOptions::default()).unwrap();
        assert_eq!(eff.signatures, 2);
        assert_eq!(s.signatures().len(), 2);
        // idempotent
        let (_, eff2) = assert_head(&mut s, &head, &Bindings::new(), AssertOptions::default()).unwrap();
        assert_eq!(eff2.signatures, 0);
    }

    #[test]
    fn conflicting_scalar_heads_are_an_error() {
        let mut s = Structure::new();
        assert_head(
            &mut s,
            &Term::name("mary").filter(Filter::scalar("age", Term::int(30))),
            &Bindings::new(),
            AssertOptions::default(),
        )
        .unwrap();
        let err = assert_head(
            &mut s,
            &Term::name("mary").filter(Filter::scalar("age", Term::int(31))),
            &Bindings::new(),
            AssertOptions::default(),
        );
        assert!(err.is_err());
    }
}
