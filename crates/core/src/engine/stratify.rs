//! Stratification of rule sets.
//!
//! Section 6 of the paper: "In one situation, where a path is used as a
//! result of a set valued method in a rule body, stratification of the rules
//! becomes necessary in a similar way to \[NT89\]. A rule of the following
//! structure `... <- X[friends ->> p1..assistants].` should only then be
//! applied, if the set of p1's assistants is already defined."
//!
//! We therefore compute strata over the rules such that every *strict* use
//! (the right-hand side of a `->>` filter in a body, and everything under a
//! negated literal — negation being an extension) only reads methods defined
//! in strictly earlier strata.  Ordinary (object-at-a-time) recursion stays
//! within a stratum and needs no special treatment, "similar to e.g. O-Logic".
//!
//! The relaxation fixpoint itself lives on the shared analysis graph
//! ([`crate::analysis::DependencyGraph::stratify`]); this module is a thin
//! consumer so that the strata the engine evaluates with are exactly the
//! strata the static analyzer reports.

use crate::analysis::DependencyGraph;
use crate::error::Result;
use crate::program::RuleInfo;

/// The result of stratification: rule indexes grouped by stratum, lowest
/// stratum first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stratification {
    /// `strata[i]` holds the indexes of the rules evaluated in stratum `i`.
    pub strata: Vec<Vec<usize>>,
    /// The stratum assigned to each rule.
    pub stratum_of: Vec<usize>,
}

impl Stratification {
    /// Number of strata.
    pub fn len(&self) -> usize {
        self.strata.len()
    }

    /// `true` if there are no rules at all.
    pub fn is_empty(&self) -> bool {
        self.strata.is_empty()
    }
}

/// Compute a stratification of the rules described by `infos`.
///
/// Returns [`crate::error::Error::NotStratifiable`] when a rule
/// (transitively) depends on its own definitions through a strict use.
pub fn stratify(infos: &[RuleInfo]) -> Result<Stratification> {
    DependencyGraph::from_rule_infos(infos).stratify()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Error;
    use crate::names::Name;
    use crate::program::DepKey;
    use std::collections::BTreeSet;

    fn info(defines: &[&str], uses: &[&str], strict: &[&str]) -> RuleInfo {
        RuleInfo {
            defines: defines.iter().map(|s| DepKey::Known(Name::atom(*s))).collect(),
            uses: uses.iter().map(|s| DepKey::Known(Name::atom(*s))).collect(),
            strict_uses: strict.iter().map(|s| DepKey::Known(Name::atom(*s))).collect(),
        }
    }

    #[test]
    fn empty_program() {
        let s = stratify(&[]).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn independent_rules_share_a_stratum() {
        let infos = vec![info(&["a"], &["b"], &[]), info(&["c"], &["d"], &[])];
        let s = stratify(&infos).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.strata[0], vec![0, 1]);
    }

    #[test]
    fn ordinary_recursion_stays_in_one_stratum() {
        // desc defined from kids and from desc itself (transitive closure).
        let infos = vec![info(&["desc"], &["kids"], &[]), info(&["desc"], &["desc", "kids"], &[])];
        let s = stratify(&infos).unwrap();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn strict_use_forces_a_later_stratum() {
        // rule 0 defines assistants; rule 1 reads assistants set-at-a-time.
        let infos = vec![
            info(&["assistants"], &["worksFor"], &[]),
            info(&["friendly"], &[], &["assistants"]),
        ];
        let s = stratify(&infos).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.stratum_of[0], 0);
        assert_eq!(s.stratum_of[1], 1);
    }

    #[test]
    fn strict_cycle_is_rejected() {
        // a rule that reads its own definition set-at-a-time
        let infos = vec![info(&["friends"], &[], &["friends"])];
        let err = stratify(&infos).unwrap_err();
        assert!(matches!(err, Error::NotStratifiable(_)));
    }

    #[test]
    fn mutual_strict_cycle_is_rejected() {
        let infos = vec![info(&["a"], &[], &["b"]), info(&["b"], &[], &["a"])];
        assert!(stratify(&infos).is_err());
    }

    #[test]
    fn unknown_keys_are_wildcards() {
        // Generic tc rules: defines Unknown, uses Unknown -> same stratum, fine.
        let tc = RuleInfo {
            defines: [DepKey::Unknown].into_iter().collect(),
            uses: [DepKey::Unknown].into_iter().collect(),
            strict_uses: BTreeSet::new(),
        };
        let s = stratify(&[tc.clone(), tc]).unwrap();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn chains_of_strict_uses_build_multiple_strata() {
        let infos = vec![
            info(&["a"], &[], &[]),
            info(&["b"], &[], &["a"]),
            info(&["c"], &[], &["b"]),
        ];
        let s = stratify(&infos).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.stratum_of, vec![0, 1, 2]);
    }

    #[test]
    fn negation_free_keys_do_not_interact() {
        let infos = vec![info(&["a"], &["z"], &[]), info(&["b"], &[], &["c"])];
        let s = stratify(&infos).unwrap();
        // nothing defines c, so rule 1 stays in stratum 1 with rule 0
        assert_eq!(s.len(), 1);
    }
}
