//! The executor subsystem: how the engine's solve tasks are scheduled onto
//! threads.
//!
//! Evaluation produces batches of *solve tasks* — one full body solve per
//! rule on the first iteration of a stratum, and one `(rule, drivable
//! literal, delta shard)` pass per affected rule afterwards (see
//! [`SolveTask`]).  Callers outside stratified fixpoint evaluation submit
//! *condition batches* instead ([`ConditionBatch`]): independent full body
//! solves from pre-bound seeds, the unit of the reactive layer's production
//! recognise phases and active-store quiescence rounds.  Tasks of either
//! shape only read: they run against a structure that is frozen for the
//! duration of the batch, so any subset of them may execute concurrently.
//! The [`Executor`] trait is the pluggable boundary between the engine loop
//! (which plans batches and commits their results) and the thread
//! management, with two implementations:
//!
//! * [`ScopedExecutor`] — the original spawn-per-batch path: a fresh set of
//!   `std::thread::scope` workers per batch, ~0.5 ms of spawn cost each on
//!   the reference container.  Kept as the reference arm of the E17
//!   executor ablation and for tests.
//! * [`PooledExecutor`] — a persistent [`WorkerPool`] created once per
//!   [`Engine`](super::Engine) and reused across strata, iterations and
//!   batches, so a whole `run_rules` call spawns O(workers) threads instead
//!   of O(delta solves × workers).
//!
//! The pool is implemented without `unsafe` (this crate forbids it): the
//! coordinator *moves* the structure into an [`Arc`]'d batch, broadcasts the
//! batch to the workers, participates in the work itself, and reclaims sole
//! ownership with [`Arc::try_unwrap`] once every task has completed.
//! Workers claim tasks off a shared atomic cursor, so scheduling is
//! work-stealing-ish and never depends on which worker runs what.
//!
//! **Sorted runs.**  Each delta task returns its solutions as a locally
//! *sorted run* — deduplicated and ordered by the canonical, valuation-order
//! independent [`BindingKey`] — so the sorting work happens on the workers,
//! in parallel.  The single writer then only k-way-merges the runs
//! ([`merge_sorted_runs`]): the per-element min is found by a linear scan
//! over the run heads (the run count — drivable literals × shards — is a
//! few dozen at most, where a heap's constant factors would not pay), so
//! the serial commit section of an iteration is O(solutions · runs) cheap
//! comparisons instead of a full O(solutions · log solutions) sort.  Full
//! solves skip the
//! sort: they are one task per rule whose enumeration order is already
//! deterministic (every index iterates an ordered container), and keeping
//! them sort-free keeps the naive ablation arm honest.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::thread::JoinHandle;

use crate::error::{Error, Result};
use crate::program::{Literal, Rule};
use crate::semantics::{Bindings, DeltaView};
use crate::structure::Structure;

/// Fault-injection hooks and recovery counters shared by an engine's
/// executors (and the engine's clones).
///
/// The counters on the **recovery** side are bumped by the executors
/// whenever they repair a fault: a task whose worker panicked is re-run on
/// the coordinator (`tasks_recovered`), and a pool worker whose thread died
/// to an escaped panic is replaced at the next batch broadcast
/// (`workers_respawned`).  [`super::Engine::run_rules`] snapshots them
/// around every run and surfaces the per-run deltas in
/// [`super::EvalStats`].
///
/// The **injection** side is a test/bench hook: arming `n` one-shot faults
/// makes the next `n` tasks *claimed by a worker thread* fail —
/// `inject_task_panics` panics inside the task (caught, recovered inline by
/// the coordinator), `inject_worker_kills` panics outside the catch so the
/// worker thread itself dies (exercising the pool's respawn path).  The
/// coordinator and the inline (sequential) path never consume injections,
/// so a sequential oracle run is unaffected even while faults are armed.
/// When unarmed the checks are two relaxed atomic loads per task.
#[derive(Debug, Default)]
pub struct FaultControl {
    /// Pending one-shot in-task panics (caught and recovered).
    task_panics: AtomicUsize,
    /// Pending one-shot worker-thread kills (escape the catch).
    worker_kills: AtomicUsize,
    /// Tasks re-run on the coordinator after their worker panicked.
    tasks_recovered: AtomicUsize,
    /// Dead pool workers replaced by a freshly spawned thread.
    workers_respawned: AtomicUsize,
}

impl FaultControl {
    /// Arm `n` one-shot task panics: the next `n` tasks claimed by worker
    /// threads panic inside the task and are recovered by the coordinator.
    pub fn inject_task_panics(&self, n: usize) {
        self.task_panics.fetch_add(n, Ordering::SeqCst);
    }

    /// Arm `n` one-shot worker kills: the next `n` tasks claimed by pool
    /// worker threads panic *outside* the recovery catch, killing the worker
    /// thread; the pool respawns it on the next batch broadcast.
    pub fn inject_worker_kills(&self, n: usize) {
        self.worker_kills.fetch_add(n, Ordering::SeqCst);
    }

    /// Injections armed but not yet consumed, as `(task panics, worker
    /// kills)`.
    pub fn pending(&self) -> (usize, usize) {
        (
            self.task_panics.load(Ordering::SeqCst),
            self.worker_kills.load(Ordering::SeqCst),
        )
    }

    /// Cumulative count of tasks recovered on the coordinator after a worker
    /// panic.
    pub fn tasks_recovered(&self) -> usize {
        self.tasks_recovered.load(Ordering::SeqCst)
    }

    /// Cumulative count of dead pool workers replaced by fresh threads.
    pub fn workers_respawned(&self) -> usize {
        self.workers_respawned.load(Ordering::SeqCst)
    }

    /// Consume one armed fault from `counter`; `false` when none is pending.
    fn take(counter: &AtomicUsize) -> bool {
        counter
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
    }

    fn take_task_panic(&self) -> bool {
        self.task_panics.load(Ordering::Relaxed) > 0 && Self::take(&self.task_panics)
    }

    fn take_worker_kill(&self) -> bool {
        self.worker_kills.load(Ordering::Relaxed) > 0 && Self::take(&self.worker_kills)
    }

    fn note_task_recovered(&self) {
        self.tasks_recovered.fetch_add(1, Ordering::SeqCst);
    }

    fn note_worker_respawned(&self) {
        self.workers_respawned.fetch_add(1, Ordering::SeqCst);
    }
}

/// A canonical, valuation-order independent key for a set of bindings:
/// the bound `(variable, object)` pairs in sorted order.  Two bindings with
/// equal keys denote the same valuation, so the key both deduplicates and
/// totally orders rule-body solutions — the order in which the writer
/// asserts them, and with that the order in which virtual objects are
/// allocated, in every evaluation mode.
pub type BindingKey = Vec<(std::sync::Arc<str>, u32)>;

/// A locally sorted, deduplicated sequence of keyed solutions — the output
/// of one delta task, ready for the writer's k-way merge.
pub type SortedRun = Vec<(BindingKey, Bindings)>;

/// The canonical key of `b` (see [`BindingKey`]).
pub fn binding_key(b: &Bindings) -> BindingKey {
    let mut key: BindingKey = b.iter().map(|(v, o)| (v.0.clone(), o.0)).collect();
    key.sort();
    key
}

/// Sort `solutions` into a canonical [`SortedRun`], dropping duplicate
/// valuations (first occurrence wins).
pub fn sorted_run(solutions: Vec<Bindings>) -> SortedRun {
    let mut run: SortedRun = solutions.into_iter().map(|b| (binding_key(&b), b)).collect();
    run.sort_by(|a, b| a.0.cmp(&b.0));
    run.dedup_by(|a, b| a.0 == b.0);
    run
}

/// K-way-merge canonically sorted runs into one deduplicated solution list
/// in [`BindingKey`] order.  Duplicate keys across runs collapse to the
/// first occurrence (all of them denote the same valuation).  This is the
/// single writer's merge point and the mode-identity boundary: the merged
/// list is a function of the *union* of the runs only, so any sharding of
/// the same answer set — one run per literal, per shard, or one big
/// sequential run — commits the same solutions in the same order.
pub fn merge_sorted_runs(runs: Vec<SortedRun>) -> Vec<Bindings> {
    let mut runs: Vec<SortedRun> = runs.into_iter().filter(|r| !r.is_empty()).collect();
    match runs.len() {
        0 => Vec::new(),
        1 => runs.pop().expect("one run").into_iter().map(|(_, b)| b).collect(),
        _ => {
            let mut cursor = vec![0usize; runs.len()];
            let mut out: Vec<Bindings> = Vec::with_capacity(runs.iter().map(Vec::len).sum());
            let mut last: Option<BindingKey> = None;
            loop {
                let mut min: Option<usize> = None;
                for (i, run) in runs.iter().enumerate() {
                    if cursor[i] < run.len() && min.is_none_or(|j| run[cursor[i]].0 < runs[j][cursor[j]].0) {
                        min = Some(i);
                    }
                }
                let Some(i) = min else { break };
                let slot = &mut runs[i][cursor[i]];
                let (key, b) = std::mem::replace(slot, (Vec::new(), Bindings::new()));
                cursor[i] += 1;
                if last.as_ref() != Some(&key) {
                    out.push(b);
                    last = Some(key);
                }
            }
            out
        }
    }
}

/// One schedulable unit of solve work: a rule body solved in full
/// (`delta: None`), or with one body literal restricted to one delta view
/// (`delta: Some((literal index, view index))`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveTask {
    /// Index of the rule (into the batch's rule slice) whose body this task
    /// solves.
    pub rule: usize,
    /// `None` for a full solve; `Some((l, v))` for a delta pass with
    /// positive body literal `l` restricted to the batch's view `v`.
    pub delta: Option<(usize, usize)>,
}

/// One execution round: every task of a batch runs against the same frozen
/// structure, reading the same delta views.
#[derive(Debug)]
pub struct SolveBatch {
    /// The rules of the run; tasks index into this slice.
    pub rules: Arc<[Rule]>,
    /// The delta views tasks reference by index (the iteration window, or
    /// its per-method shards).
    pub views: Vec<DeltaView>,
    /// The tasks, in deterministic schedule order.
    pub tasks: Vec<SolveTask>,
    /// Compiled bodies + this iteration's pass orders from the cost-based
    /// join planner ([`crate::plan`]); `None` (or a rule without an entry)
    /// keeps the interpreted written-order path.  Delta tasks only — full
    /// solves always run interpreted, since their enumeration order is the
    /// commit order.
    pub plans: Option<Arc<crate::plan::IterationPlans>>,
}

/// The result of one task.
#[derive(Debug)]
pub enum SolveOutput {
    /// A full solve's buffer in its (deterministic) enumeration order —
    /// deliberately unsorted, see the module docs.
    Enumerated(Vec<Bindings>),
    /// A delta pass's locally sorted, deduplicated run.
    Sorted(SortedRun),
    /// A compiled delta pass's raw slot frames in canonical key order, for
    /// rules whose compiled head commits without `Bindings` or keys.
    Frames(crate::plan::FrameRun),
}

/// One independent condition-solve job of a [`ConditionBatch`]: a full body
/// solve from a pre-bound seed (the event participants of an ECA trigger,
/// or an empty seed for a production rule's recognise phase).
#[derive(Debug, Clone)]
pub struct ConditionTask {
    /// Index into the batch's body slice.
    pub body: usize,
    /// The seed bindings the solve extends.
    pub seed: Bindings,
}

/// A batch of independent full body solves against a frozen structure — the
/// entry point for callers *outside* stratified fixpoint evaluation (the
/// reactive layer's production recognise phases and active-store quiescence
/// rounds).  Unlike [`SolveBatch`] the jobs carry seeds and arbitrary bodies
/// rather than rule/delta indices; they share the same frozen-structure
/// contract, so any subset may execute concurrently on the same pool.
#[derive(Debug)]
pub struct ConditionBatch {
    /// The distinct condition bodies; tasks index into this slice.
    pub bodies: Arc<[Vec<Literal>]>,
    /// The jobs, in deterministic order (outputs are returned in the same
    /// order).
    pub tasks: Vec<ConditionTask>,
}

/// Either batch shape the executors schedule.  Internal: the public trait
/// methods wrap and unwrap it so each caller keeps its natural result type.
#[derive(Debug)]
enum BatchKind {
    Fixpoint(SolveBatch),
    Conditions(ConditionBatch),
}

impl BatchKind {
    fn len(&self) -> usize {
        match self {
            BatchKind::Fixpoint(b) => b.tasks.len(),
            BatchKind::Conditions(b) => b.tasks.len(),
        }
    }

    /// Solve task `i` against `structure`.  Pure: reads only.
    fn run(&self, structure: &Structure, i: usize) -> Result<TaskResult> {
        match self {
            BatchKind::Fixpoint(b) => run_task(structure, b, b.tasks[i]).map(TaskResult::Fixpoint),
            BatchKind::Conditions(b) => {
                let task = &b.tasks[i];
                let solutions = super::solve_body_pass(structure, &b.bodies[task.body], &task.seed, None)?;
                // Conditions commit in canonical `binding_key` order, so the
                // sort happens here, on the worker.
                Ok(TaskResult::Conditions(sorted_run(solutions)))
            }
        }
    }
}

/// The result of one task of either batch shape.
#[derive(Debug)]
enum TaskResult {
    Fixpoint(SolveOutput),
    Conditions(SortedRun),
}

/// Unwrap fixpoint results (the batch shape guarantees the variant).
fn expect_fixpoint(results: Vec<TaskResult>) -> Vec<SolveOutput> {
    results
        .into_iter()
        .map(|r| match r {
            TaskResult::Fixpoint(o) => o,
            TaskResult::Conditions(_) => unreachable!("fixpoint batch produced a condition result"),
        })
        .collect()
}

/// Unwrap condition results (the batch shape guarantees the variant).
fn expect_conditions(results: Vec<TaskResult>) -> Vec<SortedRun> {
    results
        .into_iter()
        .map(|r| match r {
            TaskResult::Conditions(run) => run,
            TaskResult::Fixpoint(_) => unreachable!("condition batch produced a fixpoint result"),
        })
        .collect()
}

/// Solve one task of `batch` against `structure`.
fn run_task(structure: &Structure, batch: &SolveBatch, task: SolveTask) -> Result<SolveOutput> {
    let body = &batch.rules[task.rule].body;
    let seed = Bindings::new();
    match task.delta {
        None => {
            let solutions = super::solve_body_pass(structure, body, &seed, None)?;
            Ok(SolveOutput::Enumerated(solutions))
        }
        Some((lit, view)) => {
            if let Some((compiled, order)) = batch.plans.as_ref().and_then(|p| p.for_rule(task.rule)) {
                return Ok(
                    match crate::plan::execute_delta(structure, body, compiled, order, lit, &batch.views[view])? {
                        crate::plan::PassRun::Sorted(run) => SolveOutput::Sorted(run),
                        crate::plan::PassRun::Frames(fr) => SolveOutput::Frames(fr),
                    },
                );
            }
            let solutions = super::solve_body_pass(structure, body, &seed, Some((lit, &batch.views[view])))?;
            Ok(SolveOutput::Sorted(sorted_run(solutions)))
        }
    }
}

/// Solve every task on the calling thread, in order.
fn execute_inline(structure: &Structure, batch: &BatchKind) -> Result<Vec<TaskResult>> {
    (0..batch.len()).map(|i| batch.run(structure, i)).collect()
}

/// How a batch of solve tasks is mapped onto threads.
///
/// Implementations must return one output per task, in task order,
/// regardless of how the tasks were scheduled, and must leave `structure`
/// unmodified (it is `&mut` only so that pool implementations can
/// temporarily move it into shared ownership and back — tasks themselves
/// only read).
pub trait Executor: fmt::Debug {
    /// Solve every task of `batch` against the frozen `structure`.
    fn execute(&self, structure: &mut Structure, batch: SolveBatch) -> Result<Vec<SolveOutput>>;

    /// Solve every condition job of `batch` against the frozen `structure`,
    /// returning one canonically sorted, deduplicated run per job, in job
    /// order.  Each job is solved whole by one thread, so the runs are
    /// bit-identical at any worker count — the contract the reactive layer's
    /// pooled condition matching relies on.
    fn execute_conditions(&self, structure: &mut Structure, batch: ConditionBatch) -> Result<Vec<SortedRun>>;

    /// The number of worker threads this executor fans tasks over (1 means
    /// every batch runs inline on the calling thread).
    fn workers(&self) -> usize;
}

/// The spawn-per-batch executor: `std::thread::scope` workers created fresh
/// for every batch, exactly the PR 3 scheduling.  Kept as the reference /
/// ablation arm — its per-batch spawn cost (~0.5 ms per thread here) is what
/// [`PooledExecutor`] exists to amortise.
#[derive(Debug)]
pub struct ScopedExecutor {
    workers: usize,
    spawns: Arc<AtomicUsize>,
    control: Arc<FaultControl>,
}

impl ScopedExecutor {
    /// An executor fanning batches over up to `workers` scoped threads,
    /// counting every spawn into `spawns`.
    pub fn new(workers: usize, spawns: Arc<AtomicUsize>) -> Self {
        Self::with_control(workers, spawns, Arc::new(FaultControl::default()))
    }

    /// Like [`ScopedExecutor::new`], sharing the engine's [`FaultControl`] so
    /// recoveries are counted where the caller can see them.
    pub fn with_control(workers: usize, spawns: Arc<AtomicUsize>, control: Arc<FaultControl>) -> Self {
        ScopedExecutor {
            workers: workers.max(1),
            spawns,
            control,
        }
    }
}

impl ScopedExecutor {
    /// The schedule shared by both batch shapes: scoped workers claim task
    /// indices off an atomic cursor, results are re-ordered by task index.
    /// A worker panic (injected or real) is contained: the caught task's
    /// slot stays empty and is re-run on the coordinator after the scope —
    /// tasks are pure reads of the frozen structure, so the recovered result
    /// is exactly what the worker would have produced.
    fn execute_any(&self, structure: &Structure, batch: &BatchKind) -> Result<Vec<TaskResult>> {
        let threads = self.workers.min(batch.len());
        if threads <= 1 {
            return execute_inline(structure, batch);
        }
        self.spawns.fetch_add(threads, Ordering::Relaxed);
        let next = AtomicUsize::new(0);
        let control = &self.control;
        let mut slots: Vec<Option<Result<TaskResult>>> = (0..batch.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let next = &next;
                    scope.spawn(move || {
                        let mut mine: Vec<(usize, Result<TaskResult>)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= batch.len() {
                                break;
                            }
                            let run = catch_unwind(AssertUnwindSafe(|| {
                                if control.take_task_panic() {
                                    panic!("fault injection: task panic");
                                }
                                batch.run(structure, i)
                            }));
                            if let Ok(result) = run {
                                mine.push((i, result));
                            }
                            // A panicked task leaves its slot empty; the
                            // coordinator re-runs it below.
                        }
                        mine
                    })
                })
                .collect();
            for h in handles {
                // A worker killed by a panic that escaped the catch loses its
                // whole local result list; those tasks are recovered inline
                // below like any other missing slot.
                if let Ok(mine) = h.join() {
                    for (i, result) in mine {
                        slots[i] = Some(result);
                    }
                }
            }
        });
        for (i, slot) in slots.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(batch.run(structure, i));
                control.note_task_recovered();
            }
        }
        let completed = slots.iter().filter(|s| s.is_some()).count();
        if completed != batch.len() {
            return Err(Error::LostWork {
                completed,
                expected: batch.len(),
            });
        }
        slots.into_iter().map(|s| s.expect("checked complete")).collect()
    }
}

impl Executor for ScopedExecutor {
    fn execute(&self, structure: &mut Structure, batch: SolveBatch) -> Result<Vec<SolveOutput>> {
        self.execute_any(structure, &BatchKind::Fixpoint(batch))
            .map(expect_fixpoint)
    }

    fn execute_conditions(&self, structure: &mut Structure, batch: ConditionBatch) -> Result<Vec<SortedRun>> {
        self.execute_any(structure, &BatchKind::Conditions(batch))
            .map(expect_conditions)
    }

    fn workers(&self) -> usize {
        self.workers
    }
}

/// A counting latch: the coordinator waits until `target` arrivals.
#[derive(Default)]
struct Latch {
    count: Mutex<usize>,
    cv: Condvar,
}

impl Latch {
    fn arrive(&self) {
        let mut count = self.count.lock().expect("latch poisoned");
        *count += 1;
        self.cv.notify_all();
    }

    fn wait_until(&self, target: usize) {
        let mut count = self.count.lock().expect("latch poisoned");
        while *count < target {
            count = self.cv.wait(count).expect("latch poisoned");
        }
    }
}

/// Arrive at the latch when dropped — runs even if the task panicked, so the
/// coordinator never waits forever; the missing result slot is then re-run
/// by the coordinator instead of deadlocking the batch.
struct ArriveOnDrop<'a>(&'a Latch);

impl Drop for ArriveOnDrop<'_> {
    fn drop(&mut self) {
        self.0.arrive();
    }
}

/// Everything one pooled batch shares between the coordinator and the
/// workers.  The structure lives *inside* (moved in by the coordinator,
/// moved back out once it is the sole owner again), which is what makes the
/// pool safe without `unsafe`: workers can never outlive their access.
struct PooledBatch {
    structure: Structure,
    batch: BatchKind,
    next: AtomicUsize,
    results: Mutex<Vec<Option<Result<TaskResult>>>>,
    progress: Latch,
    control: Arc<FaultControl>,
}

impl PooledBatch {
    /// Claim and solve tasks until the cursor is exhausted.  Called by every
    /// participating worker (`pool_worker: true`) *and* by the coordinator
    /// itself (`pool_worker: false`).  A task that panics under the catch
    /// leaves its result slot empty; [`ArriveOnDrop`] still arrives at the
    /// latch, and the coordinator re-runs the slot after reclaiming the
    /// batch.  Injected *task panics* land inside the catch and are
    /// therefore safe for any claimant — including the coordinator, which
    /// guarantees a pending injection is consumed even when a small batch
    /// drains before a parked worker wakes.  An injected *worker kill*
    /// panics outside the catch, unwinding the claiming thread itself, so
    /// only pool workers consume kills (the coordinator must survive to
    /// drain the batch); the dead worker's slot is likewise recovered, and
    /// the pool respawns the thread at the next broadcast.
    fn work(&self, pool_worker: bool) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.batch.len() {
                break;
            }
            let _arrive = ArriveOnDrop(&self.progress);
            if pool_worker && self.control.take_worker_kill() {
                panic!("fault injection: worker kill");
            }
            let run = catch_unwind(AssertUnwindSafe(|| {
                if self.control.take_task_panic() {
                    panic!("fault injection: task panic");
                }
                self.batch.run(&self.structure, i)
            }));
            if let Ok(result) = run {
                self.results.lock().expect("results poisoned")[i] = Some(result);
            }
        }
    }
}

/// A persistent pool of parked worker threads, created once and reused for
/// every batch of every run of an [`Engine`](super::Engine) (clones share
/// it).  Each worker owns a private wake-up channel: the coordinator sends
/// one [`Weak`] handle on the batch per worker, so no lock is ever held
/// while a thread is parked, and a stale wake-up (a worker that never got
/// scheduled before the batch ran dry) holds no ownership — the coordinator
/// can reclaim the structure without waiting for laggards to drain their
/// queues.  Dropping the last pool handle closes the channels and joins the
/// threads.
///
/// The pool is **self-healing**: a worker whose thread dies to an escaped
/// panic (task code panicking is a bug, but fault injection exercises the
/// path deliberately) is detected at the next broadcast —
/// either its [`JoinHandle`] reports finished or the send into its wake-up
/// channel fails because the receiver was dropped during the unwind — and
/// replaced by a freshly spawned thread, counted into
/// [`FaultControl::workers_respawned`].  The batch the worker died on is
/// still completed by the coordinator (`PooledBatch::work` recovers the
/// missing slot), so a panic costs one respawn and zero correctness:
/// effective parallelism returns to [`WorkerPool::workers`] by the next
/// batch.
pub struct WorkerPool {
    slots: Mutex<WorkerSlots>,
    workers: usize,
    spawns: Arc<AtomicUsize>,
    control: Arc<FaultControl>,
}

/// The respawnable per-worker state: wake-up channel sender plus join
/// handle, index-aligned.  `None` handles mark workers whose OS thread
/// could not be spawned; their sends fail and trigger a respawn attempt.
struct WorkerSlots {
    senders: Vec<Sender<Weak<PooledBatch>>>,
    handles: Vec<Option<JoinHandle<()>>>,
}

impl fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool").field("workers", &self.workers).finish()
    }
}

impl WorkerPool {
    /// Spawn a pool of `workers` parked threads, counting the spawns into
    /// `spawns`.
    pub fn new(workers: usize, spawns: &Arc<AtomicUsize>) -> Self {
        Self::with_control(workers, spawns, Arc::new(FaultControl::default()))
    }

    /// Like [`WorkerPool::new`], sharing the engine's [`FaultControl`] so
    /// injected faults reach the workers and respawns are counted where the
    /// caller can see them.
    pub fn with_control(workers: usize, spawns: &Arc<AtomicUsize>, control: Arc<FaultControl>) -> Self {
        let workers = workers.max(1);
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let (sender, handle) = Self::spawn_worker(i, spawns);
            senders.push(sender);
            handles.push(handle);
        }
        WorkerPool {
            slots: Mutex::new(WorkerSlots { senders, handles }),
            workers,
            spawns: Arc::clone(spawns),
            control,
        }
    }

    /// Spawn the parked worker thread for slot `i`.  On OS spawn failure the
    /// handle is `None` and the returned sender's channel is already closed
    /// (the receiver died with the never-run closure), so broadcasts notice
    /// and retry the spawn.
    fn spawn_worker(i: usize, spawns: &Arc<AtomicUsize>) -> (Sender<Weak<PooledBatch>>, Option<JoinHandle<()>>) {
        let (sender, receiver): (Sender<Weak<PooledBatch>>, Receiver<Weak<PooledBatch>>) = channel();
        let spawned = std::thread::Builder::new()
            .name(format!("pathlog-worker-{i}"))
            .spawn(move || {
                while let Ok(weak) = receiver.recv() {
                    // A failed upgrade is a stale wake-up for a batch
                    // that already completed without this worker.
                    if let Some(shared) = weak.upgrade() {
                        shared.work(true);
                    }
                }
                // channel closed: pool dropped (or this slot was respawned)
            });
        match spawned {
            Ok(handle) => {
                spawns.fetch_add(1, Ordering::Relaxed);
                (sender, Some(handle))
            }
            Err(_) => (sender, None),
        }
    }

    /// The number of worker threads the pool was created with.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The fault control shared with this pool's workers.
    pub fn control(&self) -> &Arc<FaultControl> {
        &self.control
    }

    /// Replace the dead worker in slot `i` with a fresh thread, counting the
    /// respawn.  The old handle (if any) is joined first — the thread is
    /// already finished or far into its unwind, so the join is prompt — and
    /// its panic payload discarded.
    fn respawn(&self, slots: &mut WorkerSlots, i: usize) {
        if let Some(dead) = slots.handles[i].take() {
            let _ = dead.join();
        }
        let (sender, handle) = Self::spawn_worker(i, &self.spawns);
        if handle.is_some() {
            self.control.note_worker_respawned();
        }
        slots.senders[i] = sender;
        slots.handles[i] = handle;
    }

    /// Wake every worker with its own (weak) handle on `shared`, respawning
    /// workers found dead (finished handle, or send failure because the
    /// receiver was dropped by the unwinding thread).
    fn broadcast(&self, shared: &Arc<PooledBatch>) {
        let mut slots = self.slots.lock().expect("pool poisoned");
        for i in 0..slots.senders.len() {
            if slots.handles[i].as_ref().is_some_and(|h| h.is_finished()) {
                self.respawn(&mut slots, i);
            }
            if slots.senders[i].send(Arc::downgrade(shared)).is_err() {
                self.respawn(&mut slots, i);
                let _ = slots.senders[i].send(Arc::downgrade(shared));
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        let mut slots = self.slots.lock().expect("pool poisoned");
        slots.senders.clear(); // closes the channels; workers exit their loops
        for handle in slots.handles.drain(..).flatten() {
            let _ = handle.join();
        }
    }
}

/// The pooled executor: batches are broadcast to a persistent
/// [`WorkerPool`]; the coordinator moves the structure into the shared batch,
/// works alongside the pool, and reclaims sole ownership when every task has
/// completed.  Thread spawns per `run_rules` drop from O(delta solves ×
/// workers) to O(workers) — see the E17 executor ablation.
#[derive(Debug, Clone)]
pub struct PooledExecutor {
    pool: Arc<WorkerPool>,
}

impl PooledExecutor {
    /// An executor backed by `pool`.
    pub fn new(pool: Arc<WorkerPool>) -> Self {
        PooledExecutor { pool }
    }
}

impl PooledExecutor {
    /// The Arc-handoff protocol shared by both batch shapes (see the type
    /// docs): move the structure in, broadcast, work, latch, reclaim.
    fn execute_any(&self, structure: &mut Structure, batch: BatchKind) -> Result<Vec<TaskResult>> {
        let n_tasks = batch.len();
        if self.pool.workers() <= 1 || n_tasks <= 1 {
            return execute_inline(structure, &batch);
        }
        let shared = Arc::new(PooledBatch {
            structure: std::mem::take(structure),
            batch,
            next: AtomicUsize::new(0),
            results: Mutex::new((0..n_tasks).map(|_| None).collect()),
            progress: Latch::default(),
            control: Arc::clone(self.pool.control()),
        });
        self.pool.broadcast(&shared);
        // The coordinator participates instead of blocking, which also keeps
        // the batch finite when workers died (every task it claims completes
        // on this thread).
        shared.work(false);
        shared.progress.wait_until(n_tasks);
        // Reclaim sole ownership.  Wake-ups are weak, so queued stragglers
        // hold nothing; after the latch the only other holders are workers
        // in the instant between their last (empty) claim and their drop,
        // which resolves within a yield or two — exactly the window
        // `snapshot::reclaim_arc` is built for.
        let inner = crate::snapshot::reclaim_arc(shared);
        let PooledBatch {
            structure: frozen,
            batch,
            results,
            control,
            ..
        } = inner;
        *structure = frozen;
        let mut results = results.into_inner().expect("results poisoned");
        // Recovery: a task whose worker panicked left its slot empty.  Tasks
        // are pure functions of (structure, batch, index), so re-running one
        // here yields exactly the result the dead worker would have produced
        // — recovered batches stay bit-identical to fault-free ones.
        for (i, slot) in results.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(batch.run(structure, i));
                control.note_task_recovered();
            }
        }
        let completed = results.iter().filter(|r| r.is_some()).count();
        if completed != n_tasks {
            return Err(Error::LostWork {
                completed,
                expected: n_tasks,
            });
        }
        results.into_iter().map(|r| r.expect("checked complete")).collect()
    }
}

impl Executor for PooledExecutor {
    fn execute(&self, structure: &mut Structure, batch: SolveBatch) -> Result<Vec<SolveOutput>> {
        self.execute_any(structure, BatchKind::Fixpoint(batch))
            .map(expect_fixpoint)
    }

    fn execute_conditions(&self, structure: &mut Structure, batch: ConditionBatch) -> Result<Vec<SortedRun>> {
        self.execute_any(structure, BatchKind::Conditions(batch))
            .map(expect_conditions)
    }

    fn workers(&self) -> usize {
        self.pool.workers()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names::Var;
    use crate::program::{Literal, Rule};
    use crate::structure::Oid;
    use crate::term::{Filter, Term};

    fn keyed(pairs: &[(&str, u32)]) -> (BindingKey, Bindings) {
        let bindings = Bindings::from_pairs(pairs.iter().map(|&(v, o)| (Var::new(v), Oid(o)))).unwrap();
        (binding_key(&bindings), bindings)
    }

    #[test]
    fn sorted_run_orders_and_deduplicates() {
        let b1 = Bindings::from_pairs([(Var::new("X"), Oid(3))]).unwrap();
        let b2 = Bindings::from_pairs([(Var::new("X"), Oid(1))]).unwrap();
        let b2_dup = Bindings::from_pairs([(Var::new("X"), Oid(1))]).unwrap();
        let run = sorted_run(vec![b1, b2, b2_dup]);
        assert_eq!(run.len(), 2);
        assert!(run[0].0 < run[1].0, "ascending key order");
        assert_eq!(run[0].1.get(&Var::new("X")), Some(Oid(1)));
    }

    #[test]
    fn merge_sorted_runs_is_a_canonical_union() {
        let (k1, b1) = keyed(&[("X", 1), ("Y", 2)]);
        let (k2, b2) = keyed(&[("X", 2), ("Y", 1)]);
        let (k3, b3) = keyed(&[("X", 3), ("Y", 3)]);
        // k2 appears in both runs; the merge must emit it once.
        let merged = merge_sorted_runs(vec![
            vec![(k1.clone(), b1), (k2.clone(), b2.clone())],
            vec![(k2, b2), (k3, b3)],
        ]);
        assert_eq!(merged.len(), 3);
        let xs: Vec<Option<Oid>> = merged.iter().map(|b| b.get(&Var::new("X"))).collect();
        assert_eq!(xs, vec![Some(Oid(1)), Some(Oid(2)), Some(Oid(3))]);
        // Merging the same answers as one big run yields the same list.
        let (k1, b1) = keyed(&[("X", 1), ("Y", 2)]);
        let (k2, b2) = keyed(&[("X", 2), ("Y", 1)]);
        let (k3, b3) = keyed(&[("X", 3), ("Y", 3)]);
        let single = merge_sorted_runs(vec![vec![(k1, b1), (k2, b2), (k3, b3)]]);
        let xs1: Vec<Option<Oid>> = single.iter().map(|b| b.get(&Var::new("X"))).collect();
        assert_eq!(xs, xs1, "sharding must not change the committed order");
        assert!(merge_sorted_runs(vec![]).is_empty());
        assert!(merge_sorted_runs(vec![vec![], vec![]]).is_empty());
    }

    /// A small structure + rule whose batch has several tasks, executed by
    /// every executor; all must return identical outputs in task order.
    fn executor_fixture() -> (Structure, SolveBatch) {
        let mut s = Structure::new();
        let kids = s.atom("kids");
        let nodes: Vec<Oid> = (0..20).map(|i| s.atom(&format!("n{i}"))).collect();
        for w in nodes.windows(2) {
            s.assert_set_member(kids, w[0], &[], w[1]);
        }
        let rule = Rule::new(
            Term::var("X").filter(Filter::set("desc", vec![Term::var("Y")])),
            vec![Literal::pos(
                Term::var("X").filter(Filter::set("kids", vec![Term::var("Y")])),
            )],
        );
        let window = crate::semantics::SnapshotWindow::capture(&s);
        let mut grown = s.clone();
        let desc = grown.atom("desc");
        for w in nodes.windows(2) {
            grown.assert_set_member(desc, w[0], &[], w[1]);
        }
        let mut window = window;
        let dv = window.slide(&grown);
        let rules: Arc<[Rule]> = vec![rule].into();
        let batch = SolveBatch {
            rules,
            views: vec![dv],
            tasks: vec![
                SolveTask { rule: 0, delta: None },
                SolveTask {
                    rule: 0,
                    delta: Some((0, 0)),
                },
            ],
            plans: None,
        };
        (grown, batch)
    }

    fn output_shape(outputs: &[SolveOutput]) -> Vec<(bool, usize)> {
        outputs
            .iter()
            .map(|o| match o {
                SolveOutput::Enumerated(v) => (false, v.len()),
                SolveOutput::Sorted(r) => (true, r.len()),
                SolveOutput::Frames(fr) => (true, fr.len()),
            })
            .collect()
    }

    #[test]
    fn scoped_and_pooled_executors_agree_with_inline_execution() {
        let spawns = Arc::new(AtomicUsize::new(0));
        let (s, batch) = executor_fixture();
        let inline = expect_fixpoint(execute_inline(&s, &BatchKind::Fixpoint(batch)).unwrap());
        assert_eq!(output_shape(&inline), vec![(false, 19), (true, 0)]);

        let (mut s2, batch2) = executor_fixture();
        let scoped = ScopedExecutor::new(3, Arc::clone(&spawns));
        let scoped_out = scoped.execute(&mut s2, batch2).unwrap();
        assert_eq!(output_shape(&scoped_out), output_shape(&inline));
        assert_eq!(spawns.load(Ordering::Relaxed), 2, "one scoped thread per task");

        let pool = Arc::new(WorkerPool::new(3, &spawns));
        let pooled = PooledExecutor::new(Arc::clone(&pool));
        let (mut s3, batch3) = executor_fixture();
        let pooled_out = pooled.execute(&mut s3, batch3).unwrap();
        assert_eq!(output_shape(&pooled_out), output_shape(&inline));
        // The pool spawned exactly its workers, once.
        assert_eq!(spawns.load(Ordering::Relaxed), 2 + 3);
        // The structure was moved out and back unchanged.
        assert_eq!(s3.canonical_dump(), s.canonical_dump());
        // Reuse: a second batch spawns nothing new.
        let (mut s4, batch4) = executor_fixture();
        pooled.execute(&mut s4, batch4).unwrap();
        assert_eq!(spawns.load(Ordering::Relaxed), 2 + 3);
        drop(pooled);
        drop(pool); // joins the workers
    }

    #[test]
    fn pooled_executor_runs_tiny_batches_inline() {
        let spawns = Arc::new(AtomicUsize::new(0));
        let pool = Arc::new(WorkerPool::new(2, &spawns));
        let pooled = PooledExecutor::new(pool);
        let (mut s, mut batch) = executor_fixture();
        batch.tasks.truncate(1);
        let out = pooled.execute(&mut s, batch).unwrap();
        assert_eq!(output_shape(&out), vec![(false, 19)]);
    }

    /// A condition batch over the fixture's structure: one seeded and one
    /// unseeded full body solve, executed by every executor; all must return
    /// the same canonically sorted runs in job order.
    fn condition_fixture() -> (Structure, ConditionBatch) {
        let (s, _) = executor_fixture();
        let n0 = s.lookup_name(&crate::names::Name::atom("n0")).unwrap();
        let bodies: Arc<[Vec<Literal>]> = vec![
            vec![Literal::pos(
                Term::var("X").filter(Filter::set("kids", vec![Term::var("Y")])),
            )],
            vec![Literal::pos(
                Term::var("X").filter(Filter::set("desc", vec![Term::var("Y")])),
            )],
        ]
        .into();
        let seed = Bindings::from_pairs([(Var::new("X"), n0)]).unwrap();
        let batch = ConditionBatch {
            bodies,
            tasks: vec![
                ConditionTask {
                    body: 0,
                    seed: Bindings::new(),
                },
                ConditionTask { body: 0, seed },
                ConditionTask {
                    body: 1,
                    seed: Bindings::new(),
                },
            ],
        };
        (s, batch)
    }

    #[test]
    fn condition_batches_return_identical_sorted_runs_on_every_executor() {
        let spawns = Arc::new(AtomicUsize::new(0));
        let (s, batch) = condition_fixture();
        let inline = expect_conditions(execute_inline(&s, &BatchKind::Conditions(batch)).unwrap());
        // 19 kids edges in full, 1 from the seeded receiver, 19 desc edges.
        assert_eq!(inline.iter().map(Vec::len).collect::<Vec<_>>(), vec![19, 1, 19]);
        // Runs are canonically sorted.
        for run in &inline {
            assert!(run.windows(2).all(|w| w[0].0 < w[1].0), "ascending key order");
        }
        let keys = |runs: &[SortedRun]| -> Vec<Vec<BindingKey>> {
            runs.iter()
                .map(|r| r.iter().map(|(k, _)| k.clone()).collect())
                .collect()
        };

        let (mut s2, batch2) = condition_fixture();
        let scoped = ScopedExecutor::new(3, Arc::clone(&spawns));
        let scoped_out = scoped.execute_conditions(&mut s2, batch2).unwrap();
        assert_eq!(keys(&scoped_out), keys(&inline));

        let pool = Arc::new(WorkerPool::new(3, &spawns));
        let pooled = PooledExecutor::new(pool);
        let (mut s3, batch3) = condition_fixture();
        let pooled_out = pooled.execute_conditions(&mut s3, batch3).unwrap();
        assert_eq!(keys(&pooled_out), keys(&inline));
        // The structure was moved out and back unchanged.
        assert_eq!(s3.canonical_dump(), s.canonical_dump());
    }

    #[test]
    fn scoped_executor_recovers_injected_task_panics() {
        let spawns = Arc::new(AtomicUsize::new(0));
        let (s, batch) = executor_fixture();
        let baseline = output_shape(&expect_fixpoint(
            execute_inline(&s, &BatchKind::Fixpoint(batch)).unwrap(),
        ));

        let control = Arc::new(FaultControl::default());
        let scoped = ScopedExecutor::with_control(3, spawns, Arc::clone(&control));
        control.inject_task_panics(1);
        let (mut s2, batch2) = executor_fixture();
        let out = scoped.execute(&mut s2, batch2).unwrap();
        assert_eq!(output_shape(&out), baseline, "recovered batch is identical");
        // Scoped workers claim every task (the coordinator does not
        // participate), so the single armed panic was definitely consumed
        // and its task definitely recovered.
        assert_eq!(control.pending(), (0, 0));
        assert_eq!(control.tasks_recovered(), 1);
    }

    #[test]
    fn pooled_executor_recovers_injected_task_panics() {
        let spawns = Arc::new(AtomicUsize::new(0));
        let control = Arc::new(FaultControl::default());
        let pool = Arc::new(WorkerPool::with_control(3, &spawns, Arc::clone(&control)));
        let pooled = PooledExecutor::new(pool);
        let (s, batch) = executor_fixture();
        let baseline = output_shape(&expect_fixpoint(
            execute_inline(&s, &BatchKind::Fixpoint(batch)).unwrap(),
        ));
        // The coordinator races the workers for tasks and never consumes
        // injections, so whether an armed panic fires in any one batch is
        // timing-dependent; every batch must come out identical regardless,
        // and across enough batches a worker claims a task and panics.
        let mut recovered = false;
        for _ in 0..200 {
            if control.pending().0 == 0 {
                control.inject_task_panics(1);
            }
            let (mut s2, batch2) = executor_fixture();
            let out = pooled.execute(&mut s2, batch2).unwrap();
            assert_eq!(output_shape(&out), baseline);
            assert_eq!(s2.canonical_dump(), s.canonical_dump());
            if control.tasks_recovered() >= 1 {
                recovered = true;
                break;
            }
        }
        assert!(recovered, "no injected task panic was consumed in 200 batches");
    }

    #[test]
    fn pooled_executor_survives_worker_kills_and_respawns_the_pool() {
        let spawns = Arc::new(AtomicUsize::new(0));
        let control = Arc::new(FaultControl::default());
        let pool = Arc::new(WorkerPool::with_control(3, &spawns, Arc::clone(&control)));
        let pooled = PooledExecutor::new(Arc::clone(&pool));
        let (s, batch) = executor_fixture();
        let baseline = output_shape(&expect_fixpoint(
            execute_inline(&s, &BatchKind::Fixpoint(batch)).unwrap(),
        ));
        let mut respawned = false;
        for _ in 0..200 {
            if control.pending().1 == 0 {
                control.inject_worker_kills(1);
            }
            let (mut s2, batch2) = executor_fixture();
            let out = pooled.execute(&mut s2, batch2).unwrap();
            // Every solve completes bit-identically even while workers die.
            assert_eq!(output_shape(&out), baseline);
            assert_eq!(s2.canonical_dump(), s.canonical_dump());
            // Respawn happens at the *next* broadcast after a death, hence
            // the loop rather than a single-shot assertion.
            if control.workers_respawned() >= 1 {
                respawned = true;
                break;
            }
        }
        assert!(respawned, "no killed worker was respawned in 200 batches");
        assert_eq!(pool.workers(), 3, "advertised parallelism is unchanged");
    }
}
