//! Bottom-up evaluation of PathLog programs (Section 6 of the paper).
//!
//! The engine validates a program, stratifies its rules (see [`stratify`]),
//! and then computes the least fixpoint stratum by stratum: in each
//! iteration every (relevant) rule's body is solved against the current
//! structure and its head asserted for every solution, creating virtual
//! objects for undefined head paths (see the `virtuals` module).  Iteration stops when
//! no rule adds new information.
//!
//! With [`EvalOptions::delta_driven`] enabled (the default) the fixpoint is
//! computed **semi-naively** at the granularity of body literals.  The
//! engine captures watermarks ([`EvalMarks`]) of the structure at every
//! iteration boundary; the facts between two consecutive watermarks — new
//! scalar results, set members, is-a closure pairs, objects and signatures —
//! form the iteration's *delta* ([`DeltaView`], an O(delta) slice of the
//! fact-store insertion logs).  A rule whose read set intersects the changed
//! dependency keys is then solved once per affected body literal, with that
//! literal restricted to answers whose derivation reads the delta
//! ([`crate::semantics::delta_answers`]) while the remaining literals join
//! against the full structure.  Any firing that could add new information
//! reads at least one fact derived in the previous iteration, so the union
//! of these per-literal delta solves is complete; rules none of whose keys
//! changed are skipped outright.  On recursive workloads (the transitive
//! closures of Section 6) this turns each iteration from O(|closure|) into
//! O(|delta|).
//!
//! With `delta_driven: false` every rule is re-solved in full each iteration
//! — the naive evaluation kept as the ablation arm of the
//! `ablation_delta_driven` experiment, and as the oracle the property tests
//! compare the semi-naive evaluation against.
//!
//! Orchestration is delegated to the [`executor`] subsystem.  Under the
//! default [`Schedule::CrossRule`] every stratum iteration is a two-phase
//! commit: a single **snapshot window** ([`SnapshotWindow`], watermarks over
//! the `Facts`/`Isa` insertion logs) is captured at the iteration boundary
//! and shared by all rules of the stratum; every affected rule's `(rule,
//! drivable literal, delta shard)` task is scheduled into one work queue and
//! solved against the *frozen* structure (phase 1); then the single writer
//! commits each rule's solutions in stratum order, each rule's delta runs
//! k-way-merged in canonical `binding_key` order (phase 2).  Because phase 1
//! is pure and phase 2 is a deterministic function of its outputs, a run
//! under [`EvalMode::Parallel`] is **bit-identical** to a sequential one —
//! same model, same insertion logs, same virtual-object ids, same
//! [`EvalStats`] — no matter how many workers executed the queue or which
//! [`Executor`] scheduled it.  Full solves and query enumeration need no
//! sort: their order is deterministic because every fact/signature index
//! iterates an ordered container (the one hash-ordered path, the
//! argument-tuple application index, is a `BTreeMap` precisely so that
//! virtual-object allocation cannot drift between runs).
//!
//! [`Schedule::RuleAtATime`] keeps the PR 3 scheduling — rules processed
//! strictly in sequence, each against its own watermark window, asserting
//! before the next rule solves — as the second arm of the E17 scheduling
//! ablation.  Both schedules reach the same least fixpoint (the classic
//! Jacobi vs Gauss–Seidel iteration trade: the snapshot schedule may take a
//! few more, cheaper iterations) but they commit derivations in different
//! orders, so virtual-object numbering and [`EvalStats`] are only
//! comparable *within* a schedule, not across the two.
//!
//! The executors are the other ablation axis: [`ExecutorKind::Pooled`] (the
//! default) reuses a persistent worker pool across all batches of an
//! engine, [`ExecutorKind::Scoped`] spawns scoped threads per batch — see
//! the [`executor`] module docs.
//!
//! Because every two-phase commit above is all-or-nothing at the iteration
//! boundary, the same machinery carries the **check-on-commit** integrity
//! constraints of [`crate::constraints`]: a [`ConstraintChecker`] re-solves
//! (through [`Engine::solve_conditions`], batched like reactive recognise
//! phases) only the denial rules whose read keys intersect a mutation
//! batch's delta, and the object store's transaction layer
//! (`pathlog_oodb::Transaction::commit`) either commits a batch whose check
//! passes or rolls the whole batch back — there are no partially-checked
//! states.  [`EvalOptions::tolerance`] selects what an *inconsistent*
//! structure means for queries: under [`Tolerance::Strict`] (default)
//! answers are classical; under [`Tolerance::Tolerant`] quarantined facts
//! (violations admitted by `ConstraintPolicy::Quarantine`) stay in the
//! structure but [`crate::constraints::tolerant_query`] annotates every
//! answer whose derivation needs one as tainted by the implicated
//! constraints, so degraded stores keep serving.
//!
//! [`ConstraintChecker`]: crate::constraints::ConstraintChecker
//!
//! ## Static analysis
//!
//! Before a program runs, [`Engine::analyze`] hands it to the shared
//! [`crate::analysis`] subsystem: one dependency graph over every statement,
//! a `PL0xx` [`Diagnostics`](crate::analysis::Diagnostics) report
//! (safety/range restriction PL001–PL005, liveness lints PL006–PL009,
//! reactive cascade bounds PL010–PL011) and per-literal cost annotations.
//! The stratifier itself is a thin consumer of the same graph
//! ([`crate::analysis::DependencyGraph::stratify`]), so the strata the
//! analyzer reports are bit-identical to the ones evaluation uses.
//! [`Engine::install_checked`] is `load_program` gated on the report:
//! under [`StaticChecks::Enforce`] (via [`EvalOptions::static_checks`])
//! programs with `Error`-severity diagnostics are rejected with
//! [`Error::StaticRejected`] before any fact is asserted, while the default
//! [`StaticChecks::WarnOnly`] only attaches the report.  The same analyzer
//! runs in `pathlog_shell --check`, the oodb constraint guard and the
//! reactive installers.

pub mod executor;
mod stratify;
mod virtuals;

pub use executor::{
    binding_key, merge_sorted_runs, sorted_run, BindingKey, ConditionBatch, ConditionTask, Executor, FaultControl,
    PooledExecutor, ScopedExecutor, SolveBatch, SolveOutput, SolveTask, SortedRun, WorkerPool,
};
pub use stratify::{stratify, Stratification};
pub use virtuals::{assert_head, AssertEffect, AssertOptions};

use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use crate::error::{Error, LimitKind, Result};
use crate::names::Name;
use crate::plan::{CompiledRule, IterationPlans, Planner};
use crate::program::{literal_reads, DepKey, Literal, Program, Query, Rule, RuleInfo};
use crate::semantics::{
    answers, delta_answers, Answer, Bindings, DeltaView, EvalMarks, FactorizedAnswers, SnapshotWindow,
};
use crate::structure::{Oid, Structure};
use crate::term::Term;

/// Whether solve work is fanned out over worker threads.
///
/// Workers only read the shared `Structure` and immutable [`DeltaView`]
/// slices; the single writer (the engine loop) merges their locally sorted
/// solution runs in canonical order before asserting, so a parallel run
/// produces a bit-identical structure, insertion log and [`EvalStats`] to a
/// sequential run of the same [`Schedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalMode {
    /// Solve every task on the calling thread (the default).
    #[default]
    Sequential,
    /// Fan solve tasks out over up to `workers` threads (see
    /// [`ExecutorKind`] for *which* threads).  `workers` of 0 or 1 behaves
    /// like `Sequential`.
    Parallel {
        /// Maximum number of worker threads.
        workers: usize,
    },
}

/// How the solves of one fixpoint iteration are scheduled against the
/// structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Schedule {
    /// Snapshot-window cross-rule scheduling (the default): each stratum
    /// iteration captures one [`SnapshotWindow`] shared by all rules,
    /// schedules every affected rule's `(rule, literal, shard)` tasks into
    /// one queue against the frozen structure, and commits the results in a
    /// deterministic second phase.  This is what lets *rules* — not just
    /// the shards of one rule — solve concurrently.
    #[default]
    CrossRule,
    /// The PR 3 scheduling, kept as the reference/ablation arm: rules are
    /// processed strictly in sequence, each solved against its own
    /// watermark window (everything asserted since *it* last ran) and
    /// asserted before the next rule solves.  Within an iteration a rule
    /// already sees the facts earlier rules just derived (Gauss–Seidel
    /// style), at the price of a serial rule loop.
    RuleAtATime,
}

/// Which [`Executor`] implementation carries [`EvalMode::Parallel`] work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutorKind {
    /// A persistent [`WorkerPool`] created once per [`Engine`] (shared by
    /// clones) and reused across strata, iterations and solves — O(workers)
    /// thread spawns per engine instead of O(delta solves × workers).  The
    /// default.
    #[default]
    Pooled,
    /// Fresh `std::thread::scope` workers per batch (the PR 3 behaviour),
    /// kept as the spawn-cost reference arm of the E17 executor ablation.
    Scoped,
}

/// How queries treat facts quarantined by an integrity-constraint violation
/// (see the [`constraints`](crate::constraints) module).
///
/// Under the default `Strict` mode quarantined facts are indistinguishable
/// from ordinary ones — queries answer over the structure as stored.
/// `Tolerant` opts into inconsistency-tolerant degradation in the spirit of
/// Laurent/Spyratos' four-valued semantics: answers derivable without any
/// quarantined fact are reported *clean*, answers that depend on one are
/// reported *tainted* by the constraints that quarantined their support,
/// and queries keep being served either way.  On a consistent store (empty
/// quarantine) the two modes coincide exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Tolerance {
    /// Classical evaluation: quarantined facts answer like any other (the
    /// default).
    #[default]
    Strict,
    /// Inconsistency-tolerant evaluation: answers carry a consistency
    /// status (clean vs. tainted-by-constraint) computed against the
    /// quarantine ledger.
    Tolerant,
}

/// What [`Engine::install_checked`] does with `Error`-severity static
/// diagnostics (see [`crate::analysis`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StaticChecks {
    /// Analyze and report, but install the program anyway (the default —
    /// matches the historical behaviour where validation alone gated
    /// installation).
    #[default]
    WarnOnly,
    /// Reject programs with `Error`-severity diagnostics before any fact is
    /// asserted, returning [`crate::error::Error::StaticRejected`] with the
    /// rendered report.
    Enforce,
}

/// Options controlling evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalOptions {
    /// Maximum number of fixpoint iterations per stratum before giving up.
    pub max_iterations: usize,
    /// Maximum number of derived facts (scalar + set members + isa edges)
    /// before giving up — a guard against runaway virtual-object creation.
    pub max_derived: usize,
    /// Create virtual objects for undefined scalar paths in rule heads.
    pub create_virtuals: bool,
    /// Evaluate the fixpoint semi-naively: skip rules whose dependencies did
    /// not change in the previous iteration, and solve affected recursive
    /// rules per body literal with that literal restricted to the
    /// iteration's delta.  Disabling this yields naive evaluation (every
    /// rule re-solved in full each iteration) — the ablation arm.
    pub delta_driven: bool,
    /// Whether solve tasks are fanned out over worker threads
    /// (observationally identical, see [`EvalMode`]).
    pub mode: EvalMode,
    /// How iterations are scheduled: one shared snapshot window per
    /// iteration (cross-rule, the default) or rule-at-a-time windows (the
    /// PR 3 scheduling, kept for the ablation).
    pub schedule: Schedule,
    /// Which executor carries parallel work: the persistent per-engine pool
    /// (default) or spawn-per-batch scoped threads.
    pub executor: ExecutorKind,
    /// Minimum number of delta log entries before a parallel iteration
    /// shards its delta view across workers
    /// ([`DeltaView::shards`](crate::semantics::DeltaView)).  Below the
    /// threshold the fan-out is all thread overhead; ablations lower it to
    /// force sharding at small scales.
    pub shard_min_entries: usize,
    /// Whether queries degrade gracefully over quarantined (constraint-
    /// violating) facts instead of answering classically — see
    /// [`Tolerance`].
    pub tolerance: Tolerance,
    /// Whether [`Engine::install_checked`] rejects programs with
    /// `Error`-severity static diagnostics — see [`StaticChecks`].
    pub static_checks: StaticChecks,
    /// Whether delta passes run through the cost-based join planner and the
    /// compiled slot-frame rule bodies ([`crate::plan`], the default) or
    /// stay on the interpreted written-order path ([`Planner::Off`], the
    /// ablation arm).  Observationally identical either way: planned runs
    /// are `canonical_dump()`-bit-identical to unplanned ones.
    pub planner: Planner,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            max_iterations: 100_000,
            max_derived: 50_000_000,
            create_virtuals: true,
            delta_driven: true,
            mode: EvalMode::Sequential,
            schedule: Schedule::CrossRule,
            executor: ExecutorKind::Pooled,
            shard_min_entries: crate::semantics::DEFAULT_SHARD_MIN_ENTRIES,
            tolerance: Tolerance::Strict,
            static_checks: StaticChecks::WarnOnly,
            planner: Planner::CostBased,
        }
    }
}

impl EvalOptions {
    /// The number of worker threads the configured mode may use (1 for
    /// sequential evaluation).
    fn worker_threads(&self) -> usize {
        match self.mode {
            EvalMode::Sequential => 1,
            EvalMode::Parallel { workers } => workers.max(1),
        }
    }
}

/// Statistics of one evaluation run.
///
/// **Contract (relaxed in the executor PR):** the derived-fact counters
/// (`firings`, `scalar_facts`, `set_members`, `isa_edges`, `signatures`,
/// `virtual_objects`) describe the least fixpoint and are identical across
/// every mode, schedule and executor.  The *scheduling* counters
/// (`iterations`, `rules_skipped`, `delta_solves`, `full_solves`) are
/// **per-iteration aggregates of the configured [`Schedule`]**: under the
/// default cross-rule schedule a "delta solve" is one (rule, iteration)
/// solve against the iteration's shared snapshot window, under the legacy
/// rule-at-a-time schedule it is a solve against that rule's private
/// window, and the two schedules legitimately report different counts for
/// the same program (the PR 3 per-rule-window guarantee no longer pins
/// them).  Within a schedule the counters remain bit-identical between
/// sequential and parallel runs and between executors.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EvalStats {
    /// Number of strata.
    pub strata: usize,
    /// Total fixpoint iterations over all strata.
    pub iterations: usize,
    /// Number of rule/solution pairs asserted.
    pub firings: usize,
    /// Derived scalar facts.
    pub scalar_facts: usize,
    /// Derived set members.
    pub set_members: usize,
    /// Derived class memberships.
    pub isa_edges: usize,
    /// Signature declarations added.
    pub signatures: usize,
    /// Virtual objects created.
    pub virtual_objects: usize,
    /// Rule evaluations skipped because no dependency changed.
    pub rules_skipped: usize,
    /// Rule evaluations solved per-literal against an iteration delta.
    pub delta_solves: usize,
    /// Rule evaluations solved against the full structure.
    pub full_solves: usize,
    /// Tasks whose worker panicked and that were re-run on the coordinator
    /// during this run (see [`FaultControl`]).  Always 0 outside fault
    /// injection; excluded from the cross-mode identity contract above,
    /// since only parallel runs have workers to lose.
    pub tasks_recovered: usize,
    /// Pool workers found dead and replaced during this run (see
    /// [`FaultControl`]).  Always 0 outside fault injection.
    pub workers_respawned: usize,
    /// Rule bodies lowered to the compiled slot-frame IR by the cost-based
    /// planner (counted per compile event, so a stratum that re-plans counts
    /// its rules again).  Always 0 under [`Planner::Off`].  Like the other
    /// planner counters this is computed on the coordinator and identical
    /// across modes, executors and worker counts *within* a planner setting.
    pub plans_compiled: usize,
    /// Re-plan events: a stratum whose fact count outgrew its last compile
    /// recompiled against fresh [`MethodStats`](crate::analysis::MethodStats).
    pub replans: usize,
    /// Iterations × rules where the planner seeded the join from a literal
    /// cheaper than the delta instead of the delta-driven literal.
    pub seed_flips: usize,
    /// Snapshots published by a serving layer the evaluation ran behind
    /// (see [`crate::snapshot::SnapshotRegistry`]).  Always 0 for direct
    /// engine runs — like the fault counters, these serving counters are
    /// excluded from the cross-mode identity contract and only become
    /// non-zero when a session layer folds its
    /// [`SnapshotStats`](crate::snapshot::SnapshotStats) in.
    pub epochs_published: usize,
    /// Reader-session pin events recorded by the serving layer; 0 for
    /// direct engine runs.
    pub snapshots_pinned: usize,
    /// Snapshot retention entries freed after their last pin dropped; 0 for
    /// direct engine runs.
    pub snapshots_reclaimed: usize,
}

impl EvalStats {
    /// Total number of derived facts.
    pub fn derived(&self) -> usize {
        self.scalar_facts
            .saturating_add(self.set_members)
            .saturating_add(self.isa_edges)
    }

    /// Fold the counters of another run (a worker's partial stats, a second
    /// stratum, an ablation arm) into this one.  Every field is summed with
    /// saturating arithmetic, so aggregating many large runs pins at
    /// `usize::MAX` instead of wrapping (or panicking in debug builds).
    pub fn merge(&mut self, other: &EvalStats) {
        self.strata = self.strata.saturating_add(other.strata);
        self.iterations = self.iterations.saturating_add(other.iterations);
        self.firings = self.firings.saturating_add(other.firings);
        self.scalar_facts = self.scalar_facts.saturating_add(other.scalar_facts);
        self.set_members = self.set_members.saturating_add(other.set_members);
        self.isa_edges = self.isa_edges.saturating_add(other.isa_edges);
        self.signatures = self.signatures.saturating_add(other.signatures);
        self.virtual_objects = self.virtual_objects.saturating_add(other.virtual_objects);
        self.rules_skipped = self.rules_skipped.saturating_add(other.rules_skipped);
        self.delta_solves = self.delta_solves.saturating_add(other.delta_solves);
        self.full_solves = self.full_solves.saturating_add(other.full_solves);
        self.tasks_recovered = self.tasks_recovered.saturating_add(other.tasks_recovered);
        self.workers_respawned = self.workers_respawned.saturating_add(other.workers_respawned);
        self.plans_compiled = self.plans_compiled.saturating_add(other.plans_compiled);
        self.replans = self.replans.saturating_add(other.replans);
        self.seed_flips = self.seed_flips.saturating_add(other.seed_flips);
        self.epochs_published = self.epochs_published.saturating_add(other.epochs_published);
        self.snapshots_pinned = self.snapshots_pinned.saturating_add(other.snapshots_pinned);
        self.snapshots_reclaimed = self.snapshots_reclaimed.saturating_add(other.snapshots_reclaimed);
    }

    /// Fold a serving layer's snapshot counters into these stats (the
    /// bridge used by `pathlog_oodb` sessions and the serving benches).
    pub fn record_snapshots(&mut self, snap: &crate::snapshot::SnapshotStats) {
        self.epochs_published = self.epochs_published.saturating_add(snap.epochs_published);
        self.snapshots_pinned = self.snapshots_pinned.saturating_add(snap.snapshots_pinned);
        self.snapshots_reclaimed = self.snapshots_reclaimed.saturating_add(snap.snapshots_reclaimed);
    }

    fn absorb(&mut self, e: AssertEffect) {
        self.scalar_facts = self.scalar_facts.saturating_add(e.scalar_facts);
        self.set_members = self.set_members.saturating_add(e.set_members);
        self.isa_edges = self.isa_edges.saturating_add(e.isa_edges);
        self.signatures = self.signatures.saturating_add(e.signatures);
        self.virtual_objects = self.virtual_objects.saturating_add(e.virtual_objects);
    }
}

/// The PathLog evaluation engine.
///
/// An engine owns its evaluation policy ([`EvalOptions`]) and, when the
/// pooled executor is in use, a persistent [`WorkerPool`] created lazily on
/// the first parallel run and reused by every subsequent `run_rules` /
/// `load_program` call.  Clones share the pool (and the thread-spawn
/// counter), so a cloned engine costs no new threads.
#[derive(Debug, Default, Clone)]
pub struct Engine {
    options: EvalOptions,
    /// Lazily created persistent worker pool.  The cell itself is behind an
    /// `Arc` so that clones share the *slot*, not just an initialized value
    /// — cloning before the first parallel run must not mint a second pool.
    pool: Arc<OnceLock<Arc<WorkerPool>>>,
    /// Worker threads spawned on behalf of this engine (pool + scoped),
    /// shared across clones; see [`Engine::threads_spawned`].
    spawns: Arc<AtomicUsize>,
    /// Fault injection hooks and recovery counters, shared with the
    /// executors (and across clones); see [`Engine::fault_control`].
    control: Arc<FaultControl>,
}

impl Engine {
    /// An engine with default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// An engine with the given options.
    pub fn with_options(options: EvalOptions) -> Self {
        Engine {
            options,
            ..Engine::default()
        }
    }

    /// The options in use.
    pub fn options(&self) -> &EvalOptions {
        &self.options
    }

    /// Total worker threads spawned on behalf of this engine (and its
    /// clones) so far: the pooled executor contributes its pool size once,
    /// the scoped executor contributes every per-batch spawn.  The E17
    /// executor ablation reports this to show the pooled executor's
    /// O(workers)-per-engine spawn behaviour.
    pub fn threads_spawned(&self) -> usize {
        self.spawns.load(Ordering::Relaxed)
    }

    /// The engine's [`FaultControl`]: cumulative fault-recovery counters,
    /// and the injection hooks the fault tests use to plant worker panics.
    /// Shared by the engine's clones and all executors it creates; per-run
    /// recovery deltas are also surfaced in
    /// [`EvalStats::tasks_recovered`]/[`EvalStats::workers_respawned`].
    pub fn fault_control(&self) -> &Arc<FaultControl> {
        &self.control
    }

    /// The executor configured by the options (inline for sequential runs;
    /// the persistent pool is created on first use and reused afterwards).
    fn executor(&self) -> Box<dyn Executor> {
        let workers = self.options.worker_threads();
        if workers <= 1 {
            // Sequential: a 1-worker scoped executor runs everything inline
            // without ever spawning.
            return Box::new(ScopedExecutor::new(1, Arc::clone(&self.spawns)));
        }
        match self.options.executor {
            ExecutorKind::Scoped => Box::new(ScopedExecutor::with_control(
                workers,
                Arc::clone(&self.spawns),
                Arc::clone(&self.control),
            )),
            ExecutorKind::Pooled => {
                let pool = self.pool.get_or_init(|| {
                    Arc::new(WorkerPool::with_control(
                        workers,
                        &self.spawns,
                        Arc::clone(&self.control),
                    ))
                });
                Box::new(PooledExecutor::new(Arc::clone(pool)))
            }
        }
    }

    /// Load a program into `structure`: validate, register every name,
    /// stratify, assert facts and evaluate rules to the fixpoint.
    pub fn load_program(&self, structure: &mut Structure, program: &Program) -> Result<EvalStats> {
        let infos = crate::program::validate_program(program)?;
        for rule in &program.rules {
            register_names(structure, &rule.head);
            for lit in &rule.body {
                register_names(structure, &lit.term);
            }
        }
        for query in &program.queries {
            for lit in &query.body {
                register_names(structure, &lit.term);
            }
        }
        self.run(structure, &program.rules, &infos)
    }

    /// Statically analyze `program` without evaluating it — see
    /// [`crate::analysis`] for what the report contains.  Pass a structure
    /// to let the analyzer treat its stored facts as defined (quieting
    /// always-empty-literal lints) and derive selectivity estimates from its
    /// per-method statistics.
    pub fn analyze(&self, structure: Option<&Structure>, program: &Program) -> crate::analysis::Analysis {
        let mut input = crate::analysis::AnalysisInput::new().program(program);
        if let Some(s) = structure {
            input = input.structure(s);
        }
        input.run()
    }

    /// [`Engine::load_program`] preceded by static analysis.
    ///
    /// Always returns the [`crate::analysis::Analysis`] report alongside the
    /// evaluation stats.  Under [`StaticChecks::Enforce`] a program with
    /// `Error`-severity diagnostics is rejected with
    /// [`Error::StaticRejected`] *before* any fact is asserted; under the
    /// default [`StaticChecks::WarnOnly`] the diagnostics are informational
    /// and installation proceeds exactly like `load_program` (including its
    /// own validation errors, which fire either way).
    pub fn install_checked(
        &self,
        structure: &mut Structure,
        program: &Program,
    ) -> Result<(EvalStats, crate::analysis::Analysis)> {
        let analysis = self.analyze(Some(structure), program);
        if self.options.static_checks == StaticChecks::Enforce && !analysis.no_errors() {
            return Err(Error::StaticRejected(analysis.diagnostics.render()));
        }
        let stats = self.load_program(structure, program)?;
        Ok((stats, analysis))
    }

    /// Evaluate a set of rules (and facts) against `structure`.
    pub fn run_rules(&self, structure: &mut Structure, rules: &[Rule]) -> Result<EvalStats> {
        let infos = rules
            .iter()
            .map(crate::program::validate_rule)
            .collect::<Result<Vec<_>>>()?;
        for rule in rules {
            register_names(structure, &rule.head);
            for lit in &rule.body {
                register_names(structure, &lit.term);
            }
        }
        self.run(structure, rules, &infos)
    }

    fn run(&self, structure: &mut Structure, rules: &[Rule], infos: &[RuleInfo]) -> Result<EvalStats> {
        let stratification = stratify(infos)?;
        let mut stats = EvalStats {
            strata: stratification.len(),
            ..EvalStats::default()
        };
        // Snapshot the shared recovery counters so the stats report this
        // run's deltas (the control is cumulative across runs and clones).
        let recovered_before = self.control.tasks_recovered();
        let respawned_before = self.control.workers_respawned();
        let executor = self.executor();
        let rules_arc: Arc<[Rule]> = rules.to_vec().into();
        match self.options.schedule {
            Schedule::CrossRule => self.run_cross_rule(
                structure,
                &rules_arc,
                infos,
                &stratification,
                executor.as_ref(),
                &mut stats,
            )?,
            Schedule::RuleAtATime => self.run_rule_at_a_time(
                structure,
                &rules_arc,
                infos,
                &stratification,
                executor.as_ref(),
                &mut stats,
            )?,
        }
        stats.tasks_recovered = self.control.tasks_recovered().saturating_sub(recovered_before);
        stats.workers_respawned = self.control.workers_respawned().saturating_sub(respawned_before);
        Ok(stats)
    }

    /// Per-literal read keys, used to pick which body literals an iteration
    /// delta can drive (positive literals only; negated and set-at-a-time
    /// reads are stratified below the current stratum).
    fn body_reads(&self, rules: &[Rule]) -> Vec<Vec<Option<BTreeSet<DepKey>>>> {
        if !self.options.delta_driven {
            return Vec::new();
        }
        rules
            .iter()
            .map(|rule| {
                rule.body
                    .iter()
                    .map(|lit| lit.positive.then(|| literal_reads(&lit.term)))
                    .collect()
            })
            .collect()
    }

    /// `true` when delta passes should be planned and compiled
    /// ([`Planner::CostBased`]); the naive arm has no delta passes to plan.
    fn planning(&self) -> bool {
        self.options.delta_driven && self.options.planner == Planner::CostBased
    }

    /// The dependency keys some rule writes — fed to
    /// [`crate::analysis::plan_rule`] so literals over to-be-derived keys
    /// estimate `Unknown` instead of `Empty`.
    fn derived_keys(infos: &[RuleInfo]) -> BTreeSet<DepKey> {
        infos.iter().flat_map(|i| i.defines.iter().cloned()).collect()
    }

    /// A monotone measure of the structure's fact content, used to decide
    /// when a stratum's compiled plans are stale (fact level more than
    /// doubled since the last compile → re-plan against fresh stats).
    fn fact_level(structure: &Structure) -> usize {
        let m = EvalMarks::capture(structure);
        m.scalar_facts + m.set_member_inserts + m.isa_pairs + m.objects
    }

    /// Compile the bodies of `stratum`'s rules against live
    /// [`MethodStats`](crate::analysis::MethodStats), consuming the analysis
    /// subsystem's per-literal cost annotations.  Runs on the coordinator
    /// only, so the planner counters stay identical across modes, executors
    /// and worker counts.
    fn compile_stratum(
        rules: &[Rule],
        stratum: &[usize],
        structure: &Structure,
        derived: &BTreeSet<DepKey>,
        stats: &mut EvalStats,
    ) -> Arc<Vec<Option<CompiledRule>>> {
        let method_stats = crate::analysis::MethodStats::capture(structure);
        let mut per_rule: Vec<Option<CompiledRule>> = vec![None; rules.len()];
        for &r in stratum {
            let report = crate::analysis::plan_rule(&rules[r], Some(&method_stats), Some(derived));
            per_rule[r] = crate::plan::compile(&rules[r], &report);
            if per_rule[r].is_some() {
                stats.plans_compiled += 1;
            }
        }
        Arc::new(per_rule)
    }

    /// Commit a rule's frame-native delta outputs through its compiled head:
    /// merge the sharded runs into canonical key order and assert each frame
    /// directly, reading the head oids out of the frame slots.  Counters are
    /// identical to the generic path by construction (the compiled head
    /// shape can only insert set members).  Returns the number of *new*
    /// facts committed.
    fn commit_frame_runs(
        &self,
        structure: &mut Structure,
        compiled: &CompiledRule,
        head: &crate::plan::CompiledHead,
        runs: Vec<crate::plan::FrameRun>,
        stats: &mut EvalStats,
    ) -> Result<usize> {
        let method = structure.ensure_name(&head.method);
        let merged = crate::plan::merge_frame_runs(runs, compiled.canonical());
        let mut new = 0;
        for f in merged.frames() {
            let recv = Oid(f[head.receiver_slot] - 1);
            let member = Oid(f[head.member_slot] - 1);
            if structure.assert_set_member(method, recv, &[], member).is_new() {
                new += 1;
                stats.firings += 1;
                stats.set_members += 1;
            }
            if stats.derived() > self.options.max_derived {
                return Err(Error::LimitExceeded {
                    kind: LimitKind::DerivedFacts,
                    limit: self.options.max_derived,
                    observed: stats.derived(),
                });
            }
        }
        Ok(new)
    }

    /// The default snapshot-window cross-rule scheduler.
    ///
    /// Each stratum iteration is a two-phase commit.  **Plan + solve
    /// (phase 1):** slide the stratum's shared [`SnapshotWindow`] to the
    /// present; for every rule the window can drive, enqueue one task per
    /// (drivable literal, delta shard) — on the first iteration, one full
    /// solve per rule — and hand the whole queue to the executor against the
    /// now-frozen structure.  **Commit (phase 2):** the single writer merges
    /// each rule's sorted runs in canonical order and asserts rule by rule
    /// in stratum order.  Both phases are deterministic functions of the
    /// structure content, so every mode/executor commits the same facts in
    /// the same order and allocates identical virtual-object ids.
    ///
    /// Compared to the rule-at-a-time schedule, a rule sees facts derived by
    /// its stratum peers one iteration later (Jacobi instead of
    /// Gauss–Seidel); the fixpoint is the same, reached in a few more,
    /// cheaper iterations, and the rule solves of an iteration become
    /// independent — the parallelism the executor exploits.
    fn run_cross_rule(
        &self,
        structure: &mut Structure,
        rules: &Arc<[Rule]>,
        infos: &[RuleInfo],
        stratification: &Stratification,
        executor: &dyn Executor,
        stats: &mut EvalStats,
    ) -> Result<()> {
        let assert_options = AssertOptions {
            create_virtuals: self.options.create_virtuals,
        };
        let body_reads = self.body_reads(rules);
        let workers = executor.workers();
        let planning = self.planning();
        let derived = Self::derived_keys(infos);
        for stratum in &stratification.strata {
            let mut window = SnapshotWindow::capture(structure);
            let mut first = true;
            // Compiled plans for this stratum's rules, refreshed when the
            // fact level more than doubles since the last compile (the
            // MethodStats the costs came from are then stale).
            let mut plan_state: Option<Arc<Vec<Option<CompiledRule>>>> = None;
            let mut plan_level = 0usize;
            loop {
                stats.iterations += 1;
                if stats.iterations > self.options.max_iterations {
                    return Err(Error::LimitExceeded {
                        kind: LimitKind::Iterations,
                        limit: self.options.max_iterations,
                        observed: stats.iterations,
                    });
                }
                // Phase 1a: plan the iteration's task queue.
                let mut tasks: Vec<SolveTask> = Vec::new();
                let mut plan: Vec<(usize, usize, usize)> = Vec::new(); // (rule, first task, task count)
                let mut views: Vec<DeltaView> = Vec::new();
                let mut iteration_plans: Option<Arc<IterationPlans>> = None;
                if first || !self.options.delta_driven {
                    // Every rule solves in full: the first time it runs (no
                    // delta exists for it yet), or on every iteration of the
                    // naive ablation arm.
                    for &r in stratum {
                        stats.full_solves += 1;
                        plan.push((r, tasks.len(), 1));
                        tasks.push(SolveTask { rule: r, delta: None });
                    }
                } else {
                    let dv = window.slide(structure);
                    if !dv.is_empty() {
                        let mut scheduled: Vec<(usize, Vec<usize>)> = Vec::new();
                        for &r in stratum {
                            let delta_lits = delta_literals(structure, &body_reads[r], &dv);
                            if delta_lits.is_empty() {
                                // Nothing in the window can drive any of
                                // this rule's literals — its solutions are
                                // unchanged.
                                stats.rules_skipped += 1;
                            } else {
                                stats.delta_solves += 1;
                                scheduled.push((r, delta_lits));
                            }
                        }
                        // Sharding is only worth computing when something
                        // will actually read the views (the last window of a
                        // stratum is typically non-empty yet drives nothing).
                        if !scheduled.is_empty() {
                            if planning {
                                // Compile (or re-compile) the stratum's rule
                                // bodies against live MethodStats, then pick
                                // one shared pass order per scheduled rule
                                // for this iteration.  All of this runs on
                                // the coordinator, so the decisions — and the
                                // counters — are identical at any worker
                                // count and under either executor.
                                let level = Self::fact_level(structure);
                                if plan_state.is_none() || level > plan_level.saturating_mul(2) {
                                    if plan_state.is_some() {
                                        stats.replans += 1;
                                    }
                                    plan_state =
                                        Some(Self::compile_stratum(rules, stratum, structure, &derived, stats));
                                    plan_level = level;
                                }
                                let compiled = plan_state.as_ref().unwrap();
                                let mut orders = BTreeMap::new();
                                for (r, delta_lits) in &scheduled {
                                    if let Some(c) = compiled[*r].as_ref() {
                                        let order = crate::plan::pass_order(c, delta_lits, dv.entry_count());
                                        if !order.seeded_from_delta {
                                            stats.seed_flips += 1;
                                        }
                                        orders.insert(*r, order);
                                    }
                                }
                                iteration_plans = Some(Arc::new(IterationPlans {
                                    compiled: Arc::clone(compiled),
                                    orders,
                                }));
                            }
                            views = match (workers > 1)
                                .then(|| dv.shards(workers, self.options.shard_min_entries))
                                .flatten()
                            {
                                Some(shards) => shards,
                                None => vec![dv],
                            };
                            for (r, delta_lits) in scheduled {
                                let start = tasks.len();
                                for l in delta_lits {
                                    for v in 0..views.len() {
                                        tasks.push(SolveTask {
                                            rule: r,
                                            delta: Some((l, v)),
                                        });
                                    }
                                }
                                plan.push((r, start, tasks.len() - start));
                            }
                        }
                    }
                }
                if tasks.is_empty() {
                    // Nothing the window could drive: the stratum converged.
                    break;
                }
                // Phase 1b: solve the queue against the frozen structure.
                let batch = SolveBatch {
                    rules: Arc::clone(rules),
                    views,
                    tasks,
                    plans: iteration_plans,
                };
                let commit_plans = batch.plans.clone();
                let mut outputs = executor.execute(structure, batch)?.into_iter();
                // Phase 2: the single writer commits in stratum order.
                let mut any_change = false;
                for &(r, _, count) in &plan {
                    let rule = &rules[r];
                    let collected: Vec<SolveOutput> = (0..count).filter_map(|_| outputs.next()).collect();
                    let collected = match take_frame_runs(collected) {
                        // All of the rule's passes ran frame-native and its
                        // compiled head commits the merged frames without
                        // `Bindings` or keys.
                        Ok(runs) => {
                            let (c, _) = commit_plans
                                .as_ref()
                                .and_then(|p| p.for_rule(r))
                                .expect("frame outputs imply a compiled plan");
                            let head = c.head().expect("frame outputs imply a compiled head").clone();
                            if self.commit_frame_runs(structure, c, &head, runs, stats)? > 0 {
                                any_change = true;
                            }
                            continue;
                        }
                        Err(outputs) => outputs,
                    };
                    let solutions = merge_outputs(collected);
                    // The compiled head fast path: method oid resolved once,
                    // direct set-member asserts, counters identical to
                    // `assert_head` by construction (see [`CompiledHead`]).
                    let fast_head = commit_plans
                        .as_ref()
                        .and_then(|p| p.for_rule(r))
                        .and_then(|(c, _)| c.head().cloned());
                    let method = fast_head.as_ref().map(|h| structure.ensure_name(&h.method));
                    for bindings in solutions {
                        if let (Some(h), Some(m)) = (&fast_head, method) {
                            if let (Some(recv), Some(member)) = (bindings.get(&h.receiver), bindings.get(&h.member)) {
                                if structure.assert_set_member(m, recv, &[], member).is_new() {
                                    any_change = true;
                                    stats.firings += 1;
                                    stats.set_members += 1;
                                }
                                if stats.derived() > self.options.max_derived {
                                    return Err(Error::LimitExceeded {
                                        kind: LimitKind::DerivedFacts,
                                        limit: self.options.max_derived,
                                        observed: stats.derived(),
                                    });
                                }
                                continue;
                            }
                        }
                        let (_, effect) = assert_head(structure, &rule.head, &bindings, assert_options)?;
                        if effect.changed() {
                            any_change = true;
                            stats.firings += 1;
                            stats.absorb(effect);
                        }
                        if stats.derived() > self.options.max_derived {
                            return Err(Error::LimitExceeded {
                                kind: LimitKind::DerivedFacts,
                                limit: self.options.max_derived,
                                observed: stats.derived(),
                            });
                        }
                    }
                }
                first = false;
                if !any_change {
                    break;
                }
            }
        }
        Ok(())
    }

    /// The legacy rule-at-a-time scheduler (the PR 3 evaluation loop), kept
    /// as the reference arm of the scheduling ablation.  Rules are processed
    /// strictly in sequence; each solves against its own watermark window —
    /// everything asserted since *it* last ran, including facts earlier
    /// rules derived in the same iteration — and asserts before the next
    /// rule solves.  Parallelism is confined to the inside of one rule's
    /// delta solve.
    fn run_rule_at_a_time(
        &self,
        structure: &mut Structure,
        rules: &Arc<[Rule]>,
        infos: &[RuleInfo],
        stratification: &Stratification,
        executor: &dyn Executor,
        stats: &mut EvalStats,
    ) -> Result<()> {
        let assert_options = AssertOptions {
            create_virtuals: self.options.create_virtuals,
        };
        let body_reads = self.body_reads(rules);
        let workers = executor.workers();
        let planning = self.planning();
        let derived = Self::derived_keys(infos);

        // Watermarks of the structure state each rule last solved against.
        // A rule's delta is "everything asserted since *it* last ran" — not
        // since the iteration started — so facts a rule already joined
        // through (e.g. those asserted by earlier rules in the same
        // iteration) are never re-presented to it as new.
        let mut last_marks: Vec<Option<EvalMarks>> = vec![None; rules.len()];

        for stratum in &stratification.strata {
            let mut changed_keys: Option<BTreeSet<DepKey>> = None; // None = first iteration, fire everything
                                                                   // Compiled plans for this stratum's rules (same staleness policy
                                                                   // as the cross-rule schedule: re-plan when the fact level more
                                                                   // than doubles since the last compile).
            let mut plan_state: Option<Arc<Vec<Option<CompiledRule>>>> = None;
            let mut plan_level = 0usize;
            loop {
                stats.iterations += 1;
                if stats.iterations > self.options.max_iterations {
                    return Err(Error::LimitExceeded {
                        kind: LimitKind::Iterations,
                        limit: self.options.max_iterations,
                        observed: stats.iterations,
                    });
                }
                let mut new_keys: BTreeSet<DepKey> = BTreeSet::new();
                let mut any_change = false;
                let iter_isa_mark = structure.isa().closure_size();

                for &r in stratum {
                    let rule = &rules[r];
                    let info = &infos[r];
                    let solutions = match (&changed_keys, last_marks[r]) {
                        (Some(changed), Some(lo)) if self.options.delta_driven => {
                            if !rule_affected(info, changed) {
                                stats.rules_skipped += 1;
                                continue;
                            }
                            let now = EvalMarks::capture(structure);
                            let lo_marks = lo;
                            last_marks[r] = Some(now);
                            if now == lo_marks {
                                // Affected by key, but nothing actually new
                                // since this rule last solved.
                                stats.rules_skipped += 1;
                                continue;
                            }
                            let dv = DeltaView::between(structure, &lo_marks, &now);
                            let delta_lits = delta_literals(structure, &body_reads[r], &dv);
                            if delta_lits.is_empty() {
                                // Affected by iteration-level keys, but
                                // nothing in this rule's own window can
                                // drive any of its literals — its solutions
                                // are unchanged.
                                stats.rules_skipped += 1;
                                continue;
                            }
                            stats.delta_solves += 1;
                            let plans = if planning {
                                let level = Self::fact_level(structure);
                                if plan_state.is_none() || level > plan_level.saturating_mul(2) {
                                    if plan_state.is_some() {
                                        stats.replans += 1;
                                    }
                                    plan_state =
                                        Some(Self::compile_stratum(rules, stratum, structure, &derived, stats));
                                    plan_level = level;
                                }
                                let compiled = plan_state.as_ref().unwrap();
                                compiled[r].as_ref().map(|c| {
                                    let order = crate::plan::pass_order(c, &delta_lits, dv.entry_count());
                                    if !order.seeded_from_delta {
                                        stats.seed_flips += 1;
                                    }
                                    Arc::new(IterationPlans {
                                        compiled: Arc::clone(compiled),
                                        orders: BTreeMap::from([(r, order)]),
                                    })
                                })
                            } else {
                                None
                            };
                            let views = match (workers > 1)
                                .then(|| dv.shards(workers, self.options.shard_min_entries))
                                .flatten()
                            {
                                Some(shards) => shards,
                                None => vec![dv],
                            };
                            let mut tasks = Vec::with_capacity(delta_lits.len() * views.len());
                            for &l in &delta_lits {
                                for v in 0..views.len() {
                                    tasks.push(SolveTask {
                                        rule: r,
                                        delta: Some((l, v)),
                                    });
                                }
                            }
                            let batch = SolveBatch {
                                rules: Arc::clone(rules),
                                views,
                                tasks,
                                plans,
                            };
                            let commit_plans = batch.plans.clone();
                            let collected = match take_frame_runs(executor.execute(structure, batch)?) {
                                Ok(runs) => {
                                    let (c, _) = commit_plans
                                        .as_ref()
                                        .and_then(|p| p.for_rule(r))
                                        .expect("frame outputs imply a compiled plan");
                                    let head = c.head().expect("frame outputs imply a compiled head").clone();
                                    if self.commit_frame_runs(structure, c, &head, runs, stats)? > 0 {
                                        any_change = true;
                                        // The compiled head only inserts set
                                        // members — never virtual objects —
                                        // so the catch-all key stays quiet.
                                        new_keys.extend(info.defines.iter().cloned());
                                    }
                                    continue;
                                }
                                Err(outputs) => outputs,
                            };
                            merge_outputs(collected)
                        }
                        _ => {
                            if self.options.delta_driven {
                                last_marks[r] = Some(EvalMarks::capture(structure));
                            }
                            stats.full_solves += 1;
                            // Full solves need no canonical merge: they run
                            // identically (and sequentially) in every mode,
                            // and enumeration order is already deterministic
                            // — the fact/sig indexes iterate ordered
                            // structures, never hash maps.  Skipping the
                            // sort keeps the naive ablation arm honest.
                            solve_body(structure, &rule.body, &Bindings::new())?
                        }
                    };
                    for bindings in solutions {
                        let (_, effect) = assert_head(structure, &rule.head, &bindings, assert_options)?;
                        if effect.changed() {
                            any_change = true;
                            stats.firings += 1;
                            stats.absorb(effect);
                            new_keys.extend(info.defines.iter().cloned());
                            // A fresh virtual object can satisfy literals
                            // through positions that read no named key (a
                            // bare variable, a built-in filter), so object
                            // creation is published as the catch-all key —
                            // every rule is re-examined, and the per-rule
                            // window keeps that cheap.
                            if effect.virtual_objects > 0 {
                                new_keys.insert(DepKey::Unknown);
                            }
                        }
                        if stats.derived() > self.options.max_derived {
                            return Err(Error::LimitExceeded {
                                kind: LimitKind::DerivedFacts,
                                limit: self.options.max_derived,
                                observed: stats.derived(),
                            });
                        }
                    }
                }

                // Deriving `X : c` also adds closure pairs `(X, super)` for
                // every superclass of `c`; rules that read only a superclass
                // key must be woken too, so publish every class actually
                // reached by this iteration's closure growth (O(new pairs),
                // sliced from the is-a insertion log).  Unnamed classes get
                // the catch-all key.
                for &(_, sup) in structure.isa().pairs_since(iter_isa_mark) {
                    new_keys.insert(match structure.name_of(sup) {
                        Some(n) => DepKey::Known(n.clone()),
                        None => DepKey::Unknown,
                    });
                }
                if !any_change {
                    break;
                }
                changed_keys = Some(new_keys);
            }
        }
        Ok(())
    }

    /// Solve a batch of independent condition bodies against the frozen
    /// `structure` on this engine's configured executor — the entry point
    /// for callers outside stratified fixpoint evaluation (the reactive
    /// layer's production recognise phases and active-store quiescence
    /// rounds).  Each task solves `bodies[task.body]` from `task.seed`;
    /// the result is one canonically sorted, deduplicated run per task, in
    /// task order ([`SortedRun`], keyed by [`binding_key`]).
    ///
    /// Every task is solved whole by one thread against the same frozen
    /// structure, so the returned runs are **bit-identical at any worker
    /// count and under either executor** — pooled condition matching cannot
    /// drift from a sequential run.  Under [`EvalMode::Parallel`] the tasks
    /// fan out over this engine's persistent pool (created lazily, shared by
    /// clones, reused across calls); under [`EvalMode::Sequential`] they run
    /// inline on the calling thread.
    pub fn solve_conditions(
        &self,
        structure: &mut Structure,
        bodies: Arc<[Vec<Literal>]>,
        tasks: Vec<ConditionTask>,
    ) -> Result<Vec<SortedRun>> {
        if tasks.is_empty() {
            return Ok(Vec::new());
        }
        self.executor()
            .execute_conditions(structure, ConditionBatch { bodies, tasks })
    }

    /// Answer a query: the variable-valuations that satisfy its body.
    ///
    /// Enumeration order is deterministic (a function of the structure's
    /// content only — every index iterates an ordered container, never a
    /// hash map), so repeated runs and sequential/parallel-evaluated
    /// structures emit byte-identical answer lists without a sort on this
    /// hot path.
    ///
    /// Unknown names in a query body are permitted and simply denote no
    /// object — queries are often generated (SQL frontend, F-logic
    /// translation) against structures that may lack some attribute, and
    /// "no solutions" is the correct answer there.
    pub fn query(&self, structure: &Structure, query: &Query) -> Result<Vec<Bindings>> {
        solve_body(structure, &query.body, &Bindings::new())
    }

    /// Answers (valuation + denoted object) of a single reference, in
    /// deterministic enumeration order.
    ///
    /// Unlike [`Engine::query`], a *symbolic* name the structure has never
    /// seen is reported as [`Error::UnknownName`]: a hand-written reference
    /// such as `peter..dsc` (a typo for `desc`) would otherwise silently
    /// return no answers.  Integer and string literals stay permissive.
    pub fn query_term(&self, structure: &Structure, term: &Term) -> Result<Vec<Answer>> {
        require_registered_names(structure, term)?;
        answers(structure, term, &Bindings::new())
    }

    /// Answers of a single reference as a factorized representation: a DAG
    /// of unions and products over shared fact-table runs when `term` has a
    /// supported path shape, exploded tuples otherwise.  Enumeration order
    /// is identical to [`Engine::query_term`] — the representations are
    /// interchangeable — but for product-shaped answer sets the DAG is
    /// asymptotically smaller than the tuple list.
    pub fn query_term_factorized(&self, structure: &Structure, term: &Term) -> Result<FactorizedAnswers> {
        require_registered_names(structure, term)?;
        crate::semantics::factorized_answers(structure, term, &Bindings::new())
    }

    /// The objects denoted by a ground reference.  Like
    /// [`Engine::query_term`], unregistered names are an
    /// [`Error::UnknownName`] instead of a silently empty valuation.
    pub fn eval_ground(&self, structure: &Structure, term: &Term) -> Result<BTreeSet<Oid>> {
        require_registered_names(structure, term)?;
        crate::semantics::valuate(structure, term, &Bindings::new())
    }
}

/// Reject references that mention *symbolic* names the structure has never
/// registered ([`Error::UnknownName`]).  Used by the engine's
/// reference-query APIs, where an unknown atom is almost always a typo for
/// a method or object that *was* asserted under a different spelling.
/// Integer and string literals are exempt: values are only interned when
/// some fact uses them, so probing a constant absent from the data (e.g.
/// `peter[age -> 31]` when every age is 30) is a legitimately empty answer,
/// not an error.
fn require_registered_names(structure: &Structure, term: &Term) -> Result<()> {
    let mut missing: Option<Name> = None;
    term.visit(&mut |t| {
        if let Term::Name(n @ Name::Atom(_)) = t {
            if missing.is_none() && structure.lookup_name(n).is_none() {
                missing = Some(n.clone());
            }
        }
    });
    match missing {
        Some(n) => structure.require_name(&n).map(|_| ()),
        None => Ok(()),
    }
}

/// The indices of the positive body literals the rule's delta window can
/// drive.  Selection is against the window's *contents* — not against the
/// previous iteration's changed-key set, which has the wrong granularity: a
/// rule's window spans back to its own last solve, so it can hold facts of
/// keys that only entered the iteration-level changed set earlier (e.g.
/// facts asserted by an earlier rule within the same iteration).  A literal
/// qualifies when a key it reads has new facts in the window (or is
/// `Unknown`); when objects were created or signature declarations changed,
/// every positive literal qualifies (new objects can satisfy key-less
/// positions such as bare variables or built-in filters, and declarations
/// carry no per-key stamps).
fn delta_literals(structure: &Structure, reads: &[Option<BTreeSet<DepKey>>], dv: &DeltaView) -> Vec<usize> {
    let all = dv.has_new_objects() || dv.sigs_changed();
    reads
        .iter()
        .enumerate()
        .filter_map(|(i, keys)| {
            let keys = keys.as_ref()?;
            let drivable = all
                || keys.iter().any(|k| match k {
                    DepKey::Unknown => true,
                    DepKey::Known(name) => structure.lookup_name(name).is_some_and(|oid| dv.has_new_facts_for(oid)),
                });
            drivable.then_some(i)
        })
        .collect()
}

/// Does `info` read anything in `changed`?
fn rule_affected(info: &RuleInfo, changed: &BTreeSet<DepKey>) -> bool {
    if changed.is_empty() {
        return false;
    }
    if changed.contains(&DepKey::Unknown)
        || info.uses.contains(&DepKey::Unknown)
        || info.strict_uses.contains(&DepKey::Unknown)
    {
        return true;
    }
    info.uses
        .iter()
        .chain(info.strict_uses.iter())
        .any(|k| changed.contains(k))
}

/// Register every name occurring in a term, making `I_N` total over the
/// program's alphabet.
fn register_names(structure: &mut Structure, term: &Term) {
    let mut names: Vec<Name> = Vec::new();
    term.visit(&mut |t| {
        if let Term::Name(n) = t {
            names.push(n.clone());
        }
    });
    for n in names {
        structure.ensure_name(&n);
    }
}

/// Solve a body conjunction: enumerate the variable-valuations extending
/// `seed` that satisfy every literal.  Positive literals are processed in
/// order; negated literals are checked last (validation guarantees their
/// variables are bound by then).
pub fn solve_body(structure: &Structure, body: &[Literal], seed: &Bindings) -> Result<Vec<Bindings>> {
    solve_body_pass(structure, body, seed, None)
}

/// Solve a body conjunction semi-naively: for each literal index in
/// `delta_literals`, solve the body once with that literal restricted to
/// answers whose derivation reads `dv` (the iteration delta) while every
/// other literal joins against the full structure, and return the
/// deduplicated union in canonical order (`merge_canonical`, the same
/// merge the engine applies, so this entry point cannot drift from the
/// scheduled paths).  This is the per-literal decomposition of classic
/// semi-naive evaluation: a solution that can contribute new information
/// reads at least one delta fact in at least one literal, so it is found by
/// the pass that restricts that literal.
///
/// This interpreted, written-order routine is the reference semantics and
/// the [`Planner::Off`] ablation arm.  Under the default
/// [`Planner::CostBased`] the engine's scheduled delta passes route through
/// [`crate::plan::execute_delta`] instead — the same passes over a compiled,
/// cost-reordered body — and must produce the identical canonical run.
pub fn solve_body_delta(
    structure: &Structure,
    body: &[Literal],
    seed: &Bindings,
    delta_literals: &[usize],
    dv: &DeltaView,
) -> Result<Vec<Bindings>> {
    let pass_results = delta_literals
        .iter()
        .map(|&d| solve_body_pass(structure, body, seed, Some((d, dv))))
        .collect::<Result<Vec<_>>>()?;
    Ok(merge_canonical(pass_results))
}

/// Merge one rule's task outputs into its committed solution list.  A lone
/// full solve keeps its (deterministic) enumeration order; delta runs are
/// k-way-merged in canonical order ([`merge_sorted_runs`]), the single
/// writer's half of the sorted-run protocol.
/// Partition a rule's outputs when any pass produced raw frames: `Ok` with
/// the frame runs (empty keyed outputs from early-exit shards are dropped —
/// a non-empty keyed output alongside frames is impossible, all passes of a
/// rule take the same execution path against the same frozen structure), or
/// `Err` giving the outputs back for the keyed merge.
fn take_frame_runs(outputs: Vec<SolveOutput>) -> std::result::Result<Vec<crate::plan::FrameRun>, Vec<SolveOutput>> {
    if !outputs.iter().any(|o| matches!(o, SolveOutput::Frames(_))) {
        return Err(outputs);
    }
    Ok(outputs
        .into_iter()
        .filter_map(|o| match o {
            SolveOutput::Frames(fr) => Some(fr),
            SolveOutput::Sorted(run) => {
                debug_assert!(run.is_empty(), "non-empty keyed output mixed with frame outputs");
                None
            }
            SolveOutput::Enumerated(solutions) => {
                debug_assert!(solutions.is_empty(), "enumerated output mixed with frame outputs");
                None
            }
        })
        .collect())
}

fn merge_outputs(mut outputs: Vec<SolveOutput>) -> Vec<Bindings> {
    if outputs.len() == 1 && matches!(outputs[0], SolveOutput::Enumerated(_)) {
        let Some(SolveOutput::Enumerated(solutions)) = outputs.pop() else {
            unreachable!("just matched a single Enumerated output")
        };
        return solutions;
    }
    merge_sorted_runs(
        outputs
            .into_iter()
            .map(|o| match o {
                SolveOutput::Sorted(run) => run,
                SolveOutput::Enumerated(solutions) => sorted_run(solutions),
                // Frame outputs are drained by `take_frame_runs` before any
                // keyed merge.
                SolveOutput::Frames(_) => unreachable!("frame outputs reach only the compiled-head commit"),
            })
            .collect(),
    )
}

/// Deduplicate and canonically order rule-body solutions (sorted by their
/// order-independent [`binding_key`]).
///
/// This is the mode-identity boundary for [`solve_body_delta`]: every
/// scheduled path sorts per-pass runs and merges them with
/// [`merge_sorted_runs`], and this entry point is that same composition, so
/// it cannot drift from the engine's own merges no matter how the passes
/// were scheduled or sharded.
fn merge_canonical(parts: Vec<Vec<Bindings>>) -> Vec<Bindings> {
    merge_sorted_runs(parts.into_iter().map(sorted_run).collect())
}

/// One solve over a body: positive literals joined in source order with
/// per-stage deduplication, negated literals applied as filters last.  With
/// `delta` set to `(d, view)`, the answers of positive literal `d` are
/// restricted to derivations that read the delta view; with `None` every
/// literal joins against the full structure.
fn solve_body_pass(
    structure: &Structure,
    body: &[Literal],
    seed: &Bindings,
    delta: Option<(usize, &DeltaView)>,
) -> Result<Vec<Bindings>> {
    let mut states = vec![seed.clone()];
    for (j, lit) in body.iter().enumerate() {
        if !lit.positive {
            continue;
        }
        let mut next = Vec::new();
        let mut seen: HashSet<BindingKey> = HashSet::new();
        for s in &states {
            let lit_answers = match delta {
                Some((d, dv)) if j == d => delta_answers(structure, &lit.term, s, dv)?,
                _ => answers(structure, &lit.term, s)?,
            };
            for a in lit_answers {
                if seen.insert(binding_key(&a.bindings)) {
                    next.push(a.bindings);
                }
            }
        }
        states = next;
        if states.is_empty() {
            return Ok(states);
        }
    }
    // then negated literals as filters
    for lit in body.iter().filter(|l| !l.positive) {
        let mut next = Vec::new();
        for s in states {
            if answers(structure, &lit.term, &s)?.is_empty() {
                next.push(s);
            }
        }
        states = next;
        if states.is_empty() {
            break;
        }
    }
    Ok(states)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names::Var;
    use crate::program::{Literal, Program, Query, Rule};
    use crate::term::Filter;

    fn oid(s: &Structure, n: &str) -> Oid {
        s.lookup_name(&Name::atom(n)).unwrap()
    }

    /// The facts of Section 6: peter's kids, tim's kids, mary's kids.
    fn genealogy_facts() -> Vec<Rule> {
        vec![
            Rule::fact(Term::name("peter").filter(Filter::set("kids", vec![Term::name("tim"), Term::name("mary")]))),
            Rule::fact(Term::name("tim").filter(Filter::set("kids", vec![Term::name("sally")]))),
            Rule::fact(Term::name("mary").filter(Filter::set("kids", vec![Term::name("tom"), Term::name("paul")]))),
        ]
    }

    #[test]
    fn facts_are_asserted() {
        let mut s = Structure::new();
        let engine = Engine::new();
        let stats = engine.run_rules(&mut s, &genealogy_facts()).unwrap();
        assert_eq!(stats.set_members, 5);
        assert_eq!(stats.virtual_objects, 0);
        let kids = oid(&s, "kids");
        assert_eq!(s.apply_set(kids, oid(&s, "peter"), &[]).unwrap().len(), 2);
    }

    #[test]
    fn transitive_closure_desc() {
        // (6.4): X[desc ->> {Y}] <- X[kids ->> {Y}].
        //        X[desc ->> {Y}] <- X..desc[kids ->> {Y}].
        let mut rules = genealogy_facts();
        rules.push(Rule::new(
            Term::var("X").filter(Filter::set("desc", vec![Term::var("Y")])),
            vec![Literal::pos(
                Term::var("X").filter(Filter::set("kids", vec![Term::var("Y")])),
            )],
        ));
        rules.push(Rule::new(
            Term::var("X").filter(Filter::set("desc", vec![Term::var("Y")])),
            vec![Literal::pos(
                Term::var("X")
                    .set("desc")
                    .filter(Filter::set("kids", vec![Term::var("Y")])),
            )],
        ));
        let mut s = Structure::new();
        let engine = Engine::new();
        engine.run_rules(&mut s, &rules).unwrap();
        let desc = oid(&s, "desc");
        let peter_desc = s.apply_set(desc, oid(&s, "peter"), &[]).unwrap();
        let expected: BTreeSet<Oid> = ["tim", "mary", "sally", "tom", "paul"]
            .iter()
            .map(|n| oid(&s, n))
            .collect();
        assert_eq!(peter_desc, &expected);
    }

    #[test]
    fn generic_transitive_closure_via_tc_method() {
        // The paper's generic rules, guarded by a class of base methods so
        // that `tc` is not applied to the tc-methods it creates (the unguarded
        // program has an infinite minimal model — see DESIGN.md):
        //   kids : baseMethod.
        //   X[(M.tc) ->> {Y}] <- M : baseMethod, X[M ->> {Y}].
        //   X[(M.tc) ->> {Y}] <- M : baseMethod, X..(M.tc)[M ->> {Y}].
        let tc = |m: Term| m.scalar("tc").paren();
        let guard = || Literal::pos(Term::var("M").isa("baseMethod"));
        let mut rules = genealogy_facts();
        rules.push(Rule::fact(Term::name("kids").isa("baseMethod")));
        rules.push(Rule::new(
            Term::var("X").filter(Filter::set(tc(Term::var("M")), vec![Term::var("Y")])),
            vec![
                guard(),
                Literal::pos(Term::var("X").filter(Filter::set(Term::var("M"), vec![Term::var("Y")]))),
            ],
        ));
        rules.push(Rule::new(
            Term::var("X").filter(Filter::set(tc(Term::var("M")), vec![Term::var("Y")])),
            vec![
                guard(),
                Literal::pos(
                    Term::var("X")
                        .set_args(tc(Term::var("M")), vec![])
                        .filter(Filter::set(Term::var("M"), vec![Term::var("Y")])),
                ),
            ],
        ));
        let mut s = Structure::new();
        let engine = Engine::new();
        engine.run_rules(&mut s, &rules).unwrap();
        // peter[(kids.tc) ->> {tim, mary, sally, tom, paul}]
        let kids = oid(&s, "kids");
        let tc_m = oid(&s, "tc");
        let kids_tc = s
            .apply_scalar(tc_m, kids, &[])
            .expect("kids.tc must denote a (virtual) method");
        let closure = s.apply_set(kids_tc, oid(&s, "peter"), &[]).unwrap();
        let expected: BTreeSet<Oid> = ["tim", "mary", "sally", "tom", "paul"]
            .iter()
            .map(|n| oid(&s, n))
            .collect();
        assert_eq!(closure, &expected);
    }

    #[test]
    fn virtual_boss_rule_6_1() {
        // X.boss[worksFor -> D] <- X : employee[worksFor -> D].
        // with only p1:employee[worksFor -> cs1] given.
        let rules = vec![
            Rule::fact(
                Term::name("p1")
                    .isa("employee")
                    .filter(Filter::scalar("worksFor", Term::name("cs1"))),
            ),
            Rule::new(
                Term::var("X")
                    .scalar("boss")
                    .filter(Filter::scalar("worksFor", Term::var("D"))),
                vec![Literal::pos(
                    Term::var("X")
                        .isa("employee")
                        .filter(Filter::scalar("worksFor", Term::var("D"))),
                )],
            ),
        ];
        let mut s = Structure::new();
        let engine = Engine::new();
        let stats = engine.run_rules(&mut s, &rules).unwrap();
        assert_eq!(stats.virtual_objects, 1);
        let boss = oid(&s, "boss");
        let p1 = oid(&s, "p1");
        let v = s.apply_scalar(boss, p1, &[]).expect("p1.boss must now be defined");
        assert!(s.is_virtual(v));
        let works_for = oid(&s, "worksFor");
        assert_eq!(s.apply_scalar(works_for, v, &[]), Some(oid(&s, "cs1")));
    }

    #[test]
    fn existing_boss_rule_6_2_creates_no_virtuals() {
        // Z[worksFor -> D] <- X : employee[worksFor -> D].boss[Z].
        let rules = vec![
            Rule::fact(
                Term::name("p1")
                    .isa("employee")
                    .filter(Filter::scalar("worksFor", Term::name("cs1"))),
            ),
            Rule::fact(Term::name("p2").isa("employee").filters(vec![
                Filter::scalar("worksFor", Term::name("cs2")),
                Filter::scalar("boss", Term::name("bert")),
            ])),
            Rule::new(
                Term::var("Z").filter(Filter::scalar("worksFor", Term::var("D"))),
                vec![Literal::pos(
                    Term::var("X")
                        .isa("employee")
                        .filter(Filter::scalar("worksFor", Term::var("D")))
                        .scalar("boss")
                        .selector(Term::var("Z")),
                )],
            ),
        ];
        let mut s = Structure::new();
        let engine = Engine::new();
        let stats = engine.run_rules(&mut s, &rules).unwrap();
        assert_eq!(stats.virtual_objects, 0, "only existing bosses are affected");
        let works_for = oid(&s, "worksFor");
        assert_eq!(s.apply_scalar(works_for, oid(&s, "bert"), &[]), Some(oid(&s, "cs2")));
        // p1 has no boss, so no new fact mentions p1's (nonexistent) boss.
        let boss = oid(&s, "boss");
        assert_eq!(s.apply_scalar(boss, oid(&s, "p1"), &[]), None);
    }

    #[test]
    fn address_views_rule_2_4() {
        // X.address[street -> X.street; city -> X.city] <- X : person.
        let rules = vec![
            Rule::fact(Term::name("anna").isa("person").filters(vec![
                Filter::scalar("street", Term::string("Main St")),
                Filter::scalar("city", Term::name("newYork")),
            ])),
            Rule::fact(Term::name("bert").isa("person").filters(vec![
                Filter::scalar("street", Term::string("2nd Ave")),
                Filter::scalar("city", Term::name("detroit")),
            ])),
            Rule::new(
                Term::var("X").scalar("address").filters(vec![
                    Filter::scalar("street", Term::var("X").scalar("street")),
                    Filter::scalar("city", Term::var("X").scalar("city")),
                ]),
                vec![Literal::pos(Term::var("X").isa("person"))],
            ),
        ];
        let mut s = Structure::new();
        let engine = Engine::new();
        let stats = engine.run_rules(&mut s, &rules).unwrap();
        assert_eq!(stats.virtual_objects, 2, "one address per person");
        let address = oid(&s, "address");
        let city = oid(&s, "city");
        let anna_addr = s.apply_scalar(address, oid(&s, "anna"), &[]).unwrap();
        assert!(s.is_virtual(anna_addr));
        assert_eq!(s.apply_scalar(city, anna_addr, &[]), Some(oid(&s, "newYork")));
    }

    #[test]
    fn intensional_power_method() {
        // X[power -> Y] <- X : automobile.engine[power -> Y].
        let rules = vec![
            Rule::fact(
                Term::name("a1")
                    .isa("automobile")
                    .filter(Filter::scalar("engine", Term::name("e100"))),
            ),
            Rule::fact(Term::name("e100").filter(Filter::scalar("power", Term::int(90)))),
            Rule::new(
                Term::var("X").filter(Filter::scalar("power", Term::var("Y"))),
                vec![Literal::pos(
                    Term::var("X")
                        .isa("automobile")
                        .scalar("engine")
                        .filter(Filter::scalar("power", Term::var("Y"))),
                )],
            ),
        ];
        let mut s = Structure::new();
        let engine = Engine::new();
        engine.run_rules(&mut s, &rules).unwrap();
        let power = oid(&s, "power");
        let ninety = s.lookup_name(&Name::Int(90)).unwrap();
        assert_eq!(s.apply_scalar(power, oid(&s, "a1"), &[]), Some(ninety));
    }

    #[test]
    fn stratified_set_copy() {
        // assistants derived first, then friends copied set-at-a-time.
        let rules = vec![
            Rule::fact(Term::name("p1").filter(Filter::set("reports", vec![Term::name("anna"), Term::name("bert")]))),
            Rule::new(
                Term::name("p1").filter(Filter::set("assistants", vec![Term::var("Y")])),
                vec![Literal::pos(
                    Term::name("p1").filter(Filter::set("reports", vec![Term::var("Y")])),
                )],
            ),
            Rule::new(
                Term::name("p2").filter(Filter::set_ref("friends", Term::name("p1").set("assistants"))),
                vec![Literal::pos(
                    Term::name("p1").filter(Filter::set("assistants", vec![Term::var("Y")])),
                )],
            ),
        ];
        let mut s = Structure::new();
        let engine = Engine::new();
        let stats = engine.run_rules(&mut s, &rules).unwrap();
        assert!(stats.strata >= 2);
        let friends = oid(&s, "friends");
        assert_eq!(s.apply_set(friends, oid(&s, "p2"), &[]).unwrap().len(), 2);
    }

    #[test]
    fn unstratifiable_program_is_rejected() {
        // p2[friends ->> p2..friends.friendOf] style self-dependence:
        // head defines friends, body reads friends set-at-a-time.
        let rule = Rule::new(
            Term::name("p2").filter(Filter::set_ref("friends", Term::name("p2").set("friends"))),
            vec![Literal::pos(
                Term::name("p2").filter(Filter::set("friends", vec![Term::var("Y")])),
            )],
        );
        let mut s = Structure::new();
        let engine = Engine::new();
        assert!(matches!(
            engine.run_rules(&mut s, &[rule]),
            Err(Error::NotStratifiable(_))
        ));
    }

    #[test]
    fn negation_extension() {
        // X : single <- X : person, not X.spouse[].
        let rules = vec![
            Rule::fact(Term::name("john").isa("person")),
            Rule::fact(
                Term::name("mary")
                    .isa("person")
                    .filter(Filter::scalar("spouse", Term::name("peter"))),
            ),
            Rule::new(
                Term::var("X").isa("single"),
                vec![
                    Literal::pos(Term::var("X").isa("person")),
                    Literal::neg(Term::var("X").scalar("spouse").empty_filters()),
                ],
            ),
        ];
        let mut s = Structure::new();
        let engine = Engine::new();
        engine.run_rules(&mut s, &rules).unwrap();
        let single = oid(&s, "single");
        assert!(s.in_class(oid(&s, "john"), single));
        assert!(!s.in_class(oid(&s, "mary"), single));
    }

    #[test]
    fn query_api() {
        let mut program = Program::new();
        for f in genealogy_facts() {
            program.push_rule(f);
        }
        program.push_query(Query::single(
            Term::name("peter").filter(Filter::set("kids", vec![Term::var("K")])),
        ));
        let mut s = Structure::new();
        let engine = Engine::new();
        engine.load_program(&mut s, &program).unwrap();
        let solutions = engine.query(&s, &program.queries[0]).unwrap();
        assert_eq!(solutions.len(), 2);
        let ks: BTreeSet<Oid> = solutions.iter().map(|b| b.get(&Var::new("K")).unwrap()).collect();
        assert!(ks.contains(&oid(&s, "tim")) && ks.contains(&oid(&s, "mary")));

        // query_term / eval_ground agree
        let t = Term::name("peter").set("kids");
        assert_eq!(engine.query_term(&s, &t).unwrap().len(), 2);
        assert_eq!(engine.eval_ground(&s, &t).unwrap().len(), 2);
    }

    #[test]
    fn iteration_limit_is_enforced() {
        // A rule that creates an unbounded chain of virtual objects:
        // X.next[] <- X : node.   plus  Y : node <- X : node.next[Y].
        let rules = vec![
            Rule::fact(Term::name("n0").isa("node")),
            Rule::new(
                Term::var("X").scalar("next").empty_filters(),
                vec![Literal::pos(Term::var("X").isa("node"))],
            ),
            Rule::new(
                Term::var("Y").isa("node"),
                vec![Literal::pos(
                    Term::var("X").isa("node").scalar("next").selector(Term::var("Y")),
                )],
            ),
        ];
        let mut s = Structure::new();
        let engine = Engine::with_options(EvalOptions {
            max_iterations: 50,
            ..EvalOptions::default()
        });
        let err = engine.run_rules(&mut s, &rules).unwrap_err();
        assert!(matches!(
            err,
            Error::LimitExceeded {
                kind: crate::error::LimitKind::Iterations,
                limit: 50,
                ..
            }
        ));
    }

    #[test]
    fn delta_method_resolving_to_builtin_enumerates_receivers_in_full() {
        // Regression: a path literal whose *method derivation* lands in the
        // delta and resolves to a built-in method (here `self`, via the
        // derived alias fact a.alias = self).  Built-ins have no stored
        // facts, so the per-method receiver seeding must fall back to full
        // enumeration or the join silently drops every receiver.
        //   X : copied <- X.(a.alias), X : person.
        // `tim : person` and the seed fact live in the EDB (pre-asserted),
        // and the copied rule comes FIRST, so the alias fact is derived
        // *after* its iteration-1 solve and the only delta literal of the
        // later iteration is the path whose method resolves to `self` — the
        // join a wrongly-seeded built-in method would drop.
        let rules = vec![
            Rule::new(
                Term::var("X").isa("copied"),
                vec![
                    Literal::pos(Term::var("X").scalar(Term::name("a").scalar("alias").paren())),
                    Literal::pos(Term::var("X").isa("person")),
                ],
            ),
            Rule::new(
                Term::name("trigger").filter(Filter::scalar("on", Term::name("yes"))),
                vec![Literal::pos(
                    Term::name("seed").filter(Filter::scalar("go", Term::name("yes"))),
                )],
            ),
            Rule::new(
                Term::name("a").filter(Filter::scalar("alias", Term::name("self"))),
                vec![Literal::pos(
                    Term::name("trigger").filter(Filter::scalar("on", Term::name("yes"))),
                )],
            ),
        ];
        for delta_driven in [true, false] {
            let mut s = Structure::new();
            let (go, seed, yes) = (s.atom("go"), s.atom("seed"), s.atom("yes"));
            s.assert_scalar(go, seed, &[], yes).unwrap();
            let (tim, person) = (s.atom("tim"), s.atom("person"));
            s.add_isa(tim, person);
            Engine::with_options(EvalOptions {
                delta_driven,
                ..EvalOptions::default()
            })
            .run_rules(&mut s, &rules)
            .unwrap();
            let copied = oid(&s, "copied");
            assert!(
                s.in_class(oid(&s, "tim"), copied),
                "tim must be copied (delta_driven: {delta_driven})"
            );
        }
    }

    #[test]
    fn bare_variable_rule_sees_late_virtual_objects_under_unknown_keys() {
        // Regression: a rule whose body reads no dependency keys at all
        // (bare-variable literal) must still re-fire when the changed-key
        // set contains `Unknown` — here the generic `(M.tc)` head — so the
        // virtual tc-method object created mid-stratum is classified too.
        //   Z : thing <- Z.
        // The bare rule comes FIRST so that in iteration 1 it solves before
        // the tc rules create the virtual method object — only a later
        // iteration can classify it, which is exactly what a wrongly-skipped
        // rule would miss.
        let tc = |m: Term| m.scalar("tc").paren();
        let guard = || Literal::pos(Term::var("M").isa("baseMethod"));
        let mut rules = vec![Rule::new(
            Term::var("Z").isa("thing"),
            vec![Literal::pos(Term::var("Z"))],
        )];
        rules.extend(genealogy_facts());
        rules.push(Rule::fact(Term::name("kids").isa("baseMethod")));
        rules.push(Rule::new(
            Term::var("X").filter(Filter::set(tc(Term::var("M")), vec![Term::var("Y")])),
            vec![
                guard(),
                Literal::pos(Term::var("X").filter(Filter::set(Term::var("M"), vec![Term::var("Y")]))),
            ],
        ));
        rules.push(Rule::new(
            Term::var("X").filter(Filter::set(tc(Term::var("M")), vec![Term::var("Y")])),
            vec![
                guard(),
                Literal::pos(
                    Term::var("X")
                        .set_args(tc(Term::var("M")), vec![])
                        .filter(Filter::set(Term::var("M"), vec![Term::var("Y")])),
                ),
            ],
        ));
        let run = |delta_driven: bool| {
            let mut s = Structure::new();
            Engine::with_options(EvalOptions {
                delta_driven,
                ..EvalOptions::default()
            })
            .run_rules(&mut s, &rules)
            .unwrap();
            let thing = oid(&s, "thing");
            (s.num_objects(), s.extent_size(thing), s.stats().isa_edges)
        };
        let semi = run(true);
        let naive = run(false);
        assert_eq!(semi, naive, "semi-naive and naive must classify the same objects");
        // Every object — including the virtual tc method — is a thing.
        assert_eq!(
            semi.1,
            semi.0 - 1,
            "all objects except `thing` itself are in its extent"
        );
    }

    #[test]
    fn superclass_readers_are_woken_by_subclass_derivations() {
        // Regression: deriving `tim : student` also puts (tim, person) into
        // the transitive closure when `student isa person`; a rule that
        // reads only `person` must be re-fired.  The mark rule is ordered
        // FIRST so it solves before the student fact is derived and can
        // only pick it up through a later iteration's wake-up.
        //   x[mark ->> {Z}] <- Z : person.     X : student <- X[go -> yes].
        let rules = vec![
            Rule::new(
                Term::name("x").filter(Filter::set("mark", vec![Term::var("Z")])),
                vec![Literal::pos(Term::var("Z").isa("person"))],
            ),
            Rule::new(
                Term::var("X").isa("student"),
                vec![Literal::pos(
                    Term::var("X").filter(Filter::scalar("go", Term::name("yes"))),
                )],
            ),
        ];
        let run = |delta_driven: bool| {
            let mut s = Structure::new();
            let (student, person) = (s.atom("student"), s.atom("person"));
            s.add_isa(student, person);
            let (go, tim, yes) = (s.atom("go"), s.atom("tim"), s.atom("yes"));
            s.assert_scalar(go, tim, &[], yes).unwrap();
            Engine::with_options(EvalOptions {
                delta_driven,
                ..EvalOptions::default()
            })
            .run_rules(&mut s, &rules)
            .unwrap();
            let mark = oid(&s, "mark");
            s.apply_set(mark, oid(&s, "x"), &[]).map(|m| m.len()).unwrap_or(0)
        };
        let semi = run(true);
        let naive = run(false);
        assert_eq!(semi, naive, "semi-naive must mark the same objects as naive");
        assert_eq!(semi, 2, "both student (the class) and tim are persons");
    }

    #[test]
    fn virtual_created_under_known_keys_reaches_keyless_rules() {
        // Regression: a rule that reads no dependency keys at all must be
        // woken when a virtual object appears, even when every changed key
        // is Known (no generic `(M.tc)`-style Unknown in the program).
        // Object creation publishes the catch-all key for exactly this.
        //   Z : thing <- Z.        x.v[q -> c] <- a[p -> b].
        let rules = vec![
            Rule::new(Term::var("Z").isa("thing"), vec![Literal::pos(Term::var("Z"))]),
            Rule::fact(Term::name("a").filter(Filter::scalar("p", Term::name("b")))),
            Rule::new(
                Term::name("x").scalar("v").filter(Filter::scalar("q", Term::name("c"))),
                vec![Literal::pos(
                    Term::name("a").filter(Filter::scalar("p", Term::name("b"))),
                )],
            ),
        ];
        let run = |delta_driven: bool| {
            let mut s = Structure::new();
            Engine::with_options(EvalOptions {
                delta_driven,
                ..EvalOptions::default()
            })
            .run_rules(&mut s, &rules)
            .unwrap();
            let thing = oid(&s, "thing");
            (s.num_objects(), s.extent_size(thing), s.stats().isa_edges)
        };
        let semi = run(true);
        let naive = run(false);
        assert_eq!(semi, naive, "the virtual object must be classified in both modes");
        assert_eq!(semi.1, semi.0 - 1, "every object except `thing` itself is a thing");
    }

    #[test]
    fn same_iteration_fact_of_unchanged_key_is_not_lost() {
        // Regression: drivable literals must be selected from the rule's
        // own delta *window*, not from the previous iteration's changed-key
        // set.  Here `marked` is first derived in the same iteration in
        // which the `out` rule (which reads it) also runs: the iteration's
        // changed set only names `desc` at that point, but the marked fact
        // is inside the out rule's window — and by the next iteration it is
        // behind the rule's watermark, so a changed-key-based selection
        // loses the (old desc pair, new marked fact) joins forever.
        let desc = |recv: Term| recv.filter(Filter::set("desc", vec![Term::var("Y")]));
        let rules = vec![
            Rule::fact(Term::name("d3").filter(Filter::set("kids", vec![Term::name("y")]))),
            Rule::fact(Term::name("y").filter(Filter::set("kids", vec![Term::name("x")]))),
            Rule::fact(Term::name("x").filter(Filter::set("kids", vec![Term::name("goal")]))),
            Rule::fact(Term::name("d3").isa("watch")),
            Rule::new(
                desc(Term::var("X")),
                vec![Literal::pos(
                    Term::var("X").filter(Filter::set("kids", vec![Term::var("Y")])),
                )],
            ),
            Rule::new(
                desc(Term::var("X")),
                vec![Literal::pos(
                    Term::var("X")
                        .set("desc")
                        .filter(Filter::set("kids", vec![Term::var("Y")])),
                )],
            ),
            Rule::new(
                Term::var("X").isa("marked"),
                vec![
                    Literal::pos(Term::var("X").filter(Filter::set("desc", vec![Term::name("goal")]))),
                    Literal::pos(Term::var("X").isa("watch")),
                ],
            ),
            Rule::new(
                Term::var("X").isa("out"),
                vec![
                    Literal::pos(Term::var("W").filter(Filter::set("desc", vec![Term::var("X")]))),
                    Literal::pos(Term::var("W").isa("marked")),
                ],
            ),
            Rule::new(
                Term::name("goal").filter(Filter::set("kids", vec![Term::name("bonus")])),
                vec![Literal::pos(Term::var("X").isa("out"))],
            ),
        ];
        let run = |delta_driven: bool| {
            let mut s = Structure::new();
            Engine::with_options(EvalOptions {
                delta_driven,
                ..EvalOptions::default()
            })
            .run_rules(&mut s, &rules)
            .unwrap();
            let out = oid(&s, "out");
            let extent: BTreeSet<Oid> = s.instances_of(out).collect();
            (extent, s.stats().isa_edges, s.stats().set_members)
        };
        let semi = run(true);
        let naive = run(false);
        assert_eq!(semi, naive, "semi-naive must reach the naive fixpoint");
        assert_eq!(semi.0.len(), 4, "y, x, goal and bonus are all out");
    }

    /// A complete binary tree of `depth` levels of `kids` facts, big enough
    /// that per-iteration closure deltas exceed the sharding threshold.
    fn binary_tree(depth: u32) -> Structure {
        let mut s = Structure::new();
        let kids = s.atom("kids");
        let nodes: Vec<Oid> = (0..(1u32 << depth) - 1).map(|i| s.atom(&format!("n{i}"))).collect();
        for i in 0..nodes.len() {
            for child in [2 * i + 1, 2 * i + 2] {
                if child < nodes.len() {
                    s.assert_set_member(kids, nodes[i], &[], nodes[child]);
                }
            }
        }
        s
    }

    fn desc_closure_rules() -> Vec<Rule> {
        vec![
            Rule::new(
                Term::var("X").filter(Filter::set("desc", vec![Term::var("Y")])),
                vec![Literal::pos(
                    Term::var("X").filter(Filter::set("kids", vec![Term::var("Y")])),
                )],
            ),
            Rule::new(
                Term::var("X").filter(Filter::set("desc", vec![Term::var("Y")])),
                vec![Literal::pos(
                    Term::var("X")
                        .set("desc")
                        .filter(Filter::set("kids", vec![Term::var("Y")])),
                )],
            ),
            // A second stratum with a virtual-object head, so parallel mode
            // also has to reproduce virtual allocation order exactly.
            Rule::new(
                Term::var("X")
                    .scalar("summary")
                    .filter(Filter::set_ref("descendants", Term::var("X").set("desc"))),
                vec![Literal::pos(
                    Term::var("X").filter(Filter::set("kids", vec![Term::var("Y")])),
                )],
            ),
        ]
    }

    #[test]
    fn parallel_mode_is_bit_identical_to_sequential() {
        let base = binary_tree(8);
        let rules = desc_closure_rules();
        let run = |mode: EvalMode| {
            let mut s = base.clone();
            let stats = Engine::with_options(EvalOptions {
                mode,
                ..EvalOptions::default()
            })
            .run_rules(&mut s, &rules)
            .unwrap();
            (s, stats)
        };
        let (seq, seq_stats) = run(EvalMode::Sequential);
        for workers in [2usize, 4, 8] {
            let (par, par_stats) = run(EvalMode::Parallel { workers });
            assert_eq!(seq_stats, par_stats, "EvalStats must match at {workers} workers");
            assert_eq!(
                seq.canonical_dump(),
                par.canonical_dump(),
                "models must be byte-identical at {workers} workers"
            );
        }
        // Sanity: the workload is big enough that deltas actually sharded.
        assert!(seq_stats.delta_solves > 0);
        assert!(seq.stats().set_members > 2_000);
    }

    #[test]
    fn parallel_mode_with_zero_or_one_worker_degrades_to_sequential() {
        let base = binary_tree(4);
        let rules = desc_closure_rules();
        let run = |mode: EvalMode| {
            let mut s = base.clone();
            let stats = Engine::with_options(EvalOptions {
                mode,
                ..EvalOptions::default()
            })
            .run_rules(&mut s, &rules)
            .unwrap();
            (s.canonical_dump(), stats)
        };
        let seq = run(EvalMode::Sequential);
        assert_eq!(seq, run(EvalMode::Parallel { workers: 0 }));
        assert_eq!(seq, run(EvalMode::Parallel { workers: 1 }));
    }

    #[test]
    fn pooled_and_scoped_executors_are_bit_identical() {
        let base = binary_tree(8);
        let rules = desc_closure_rules();
        let run = |executor: ExecutorKind| {
            let mut s = base.clone();
            let stats = Engine::with_options(EvalOptions {
                mode: EvalMode::Parallel { workers: 4 },
                executor,
                ..EvalOptions::default()
            })
            .run_rules(&mut s, &rules)
            .unwrap();
            (s.canonical_dump(), stats)
        };
        let (pooled_dump, pooled_stats) = run(ExecutorKind::Pooled);
        let (scoped_dump, scoped_stats) = run(ExecutorKind::Scoped);
        assert_eq!(pooled_stats, scoped_stats, "EvalStats must not depend on the executor");
        assert_eq!(pooled_dump, scoped_dump, "models must not depend on the executor");
        // ... and both match the sequential run.
        let mut s = base.clone();
        Engine::new().run_rules(&mut s, &rules).unwrap();
        assert_eq!(s.canonical_dump(), pooled_dump);
    }

    #[test]
    fn worker_pool_is_reused_across_runs() {
        let base = binary_tree(7);
        let rules = desc_closure_rules();
        let engine = Engine::with_options(EvalOptions {
            mode: EvalMode::Parallel { workers: 4 },
            ..EvalOptions::default()
        });
        assert_eq!(engine.threads_spawned(), 0, "the pool is created lazily");
        for _ in 0..3 {
            let mut s = base.clone();
            engine.run_rules(&mut s, &rules).unwrap();
            assert_eq!(
                engine.threads_spawned(),
                4,
                "repeated runs reuse the pool instead of spawning"
            );
        }
        // A clone shares the pool (and the counter).
        let clone = engine.clone();
        let mut s = base.clone();
        clone.run_rules(&mut s, &rules).unwrap();
        assert_eq!(clone.threads_spawned(), 4);

        // Cloning *before* the first parallel run must share the pool slot
        // too: whichever copy runs first initializes the one shared pool.
        let fresh = Engine::with_options(EvalOptions {
            mode: EvalMode::Parallel { workers: 4 },
            ..EvalOptions::default()
        });
        let early_clone = fresh.clone();
        let mut s = base.clone();
        fresh.run_rules(&mut s, &rules).unwrap();
        let mut s = base.clone();
        early_clone.run_rules(&mut s, &rules).unwrap();
        assert_eq!(
            fresh.threads_spawned(),
            4,
            "a pre-run clone must not mint a second pool"
        );

        // The scoped executor, by contrast, spawns per batch: strictly more
        // threads over the same three runs.
        let scoped = Engine::with_options(EvalOptions {
            mode: EvalMode::Parallel { workers: 4 },
            executor: ExecutorKind::Scoped,
            ..EvalOptions::default()
        });
        for _ in 0..3 {
            let mut s = base.clone();
            scoped.run_rules(&mut s, &rules).unwrap();
        }
        assert!(
            scoped.threads_spawned() > 3 * 4,
            "scoped spawns grow with the number of solves ({} <= 12)",
            scoped.threads_spawned()
        );
    }

    #[test]
    fn cross_rule_and_rule_at_a_time_schedules_reach_the_same_fixpoint() {
        // The two schedules commit derivations in different orders (snapshot
        // windows vs rule-at-a-time), so virtual-object *numbering* may
        // differ — but the derived model must not, and on a virtual-free
        // program even the dumps must agree exactly.
        let base = binary_tree(6);
        let mut rules = vec![
            Rule::new(
                Term::var("X").filter(Filter::set("desc", vec![Term::var("Y")])),
                vec![Literal::pos(
                    Term::var("X").filter(Filter::set("kids", vec![Term::var("Y")])),
                )],
            ),
            Rule::new(
                Term::var("X").filter(Filter::set("desc", vec![Term::var("Y")])),
                vec![Literal::pos(
                    Term::var("X")
                        .set("desc")
                        .filter(Filter::set("kids", vec![Term::var("Y")])),
                )],
            ),
        ];
        let run = |schedule: Schedule, rules: &[Rule]| {
            let mut s = base.clone();
            let stats = Engine::with_options(EvalOptions {
                schedule,
                ..EvalOptions::default()
            })
            .run_rules(&mut s, rules)
            .unwrap();
            (s, stats)
        };
        let (cross, cross_stats) = run(Schedule::CrossRule, &rules);
        let (legacy, legacy_stats) = run(Schedule::RuleAtATime, &rules);
        assert_eq!(
            cross.canonical_dump(),
            legacy.canonical_dump(),
            "virtual-free programs must agree byte-for-byte across schedules"
        );
        assert_eq!(cross_stats.derived(), legacy_stats.derived());
        assert_eq!(cross_stats.firings, legacy_stats.firings);

        // With a virtual-object stratum on top, the schedules still derive
        // the same *counts* (the relaxed contract: scheduling counters and
        // oid numbering are only pinned within a schedule).
        rules.push(Rule::new(
            Term::var("X")
                .scalar("summary")
                .filter(Filter::set_ref("descendants", Term::var("X").set("desc"))),
            vec![Literal::pos(
                Term::var("X").filter(Filter::set("kids", vec![Term::var("Y")])),
            )],
        ));
        let (cross, cross_stats) = run(Schedule::CrossRule, &rules);
        let (legacy, legacy_stats) = run(Schedule::RuleAtATime, &rules);
        assert_eq!(cross_stats.derived(), legacy_stats.derived());
        assert_eq!(cross_stats.virtual_objects, legacy_stats.virtual_objects);
        assert_eq!(cross.stats(), legacy.stats());
    }

    #[test]
    fn rule_at_a_time_parallel_is_bit_identical_to_its_sequential() {
        // The identity guarantee holds within each schedule: the legacy arm
        // with workers must match the legacy arm without.
        let base = binary_tree(8);
        let rules = desc_closure_rules();
        let run = |mode: EvalMode| {
            let mut s = base.clone();
            let stats = Engine::with_options(EvalOptions {
                mode,
                schedule: Schedule::RuleAtATime,
                ..EvalOptions::default()
            })
            .run_rules(&mut s, &rules)
            .unwrap();
            (s.canonical_dump(), stats)
        };
        let (seq_dump, seq_stats) = run(EvalMode::Sequential);
        for workers in [2usize, 4] {
            let (par_dump, par_stats) = run(EvalMode::Parallel { workers });
            assert_eq!(seq_stats, par_stats, "legacy EvalStats must match at {workers} workers");
            assert_eq!(seq_dump, par_dump, "legacy models must match at {workers} workers");
        }
    }

    #[test]
    fn eval_stats_merge_is_saturating_and_fieldwise() {
        let mut a = EvalStats {
            strata: 1,
            iterations: 2,
            firings: 3,
            scalar_facts: usize::MAX - 1,
            set_members: 5,
            isa_edges: usize::MAX,
            signatures: 0,
            virtual_objects: 7,
            rules_skipped: 8,
            delta_solves: 9,
            full_solves: 10,
            tasks_recovered: 11,
            workers_respawned: 12,
            plans_compiled: 13,
            replans: 14,
            seed_flips: 15,
            epochs_published: 16,
            snapshots_pinned: 17,
            snapshots_reclaimed: 18,
        };
        let b = EvalStats {
            strata: 10,
            iterations: 20,
            firings: 30,
            scalar_facts: 40,
            set_members: 50,
            isa_edges: 60,
            signatures: 70,
            virtual_objects: 80,
            rules_skipped: 90,
            delta_solves: 100,
            full_solves: 110,
            tasks_recovered: 120,
            workers_respawned: 130,
            plans_compiled: 140,
            replans: 150,
            seed_flips: 160,
            epochs_published: 170,
            snapshots_pinned: 180,
            snapshots_reclaimed: 190,
        };
        a.merge(&b);
        assert_eq!(a.strata, 11);
        assert_eq!(a.iterations, 22);
        assert_eq!(a.firings, 33);
        assert_eq!(a.scalar_facts, usize::MAX, "saturates instead of wrapping");
        assert_eq!(a.set_members, 55);
        assert_eq!(a.isa_edges, usize::MAX, "saturates instead of wrapping");
        assert_eq!(a.signatures, 70);
        assert_eq!(a.virtual_objects, 87);
        assert_eq!(a.rules_skipped, 98);
        assert_eq!(a.delta_solves, 109);
        assert_eq!(a.full_solves, 120);
        assert_eq!(a.tasks_recovered, 131);
        assert_eq!(a.workers_respawned, 142);
        assert_eq!(a.plans_compiled, 153);
        assert_eq!(a.replans, 164);
        assert_eq!(a.seed_flips, 175);
        assert_eq!(a.epochs_published, 186);
        assert_eq!(a.snapshots_pinned, 197);
        assert_eq!(a.snapshots_reclaimed, 208);
        // derived() of saturated counters must not overflow either.
        assert_eq!(a.derived(), usize::MAX);
    }

    #[test]
    fn unknown_names_in_reference_queries_are_reported_not_silent() {
        let mut s = Structure::new();
        let engine = Engine::new();
        engine.run_rules(&mut s, &genealogy_facts()).unwrap();
        // `dsc` was never asserted by any fact or rule (a typo for `desc`).
        let typo = Term::name("peter").set("dsc");
        assert!(matches!(
            engine.eval_ground(&s, &typo),
            Err(Error::UnknownName(m)) if m.contains("dsc")
        ));
        assert!(matches!(engine.query_term(&s, &typo), Err(Error::UnknownName(_))));
        // Registered vocabulary still answers normally.
        assert_eq!(
            engine.eval_ground(&s, &Term::name("peter").set("kids")).unwrap().len(),
            2
        );
        // Value literals absent from the data are a legitimately empty
        // answer, not a typo: probing kids for a never-interned int works.
        let probe = Term::name("peter").filter(Filter::set("kids", vec![Term::int(31)]));
        assert!(engine.query_term(&s, &probe).unwrap().is_empty());
        // Query bodies stay permissive: unknown names mean "no solutions"
        // (generated queries legitimately probe absent attributes).
        let q = Query::single(Term::var("X").filter(Filter::set("dsc", vec![Term::var("Y")])));
        assert!(engine.query(&s, &q).unwrap().is_empty());
    }

    #[test]
    fn merge_canonical_sorts_and_deduplicates_across_parts() {
        let (x, y) = (Var::new("X"), Var::new("Y"));
        let b1 = Bindings::from_pairs([(x.clone(), Oid(3)), (y.clone(), Oid(1))]).unwrap();
        let b2 = Bindings::from_pairs([(x.clone(), Oid(1)), (y.clone(), Oid(2))]).unwrap();
        // Same valuation as b2, bound in the opposite order.
        let b2_rev = Bindings::from_pairs([(y.clone(), Oid(2)), (x.clone(), Oid(1))]).unwrap();
        let merged = merge_canonical(vec![vec![b1.clone()], vec![b2.clone(), b2_rev]]);
        assert_eq!(merged.len(), 2, "order-independent duplicates collapse");
        assert_eq!(merged[0].get(&x), Some(Oid(1)));
        assert_eq!(merged[1].get(&x), Some(Oid(3)));
    }

    #[test]
    fn delta_and_naive_agree() {
        let mut rules = genealogy_facts();
        rules.push(Rule::new(
            Term::var("X").filter(Filter::set("desc", vec![Term::var("Y")])),
            vec![Literal::pos(
                Term::var("X").filter(Filter::set("kids", vec![Term::var("Y")])),
            )],
        ));
        rules.push(Rule::new(
            Term::var("X").filter(Filter::set("desc", vec![Term::var("Y")])),
            vec![Literal::pos(
                Term::var("X")
                    .set("desc")
                    .filter(Filter::set("kids", vec![Term::var("Y")])),
            )],
        ));
        let mut s1 = Structure::new();
        Engine::with_options(EvalOptions {
            delta_driven: true,
            ..EvalOptions::default()
        })
        .run_rules(&mut s1, &rules)
        .unwrap();
        let mut s2 = Structure::new();
        Engine::with_options(EvalOptions {
            delta_driven: false,
            ..EvalOptions::default()
        })
        .run_rules(&mut s2, &rules)
        .unwrap();
        assert_eq!(s1.stats().set_members, s2.stats().set_members);
        assert_eq!(s1.stats().scalar_facts, s2.stats().scalar_facts);
    }

    #[test]
    fn install_checked_warn_only_installs_with_diagnostics() {
        let mut program = Program::new();
        program.push_rule(Rule::fact(Term::name("mary").isa("person")));
        // Reads `salary`, which nothing defines: a PL006 warning.
        program.push_rule(Rule::new(
            Term::var("X").isa("rich"),
            vec![Literal::pos(
                Term::var("X").filter(Filter::scalar("salary", Term::var("_S"))),
            )],
        ));
        let mut s = Structure::new();
        let engine = Engine::new();
        let (stats, analysis) = engine.install_checked(&mut s, &program).unwrap();
        assert!(stats.strata >= 1);
        assert!(!analysis.diagnostics.is_empty());
        assert!(analysis.no_errors());
    }

    #[test]
    fn install_checked_enforce_rejects_error_diagnostics() {
        let mut program = Program::new();
        program.push_rule(Rule::fact(Term::var("X").isa("person"))); // non-ground: PL003
        let engine = Engine::with_options(EvalOptions {
            static_checks: StaticChecks::Enforce,
            ..EvalOptions::default()
        });
        let mut s = Structure::new();
        let err = engine.install_checked(&mut s, &program).unwrap_err();
        match err {
            Error::StaticRejected(report) => assert!(report.contains("PL003"), "{report}"),
            other => panic!("expected StaticRejected, got {other:?}"),
        }
        // Nothing was installed.
        assert_eq!(s.stats().isa_edges, 0);

        // The same program under WarnOnly fails load_program's own
        // validation instead — enforcement only changes *when*, not *if*.
        let engine = Engine::new();
        assert!(engine.install_checked(&mut s, &program).is_err());
    }

    #[test]
    fn engine_analyze_reports_strata_and_plans() {
        let mut program = Program::new();
        program.push_rule(Rule::fact(
            Term::name("peter").filter(Filter::set("kids", vec![Term::name("tim")])),
        ));
        program.push_rule(Rule::new(
            Term::var("X").filter(Filter::set("desc", vec![Term::var("Y")])),
            vec![Literal::pos(
                Term::var("X").filter(Filter::set("kids", vec![Term::var("Y")])),
            )],
        ));
        let engine = Engine::new();
        let analysis = engine.analyze(None, &program);
        assert!(analysis.diagnostics.is_empty(), "{}", analysis.diagnostics);
        let strata = analysis.strata.as_ref().unwrap();
        let infos = crate::program::validate_program(&program).unwrap();
        assert_eq!(*strata, stratify(&infos).unwrap());
        assert_eq!(analysis.plans.len(), 1);
    }
}
