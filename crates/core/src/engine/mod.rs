//! Bottom-up evaluation of PathLog programs (Section 6 of the paper).
//!
//! The engine validates a program, stratifies its rules (see [`stratify`]),
//! and then computes the least fixpoint stratum by stratum: in each
//! iteration every (relevant) rule's body is solved against the current
//! structure and its head asserted for every solution, creating virtual
//! objects for undefined head paths (see [`virtuals`]).  Iteration stops when
//! no rule adds new information.
//!
//! Between iterations the engine tracks which method/class names changed and
//! skips rules whose bodies cannot be affected — a coarse-grained
//! semi-naive optimisation that retains the simplicity of naive evaluation
//! (rules are re-evaluated from scratch, but only when they can produce
//! something new).

mod stratify;
mod virtuals;

pub use stratify::{stratify, Stratification};
pub use virtuals::{assert_head, AssertEffect, AssertOptions};

use std::collections::BTreeSet;

use crate::error::{Error, Result};
use crate::names::Name;
use crate::program::{DepKey, Literal, Program, Query, Rule, RuleInfo};
use crate::semantics::{answers, Answer, Bindings};
use crate::structure::{Oid, Structure};
use crate::term::Term;

/// Options controlling evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalOptions {
    /// Maximum number of fixpoint iterations per stratum before giving up.
    pub max_iterations: usize,
    /// Maximum number of derived facts (scalar + set members + isa edges)
    /// before giving up — a guard against runaway virtual-object creation.
    pub max_derived: usize,
    /// Create virtual objects for undefined scalar paths in rule heads.
    pub create_virtuals: bool,
    /// Skip rules whose dependencies did not change in the previous
    /// iteration (coarse-grained semi-naive evaluation).
    pub delta_driven: bool,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            max_iterations: 100_000,
            max_derived: 50_000_000,
            create_virtuals: true,
            delta_driven: true,
        }
    }
}

/// Statistics of one evaluation run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EvalStats {
    /// Number of strata.
    pub strata: usize,
    /// Total fixpoint iterations over all strata.
    pub iterations: usize,
    /// Number of rule/solution pairs asserted.
    pub firings: usize,
    /// Derived scalar facts.
    pub scalar_facts: usize,
    /// Derived set members.
    pub set_members: usize,
    /// Derived class memberships.
    pub isa_edges: usize,
    /// Signature declarations added.
    pub signatures: usize,
    /// Virtual objects created.
    pub virtual_objects: usize,
}

impl EvalStats {
    /// Total number of derived facts.
    pub fn derived(&self) -> usize {
        self.scalar_facts + self.set_members + self.isa_edges
    }

    fn absorb(&mut self, e: AssertEffect) {
        self.scalar_facts += e.scalar_facts;
        self.set_members += e.set_members;
        self.isa_edges += e.isa_edges;
        self.signatures += e.signatures;
        self.virtual_objects += e.virtual_objects;
    }
}

/// The PathLog evaluation engine.
#[derive(Debug, Default, Clone)]
pub struct Engine {
    options: EvalOptions,
}

impl Engine {
    /// An engine with default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// An engine with the given options.
    pub fn with_options(options: EvalOptions) -> Self {
        Engine { options }
    }

    /// The options in use.
    pub fn options(&self) -> &EvalOptions {
        &self.options
    }

    /// Load a program into `structure`: validate, register every name,
    /// stratify, assert facts and evaluate rules to the fixpoint.
    pub fn load_program(&self, structure: &mut Structure, program: &Program) -> Result<EvalStats> {
        let infos = crate::program::validate_program(program)?;
        for rule in &program.rules {
            register_names(structure, &rule.head);
            for lit in &rule.body {
                register_names(structure, &lit.term);
            }
        }
        for query in &program.queries {
            for lit in &query.body {
                register_names(structure, &lit.term);
            }
        }
        self.run(structure, &program.rules, &infos)
    }

    /// Evaluate a set of rules (and facts) against `structure`.
    pub fn run_rules(&self, structure: &mut Structure, rules: &[Rule]) -> Result<EvalStats> {
        let infos = rules
            .iter()
            .map(crate::program::validate_rule)
            .collect::<Result<Vec<_>>>()?;
        for rule in rules {
            register_names(structure, &rule.head);
            for lit in &rule.body {
                register_names(structure, &lit.term);
            }
        }
        self.run(structure, rules, &infos)
    }

    fn run(&self, structure: &mut Structure, rules: &[Rule], infos: &[RuleInfo]) -> Result<EvalStats> {
        let stratification = stratify(infos)?;
        let mut stats = EvalStats {
            strata: stratification.len(),
            ..EvalStats::default()
        };
        let assert_options = AssertOptions {
            create_virtuals: self.options.create_virtuals,
        };

        for stratum in &stratification.strata {
            let mut changed_keys: Option<BTreeSet<DepKey>> = None; // None = first iteration, fire everything
            loop {
                stats.iterations += 1;
                if stats.iterations > self.options.max_iterations {
                    return Err(Error::LimitExceeded(format!(
                        "fixpoint did not converge within {} iterations",
                        self.options.max_iterations
                    )));
                }
                let mut new_keys: BTreeSet<DepKey> = BTreeSet::new();
                let mut any_change = false;

                for &r in stratum {
                    let rule = &rules[r];
                    let info = &infos[r];
                    if self.options.delta_driven {
                        if let Some(changed) = &changed_keys {
                            if !rule_affected(info, changed) {
                                continue;
                            }
                        }
                    }
                    let solutions = solve_body(structure, &rule.body, &Bindings::new())?;
                    for bindings in solutions {
                        let (_, effect) = assert_head(structure, &rule.head, &bindings, assert_options)?;
                        if effect.changed() {
                            any_change = true;
                            stats.firings += 1;
                            stats.absorb(effect);
                            new_keys.extend(info.defines.iter().cloned());
                        }
                        if stats.derived() > self.options.max_derived {
                            return Err(Error::LimitExceeded(format!(
                                "more than {} facts derived; aborting",
                                self.options.max_derived
                            )));
                        }
                    }
                }

                if !any_change {
                    break;
                }
                changed_keys = Some(new_keys);
            }
        }
        Ok(stats)
    }

    /// Answer a query: the variable-valuations that satisfy its body.
    pub fn query(&self, structure: &Structure, query: &Query) -> Result<Vec<Bindings>> {
        solve_body(structure, &query.body, &Bindings::new())
    }

    /// Answers (valuation + denoted object) of a single reference.
    pub fn query_term(&self, structure: &Structure, term: &Term) -> Result<Vec<Answer>> {
        answers(structure, term, &Bindings::new())
    }

    /// The objects denoted by a ground reference.
    pub fn eval_ground(&self, structure: &Structure, term: &Term) -> Result<BTreeSet<Oid>> {
        crate::semantics::valuate(structure, term, &Bindings::new())
    }
}

/// Does `info` read anything in `changed`?
fn rule_affected(info: &RuleInfo, changed: &BTreeSet<DepKey>) -> bool {
    if changed.is_empty() {
        return false;
    }
    if changed.contains(&DepKey::Unknown)
        || info.uses.contains(&DepKey::Unknown)
        || info.strict_uses.contains(&DepKey::Unknown)
    {
        return true;
    }
    info.uses
        .iter()
        .chain(info.strict_uses.iter())
        .any(|k| changed.contains(k))
}

/// Register every name occurring in a term, making `I_N` total over the
/// program's alphabet.
fn register_names(structure: &mut Structure, term: &Term) {
    let mut names: Vec<Name> = Vec::new();
    term.visit(&mut |t| {
        if let Term::Name(n) = t {
            names.push(n.clone());
        }
    });
    for n in names {
        structure.ensure_name(&n);
    }
}

/// Solve a body conjunction: enumerate the variable-valuations extending
/// `seed` that satisfy every literal.  Positive literals are processed in
/// order; negated literals are checked last (validation guarantees their
/// variables are bound by then).
pub fn solve_body(structure: &Structure, body: &[Literal], seed: &Bindings) -> Result<Vec<Bindings>> {
    let mut states = vec![seed.clone()];
    // positive literals first, in source order
    for lit in body.iter().filter(|l| l.positive) {
        let mut next = Vec::new();
        let mut seen: BTreeSet<Vec<(String, u32)>> = BTreeSet::new();
        for s in &states {
            for a in answers(structure, &lit.term, s)? {
                if seen.insert(binding_key(&a.bindings)) {
                    next.push(a.bindings);
                }
            }
        }
        states = next;
        if states.is_empty() {
            return Ok(states);
        }
    }
    // then negated literals as filters
    for lit in body.iter().filter(|l| !l.positive) {
        let mut next = Vec::new();
        for s in states {
            if answers(structure, &lit.term, &s)?.is_empty() {
                next.push(s);
            }
        }
        states = next;
        if states.is_empty() {
            break;
        }
    }
    Ok(states)
}

/// A canonical, order-independent key for a set of bindings (used to remove
/// duplicate valuations produced by set-valued references).
fn binding_key(b: &Bindings) -> Vec<(String, u32)> {
    let mut key: Vec<(String, u32)> = b.iter().map(|(v, o)| (v.0.clone(), o.0)).collect();
    key.sort();
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names::Var;
    use crate::program::{Literal, Program, Query, Rule};
    use crate::term::Filter;

    fn oid(s: &Structure, n: &str) -> Oid {
        s.lookup_name(&Name::atom(n)).unwrap()
    }

    /// The facts of Section 6: peter's kids, tim's kids, mary's kids.
    fn genealogy_facts() -> Vec<Rule> {
        vec![
            Rule::fact(Term::name("peter").filter(Filter::set("kids", vec![Term::name("tim"), Term::name("mary")]))),
            Rule::fact(Term::name("tim").filter(Filter::set("kids", vec![Term::name("sally")]))),
            Rule::fact(Term::name("mary").filter(Filter::set("kids", vec![Term::name("tom"), Term::name("paul")]))),
        ]
    }

    #[test]
    fn facts_are_asserted() {
        let mut s = Structure::new();
        let engine = Engine::new();
        let stats = engine.run_rules(&mut s, &genealogy_facts()).unwrap();
        assert_eq!(stats.set_members, 5);
        assert_eq!(stats.virtual_objects, 0);
        let kids = oid(&s, "kids");
        assert_eq!(s.apply_set(kids, oid(&s, "peter"), &[]).unwrap().len(), 2);
    }

    #[test]
    fn transitive_closure_desc() {
        // (6.4): X[desc ->> {Y}] <- X[kids ->> {Y}].
        //        X[desc ->> {Y}] <- X..desc[kids ->> {Y}].
        let mut rules = genealogy_facts();
        rules.push(Rule::new(
            Term::var("X").filter(Filter::set("desc", vec![Term::var("Y")])),
            vec![Literal::pos(
                Term::var("X").filter(Filter::set("kids", vec![Term::var("Y")])),
            )],
        ));
        rules.push(Rule::new(
            Term::var("X").filter(Filter::set("desc", vec![Term::var("Y")])),
            vec![Literal::pos(
                Term::var("X")
                    .set("desc")
                    .filter(Filter::set("kids", vec![Term::var("Y")])),
            )],
        ));
        let mut s = Structure::new();
        let engine = Engine::new();
        engine.run_rules(&mut s, &rules).unwrap();
        let desc = oid(&s, "desc");
        let peter_desc = s.apply_set(desc, oid(&s, "peter"), &[]).unwrap();
        let expected: BTreeSet<Oid> = ["tim", "mary", "sally", "tom", "paul"]
            .iter()
            .map(|n| oid(&s, n))
            .collect();
        assert_eq!(peter_desc, &expected);
    }

    #[test]
    fn generic_transitive_closure_via_tc_method() {
        // The paper's generic rules, guarded by a class of base methods so
        // that `tc` is not applied to the tc-methods it creates (the unguarded
        // program has an infinite minimal model — see DESIGN.md):
        //   kids : baseMethod.
        //   X[(M.tc) ->> {Y}] <- M : baseMethod, X[M ->> {Y}].
        //   X[(M.tc) ->> {Y}] <- M : baseMethod, X..(M.tc)[M ->> {Y}].
        let tc = |m: Term| m.scalar("tc").paren();
        let guard = || Literal::pos(Term::var("M").isa("baseMethod"));
        let mut rules = genealogy_facts();
        rules.push(Rule::fact(Term::name("kids").isa("baseMethod")));
        rules.push(Rule::new(
            Term::var("X").filter(Filter::set(tc(Term::var("M")), vec![Term::var("Y")])),
            vec![
                guard(),
                Literal::pos(Term::var("X").filter(Filter::set(Term::var("M"), vec![Term::var("Y")]))),
            ],
        ));
        rules.push(Rule::new(
            Term::var("X").filter(Filter::set(tc(Term::var("M")), vec![Term::var("Y")])),
            vec![
                guard(),
                Literal::pos(
                    Term::var("X")
                        .set_args(tc(Term::var("M")), vec![])
                        .filter(Filter::set(Term::var("M"), vec![Term::var("Y")])),
                ),
            ],
        ));
        let mut s = Structure::new();
        let engine = Engine::new();
        engine.run_rules(&mut s, &rules).unwrap();
        // peter[(kids.tc) ->> {tim, mary, sally, tom, paul}]
        let kids = oid(&s, "kids");
        let tc_m = oid(&s, "tc");
        let kids_tc = s
            .apply_scalar(tc_m, kids, &[])
            .expect("kids.tc must denote a (virtual) method");
        let closure = s.apply_set(kids_tc, oid(&s, "peter"), &[]).unwrap();
        let expected: BTreeSet<Oid> = ["tim", "mary", "sally", "tom", "paul"]
            .iter()
            .map(|n| oid(&s, n))
            .collect();
        assert_eq!(closure, &expected);
    }

    #[test]
    fn virtual_boss_rule_6_1() {
        // X.boss[worksFor -> D] <- X : employee[worksFor -> D].
        // with only p1:employee[worksFor -> cs1] given.
        let rules = vec![
            Rule::fact(
                Term::name("p1")
                    .isa("employee")
                    .filter(Filter::scalar("worksFor", Term::name("cs1"))),
            ),
            Rule::new(
                Term::var("X")
                    .scalar("boss")
                    .filter(Filter::scalar("worksFor", Term::var("D"))),
                vec![Literal::pos(
                    Term::var("X")
                        .isa("employee")
                        .filter(Filter::scalar("worksFor", Term::var("D"))),
                )],
            ),
        ];
        let mut s = Structure::new();
        let engine = Engine::new();
        let stats = engine.run_rules(&mut s, &rules).unwrap();
        assert_eq!(stats.virtual_objects, 1);
        let boss = oid(&s, "boss");
        let p1 = oid(&s, "p1");
        let v = s.apply_scalar(boss, p1, &[]).expect("p1.boss must now be defined");
        assert!(s.is_virtual(v));
        let works_for = oid(&s, "worksFor");
        assert_eq!(s.apply_scalar(works_for, v, &[]), Some(oid(&s, "cs1")));
    }

    #[test]
    fn existing_boss_rule_6_2_creates_no_virtuals() {
        // Z[worksFor -> D] <- X : employee[worksFor -> D].boss[Z].
        let rules = vec![
            Rule::fact(
                Term::name("p1")
                    .isa("employee")
                    .filter(Filter::scalar("worksFor", Term::name("cs1"))),
            ),
            Rule::fact(Term::name("p2").isa("employee").filters(vec![
                Filter::scalar("worksFor", Term::name("cs2")),
                Filter::scalar("boss", Term::name("bert")),
            ])),
            Rule::new(
                Term::var("Z").filter(Filter::scalar("worksFor", Term::var("D"))),
                vec![Literal::pos(
                    Term::var("X")
                        .isa("employee")
                        .filter(Filter::scalar("worksFor", Term::var("D")))
                        .scalar("boss")
                        .selector(Term::var("Z")),
                )],
            ),
        ];
        let mut s = Structure::new();
        let engine = Engine::new();
        let stats = engine.run_rules(&mut s, &rules).unwrap();
        assert_eq!(stats.virtual_objects, 0, "only existing bosses are affected");
        let works_for = oid(&s, "worksFor");
        assert_eq!(s.apply_scalar(works_for, oid(&s, "bert"), &[]), Some(oid(&s, "cs2")));
        // p1 has no boss, so no new fact mentions p1's (nonexistent) boss.
        let boss = oid(&s, "boss");
        assert_eq!(s.apply_scalar(boss, oid(&s, "p1"), &[]), None);
    }

    #[test]
    fn address_views_rule_2_4() {
        // X.address[street -> X.street; city -> X.city] <- X : person.
        let rules = vec![
            Rule::fact(Term::name("anna").isa("person").filters(vec![
                Filter::scalar("street", Term::string("Main St")),
                Filter::scalar("city", Term::name("newYork")),
            ])),
            Rule::fact(Term::name("bert").isa("person").filters(vec![
                Filter::scalar("street", Term::string("2nd Ave")),
                Filter::scalar("city", Term::name("detroit")),
            ])),
            Rule::new(
                Term::var("X").scalar("address").filters(vec![
                    Filter::scalar("street", Term::var("X").scalar("street")),
                    Filter::scalar("city", Term::var("X").scalar("city")),
                ]),
                vec![Literal::pos(Term::var("X").isa("person"))],
            ),
        ];
        let mut s = Structure::new();
        let engine = Engine::new();
        let stats = engine.run_rules(&mut s, &rules).unwrap();
        assert_eq!(stats.virtual_objects, 2, "one address per person");
        let address = oid(&s, "address");
        let city = oid(&s, "city");
        let anna_addr = s.apply_scalar(address, oid(&s, "anna"), &[]).unwrap();
        assert!(s.is_virtual(anna_addr));
        assert_eq!(s.apply_scalar(city, anna_addr, &[]), Some(oid(&s, "newYork")));
    }

    #[test]
    fn intensional_power_method() {
        // X[power -> Y] <- X : automobile.engine[power -> Y].
        let rules = vec![
            Rule::fact(
                Term::name("a1")
                    .isa("automobile")
                    .filter(Filter::scalar("engine", Term::name("e100"))),
            ),
            Rule::fact(Term::name("e100").filter(Filter::scalar("power", Term::int(90)))),
            Rule::new(
                Term::var("X").filter(Filter::scalar("power", Term::var("Y"))),
                vec![Literal::pos(
                    Term::var("X")
                        .isa("automobile")
                        .scalar("engine")
                        .filter(Filter::scalar("power", Term::var("Y"))),
                )],
            ),
        ];
        let mut s = Structure::new();
        let engine = Engine::new();
        engine.run_rules(&mut s, &rules).unwrap();
        let power = oid(&s, "power");
        let ninety = s.lookup_name(&Name::Int(90)).unwrap();
        assert_eq!(s.apply_scalar(power, oid(&s, "a1"), &[]), Some(ninety));
    }

    #[test]
    fn stratified_set_copy() {
        // assistants derived first, then friends copied set-at-a-time.
        let rules = vec![
            Rule::fact(Term::name("p1").filter(Filter::set("reports", vec![Term::name("anna"), Term::name("bert")]))),
            Rule::new(
                Term::name("p1").filter(Filter::set("assistants", vec![Term::var("Y")])),
                vec![Literal::pos(
                    Term::name("p1").filter(Filter::set("reports", vec![Term::var("Y")])),
                )],
            ),
            Rule::new(
                Term::name("p2").filter(Filter::set_ref("friends", Term::name("p1").set("assistants"))),
                vec![Literal::pos(
                    Term::name("p1").filter(Filter::set("assistants", vec![Term::var("Y")])),
                )],
            ),
        ];
        let mut s = Structure::new();
        let engine = Engine::new();
        let stats = engine.run_rules(&mut s, &rules).unwrap();
        assert!(stats.strata >= 2);
        let friends = oid(&s, "friends");
        assert_eq!(s.apply_set(friends, oid(&s, "p2"), &[]).unwrap().len(), 2);
    }

    #[test]
    fn unstratifiable_program_is_rejected() {
        // p2[friends ->> p2..friends.friendOf] style self-dependence:
        // head defines friends, body reads friends set-at-a-time.
        let rule = Rule::new(
            Term::name("p2").filter(Filter::set_ref("friends", Term::name("p2").set("friends"))),
            vec![Literal::pos(
                Term::name("p2").filter(Filter::set("friends", vec![Term::var("Y")])),
            )],
        );
        let mut s = Structure::new();
        let engine = Engine::new();
        assert!(matches!(
            engine.run_rules(&mut s, &[rule]),
            Err(Error::NotStratifiable(_))
        ));
    }

    #[test]
    fn negation_extension() {
        // X : single <- X : person, not X.spouse[].
        let rules = vec![
            Rule::fact(Term::name("john").isa("person")),
            Rule::fact(
                Term::name("mary")
                    .isa("person")
                    .filter(Filter::scalar("spouse", Term::name("peter"))),
            ),
            Rule::new(
                Term::var("X").isa("single"),
                vec![
                    Literal::pos(Term::var("X").isa("person")),
                    Literal::neg(Term::var("X").scalar("spouse").empty_filters()),
                ],
            ),
        ];
        let mut s = Structure::new();
        let engine = Engine::new();
        engine.run_rules(&mut s, &rules).unwrap();
        let single = oid(&s, "single");
        assert!(s.in_class(oid(&s, "john"), single));
        assert!(!s.in_class(oid(&s, "mary"), single));
    }

    #[test]
    fn query_api() {
        let mut program = Program::new();
        for f in genealogy_facts() {
            program.push_rule(f);
        }
        program.push_query(Query::single(
            Term::name("peter").filter(Filter::set("kids", vec![Term::var("K")])),
        ));
        let mut s = Structure::new();
        let engine = Engine::new();
        engine.load_program(&mut s, &program).unwrap();
        let solutions = engine.query(&s, &program.queries[0]).unwrap();
        assert_eq!(solutions.len(), 2);
        let ks: BTreeSet<Oid> = solutions.iter().map(|b| b.get(&Var::new("K")).unwrap()).collect();
        assert!(ks.contains(&oid(&s, "tim")) && ks.contains(&oid(&s, "mary")));

        // query_term / eval_ground agree
        let t = Term::name("peter").set("kids");
        assert_eq!(engine.query_term(&s, &t).unwrap().len(), 2);
        assert_eq!(engine.eval_ground(&s, &t).unwrap().len(), 2);
    }

    #[test]
    fn iteration_limit_is_enforced() {
        // A rule that creates an unbounded chain of virtual objects:
        // X.next[] <- X : node.   plus  Y : node <- X : node.next[Y].
        let rules = vec![
            Rule::fact(Term::name("n0").isa("node")),
            Rule::new(
                Term::var("X").scalar("next").empty_filters(),
                vec![Literal::pos(Term::var("X").isa("node"))],
            ),
            Rule::new(
                Term::var("Y").isa("node"),
                vec![Literal::pos(
                    Term::var("X").isa("node").scalar("next").selector(Term::var("Y")),
                )],
            ),
        ];
        let mut s = Structure::new();
        let engine = Engine::with_options(EvalOptions {
            max_iterations: 50,
            ..EvalOptions::default()
        });
        let err = engine.run_rules(&mut s, &rules).unwrap_err();
        assert!(matches!(err, Error::LimitExceeded(_)));
    }

    #[test]
    fn delta_and_naive_agree() {
        let mut rules = genealogy_facts();
        rules.push(Rule::new(
            Term::var("X").filter(Filter::set("desc", vec![Term::var("Y")])),
            vec![Literal::pos(
                Term::var("X").filter(Filter::set("kids", vec![Term::var("Y")])),
            )],
        ));
        rules.push(Rule::new(
            Term::var("X").filter(Filter::set("desc", vec![Term::var("Y")])),
            vec![Literal::pos(
                Term::var("X")
                    .set("desc")
                    .filter(Filter::set("kids", vec![Term::var("Y")])),
            )],
        ));
        let mut s1 = Structure::new();
        Engine::with_options(EvalOptions {
            delta_driven: true,
            ..EvalOptions::default()
        })
        .run_rules(&mut s1, &rules)
        .unwrap();
        let mut s2 = Structure::new();
        Engine::with_options(EvalOptions {
            delta_driven: false,
            ..EvalOptions::default()
        })
        .run_rules(&mut s2, &rules)
        .unwrap();
        assert_eq!(s1.stats().set_members, s2.stats().set_members);
        assert_eq!(s1.stats().scalar_facts, s2.stats().scalar_facts);
    }
}
