//! Scalarity of references (Definition 2 of the paper).
//!
//! A reference is either *scalar* (it denotes at most one object) or
//! *set-valued* (it may denote arbitrarily many).  The classification is
//! purely syntactic:
//!
//! * `t0..m@(..)` is set-valued;
//! * `t0.m@(..)` is set-valued if the receiver, the method or any argument is
//!   set-valued (e.g. `p1..assistants.salary` — a scalar method applied to a
//!   set);
//! * molecules `t0[..]` and `t0 : c` inherit the scalarity of their receiver;
//! * `(t0)` inherits the scalarity of `t0`;
//! * names and variables are scalar (variables range over single objects).

use crate::term::Term;

/// The scalarity of a reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scalarity {
    /// Denotes at most one object.
    Scalar,
    /// May denote a set of objects.
    SetValued,
}

impl Scalarity {
    /// `true` when set-valued.
    pub fn is_set_valued(self) -> bool {
        matches!(self, Scalarity::SetValued)
    }
}

/// Compute the scalarity of a reference per Definition 2.
pub fn scalarity(term: &Term) -> Scalarity {
    if is_set_valued(term) {
        Scalarity::SetValued
    } else {
        Scalarity::Scalar
    }
}

/// `true` iff the reference is set-valued per Definition 2.
pub fn is_set_valued(term: &Term) -> bool {
    match term {
        Term::Name(_) | Term::Var(_) => false,
        Term::Paren(t) => is_set_valued(t),
        Term::Path(p) => {
            p.set_valued || is_set_valued(&p.receiver) || is_set_valued(&p.method) || p.args.iter().any(is_set_valued)
        }
        Term::Molecule(m) => is_set_valued(&m.receiver),
        Term::IsA(i) => is_set_valued(&i.receiver),
    }
}

/// `true` iff the reference is scalar per Definition 2.
pub fn is_scalar(term: &Term) -> bool {
    !is_set_valued(term)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Filter;

    #[test]
    fn simple_references_are_scalar() {
        assert!(is_scalar(&Term::name("p1")));
        assert!(is_scalar(&Term::var("X")));
        assert!(is_scalar(&Term::int(4)));
    }

    #[test]
    fn scalar_path_is_scalar() {
        // p1.age
        assert!(is_scalar(&Term::name("p1").scalar("age")));
    }

    #[test]
    fn set_path_is_set_valued() {
        // p1..assistants  (example 4.1)
        assert!(is_set_valued(&Term::name("p1").set("assistants")));
    }

    #[test]
    fn scalar_method_on_set_is_set_valued() {
        // p1..assistants.salary — "the set of salaries of p1's assistants"
        let t = Term::name("p1").set("assistants").scalar("salary");
        assert!(is_set_valued(&t));
    }

    #[test]
    fn set_method_on_set_is_set_valued() {
        // p1..assistants..projects
        let t = Term::name("p1").set("assistants").set("projects");
        assert!(is_set_valued(&t));
    }

    #[test]
    fn set_valued_argument_makes_path_set_valued() {
        // p1.paidFor@(p1..vehicles)
        let t = Term::name("p1").scalar_args("paidFor", vec![Term::name("p1").set("vehicles")]);
        assert!(is_set_valued(&t));
    }

    #[test]
    fn molecule_scalarity_is_determined_by_receiver_only() {
        // p2[friends ->> p1..assistants]  (example 4.4): scalar, because the
        // first sub-reference p2 is scalar even though the filter's RHS is a
        // set-valued reference.
        let t = Term::name("p2").filter(Filter::set_ref("friends", Term::name("p1").set("assistants")));
        assert!(is_scalar(&t));

        // p1..assistants[salary -> 1000]  (example 4.2): set-valued, because
        // the receiver is set-valued.
        let t = Term::name("p1")
            .set("assistants")
            .filter(Filter::scalar("salary", Term::int(1000)));
        assert!(is_set_valued(&t));
    }

    #[test]
    fn isa_and_paren_propagate_receiver_scalarity() {
        let t = Term::name("p1").set("assistants").isa("employee");
        assert!(is_set_valued(&t));
        assert!(is_set_valued(&Term::name("p1").set("assistants").paren()));
        assert!(is_scalar(&Term::name("integer").scalar("list").paren()));
    }

    #[test]
    fn set_valued_method_position_makes_path_set_valued() {
        // X.(p1..methods) — contrived, but Definition 2 covers the method
        // position of a scalar path as well.
        let t = Term::var("X").scalar(Term::name("p1").set("methods").paren());
        assert!(is_set_valued(&t));
    }

    #[test]
    fn scalarity_enum_helpers() {
        assert!(Scalarity::SetValued.is_set_valued());
        assert!(!Scalarity::Scalar.is_set_valued());
        assert_eq!(scalarity(&Term::name("a")), Scalarity::Scalar);
        assert_eq!(scalarity(&Term::name("a").set("kids")), Scalarity::SetValued);
    }
}
