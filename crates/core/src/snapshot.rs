//! Epoch-stamped immutable snapshots of a [`Structure`] and the registry
//! that serves them to concurrent reader sessions.
//!
//! The executor's Arc-handoff (see [`crate::engine`]'s pooled executor)
//! already freezes the structure into an immutable `Arc` for the duration of
//! one evaluation window: the coordinator moves the structure in, workers
//! read it through `Weak` handles, and sole ownership is reclaimed once the
//! window closes.  This module promotes that per-window snapshot into a
//! first-class serving primitive:
//!
//! * [`Snapshot`] — an immutable, **epoch-stamped** `Arc<Structure>` view.
//!   `Engine::query` / `query_term` / `tolerant_query` all take
//!   `&Structure`, so a snapshot can be queried from any thread without
//!   holding a store lock, while the writer keeps mutating its own copy.
//! * [`SnapshotRegistry`] — a single-writer / many-reader registry.  The
//!   writer [`publish`](SnapshotRegistry::publish)es a new snapshot per
//!   committed epoch; readers [`pin`](SnapshotRegistry::pin) the current
//!   epoch and hold it for as long as they like.  A pinned epoch stays
//!   retained even after newer epochs supersede it (MVCC); once the last
//!   pin drops the entry is reclaimed and the underlying structure freed
//!   (the columnar `Arc`-shared columns make retention cheap, but the
//!   watermark keeps the set of live versions bounded by the set of live
//!   sessions).
//! * [`reclaim_arc`] — the ownership-reclaim loop extracted from the pooled
//!   executor's handoff, shared by anything that moves a value into an
//!   `Arc` for a bounded window and wants it back.
//!
//! Epochs are supplied by the *caller* of `publish` — the registry does not
//! invent a parallel counter.  The object-store layer passes its own
//! `version` counter, so the published epoch and the store's
//! out-of-band-mutation detection share one version authority.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::structure::Structure;

/// A published version number.  Epochs are chosen by the publisher (for the
/// object store: its `version` counter) and increase monotonically.
pub type Epoch = u64;

/// An immutable, epoch-stamped view of a [`Structure`].
///
/// Cloning a snapshot is an `Arc` bump; the underlying structure is shared
/// and never mutated.  Queries run against [`structure`](Snapshot::structure)
/// without any locking.
#[derive(Debug, Clone)]
pub struct Snapshot {
    epoch: Epoch,
    structure: Arc<Structure>,
}

impl Snapshot {
    /// Stamp `structure` as the view published at `epoch`.
    pub fn new(epoch: Epoch, structure: Arc<Structure>) -> Self {
        Snapshot { epoch, structure }
    }

    /// The epoch this view was published at.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// The frozen structure; safe to query from any thread.
    pub fn structure(&self) -> &Structure {
        &self.structure
    }

    /// The shared handle itself — used by reclamation tests to observe the
    /// strong count and by executors that hand the `Arc` to workers.
    pub fn structure_arc(&self) -> &Arc<Structure> {
        &self.structure
    }
}

/// Lifetime counters of a [`SnapshotRegistry`], mirroring the style of the
/// engine's `EvalStats`: saturating, monotone, cheap to copy.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Snapshots published (one per committed epoch, plus bootstrap
    /// publishes when a session starts against a stale registry).
    pub epochs_published: usize,
    /// Pin events (sessions opened).  Cumulative, not a live count.
    pub snapshots_pinned: usize,
    /// Pinned epochs whose retention entry was freed after the last pin
    /// dropped.  `snapshots_reclaimed` catching up with the number of
    /// retired pinned epochs proves no epoch leaks over a run.
    pub snapshots_reclaimed: usize,
}

impl SnapshotStats {
    /// Accumulate `other` with saturating adds (same contract as
    /// `EvalStats::merge`).
    pub fn merge(&mut self, other: &SnapshotStats) {
        self.epochs_published = self.epochs_published.saturating_add(other.epochs_published);
        self.snapshots_pinned = self.snapshots_pinned.saturating_add(other.snapshots_pinned);
        self.snapshots_reclaimed = self.snapshots_reclaimed.saturating_add(other.snapshots_reclaimed);
    }
}

/// A retained epoch: the snapshot plus its live pin count.
#[derive(Debug)]
struct PinEntry {
    snapshot: Snapshot,
    pins: usize,
}

#[derive(Debug, Default)]
struct RegistryInner {
    /// The most recently published snapshot — what new pins attach to.
    current: Option<Snapshot>,
    /// Epochs retained because at least one session still pins them.
    pinned: BTreeMap<Epoch, PinEntry>,
}

/// Single-writer / many-reader snapshot registry with pin-count
/// reclamation.
///
/// The writer calls [`publish`](Self::publish) after each commit; readers
/// call [`pin`](Self::pin) (through `Arc<SnapshotRegistry>`) to obtain a
/// [`PinnedSnapshot`] whose `Drop` unpins it.  Superseded epochs are freed
/// as soon as their last pin drops; the current epoch is always available.
#[derive(Debug, Default)]
pub struct SnapshotRegistry {
    inner: Mutex<RegistryInner>,
    epochs_published: AtomicUsize,
    snapshots_pinned: AtomicUsize,
    snapshots_reclaimed: AtomicUsize,
}

impl SnapshotRegistry {
    /// An empty registry: nothing published, nothing pinned.
    pub fn new() -> Self {
        SnapshotRegistry::default()
    }

    /// Publish `structure` as the snapshot for `epoch`, superseding the
    /// previous current snapshot.  The epoch comes from the caller (one
    /// version authority — the store's own `version` counter); publishes
    /// with a stale epoch (`<` current) are ignored so a republish race
    /// cannot move the registry backwards.
    pub fn publish(&self, epoch: Epoch, structure: Arc<Structure>) {
        let mut inner = self.inner.lock().expect("snapshot registry poisoned");
        if let Some(cur) = &inner.current {
            if epoch < cur.epoch() {
                return;
            }
        }
        inner.current = Some(Snapshot::new(epoch, structure));
        self.epochs_published.fetch_add(1, Ordering::Relaxed);
    }

    /// Pin the current snapshot.  Returns `None` until the first
    /// [`publish`](Self::publish).  The returned guard keeps the epoch
    /// retained until dropped.
    pub fn pin(self: &Arc<Self>) -> Option<PinnedSnapshot> {
        let mut inner = self.inner.lock().expect("snapshot registry poisoned");
        let current = inner.current.clone()?;
        let epoch = current.epoch();
        let entry = inner.pinned.entry(epoch).or_insert_with(|| PinEntry {
            snapshot: current,
            pins: 0,
        });
        entry.pins += 1;
        let snapshot = entry.snapshot.clone();
        self.snapshots_pinned.fetch_add(1, Ordering::Relaxed);
        Some(PinnedSnapshot {
            registry: Arc::clone(self),
            snapshot,
        })
    }

    /// Drop one pin on `epoch`; frees the retention entry (and counts a
    /// reclamation) when the last pin goes.
    fn unpin(&self, epoch: Epoch) {
        let mut inner = self.inner.lock().expect("snapshot registry poisoned");
        let drained = match inner.pinned.get_mut(&epoch) {
            Some(entry) => {
                entry.pins -= 1;
                entry.pins == 0
            }
            None => false,
        };
        if drained {
            inner.pinned.remove(&epoch);
            self.snapshots_reclaimed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The epoch of the current snapshot, if any is published.
    pub fn current_epoch(&self) -> Option<Epoch> {
        let inner = self.inner.lock().expect("snapshot registry poisoned");
        inner.current.as_ref().map(Snapshot::epoch)
    }

    /// Number of epochs currently retained by at least one pin — the live
    /// MVCC window.  Zero at rest (the current snapshot itself is not a
    /// pin).
    pub fn pinned_epochs(&self) -> usize {
        let inner = self.inner.lock().expect("snapshot registry poisoned");
        inner.pinned.len()
    }

    /// Lifetime counters (cumulative; see [`SnapshotStats`]).
    pub fn stats(&self) -> SnapshotStats {
        SnapshotStats {
            epochs_published: self.epochs_published.load(Ordering::Relaxed),
            snapshots_pinned: self.snapshots_pinned.load(Ordering::Relaxed),
            snapshots_reclaimed: self.snapshots_reclaimed.load(Ordering::Relaxed),
        }
    }
}

/// A pinned [`Snapshot`]: keeps its epoch retained in the registry until
/// dropped.  `Send`, so sessions can be handed to reader threads.
#[derive(Debug)]
pub struct PinnedSnapshot {
    registry: Arc<SnapshotRegistry>,
    snapshot: Snapshot,
}

impl PinnedSnapshot {
    /// The pinned view.
    pub fn snapshot(&self) -> &Snapshot {
        &self.snapshot
    }

    /// The pinned epoch.
    pub fn epoch(&self) -> Epoch {
        self.snapshot.epoch()
    }

    /// The frozen structure of the pinned epoch.
    pub fn structure(&self) -> &Structure {
        self.snapshot.structure()
    }
}

impl Drop for PinnedSnapshot {
    fn drop(&mut self) {
        // Release this guard's own handle on the structure *before*
        // unpinning, so that when the last pin of a superseded epoch goes
        // the registry entry was the final strong reference and reclamation
        // really frees the snapshot.
        let epoch = self.snapshot.epoch();
        self.snapshot = Snapshot::new(epoch, Arc::new(Structure::new()));
        self.registry.unpin(epoch);
    }
}

/// Reclaim sole ownership of a value moved into an [`Arc`] for a bounded
/// sharing window.
///
/// This is the handoff-reclaim loop extracted from the pooled executor:
/// after the coordination point (latch, pin count, …) the only other holders
/// are threads in the instant between their last touch and their drop, which
/// resolves within a yield or two — so spin with [`std::thread::yield_now`]
/// instead of blocking.
///
/// Callers must ensure every long-lived holder has let go (workers hold only
/// `Weak` handles; sessions hold pins counted elsewhere) or this will spin
/// until they do.
pub fn reclaim_arc<T>(mut shared: Arc<T>) -> T {
    loop {
        match Arc::try_unwrap(shared) {
            Ok(inner) => break inner,
            Err(still_shared) => {
                shared = still_shared;
                std::thread::yield_now();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry_with(epoch: Epoch) -> Arc<SnapshotRegistry> {
        let registry = Arc::new(SnapshotRegistry::new());
        let mut s = Structure::new();
        s.atom("a");
        registry.publish(epoch, Arc::new(s));
        registry
    }

    #[test]
    fn pin_before_publish_is_none() {
        let registry = Arc::new(SnapshotRegistry::new());
        assert!(registry.pin().is_none());
        assert_eq!(registry.current_epoch(), None);
    }

    #[test]
    fn pinned_epoch_survives_supersession() {
        let registry = registry_with(1);
        let pin = registry.pin().expect("published");
        assert_eq!(pin.epoch(), 1);
        let dump_at_1 = pin.structure().canonical_dump();

        let mut s2 = Structure::new();
        s2.atom("a");
        s2.atom("b");
        registry.publish(2, Arc::new(s2));

        // The old pin still sees epoch 1 bit-identically.
        assert_eq!(pin.structure().canonical_dump(), dump_at_1);
        // New pins see epoch 2.
        let pin2 = registry.pin().expect("published");
        assert_eq!(pin2.epoch(), 2);
        assert_eq!(registry.pinned_epochs(), 2);
    }

    #[test]
    fn last_pin_drop_reclaims_superseded_epoch() {
        let registry = registry_with(1);
        let pin = registry.pin().expect("published");
        let weak = Arc::downgrade(pin.snapshot().structure_arc());
        registry.publish(2, Arc::new(Structure::new()));
        assert!(weak.upgrade().is_some(), "pin retains the epoch");
        drop(pin);
        assert!(weak.upgrade().is_none(), "unpinned superseded epoch is freed");
        let stats = registry.stats();
        assert_eq!(stats.epochs_published, 2);
        assert_eq!(stats.snapshots_pinned, 1);
        assert_eq!(stats.snapshots_reclaimed, 1);
        assert_eq!(registry.pinned_epochs(), 0);
    }

    #[test]
    fn shared_epoch_reclaims_only_after_last_pin() {
        let registry = registry_with(7);
        let a = registry.pin().expect("published");
        let b = registry.pin().expect("published");
        registry.publish(8, Arc::new(Structure::new()));
        drop(a);
        assert_eq!(registry.stats().snapshots_reclaimed, 0);
        assert_eq!(registry.pinned_epochs(), 1);
        drop(b);
        assert_eq!(registry.stats().snapshots_reclaimed, 1);
        assert_eq!(registry.pinned_epochs(), 0);
    }

    #[test]
    fn stale_publish_is_ignored() {
        let registry = registry_with(5);
        registry.publish(3, Arc::new(Structure::new()));
        assert_eq!(registry.current_epoch(), Some(5));
        // Equal epoch republish replaces in place (bootstrap after a race).
        registry.publish(5, Arc::new(Structure::new()));
        assert_eq!(registry.current_epoch(), Some(5));
    }

    #[test]
    fn stats_merge_saturates() {
        let mut a = SnapshotStats {
            epochs_published: usize::MAX,
            snapshots_pinned: 1,
            snapshots_reclaimed: 2,
        };
        let b = SnapshotStats {
            epochs_published: 1,
            snapshots_pinned: 2,
            snapshots_reclaimed: 3,
        };
        a.merge(&b);
        assert_eq!(a.epochs_published, usize::MAX);
        assert_eq!(a.snapshots_pinned, 3);
        assert_eq!(a.snapshots_reclaimed, 5);
    }

    #[test]
    fn reclaim_arc_returns_sole_ownership() {
        let arc = Arc::new(42usize);
        assert_eq!(reclaim_arc(arc), 42);
    }

    #[test]
    fn pins_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<PinnedSnapshot>();
        assert_send::<Snapshot>();
    }
}
