//! Type checking against signatures.
//!
//! The paper motivates defining virtual objects through *methods* (rather
//! than function symbols as in F-logic or view class names as in XSQL)
//! partly because "the usage of methods can be controlled by signatures in
//! the same way as in \[KLW93\], which makes type checking techniques
//! applicable" — including for virtual objects.  This module provides that
//! checker.
//!
//! A signature `c[m @ (a1..ak) => r1, .., rn]` (scalar) or `=>> ...`
//! (set-valued) is *applicable* to a stored fact `m(recv, args) = res` when
//! `recv` is a member of `c` and each argument is a member of the
//! corresponding argument class.  The fact is *well-typed* when, for every
//! applicable signature, the result (each member for set-valued methods) is
//! a member of every declared result class.  In strict mode every fact whose
//! method has at least one declaration must be covered by an applicable
//! signature.

use std::fmt;

use crate::structure::{Oid, Structure};

/// One detected violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeError {
    /// Human-readable description, with object names resolved.
    pub message: String,
    /// The method of the offending fact.
    pub method: Oid,
    /// The receiver of the offending fact.
    pub receiver: Oid,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// Options for the checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TypeCheckOptions {
    /// Require every fact of a *declared* method to be covered by at least
    /// one applicable signature (covers the receiver/argument classes).
    pub strict_coverage: bool,
}

/// Check all stored facts of `structure` against its signature declarations.
pub fn type_check(structure: &Structure) -> Vec<TypeError> {
    type_check_with(structure, TypeCheckOptions::default())
}

/// Check with explicit options.
pub fn type_check_with(structure: &Structure, options: TypeCheckOptions) -> Vec<TypeError> {
    let mut errors = Vec::new();
    let sigs = structure.signatures();
    if sigs.is_empty() {
        return errors;
    }

    for fact in structure.facts().scalar_facts() {
        check_application(
            structure,
            options,
            fact.method,
            fact.receiver,
            fact.args,
            std::slice::from_ref(&fact.result),
            false,
            &mut errors,
        );
    }
    for fact in structure.facts().set_facts() {
        let members: Vec<Oid> = fact.members.iter().copied().collect();
        check_application(
            structure,
            options,
            fact.method,
            fact.receiver,
            fact.args,
            &members,
            true,
            &mut errors,
        );
    }
    errors
}

#[allow(clippy::too_many_arguments)]
fn check_application(
    structure: &Structure,
    options: TypeCheckOptions,
    method: Oid,
    receiver: Oid,
    args: &[Oid],
    results: &[Oid],
    set_valued: bool,
    errors: &mut Vec<TypeError>,
) {
    let sigs = structure.signatures();
    if !sigs.declares_method(method) {
        return;
    }
    let mut covered = false;
    for sig in sigs.for_method(method) {
        if sig.set_valued != set_valued || sig.arg_classes.len() != args.len() {
            continue;
        }
        if !structure.in_class(receiver, sig.class) {
            continue;
        }
        if !args
            .iter()
            .zip(sig.arg_classes.iter())
            .all(|(&a, &c)| structure.in_class(a, c))
        {
            continue;
        }
        covered = true;
        for &result in results {
            for &rc in &sig.result_classes {
                if !structure.in_class(result, rc) {
                    errors.push(TypeError {
                        message: format!(
                            "result {} of method {} on {} is not a member of {} (required by the signature on {})",
                            structure.display_name(result),
                            structure.display_name(method),
                            structure.display_name(receiver),
                            structure.display_name(rc),
                            structure.display_name(sig.class),
                        ),
                        method,
                        receiver,
                    });
                }
            }
        }
    }
    if options.strict_coverage && !covered {
        errors.push(TypeError {
            message: format!(
                "method {} is declared by signatures, but its application to {} is covered by none \
                 (receiver or argument classes do not match)",
                structure.display_name(method),
                structure.display_name(receiver),
            ),
            method,
            receiver,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::Signature;

    /// person[age => integer], person[kids =>> person]; employees are persons.
    fn typed_world() -> Structure {
        let mut s = Structure::new();
        let (person, employee, integer) = (s.atom("person"), s.atom("employee"), s.atom("integer"));
        let (age, kids) = (s.atom("age"), s.atom("kids"));
        s.add_isa(employee, person);
        s.add_signature(Signature {
            class: person,
            method: age,
            arg_classes: Box::new([]),
            result_classes: vec![integer],
            set_valued: false,
        });
        s.add_signature(Signature {
            class: person,
            method: kids,
            arg_classes: Box::new([]),
            result_classes: vec![person],
            set_valued: true,
        });
        // integers are members of the class `integer` in this world
        for i in [5, 30, 40] {
            let o = s.int(i);
            s.add_isa(o, integer);
        }
        s
    }

    #[test]
    fn well_typed_facts_pass() {
        let mut s = typed_world();
        let (mary, tim) = (s.atom("mary"), s.atom("tim"));
        let (person, age, kids) = (s.atom("person"), s.atom("age"), s.atom("kids"));
        let thirty = s.int(30);
        s.add_isa(mary, person);
        s.add_isa(tim, person);
        s.assert_scalar(age, mary, &[], thirty).unwrap();
        s.assert_set_member(kids, mary, &[], tim);
        assert!(type_check(&s).is_empty());
    }

    #[test]
    fn wrong_result_class_is_reported() {
        let mut s = typed_world();
        let (mary, age, red) = (s.atom("mary"), s.atom("age"), s.atom("red"));
        let person = s.atom("person");
        s.add_isa(mary, person);
        s.assert_scalar(age, mary, &[], red).unwrap();
        let errors = type_check(&s);
        assert_eq!(errors.len(), 1);
        assert!(errors[0].to_string().contains("age"));
        assert!(errors[0].to_string().contains("integer"));
    }

    #[test]
    fn set_members_are_checked_individually() {
        let mut s = typed_world();
        let (mary, tim, rock) = (s.atom("mary"), s.atom("tim"), s.atom("rock"));
        let (person, kids) = (s.atom("person"), s.atom("kids"));
        s.add_isa(mary, person);
        s.add_isa(tim, person);
        s.assert_set_member(kids, mary, &[], tim);
        s.assert_set_member(kids, mary, &[], rock);
        let errors = type_check(&s);
        assert_eq!(errors.len(), 1, "only the non-person member is a violation");
    }

    #[test]
    fn signatures_are_inherited_by_subclasses() {
        let mut s = typed_world();
        let (e1, employee, age, red) = (s.atom("e1"), s.atom("employee"), s.atom("age"), s.atom("red"));
        s.add_isa(e1, employee);
        s.assert_scalar(age, e1, &[], red).unwrap();
        let errors = type_check(&s);
        assert_eq!(
            errors.len(),
            1,
            "the person[age => integer] signature applies to employees too"
        );
    }

    #[test]
    fn undeclared_methods_are_ignored() {
        let mut s = typed_world();
        let (mary, color, red) = (s.atom("mary"), s.atom("color"), s.atom("red"));
        s.assert_scalar(color, mary, &[], red).unwrap();
        assert!(type_check(&s).is_empty());
    }

    #[test]
    fn strict_coverage_flags_uncovered_applications() {
        let mut s = typed_world();
        // mary is NOT declared to be a person, so person[age => integer]
        // does not apply; lenient mode accepts, strict mode complains.
        let (mary, age) = (s.atom("mary"), s.atom("age"));
        let thirty = s.int(30);
        s.assert_scalar(age, mary, &[], thirty).unwrap();
        assert!(type_check(&s).is_empty());
        let errors = type_check_with(&s, TypeCheckOptions { strict_coverage: true });
        assert_eq!(errors.len(), 1);
        assert!(errors[0].to_string().contains("covered by none"));
    }

    #[test]
    fn no_signatures_means_no_errors() {
        let mut s = Structure::new();
        let (a, m, b) = (s.atom("a"), s.atom("m"), s.atom("b"));
        s.assert_scalar(m, a, &[], b).unwrap();
        assert!(type_check(&s).is_empty());
        assert!(type_check_with(&s, TypeCheckOptions { strict_coverage: true }).is_empty());
    }

    #[test]
    fn virtual_objects_are_type_checked_too() {
        // The paper's point: virtual objects defined through methods can be
        // type checked.  Here the virtual boss's worksFor result violates a
        // signature.
        let mut s = typed_world();
        let (employee, department, works_for) = (s.atom("employee"), s.atom("department"), s.atom("worksFor"));
        s.add_signature(Signature {
            class: employee,
            method: works_for,
            arg_classes: Box::new([]),
            result_classes: vec![department],
            set_valued: false,
        });
        let p1 = s.atom("p1");
        s.add_isa(p1, employee);
        let boss = s.new_virtual();
        s.add_isa(boss, employee);
        let not_a_department = s.atom("somethingElse");
        s.assert_scalar(works_for, boss, &[], not_a_department).unwrap();
        let errors = type_check(&s);
        assert_eq!(errors.len(), 1);
        assert!(s.is_virtual(errors[0].receiver));
    }
}
