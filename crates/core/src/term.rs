//! References — paths and molecules (Definition 1 of the paper).
//!
//! A *reference* denotes objects.  The simplest references are names and
//! variables; a *path* applies a (scalar `.` or set-valued `..`) method to a
//! reference; a *molecule* attaches filters (`[m -> r]`, `[m ->> {..}]`,
//! `[m ->> set-ref]`, `: class`) to a reference.  Paths and molecules may be
//! nested mutually and arbitrarily deep, which is the source of PathLog's
//! expressiveness: the *first* dimension (depth) is given by composing method
//! applications, the *second* dimension (breadth) by filters on every object
//! referenced along a path.
//!
//! The module also provides the standard syntactic helpers used by the rest
//! of the crate: variable collection, groundness checks, sub-reference
//! traversal and a builder API that makes programmatic construction of
//! references readable (`Term::name("mary").scalar("spouse").filter(..)`).

use crate::names::{Name, Var};
use std::collections::BTreeSet;
use std::fmt;

/// The value side of a filter inside a molecule.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FilterValue {
    /// `m @ (args) -> r` — the scalar method result equals the object denoted
    /// by the (scalar) reference `r`.
    Scalar(Term),
    /// `m @ (args) ->> r` — the set-valued method result is a superset of the
    /// objects denoted by the *set-valued* reference `r` (Definition 4,
    /// item 7).
    SetRef(Term),
    /// `m @ (args) ->> {r1, ..., rl}` — the set-valued method result is a
    /// superset of the objects denoted by the scalar references `r1..rl`
    /// (Definition 4, item 8).
    SetExplicit(Vec<Term>),
    /// `m @ (args) => c` — scalar signature declaration (typing extension in
    /// the spirit of \[KLW93\]; the paper points out that signatures make
    /// type checking applicable to virtual objects).
    SigScalar(Vec<Term>),
    /// `m @ (args) =>> c` — set-valued signature declaration.
    SigSet(Vec<Term>),
}

/// One filter of a molecule: a method (with optional arguments) together with
/// a [`FilterValue`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Filter {
    /// The method position.  Definition 1 requires a *simple* reference here
    /// (a name, a variable or a parenthesised reference such as `(M.tc)`).
    pub method: Term,
    /// Arguments of the method call (`m @ (t1, ..., tk)`); empty for the
    /// common `m` shorthand.
    pub args: Vec<Term>,
    /// The value side of the filter.
    pub value: FilterValue,
}

impl Filter {
    /// A scalar filter `method -> value` without arguments.
    pub fn scalar(method: impl Into<Term>, value: impl Into<Term>) -> Self {
        Filter {
            method: method.into(),
            args: Vec::new(),
            value: FilterValue::Scalar(value.into()),
        }
    }

    /// A set filter `method ->> {values...}` without arguments.
    pub fn set(method: impl Into<Term>, values: Vec<Term>) -> Self {
        Filter {
            method: method.into(),
            args: Vec::new(),
            value: FilterValue::SetExplicit(values),
        }
    }

    /// A set filter `method ->> set_ref` without arguments, whose right-hand
    /// side is a set-valued reference.
    pub fn set_ref(method: impl Into<Term>, value: impl Into<Term>) -> Self {
        Filter {
            method: method.into(),
            args: Vec::new(),
            value: FilterValue::SetRef(value.into()),
        }
    }

    /// Attach call arguments to this filter's method.
    pub fn with_args(mut self, args: Vec<Term>) -> Self {
        self.args = args;
        self
    }
}

/// A path: `t0 . m @ (t1, ..., tk)` (scalar) or `t0 .. m @ (t1, ..., tk)`
/// (set-valued).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Path {
    /// The reference the method is applied to.
    pub receiver: Term,
    /// `true` for `..` (invocation of a set-valued method), `false` for `.`.
    pub set_valued: bool,
    /// The method position (a simple reference).
    pub method: Term,
    /// Call arguments; may themselves be arbitrary references (a set-valued
    /// argument makes the whole path set-valued, Definition 2).
    pub args: Vec<Term>,
}

/// A molecule: `t0 [ f1 ; ... ; fn ]`.  A molecule with an empty filter list
/// denotes the same objects as its receiver.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Molecule {
    /// The reference the filters are applied to.
    pub receiver: Term,
    /// The filters; all apply to the receiver (the paper's
    /// `mary[age->30; boss->peter]` shorthand).
    pub filters: Vec<Filter>,
}

/// A class-membership molecule: `t0 : c`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IsA {
    /// The reference whose membership is asserted/tested.
    pub receiver: Term,
    /// The class position (a simple, scalar reference).
    pub class: Term,
}

/// A PathLog reference (Definition 1).  References simultaneously act as
/// terms (they denote a set of objects, Definition 4) and as formulas (they
/// are entailed iff they denote at least one object, Definition 5).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A name — a simple reference.
    Name(Name),
    /// A variable — a simple reference.
    Var(Var),
    /// A parenthesised reference `(t)` — also counts as a *simple* reference
    /// and is used to override the left-to-right reading of a path, e.g.
    /// `L : (integer.list)`.
    Paren(Box<Term>),
    /// A path `t0.m@(..)` / `t0..m@(..)`.
    Path(Box<Path>),
    /// A molecule `t0[..]`.
    Molecule(Box<Molecule>),
    /// A class-membership molecule `t0 : c`.
    IsA(Box<IsA>),
}

impl Term {
    /// A name reference.
    pub fn name(n: impl Into<Name>) -> Self {
        Term::Name(n.into())
    }

    /// An integer-name reference.
    pub fn int(i: i64) -> Self {
        Term::Name(Name::Int(i))
    }

    /// A string-name reference.
    pub fn string(s: impl Into<String>) -> Self {
        Term::Name(Name::Str(s.into()))
    }

    /// A variable reference.
    pub fn var(v: impl Into<String>) -> Self {
        Term::Var(Var::new(v))
    }

    /// Wrap this reference in parentheses (`(t)`), turning any reference into
    /// a *simple* one — this is how `kids.tc` can be used at a method
    /// position: `X[(M.tc) ->> {Y}]`.
    pub fn paren(self) -> Self {
        Term::Paren(Box::new(self))
    }

    /// Apply a scalar method: `self . method`.
    pub fn scalar(self, method: impl Into<Term>) -> Self {
        Term::Path(Box::new(Path {
            receiver: self,
            set_valued: false,
            method: method.into(),
            args: Vec::new(),
        }))
    }

    /// Apply a scalar method with arguments: `self . method @ (args)`.
    pub fn scalar_args(self, method: impl Into<Term>, args: Vec<Term>) -> Self {
        Term::Path(Box::new(Path {
            receiver: self,
            set_valued: false,
            method: method.into(),
            args,
        }))
    }

    /// Apply a set-valued method: `self .. method`.
    pub fn set(self, method: impl Into<Term>) -> Self {
        Term::Path(Box::new(Path {
            receiver: self,
            set_valued: true,
            method: method.into(),
            args: Vec::new(),
        }))
    }

    /// Apply a set-valued method with arguments: `self .. method @ (args)`.
    pub fn set_args(self, method: impl Into<Term>, args: Vec<Term>) -> Self {
        Term::Path(Box::new(Path {
            receiver: self,
            set_valued: true,
            method: method.into(),
            args,
        }))
    }

    /// Attach a single filter, producing a molecule.  Successive calls
    /// accumulate filters on the same receiver (`mary[age->30][boss->peter]`
    /// is the same molecule as `mary[age->30; boss->peter]`).
    pub fn filter(self, filter: Filter) -> Self {
        match self {
            Term::Molecule(mut m) => {
                m.filters.push(filter);
                Term::Molecule(m)
            }
            other => Term::Molecule(Box::new(Molecule {
                receiver: other,
                filters: vec![filter],
            })),
        }
    }

    /// Attach several filters at once.
    pub fn filters(self, filters: Vec<Filter>) -> Self {
        filters.into_iter().fold(self, Term::filter)
    }

    /// Attach an empty filter list (`t[]`), which merely asserts that the
    /// receiver denotes an object.
    pub fn empty_filters(self) -> Self {
        match self {
            Term::Molecule(m) => Term::Molecule(m),
            other => Term::Molecule(Box::new(Molecule {
                receiver: other,
                filters: Vec::new(),
            })),
        }
    }

    /// Class membership `self : class`.
    pub fn isa(self, class: impl Into<Term>) -> Self {
        Term::IsA(Box::new(IsA {
            receiver: self,
            class: class.into(),
        }))
    }

    /// The XSQL-style selector `t[X]`, an abbreviation for `t[self -> X]`
    /// (Section 4.1 of the paper).
    pub fn selector(self, var: impl Into<Term>) -> Self {
        self.filter(Filter::scalar(Term::name(crate::builtins::SELF_METHOD), var))
    }

    /// Is this a *simple* reference (name, variable, or parenthesised
    /// reference)?  Simple references are the only ones allowed at method and
    /// class positions (Definition 1).
    pub fn is_simple(&self) -> bool {
        matches!(self, Term::Name(_) | Term::Var(_) | Term::Paren(_))
    }

    /// Collect the variables occurring anywhere in this reference, in
    /// left-to-right order of first occurrence.
    pub fn variables(&self) -> Vec<Var> {
        let mut out = Vec::new();
        let mut seen = BTreeSet::new();
        self.collect_variables(&mut out, &mut seen);
        out
    }

    fn collect_variables(&self, out: &mut Vec<Var>, seen: &mut BTreeSet<Var>) {
        match self {
            Term::Name(_) => {}
            Term::Var(v) => {
                if seen.insert(v.clone()) {
                    out.push(v.clone());
                }
            }
            Term::Paren(t) => t.collect_variables(out, seen),
            Term::Path(p) => {
                p.receiver.collect_variables(out, seen);
                p.method.collect_variables(out, seen);
                for a in &p.args {
                    a.collect_variables(out, seen);
                }
            }
            Term::Molecule(m) => {
                m.receiver.collect_variables(out, seen);
                for f in &m.filters {
                    f.method.collect_variables(out, seen);
                    for a in &f.args {
                        a.collect_variables(out, seen);
                    }
                    match &f.value {
                        FilterValue::Scalar(t) | FilterValue::SetRef(t) => t.collect_variables(out, seen),
                        FilterValue::SetExplicit(ts) | FilterValue::SigScalar(ts) | FilterValue::SigSet(ts) => {
                            for t in ts {
                                t.collect_variables(out, seen);
                            }
                        }
                    }
                }
            }
            Term::IsA(i) => {
                i.receiver.collect_variables(out, seen);
                i.class.collect_variables(out, seen);
            }
        }
    }

    /// `true` if the reference contains no variables.
    pub fn is_ground(&self) -> bool {
        self.variables().is_empty()
    }

    /// Collect every name occurring in this reference.
    pub fn names(&self) -> Vec<Name> {
        let mut out = Vec::new();
        self.visit(&mut |t| {
            if let Term::Name(n) = t {
                out.push(n.clone());
            }
        });
        out
    }

    /// Visit this reference and all of its sub-references, pre-order.
    pub fn visit<'a>(&'a self, f: &mut dyn FnMut(&'a Term)) {
        f(self);
        match self {
            Term::Name(_) | Term::Var(_) => {}
            Term::Paren(t) => t.visit(f),
            Term::Path(p) => {
                p.receiver.visit(f);
                p.method.visit(f);
                for a in &p.args {
                    a.visit(f);
                }
            }
            Term::Molecule(m) => {
                m.receiver.visit(f);
                for fl in &m.filters {
                    fl.method.visit(f);
                    for a in &fl.args {
                        a.visit(f);
                    }
                    match &fl.value {
                        FilterValue::Scalar(t) | FilterValue::SetRef(t) => t.visit(f),
                        FilterValue::SetExplicit(ts) | FilterValue::SigScalar(ts) | FilterValue::SigSet(ts) => {
                            for t in ts {
                                t.visit(f);
                            }
                        }
                    }
                }
            }
            Term::IsA(i) => {
                i.receiver.visit(f);
                i.class.visit(f);
            }
        }
    }

    /// The innermost receiver of a chain of paths/molecules — the "anchor"
    /// from which evaluation starts, e.g. `X` in
    /// `X:employee[age->30]..vehicles.color[Z]`.
    pub fn anchor(&self) -> &Term {
        match self {
            Term::Name(_) | Term::Var(_) | Term::Paren(_) => self,
            Term::Path(p) => p.receiver.anchor(),
            Term::Molecule(m) => m.receiver.anchor(),
            Term::IsA(i) => i.receiver.anchor(),
        }
    }

    /// Number of nodes in the reference tree (used by tests and limits).
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }
}

impl From<Name> for Term {
    fn from(n: Name) -> Self {
        Term::Name(n)
    }
}

impl From<Var> for Term {
    fn from(v: Var) -> Self {
        Term::Var(v)
    }
}

impl From<&str> for Term {
    fn from(s: &str) -> Self {
        Term::Name(Name::atom(s))
    }
}

impl From<i64> for Term {
    fn from(i: i64) -> Self {
        Term::Name(Name::Int(i))
    }
}

// ---------------------------------------------------------------------------
// Pretty printing: the concrete syntax accepted by `pathlog-parser`.
// ---------------------------------------------------------------------------

fn fmt_args(f: &mut fmt::Formatter<'_>, args: &[Term]) -> fmt::Result {
    if args.is_empty() {
        return Ok(());
    }
    write!(f, "@(")?;
    for (i, a) in args.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{a}")?;
    }
    write!(f, ")")
}

fn fmt_list(f: &mut fmt::Formatter<'_>, ts: &[Term]) -> fmt::Result {
    for (i, t) in ts.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{t}")?;
    }
    Ok(())
}

impl fmt::Display for Filter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.method)?;
        fmt_args(f, &self.args)?;
        match &self.value {
            FilterValue::Scalar(t) => write!(f, " -> {t}"),
            FilterValue::SetRef(t) => write!(f, " ->> {t}"),
            FilterValue::SetExplicit(ts) => {
                write!(f, " ->> {{")?;
                fmt_list(f, ts)?;
                write!(f, "}}")
            }
            FilterValue::SigScalar(ts) => {
                write!(f, " => ")?;
                if ts.len() == 1 {
                    write!(f, "{}", ts[0])
                } else {
                    write!(f, "(")?;
                    fmt_list(f, ts)?;
                    write!(f, ")")
                }
            }
            FilterValue::SigSet(ts) => {
                write!(f, " =>> ")?;
                if ts.len() == 1 {
                    write!(f, "{}", ts[0])
                } else {
                    write!(f, "(")?;
                    fmt_list(f, ts)?;
                    write!(f, ")")
                }
            }
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Name(n) => write!(f, "{n}"),
            Term::Var(v) => write!(f, "{v}"),
            Term::Paren(t) => write!(f, "({t})"),
            Term::Path(p) => {
                write!(f, "{}", p.receiver)?;
                write!(f, "{}", if p.set_valued { ".." } else { "." })?;
                write!(f, "{}", p.method)?;
                fmt_args(f, &p.args)
            }
            Term::Molecule(m) => {
                write!(f, "{}", m.receiver)?;
                write!(f, "[")?;
                for (i, fl) in m.filters.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{fl}")?;
                }
                write!(f, "]")
            }
            Term::IsA(i) => {
                write!(f, "{} : {}", i.receiver, i.class)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_2_1() -> Term {
        // X:employee[age->30; city->newYork]..vehicles:automobile[cylinders->4].color[Z]
        Term::var("X")
            .isa("employee")
            .filters(vec![
                Filter::scalar("age", Term::int(30)),
                Filter::scalar("city", "newYork"),
            ])
            .set("vehicles")
            .isa("automobile")
            .filter(Filter::scalar("cylinders", Term::int(4)))
            .scalar("color")
            .selector(Term::var("Z"))
    }

    #[test]
    fn builder_produces_expected_shape() {
        let t = example_2_1();
        // The outermost node is the selector molecule around `.color`.
        match &t {
            Term::Molecule(m) => {
                assert_eq!(m.filters.len(), 1);
                assert!(matches!(m.receiver, Term::Path(_)));
            }
            other => panic!("unexpected shape: {other:?}"),
        }
        assert_eq!(t.anchor(), &Term::var("X"));
    }

    #[test]
    fn variables_in_order_of_first_occurrence() {
        let t = example_2_1();
        assert_eq!(t.variables(), vec![Var::new("X"), Var::new("Z")]);
        assert!(!t.is_ground());
        assert!(Term::name("mary").scalar("spouse").is_ground());
    }

    #[test]
    fn display_roundtrips_simple_forms() {
        assert_eq!(Term::name("mary").scalar("spouse").to_string(), "mary.spouse");
        assert_eq!(Term::name("p1").set("assistants").to_string(), "p1..assistants");
        assert_eq!(
            Term::name("mary")
                .scalar("spouse")
                .filter(Filter::scalar("boss", "mary"))
                .scalar("age")
                .to_string(),
            "mary.spouse[boss -> mary].age"
        );
        assert_eq!(
            Term::var("L")
                .isa(Term::name("integer").scalar("list").paren())
                .to_string(),
            "L : (integer.list)"
        );
    }

    #[test]
    fn display_filters_and_sets() {
        let t = Term::name("p2").filter(Filter::set("friends", vec![Term::name("p3"), Term::name("p4")]));
        assert_eq!(t.to_string(), "p2[friends ->> {p3, p4}]");
        let t = Term::name("p2").filter(Filter::set_ref("friends", Term::name("p1").set("assistants")));
        assert_eq!(t.to_string(), "p2[friends ->> p1..assistants]");
    }

    #[test]
    fn display_args() {
        let t = Term::name("john").scalar_args("salary", vec![Term::int(1994)]);
        assert_eq!(t.to_string(), "john.salary@(1994)");
        let t = Term::name("p1").scalar_args("paidFor", vec![Term::name("p1").set("vehicles")]);
        assert_eq!(t.to_string(), "p1.paidFor@(p1..vehicles)");
    }

    #[test]
    fn selector_desugars_to_self() {
        let t = Term::var("X").set("vehicles").scalar("color").selector(Term::var("Z"));
        let printed = t.to_string();
        assert!(printed.contains("self -> Z"), "{printed}");
    }

    #[test]
    fn filter_accumulation_matches_filter_list() {
        let a = Term::name("mary")
            .filter(Filter::scalar("age", Term::int(30)))
            .filter(Filter::scalar("boss", "peter"));
        let b = Term::name("mary").filters(vec![
            Filter::scalar("age", Term::int(30)),
            Filter::scalar("boss", "peter"),
        ]);
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "mary[age -> 30; boss -> peter]");
    }

    #[test]
    fn is_simple_classification() {
        assert!(Term::name("a").is_simple());
        assert!(Term::var("X").is_simple());
        assert!(Term::name("kids").scalar("tc").paren().is_simple());
        assert!(!Term::name("kids").scalar("tc").is_simple());
        assert!(!Term::name("a").filter(Filter::scalar("m", "b")).is_simple());
    }

    #[test]
    fn size_and_names() {
        let t = example_2_1();
        assert!(t.size() >= 10);
        let names = t.names();
        assert!(names.contains(&Name::atom("employee")));
        assert!(names.contains(&Name::int(30)));
        assert!(names.contains(&Name::atom("color")));
    }

    #[test]
    fn empty_filter_list_display() {
        let t = Term::name("john").scalar("spouse").empty_filters();
        assert_eq!(t.to_string(), "john.spouse[]");
    }

    #[test]
    fn isa_receiver_prints_as_postfix_chain() {
        // `X : employee.age` reads as "the age of X, an employee" — class
        // positions are restricted to simple references (Definition 1), so
        // the postfix chain is unambiguous and no parentheses are needed.
        let t = Term::var("X").isa("employee").scalar("age");
        assert_eq!(t.to_string(), "X : employee.age");
    }
}
