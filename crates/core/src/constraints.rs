//! Integrity constraints as denial rules, checked incrementally, and the
//! quarantine ledger behind inconsistency-tolerant query degradation.
//!
//! A constraint is a *denial*: a rule body that must have **no** solutions
//! in a consistent structure (Decker's formulation of integrity checking in
//! deductive databases).  `forbid manager_underpaid <- X : manager[salary
//! -> S], S[lt@(1000) -> S].` reads "no manager earns under 1000"; every
//! solution of the body is a [`ConstraintViolation`] carrying the violating
//! valuation and the witnessing ground facts.
//!
//! **Incremental checking.**  Re-solving every constraint after every
//! mutation batch is the classical-but-wasteful baseline.  The
//! [`ConstraintChecker`] reuses the engine's semi-naive machinery instead:
//! it keeps the [`EvalMarks`] watermarks of its last check, builds the
//! [`DeltaView`] of everything asserted since, and re-solves only the
//! constraints whose `literal_reads` keys intersect the delta — the same
//! key-gating the fixpoint loop applies to rules.  Retractions invalidate
//! watermark windows (the fact store swap-removes slots), so the checker
//! also snapshots [`Structure::retractions`] and falls back to a full
//! re-check whenever it moved — sound degradation, never a missed
//! violation.  Affected constraints are batched through the engine's
//! pooled condition solving ([`Engine::solve_conditions`]), so checking
//! parallelises exactly like the reactive layer's recognise phases.
//!
//! **Tolerant degradation.**  Under the `Quarantine` policy a violation
//! does not roll the data back; the offending facts are *tagged* in a
//! [`Quarantine`] ledger and queries keep being served.  With
//! [`Tolerance::Tolerant`] enabled, [`tolerant_query`] classifies each
//! answer as *clean* (derivable without any quarantined fact) or *tainted*
//! by the constraints whose quarantined facts its derivation needs — the
//! spirit of Laurent/Spyratos' four-valued semantics for deductive
//! databases, collapsed onto the two certainty levels PathLog's two-valued
//! models can express.  On a consistent store the mode coincides with
//! classical evaluation exactly.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

use crate::analysis::keys_intersect;
use crate::engine::executor::ConditionTask;
use crate::engine::{Engine, SortedRun, Tolerance};
use crate::error::Result;
use crate::names::Name;
use crate::program::{validate_rule, DepKey, Literal, Query, Rule};
use crate::semantics::{Bindings, DeltaView, EvalMarks};
use crate::structure::{Oid, Structure};
use crate::term::{Filter, FilterValue, IsA, Molecule, Path, Term};

/// What the store does when a commit leaves a constraint violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConstraintPolicy {
    /// Refuse the mutation batch: the commit fails and rolls back (the
    /// default).
    #[default]
    Reject,
    /// Accept the batch and report the violations as warnings on the
    /// receipt.
    Warn,
    /// Accept the batch, tag the violating facts in the [`Quarantine`]
    /// ledger and degrade queries instead of the data (see
    /// [`tolerant_query`]).
    Quarantine,
}

/// One integrity constraint: a named denial body plus its enforcement
/// policy.
#[derive(Debug, Clone)]
pub struct Constraint {
    name: Arc<str>,
    body: Vec<Literal>,
    policy: ConstraintPolicy,
    /// Every method/class key the body reads (positive *and* negated —
    /// an insertion under a negated key can *remove* a violation, and the
    /// checker must notice that too).
    reads: BTreeSet<DepKey>,
    /// The body reads an unknown key and must be re-solved on any delta.
    catch_all: bool,
}

impl Constraint {
    /// A denial constraint: `body` must have no solutions.  Validated like
    /// a rule (well-formedness, safety of negated literals) through a
    /// synthetic head, so unsafe constraint bodies are rejected with the
    /// same diagnostics unsafe rules get.
    pub fn new(name: impl Into<Arc<str>>, body: Vec<Literal>, policy: ConstraintPolicy) -> Result<Self> {
        let name = name.into();
        let probe = Rule::new(Term::Name(Name::atom(format!("ic_{name}"))), body.clone());
        let info = validate_rule(&probe)?;
        let reads: BTreeSet<DepKey> = info.uses.union(&info.strict_uses).cloned().collect();
        let catch_all = reads.contains(&DepKey::Unknown);
        Ok(Constraint {
            name,
            body,
            policy,
            reads,
            catch_all,
        })
    }

    /// The constraint's name (reported on violations and receipts).
    pub fn name(&self) -> &Arc<str> {
        &self.name
    }

    /// The denial body.
    pub fn body(&self) -> &[Literal] {
        &self.body
    }

    /// The enforcement policy.
    pub fn policy(&self) -> ConstraintPolicy {
        self.policy
    }

    /// The dependency keys the body reads (used for delta gating).
    pub fn reads(&self) -> &BTreeSet<DepKey> {
        &self.reads
    }

    /// Does the delta touch anything this constraint reads?
    fn affected_by(&self, structure: &Structure, dv: &DeltaView) -> bool {
        if self.catch_all {
            return true;
        }
        self.reads.iter().any(|key| match key {
            DepKey::Unknown => true,
            DepKey::Known(name) => structure.lookup_name(name).is_some_and(|oid| dv.has_new_facts_for(oid)),
        })
    }
}

/// One violation of one constraint: the valuation that satisfied the denial
/// body, with the body's literals rendered as ground witnessing facts.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ConstraintViolation {
    /// Name of the violated constraint.
    pub constraint: Arc<str>,
    /// The violating valuation, as `(variable, object)` pairs in variable
    /// order — the canonical form the checker also sorts violations by.
    pub binding: Vec<(Arc<str>, Oid)>,
    /// The denial body under the violating valuation, one rendered ground
    /// literal per body literal (negated ones prefixed with `not`).
    pub witnesses: Vec<String>,
}

impl fmt::Display for ConstraintViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "constraint `{}` violated", self.constraint)?;
        if !self.binding.is_empty() {
            write!(f, " at ")?;
            for (i, (var, oid)) in self.binding.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{var} = #{}", oid.0)?;
            }
        }
        if !self.witnesses.is_empty() {
            write!(f, ": {}", self.witnesses.join(", "))?;
        }
        Ok(())
    }
}

/// Substitute the valuation into a reference: bound variables become the
/// display names of their objects, everything else is rebuilt unchanged.
/// Used to render the witnessing facts of a violation.
fn substitute(term: &Term, structure: &Structure, b: &Bindings) -> Term {
    match term {
        Term::Name(_) => term.clone(),
        Term::Var(v) => match b.get(v) {
            Some(oid) => Term::Name(Name::atom(structure.display_name(oid).into_owned())),
            None => term.clone(),
        },
        Term::Paren(t) => Term::Paren(Box::new(substitute(t, structure, b))),
        Term::Path(p) => Term::Path(Box::new(Path {
            receiver: substitute(&p.receiver, structure, b),
            set_valued: p.set_valued,
            method: substitute(&p.method, structure, b),
            args: p.args.iter().map(|a| substitute(a, structure, b)).collect(),
        })),
        Term::Molecule(m) => Term::Molecule(Box::new(Molecule {
            receiver: substitute(&m.receiver, structure, b),
            filters: m
                .filters
                .iter()
                .map(|f| Filter {
                    method: substitute(&f.method, structure, b),
                    args: f.args.iter().map(|a| substitute(a, structure, b)).collect(),
                    value: match &f.value {
                        FilterValue::Scalar(t) => FilterValue::Scalar(substitute(t, structure, b)),
                        FilterValue::SetRef(t) => FilterValue::SetRef(substitute(t, structure, b)),
                        FilterValue::SetExplicit(ts) => {
                            FilterValue::SetExplicit(ts.iter().map(|t| substitute(t, structure, b)).collect())
                        }
                        FilterValue::SigScalar(ts) => {
                            FilterValue::SigScalar(ts.iter().map(|t| substitute(t, structure, b)).collect())
                        }
                        FilterValue::SigSet(ts) => {
                            FilterValue::SigSet(ts.iter().map(|t| substitute(t, structure, b)).collect())
                        }
                    },
                })
                .collect(),
        })),
        Term::IsA(i) => Term::IsA(Box::new(IsA {
            receiver: substitute(&i.receiver, structure, b),
            class: substitute(&i.class, structure, b),
        })),
    }
}

/// An ordered collection of constraints.  Declaration order is the report
/// order: the checker returns violations grouped by constraint in this
/// order, each group sorted by valuation.
#[derive(Debug, Clone, Default)]
pub struct ConstraintSet {
    constraints: Vec<Constraint>,
}

impl ConstraintSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a constraint.
    pub fn push(&mut self, constraint: Constraint) {
        self.constraints.push(constraint);
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// The constraints, in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = &Constraint> {
        self.constraints.iter()
    }

    /// Look a constraint up by name.
    pub fn get(&self, name: &str) -> Option<&Constraint> {
        self.constraints.iter().find(|c| &**c.name() == name)
    }
}

impl FromIterator<Constraint> for ConstraintSet {
    fn from_iter<T: IntoIterator<Item = Constraint>>(iter: T) -> Self {
        ConstraintSet {
            constraints: iter.into_iter().collect(),
        }
    }
}

/// Counters of one checker's lifetime, the observable the E20 experiment
/// asserts on: incremental checking must perform strictly fewer condition
/// solves than full re-checking on the same mutation workload.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CheckStats {
    /// Calls to [`ConstraintChecker::check`].
    pub checks: usize,
    /// Checks that had to re-solve every constraint (first check, new
    /// objects, signature changes, or a retraction touching every
    /// constraint's reads).
    pub full_checks: usize,
    /// Constraint bodies actually solved.
    pub condition_solves: usize,
    /// Constraint solves skipped because the (retraction-free) delta did
    /// not touch their read keys.
    pub constraints_skipped: usize,
    /// Constraint solves skipped on a retraction-bearing span because no
    /// key mutated since the last check intersects their reads (see the
    /// mutation journal, [`Facts::mutation_keys_since`]).
    ///
    /// [`Facts::mutation_keys_since`]: crate::structure::Facts::mutation_keys_since
    pub retraction_skips: usize,
}

/// The incremental constraint checker: watermark-gated, delta-driven,
/// pooled (see the module docs).
#[derive(Debug, Clone)]
pub struct ConstraintChecker {
    constraints: ConstraintSet,
    engine: Engine,
    /// Watermarks of the last completed check; `None` before the first.
    marks: Option<EvalMarks>,
    /// [`Structure::retractions`] at the last completed check.
    retractions: usize,
    /// Length of the facts' mutation journal at the last completed check.
    /// The journal survives retractions, so this mark stays usable when
    /// the watermark window does not.
    mutation_mark: usize,
    /// Violations per constraint as of the last check, each list sorted by
    /// valuation.  Skipped constraints answer from this cache.
    cache: Vec<Vec<ConstraintViolation>>,
    stats: CheckStats,
}

impl ConstraintChecker {
    /// A checker over `constraints`, solving on (a clone of) `engine` —
    /// clones share the engine's worker pool, so checking reuses the same
    /// threads as evaluation.
    pub fn new(constraints: ConstraintSet, engine: Engine) -> Self {
        let cache = vec![Vec::new(); constraints.len()];
        ConstraintChecker {
            constraints,
            engine,
            marks: None,
            retractions: 0,
            mutation_mark: 0,
            cache,
            stats: CheckStats::default(),
        }
    }

    /// The constraints this checker enforces.
    pub fn constraints(&self) -> &ConstraintSet {
        &self.constraints
    }

    /// The engine the checker solves on.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Lifetime counters (see [`CheckStats`]).
    pub fn stats(&self) -> CheckStats {
        self.stats
    }

    /// Current violations of every constraint, re-solving only the
    /// constraints the delta since the last check can have affected.
    /// Returns the violations grouped by constraint in declaration order,
    /// each group sorted by valuation — the exact list a full re-check
    /// returns.
    pub fn check(&mut self, structure: &mut Structure) -> Result<Vec<ConstraintViolation>> {
        let mut via_retraction = false;
        let affected: Vec<usize> = match self.window(structure) {
            None => match self.retraction_affected(structure) {
                Some(affected) => {
                    via_retraction = true;
                    affected
                }
                None => (0..self.constraints.len()).collect(),
            },
            Some(dv) if dv.is_empty() => Vec::new(),
            Some(dv) if dv.has_new_objects() || dv.sigs_changed() => {
                // New objects can satisfy literals through positions that
                // read no named key; signature changes have no per-fact
                // stamps.  Same conservative catch-alls as the fixpoint
                // loop.
                (0..self.constraints.len()).collect()
            }
            Some(dv) => self
                .constraints
                .iter()
                .enumerate()
                .filter(|(_, c)| c.affected_by(structure, &dv))
                .map(|(i, _)| i)
                .collect(),
        };
        self.stats.checks += 1;
        if affected.len() == self.constraints.len() && !affected.is_empty() {
            self.stats.full_checks += 1;
        }
        let skipped = self.constraints.len() - affected.len();
        if via_retraction {
            self.stats.retraction_skips += skipped;
        } else {
            self.stats.constraints_skipped += skipped;
        }
        self.solve_into_cache(structure, &affected)?;
        self.marks = Some(EvalMarks::capture(structure));
        self.retractions = structure.retractions();
        self.mutation_mark = structure.facts().mutation_len();
        Ok(self.cache.iter().flatten().cloned().collect())
    }

    /// Current violations with every constraint re-solved unconditionally —
    /// the classical baseline (and the oracle the property tests compare
    /// [`ConstraintChecker::check`] against).
    pub fn check_full(&mut self, structure: &mut Structure) -> Result<Vec<ConstraintViolation>> {
        let all: Vec<usize> = (0..self.constraints.len()).collect();
        self.stats.checks += 1;
        if !all.is_empty() {
            self.stats.full_checks += 1;
        }
        self.solve_into_cache(structure, &all)?;
        self.marks = Some(EvalMarks::capture(structure));
        self.retractions = structure.retractions();
        self.mutation_mark = structure.facts().mutation_len();
        Ok(self.cache.iter().flatten().cloned().collect())
    }

    /// The delta window since the last completed check, or `None` when no
    /// sound window exists (first check, or a retraction invalidated the
    /// watermarks).
    fn window(&self, structure: &Structure) -> Option<DeltaView> {
        let lo = self.marks.as_ref()?;
        if structure.retractions() != self.retractions {
            return None;
        }
        let hi = EvalMarks::capture(structure);
        Some(DeltaView::between(structure, lo, &hi))
    }

    /// The constraints a retraction-bearing span since the last check can
    /// have affected, or `None` when no sound narrowing exists (first
    /// check, new objects, signature changes, or an anonymous mutated
    /// method).
    ///
    /// Watermark windows die with the first retraction (the scalar slot
    /// table reorders, the set-insertion log over-reports), but the facts'
    /// mutation journal does not: it records the method key of every
    /// successful assert *and* retract.  A constraint whose reads are
    /// disjoint from every key mutated since the last check — including
    /// the is-a closure pairs added in the span, which the append-only isa
    /// log still reports soundly — can neither have gained nor lost a
    /// violation, so its cached result stands.
    fn retraction_affected(&self, structure: &Structure) -> Option<Vec<usize>> {
        let lo = self.marks.as_ref()?;
        let hi = EvalMarks::capture(structure);
        if hi.objects != lo.objects || hi.signatures != lo.signatures {
            // Same conservative catch-alls as the delta path: new objects
            // can satisfy literals through positions that read no named
            // key, signature changes have no per-fact stamps.
            return None;
        }
        let mut touched: BTreeSet<DepKey> = BTreeSet::new();
        for &method in structure.facts().mutation_keys_since(self.mutation_mark) {
            match structure.name_of(method) {
                Some(name) => {
                    touched.insert(DepKey::Known(name.clone()));
                }
                // An anonymous (virtual) method is only readable through a
                // variable key, but keep the fallback maximally defensive.
                None => return None,
            }
        }
        for &(_, class) in structure.isa().pairs_since(lo.isa_pairs) {
            match structure.name_of(class) {
                Some(name) => {
                    touched.insert(DepKey::Known(name.clone()));
                }
                None => return None,
            }
        }
        Some(
            self.constraints
                .iter()
                .enumerate()
                .filter(|(_, c)| c.catch_all || keys_intersect(&touched, &c.reads))
                .map(|(i, _)| i)
                .collect(),
        )
    }

    /// Solve the bodies of the `affected` constraints as one pooled
    /// condition batch and refresh their cache entries.
    fn solve_into_cache(&mut self, structure: &mut Structure, affected: &[usize]) -> Result<()> {
        if affected.is_empty() {
            return Ok(());
        }
        let bodies: Arc<[Vec<Literal>]> = affected
            .iter()
            .map(|&i| self.constraints.constraints[i].body.clone())
            .collect::<Vec<_>>()
            .into();
        let tasks: Vec<ConditionTask> = (0..affected.len())
            .map(|body| ConditionTask {
                body,
                seed: Bindings::new(),
            })
            .collect();
        self.stats.condition_solves += tasks.len();
        let runs = self.engine.solve_conditions(structure, bodies, tasks)?;
        for (&i, run) in affected.iter().zip(runs) {
            self.cache[i] = violations_of(&self.constraints.constraints[i], structure, run);
        }
        Ok(())
    }
}

/// Convert one constraint's solved run into sorted violations.  The run is
/// already in canonical [`binding_key`](crate::engine::binding_key) order,
/// which sorts the violations by valuation deterministically.
fn violations_of(constraint: &Constraint, structure: &Structure, run: SortedRun) -> Vec<ConstraintViolation> {
    run.into_iter()
        .map(|(key, bindings)| {
            let witnesses = constraint
                .body
                .iter()
                .map(|lit| {
                    let ground = substitute(&lit.term, structure, &bindings);
                    if lit.positive {
                        ground.to_string()
                    } else {
                        format!("not {ground}")
                    }
                })
                .collect();
            ConstraintViolation {
                constraint: Arc::clone(&constraint.name),
                binding: key.into_iter().map(|(var, oid)| (var, Oid(oid))).collect(),
                witnesses,
            }
        })
        .collect()
}

// --- quarantine & tolerant evaluation -----------------------------------

/// The ledger of facts tagged (not removed) by `Quarantine`-policy
/// violations: each entry maps a stored fact to the constraints that
/// implicated it.  [`Quarantine::scrub`] materialises the *consistent part*
/// of a structure — everything except the tagged facts — which is what
/// tolerant evaluation compares classical answers against.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Quarantine {
    /// `(method, receiver, args)` of tagged scalar facts.
    scalar: BTreeMap<ScalarFactKey, Tags>,
    /// `(method, receiver, args, member)` of tagged set members.
    members: BTreeMap<MemberFactKey, Tags>,
}

/// The constraints implicating one tagged fact.
type Tags = BTreeSet<Arc<str>>;
/// Identity of a stored scalar fact: `(method, receiver, args)`.
type ScalarFactKey = (Oid, Oid, Vec<Oid>);
/// Identity of a stored set member: `(method, receiver, args, member)`.
type MemberFactKey = (Oid, Oid, Vec<Oid>, Oid);

impl Quarantine {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Is the ledger empty (the store is consistent, or only Reject/Warn
    /// constraints exist)?
    pub fn is_empty(&self) -> bool {
        self.scalar.is_empty() && self.members.is_empty()
    }

    /// Number of tagged facts.
    pub fn len(&self) -> usize {
        self.scalar.len() + self.members.len()
    }

    /// Tag the scalar fact `(method, receiver, args)` as implicated by
    /// `constraint`.
    pub fn tag_scalar(&mut self, method: Oid, receiver: Oid, args: Vec<Oid>, constraint: Arc<str>) {
        self.scalar
            .entry((method, receiver, args))
            .or_default()
            .insert(constraint);
    }

    /// Tag the set member `(method, receiver, args, member)` as implicated
    /// by `constraint`.
    pub fn tag_set_member(&mut self, method: Oid, receiver: Oid, args: Vec<Oid>, member: Oid, constraint: Arc<str>) {
        self.members
            .entry((method, receiver, args, member))
            .or_default()
            .insert(constraint);
    }

    /// Drop every tag implicating `constraint` (its violations were
    /// repaired); entries implicated by no remaining constraint disappear.
    pub fn clear_constraint(&mut self, constraint: &str) {
        self.scalar.retain(|_, cs| {
            cs.retain(|c| &**c != constraint);
            !cs.is_empty()
        });
        self.members.retain(|_, cs| {
            cs.retain(|c| &**c != constraint);
            !cs.is_empty()
        });
    }

    /// Every constraint name with at least one tagged fact.
    pub fn constraints(&self) -> BTreeSet<Arc<str>> {
        self.scalar
            .values()
            .chain(self.members.values())
            .flatten()
            .cloned()
            .collect()
    }

    /// The consistent part of `structure`: a clone with every tagged fact
    /// retracted.  `only` restricts the scrub to facts implicated by one
    /// constraint (for per-constraint taint attribution); `None` scrubs
    /// them all.
    pub fn scrub(&self, structure: &Structure, only: Option<&str>) -> Structure {
        let implicated = |tags: &BTreeSet<Arc<str>>| match only {
            None => true,
            Some(name) => tags.iter().any(|c| &**c == name),
        };
        let mut clean = structure.clone();
        for ((method, receiver, args), tags) in &self.scalar {
            if implicated(tags) {
                clean.retract_scalar(*method, *receiver, args);
            }
        }
        for ((method, receiver, args, member), tags) in &self.members {
            if implicated(tags) {
                clean.retract_set_member(*method, *receiver, args, *member);
            }
        }
        clean
    }
}

/// The consistency status of one tolerant answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConsistencyStatus {
    /// Derivable from the consistent part alone — quarantined facts played
    /// no role.
    Clean,
    /// The derivation needs at least one quarantined fact; the names are
    /// the constraints that implicated them.
    Tainted(BTreeSet<Arc<str>>),
}

/// One answer of a tolerant query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TolerantAnswer {
    /// The satisfying valuation.
    pub bindings: Bindings,
    /// Whether the answer survives on the consistent part.
    pub status: ConsistencyStatus,
}

/// The result of a tolerant query: classical answers annotated with their
/// consistency status, plus the answers classical evaluation *suppresses*
/// (derivable from the consistent part but blocked by a quarantined fact
/// through negation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TolerantAnswers {
    /// The classical answers, each annotated clean or tainted.
    pub answers: Vec<TolerantAnswer>,
    /// Valuations the consistent part supports that the full structure does
    /// not (only possible through negated literals reading a quarantined
    /// fact).
    pub suppressed: Vec<Bindings>,
}

impl TolerantAnswers {
    /// Do any answers depend on quarantined facts?
    pub fn any_tainted(&self) -> bool {
        self.answers
            .iter()
            .any(|a| !matches!(a.status, ConsistencyStatus::Clean))
    }
}

/// Answer `query` with inconsistency tolerance: classical answers are
/// annotated clean/tainted against `quarantine`, and answers only the
/// consistent part supports are reported as suppressed.
///
/// With [`Tolerance::Strict`] (the engine default) or an empty ledger this
/// is exactly classical evaluation: every answer comes back `Clean` with no
/// suppressions, at the cost of a single solve — the property the tolerant
/// tests pin down.
pub fn tolerant_query(
    engine: &Engine,
    structure: &Structure,
    quarantine: &Quarantine,
    query: &Query,
) -> Result<TolerantAnswers> {
    let classical = engine.query(structure, query)?;
    if engine.options().tolerance == Tolerance::Strict || quarantine.is_empty() {
        return Ok(TolerantAnswers {
            answers: classical
                .into_iter()
                .map(|bindings| TolerantAnswer {
                    bindings,
                    status: ConsistencyStatus::Clean,
                })
                .collect(),
            suppressed: Vec::new(),
        });
    }
    let key_of = crate::engine::binding_key;
    let consistent_part = quarantine.scrub(structure, None);
    let clean_keys: BTreeSet<_> = engine.query(&consistent_part, query)?.iter().map(key_of).collect();
    let classical_keys: BTreeSet<_> = classical.iter().map(key_of).collect();
    // Per-constraint attribution: an answer is tainted by `c` if scrubbing
    // only `c`'s facts makes it underivable.  Answers tainted only by a
    // *joint* dependency (no single constraint's scrub removes them) are
    // attributed to every ledger constraint, the conservative upper bound.
    let all_constraints = quarantine.constraints();
    let mut tainted_by: BTreeMap<crate::engine::BindingKey, Tags> = BTreeMap::new();
    for name in &all_constraints {
        let part = quarantine.scrub(structure, Some(name));
        let surviving: BTreeSet<_> = engine.query(&part, query)?.iter().map(key_of).collect();
        for b in &classical {
            let key = key_of(b);
            if !clean_keys.contains(&key) && !surviving.contains(&key) {
                tainted_by.entry(key).or_default().insert(Arc::clone(name));
            }
        }
    }
    let answers = classical
        .into_iter()
        .map(|bindings| {
            let key = key_of(&bindings);
            let status = if clean_keys.contains(&key) {
                ConsistencyStatus::Clean
            } else {
                let by = tainted_by.remove(&key).unwrap_or_else(|| all_constraints.clone());
                ConsistencyStatus::Tainted(by)
            };
            TolerantAnswer { bindings, status }
        })
        .collect();
    let suppressed = engine
        .query(&consistent_part, query)?
        .into_iter()
        .filter(|b| !classical_keys.contains(&key_of(b)))
        .collect();
    Ok(TolerantAnswers { answers, suppressed })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EvalMode, EvalOptions, ExecutorKind};
    use crate::names::Var;

    /// mary is a manager earning 900; peter a manager earning 1200.
    fn fixture() -> (Structure, Engine) {
        let mut s = Structure::new();
        let engine = Engine::new();
        let facts = vec![
            Rule::fact(Term::name("mary").isa("manager")),
            Rule::fact(Term::name("mary").filter(Filter::scalar("salary", Term::int(900)))),
            Rule::fact(Term::name("peter").isa("manager")),
            Rule::fact(Term::name("peter").filter(Filter::scalar("salary", Term::int(1200)))),
        ];
        engine.run_rules(&mut s, &facts).unwrap();
        s.int(1000); // intern the comparison threshold the constraint uses
        (s, engine)
    }

    /// `X : manager[salary -> S], S[lt@(1000) -> S]` — no manager earns
    /// under 1000.
    fn underpaid_body() -> Vec<Literal> {
        vec![
            Literal::pos(Term::var("X").isa("manager")),
            Literal::pos(Term::var("X").filter(Filter::scalar("salary", Term::var("S")))),
            Literal::pos(Term::var("S").filter(Filter {
                method: Term::name(crate::builtins::LT),
                args: vec![Term::int(1000)],
                value: FilterValue::Scalar(Term::var("S")),
            })),
        ]
    }

    fn underpaid() -> Constraint {
        Constraint::new("manager_underpaid", underpaid_body(), ConstraintPolicy::Reject).unwrap()
    }

    /// `?- X : manager[salary -> S].`
    fn manager_salary_query() -> Query {
        Query::new(vec![
            Literal::pos(Term::var("X").isa("manager")),
            Literal::pos(Term::var("X").filter(Filter::scalar("salary", Term::var("S")))),
        ])
    }

    #[test]
    fn violations_carry_binding_and_ground_witnesses() {
        let (mut s, engine) = fixture();
        let mut checker = ConstraintChecker::new([underpaid()].into_iter().collect(), engine);
        let violations = checker.check(&mut s).unwrap();
        assert_eq!(violations.len(), 1);
        let v = &violations[0];
        assert_eq!(&*v.constraint, "manager_underpaid");
        let vars: Vec<&str> = v.binding.iter().map(|(name, _)| &**name).collect();
        assert_eq!(vars, vec!["S", "X"], "canonical variable order");
        assert!(v.witnesses[0].contains("mary"), "{:?}", v.witnesses);
        assert!(v.witnesses.iter().any(|w| w.contains("900")), "{:?}", v.witnesses);
        assert!(v.to_string().contains("manager_underpaid"));
    }

    #[test]
    fn unsafe_constraint_bodies_are_rejected_like_unsafe_rules() {
        let body = vec![Literal::neg(Term::var("X").isa("manager"))];
        assert!(Constraint::new("bad", body, ConstraintPolicy::Reject).is_err());
    }

    #[test]
    fn unaffected_constraints_are_skipped_and_answer_from_cache() {
        let (mut s, engine) = fixture();
        let kids_orphan = {
            // `X[kids ->> {Y}], not Y : manager` — every kid is a manager.
            let body = vec![
                Literal::pos(Term::var("X").filter(Filter::set("kids", vec![Term::var("Y")]))),
                Literal::neg(Term::var("Y").isa("manager")),
            ];
            Constraint::new("kid_not_manager", body, ConstraintPolicy::Reject).unwrap()
        };
        let set: ConstraintSet = [underpaid(), kids_orphan].into_iter().collect();
        let mut checker = ConstraintChecker::new(set, engine.clone());
        let first = checker.check(&mut s).unwrap();
        assert_eq!(first.len(), 1);
        assert_eq!(checker.stats().condition_solves, 2, "first check solves everything");

        // Register the objects the mutation will use, then let a check
        // absorb them (new objects conservatively re-solve everything).
        let salary = s.lookup_name(&Name::atom("salary")).unwrap();
        let anna = s.atom("anna");
        let cheap = s.int(10);
        let manager = s.lookup_name(&Name::atom("manager")).unwrap();
        s.add_isa(anna, manager);
        checker.check(&mut s).unwrap();
        let base = checker.stats().condition_solves;
        // A salary-only mutation: only the salary-reading constraint re-solves.
        s.assert_scalar(salary, anna, &[], cheap).unwrap();
        let after = checker.check(&mut s).unwrap();
        assert_eq!(after.len(), 2, "anna now violates underpaid too");
        assert_eq!(
            checker.stats().condition_solves,
            base + 1,
            "only the salary-reading constraint re-solved"
        );
        assert!(checker.stats().constraints_skipped >= 1);

        // No mutation at all: nothing re-solves, the cache answers.
        let again = checker.check(&mut s).unwrap();
        assert_eq!(again, after);
        assert_eq!(checker.stats().condition_solves, base + 1);
    }

    #[test]
    fn retraction_forces_a_sound_full_recheck() {
        let (mut s, engine) = fixture();
        let mut checker = ConstraintChecker::new([underpaid()].into_iter().collect(), engine);
        assert_eq!(checker.check(&mut s).unwrap().len(), 1);
        // Repair the violation by retracting mary's salary: a delta view
        // cannot see retractions, but the mutation journal reports `salary`
        // as touched, which the constraint reads — so it re-solves and
        // reports the store consistent.
        let salary = s.lookup_name(&Name::atom("salary")).unwrap();
        let mary = s.lookup_name(&Name::atom("mary")).unwrap();
        assert!(s.retract_scalar(salary, mary, &[]).is_some());
        let solves_before = checker.stats().condition_solves;
        assert!(checker.check(&mut s).unwrap().is_empty());
        assert_eq!(checker.stats().condition_solves, solves_before + 1);
        assert_eq!(checker.stats().retraction_skips, 0);
    }

    #[test]
    fn unrelated_retractions_answer_from_cache() {
        let (mut s, engine) = fixture();
        // A second fact table the constraint does not read.
        let hobby = s.atom("hobby");
        let mary = s.lookup_name(&Name::atom("mary")).unwrap();
        let chess = s.atom("chess");
        s.assert_scalar(hobby, mary, &[], chess).unwrap();
        let mut checker = ConstraintChecker::new([underpaid()].into_iter().collect(), engine);
        assert_eq!(checker.check(&mut s).unwrap().len(), 1);
        let solves_before = checker.stats().condition_solves;
        // Retracting mary's hobby touches no key `underpaid` reads: the
        // journal-gated retraction path keeps the cached violation instead
        // of re-solving.
        assert!(s.retract_scalar(hobby, mary, &[]).is_some());
        let violations = checker.check(&mut s).unwrap();
        assert_eq!(violations.len(), 1, "cached violation survives");
        assert_eq!(checker.stats().condition_solves, solves_before);
        assert_eq!(checker.stats().retraction_skips, 1);
        // The skip left the checker consistent: repairing the violation
        // through a *related* retraction is still observed.
        let salary = s.lookup_name(&Name::atom("salary")).unwrap();
        assert!(s.retract_scalar(salary, mary, &[]).is_some());
        assert!(checker.check(&mut s).unwrap().is_empty());
        assert_eq!(checker.stats().condition_solves, solves_before + 1);
    }

    #[test]
    fn retraction_narrowing_falls_back_on_new_objects() {
        let (mut s, engine) = fixture();
        let hobby = s.atom("hobby");
        let mary = s.lookup_name(&Name::atom("mary")).unwrap();
        let chess = s.atom("chess");
        s.assert_scalar(hobby, mary, &[], chess).unwrap();
        let mut checker = ConstraintChecker::new([underpaid()].into_iter().collect(), engine);
        checker.check(&mut s).unwrap();
        let solves_before = checker.stats().condition_solves;
        // An unrelated retraction *plus* a new object in the same span:
        // the conservative catch-all wins and everything re-solves.
        assert!(s.retract_scalar(hobby, mary, &[]).is_some());
        s.atom("brand_new");
        checker.check(&mut s).unwrap();
        assert_eq!(checker.stats().condition_solves, solves_before + 1);
        assert_eq!(checker.stats().retraction_skips, 0);
    }

    #[test]
    fn incremental_equals_full_recheck_across_executors() {
        for options in [
            EvalOptions::default(),
            EvalOptions {
                mode: EvalMode::Parallel { workers: 4 },
                executor: ExecutorKind::Pooled,
                ..EvalOptions::default()
            },
            EvalOptions {
                mode: EvalMode::Parallel { workers: 4 },
                executor: ExecutorKind::Scoped,
                ..EvalOptions::default()
            },
        ] {
            let (mut s, _) = fixture();
            let engine = Engine::with_options(options);
            let set = || -> ConstraintSet { [underpaid()].into_iter().collect() };
            let mut incremental = ConstraintChecker::new(set(), engine.clone());
            let mut full = ConstraintChecker::new(set(), engine.clone());
            assert_eq!(
                incremental.check(&mut s).unwrap(),
                full.check_full(&mut s).unwrap(),
                "{options:?}"
            );
            let anna = s.atom("anna");
            let manager = s.lookup_name(&Name::atom("manager")).unwrap();
            let salary = s.lookup_name(&Name::atom("salary")).unwrap();
            let low = s.int(3);
            s.add_isa(anna, manager);
            s.assert_scalar(salary, anna, &[], low).unwrap();
            assert_eq!(
                incremental.check(&mut s).unwrap(),
                full.check_full(&mut s).unwrap(),
                "{options:?}"
            );
        }
    }

    #[test]
    fn quarantine_scrub_materialises_the_consistent_part() {
        let (s, _) = fixture();
        let salary = s.lookup_name(&Name::atom("salary")).unwrap();
        let mary = s.lookup_name(&Name::atom("mary")).unwrap();
        let mut q = Quarantine::new();
        q.tag_scalar(salary, mary, Vec::new(), "manager_underpaid".into());
        assert_eq!(q.len(), 1);
        let clean = q.scrub(&s, None);
        assert!(clean.apply_scalar(salary, mary, &[]).is_none());
        // The original is untouched.
        assert!(s.apply_scalar(salary, mary, &[]).is_some());
        q.clear_constraint("manager_underpaid");
        assert!(q.is_empty());
    }

    #[test]
    fn tolerant_query_taints_answers_depending_on_quarantined_facts() {
        let (s, _) = fixture();
        let engine = Engine::with_options(EvalOptions {
            tolerance: Tolerance::Tolerant,
            ..EvalOptions::default()
        });
        let salary = s.lookup_name(&Name::atom("salary")).unwrap();
        let mary = s.lookup_name(&Name::atom("mary")).unwrap();
        let mut q = Quarantine::new();
        q.tag_scalar(salary, mary, Vec::new(), "manager_underpaid".into());
        let query = manager_salary_query();
        let out = tolerant_query(&engine, &s, &q, &query).unwrap();
        assert_eq!(out.answers.len(), 2);
        let mut statuses: Vec<(String, bool)> = out
            .answers
            .iter()
            .map(|a| {
                let x = a.bindings.get(&Var::new("X")).unwrap();
                (
                    s.display_name(x).into_owned(),
                    matches!(a.status, ConsistencyStatus::Clean),
                )
            })
            .collect();
        statuses.sort();
        assert_eq!(statuses, vec![("mary".into(), false), ("peter".into(), true)]);
        let tainted = out
            .answers
            .iter()
            .find(|a| !matches!(a.status, ConsistencyStatus::Clean))
            .unwrap();
        match &tainted.status {
            ConsistencyStatus::Tainted(by) => {
                assert_eq!(by.iter().map(|c| &**c).collect::<Vec<_>>(), vec!["manager_underpaid"]);
            }
            ConsistencyStatus::Clean => unreachable!(),
        }
        assert!(out.suppressed.is_empty());
        assert!(out.any_tainted());
    }

    #[test]
    fn tolerant_coincides_with_classical_on_consistent_stores() {
        let (s, _) = fixture();
        let engine = Engine::with_options(EvalOptions {
            tolerance: Tolerance::Tolerant,
            ..EvalOptions::default()
        });
        let query = manager_salary_query();
        let classical = engine.query(&s, &query).unwrap();
        let out = tolerant_query(&engine, &s, &Quarantine::new(), &query).unwrap();
        assert_eq!(out.answers.len(), classical.len());
        assert!(out.answers.iter().all(|a| matches!(a.status, ConsistencyStatus::Clean)));
        assert!(out.suppressed.is_empty());
    }
}
