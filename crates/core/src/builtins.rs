//! Built-in method names.
//!
//! The paper uses one built-in method, `self`, which yields the receiver
//! itself and is the desugaring target of XSQL-style selectors:
//! `X..vehicles.color[Z]` abbreviates `X..vehicles.color[self -> Z]`
//! (Section 4.1).
//!
//! As a practical extension this module also defines a small set of
//! comparison built-ins over integer names (`lt`, `le`, `gt`, `ge`, `neq`).
//! They behave like scalar methods whose result is the receiver when the
//! comparison holds and which are undefined otherwise, so
//! `X[age -> A] , A[lt@(40) -> A]` keeps only bindings with `A < 40`.
//! They are not part of the paper and are clearly marked as an extension.

use crate::names::Name;

/// The built-in `self` method: for every object `u`, `u.self = u`.
pub const SELF_METHOD: &str = "self";

/// Comparison built-ins (extension): receiver and single argument must both
/// be integer names; the "result" is the receiver when the comparison holds.
pub const LT: &str = "lt";
/// `<=` — see [`LT`].
pub const LE: &str = "le";
/// `>` — see [`LT`].
pub const GT: &str = "gt";
/// `>=` — see [`LT`].
pub const GE: &str = "ge";
/// `!=` — see [`LT`]; unlike the arithmetic comparisons it is defined for all
/// names, not just integers.
pub const NEQ: &str = "neq";

/// All built-in method names, used by the structure to pre-register them.
pub const ALL_BUILTINS: &[&str] = &[SELF_METHOD, LT, LE, GT, GE, NEQ];

/// Is `name` one of the comparison built-ins?
pub fn is_comparison(name: &str) -> bool {
    matches!(name, LT | LE | GT | GE | NEQ)
}

/// Evaluate a comparison built-in over two names.  Returns `Some(true)` /
/// `Some(false)` when the comparison is applicable, `None` when it is not
/// (e.g. `lt` on non-integers), in which case the method is undefined.
pub fn compare(builtin: &str, lhs: &Name, rhs: &Name) -> Option<bool> {
    match builtin {
        NEQ => Some(lhs != rhs),
        LT | LE | GT | GE => {
            let (a, b) = (lhs.as_int()?, rhs.as_int()?);
            Some(match builtin {
                LT => a < b,
                LE => a <= b,
                GT => a > b,
                GE => a >= b,
                _ => unreachable!(),
            })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_is_a_builtin() {
        assert!(ALL_BUILTINS.contains(&SELF_METHOD));
        assert!(!is_comparison(SELF_METHOD));
    }

    #[test]
    fn integer_comparisons() {
        assert_eq!(compare(LT, &Name::int(3), &Name::int(4)), Some(true));
        assert_eq!(compare(LT, &Name::int(4), &Name::int(4)), Some(false));
        assert_eq!(compare(LE, &Name::int(4), &Name::int(4)), Some(true));
        assert_eq!(compare(GT, &Name::int(5), &Name::int(4)), Some(true));
        assert_eq!(compare(GE, &Name::int(3), &Name::int(4)), Some(false));
    }

    #[test]
    fn comparisons_on_non_integers_are_undefined() {
        assert_eq!(compare(LT, &Name::atom("a"), &Name::int(4)), None);
        assert_eq!(compare(GE, &Name::int(4), &Name::string("x")), None);
    }

    #[test]
    fn neq_works_on_all_names() {
        assert_eq!(compare(NEQ, &Name::atom("a"), &Name::atom("b")), Some(true));
        assert_eq!(compare(NEQ, &Name::atom("a"), &Name::atom("a")), Some(false));
        assert_eq!(compare(NEQ, &Name::int(1), &Name::atom("a")), Some(true));
    }

    #[test]
    fn unknown_builtin_yields_none() {
        assert_eq!(compare("frobnicate", &Name::int(1), &Name::int(2)), None);
    }
}
