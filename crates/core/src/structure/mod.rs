//! Semantic structures (Section 3 of the paper).
//!
//! A semantic structure is a tuple `I = (U, isa, I_N, I_->, I_->>)`:
//!
//! * `U` — the universe of objects.  Objects also serve as classes and as
//!   methods; values (integers, strings) are objects too.
//! * `isa` — a binary relation on `U` relating objects to their classes (see
//!   [`isa::Isa`]).
//! * `I_N : N -> U` — the interpretation of names: which object a name
//!   denotes.
//! * `I_->` — the interpretation of scalar methods: partial functions
//!   `U^k -> U` attached to method objects.
//! * `I_->>` — the interpretation of set-valued methods: functions
//!   `U^k -> 2^U` attached to method objects.
//!
//! [`Structure`] is the mutable, indexed realisation of this tuple used by
//! both the extensional database (facts loaded from an
//! [`ObjectStore`](https://docs.rs/pathlog-oodb)) and the intensional part
//! (facts derived by rules, including virtual objects).

mod facts;
mod isa;
mod runs;
mod sigs;

pub use facts::{Assert, Facts, ScalarFactView, SetFactView};
pub use isa::Isa;
pub use runs::OidRun;
pub use sigs::{Signature, Signatures};

use std::borrow::Cow;
use std::collections::HashMap;
use std::fmt;

use crate::builtins;
use crate::names::Name;

/// An object identifier — a dense index into the universe.
///
/// OIDs are a storage-level concept: users address objects through names
/// (`I_N`) or by navigating methods, never through OIDs directly.  The inner
/// index is exposed for the benefit of substrates (object store, baselines,
/// workload generators) that need dense arrays over the universe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Oid(pub u32);

impl Oid {
    /// The dense index of this object.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Per-object bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectInfo {
    /// The name denoting this object, if any (virtual objects have none).
    pub name: Option<Name>,
    /// `true` if the object was created by rule evaluation (a *virtual*
    /// object in the sense of Section 2 / \[AB91\]).
    pub is_virtual: bool,
}

/// Summary statistics of a structure, used by benchmarks and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StructureStats {
    /// Number of objects in the universe.
    pub objects: usize,
    /// Number of named objects.
    pub named: usize,
    /// Number of virtual objects.
    pub virtuals: usize,
    /// Number of scalar method facts.
    pub scalar_facts: usize,
    /// Number of set-valued method applications.
    pub set_applications: usize,
    /// Total number of set members.
    pub set_members: usize,
    /// Number of directly asserted is-a edges.
    pub isa_edges: usize,
}

/// Watermarks of a structure at a snapshot boundary: the sizes of its
/// append-only insertion logs (scalar facts, set-member log, is-a closure
/// log, universe, signature declarations).
///
/// Capturing marks is O(1); the facts between two captures are the *snapshot
/// window* of everything asserted in between, recoverable as O(window)
/// slices through [`Facts::scalar_facts_in`], [`Facts::set_members_in`] and
/// [`Isa::pairs_in`].  The engine's semi-naive evaluation captures one pair
/// of marks per fixpoint iteration and derives its delta view from the
/// slice (see `pathlog_core::semantics::DeltaView`).  Windows are only
/// meaningful across a span without retractions (see the `facts` module
/// docs); the deductive engine only ever adds facts while evaluating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalMarks {
    /// Number of scalar facts.
    pub scalar_facts: usize,
    /// Number of set-member insertions (log length).
    pub set_member_inserts: usize,
    /// Number of is-a closure pairs.
    pub isa_pairs: usize,
    /// Number of objects in the universe.
    pub objects: usize,
    /// Number of signature declarations.
    pub signatures: usize,
}

impl EvalMarks {
    /// Capture the current watermarks of `structure`.
    pub fn capture(structure: &Structure) -> Self {
        EvalMarks {
            scalar_facts: structure.facts().num_scalar(),
            set_member_inserts: structure.facts().num_set_member_inserts(),
            isa_pairs: structure.isa().closure_size(),
            objects: structure.num_objects(),
            signatures: structure.signatures().len(),
        }
    }
}

/// A mutable semantic structure with indexes.
#[derive(Debug, Clone)]
pub struct Structure {
    objects: Vec<ObjectInfo>,
    names: HashMap<Name, Oid>,
    isa: Isa,
    facts: Facts,
    sigs: Signatures,
    self_method: Oid,
    comparison_methods: HashMap<Oid, &'static str>,
}

impl Default for Structure {
    fn default() -> Self {
        Self::new()
    }
}

impl Structure {
    /// An empty structure with the built-in methods pre-registered.
    pub fn new() -> Self {
        let mut s = Structure {
            objects: Vec::new(),
            names: HashMap::new(),
            isa: Isa::new(),
            facts: Facts::new(),
            sigs: Signatures::new(),
            self_method: Oid(0),
            comparison_methods: HashMap::new(),
        };
        s.self_method = s.ensure_name(&Name::atom(builtins::SELF_METHOD));
        for &b in builtins::ALL_BUILTINS {
            let oid = s.ensure_name(&Name::atom(b));
            if builtins::is_comparison(b) {
                s.comparison_methods.insert(oid, b);
            }
        }
        s
    }

    // -- universe and names -------------------------------------------------

    /// The object denoted by `name`, creating it if necessary (`I_N` is a
    /// total function in the paper; the engine registers every name it sees).
    pub fn ensure_name(&mut self, name: &Name) -> Oid {
        if let Some(&oid) = self.names.get(name) {
            return oid;
        }
        let oid = Oid(self.objects.len() as u32);
        self.objects.push(ObjectInfo {
            name: Some(name.clone()),
            is_virtual: false,
        });
        self.names.insert(name.clone(), oid);
        oid
    }

    /// Convenience: `ensure_name` for an atom.
    pub fn atom(&mut self, name: &str) -> Oid {
        self.ensure_name(&Name::atom(name))
    }

    /// Convenience: `ensure_name` for an integer.
    pub fn int(&mut self, i: i64) -> Oid {
        self.ensure_name(&Name::Int(i))
    }

    /// Convenience: `ensure_name` for a string value.
    pub fn string(&mut self, s: &str) -> Oid {
        self.ensure_name(&Name::string(s))
    }

    /// The object denoted by `name`, if registered.
    pub fn lookup_name(&self, name: &Name) -> Option<Oid> {
        self.names.get(name).copied()
    }

    /// The object denoted by `name`, or [`crate::error::Error::UnknownName`].
    ///
    /// The fallible counterpart of [`Structure::lookup_name`] for call sites
    /// that would otherwise `unwrap()`: a read-only path that *requires* the
    /// name to exist (query evaluation over an asserted vocabulary, baseline
    /// plan construction) gets a reportable error instead of a panic or a
    /// silently empty answer.
    pub fn require_name(&self, name: &Name) -> crate::error::Result<Oid> {
        self.lookup_name(name)
            .ok_or_else(|| crate::error::Error::UnknownName(format!("`{name}` is not registered in the structure")))
    }

    /// The name denoting `oid`, if it has one.
    pub fn name_of(&self, oid: Oid) -> Option<&Name> {
        self.objects.get(oid.index()).and_then(|o| o.name.as_ref())
    }

    /// A printable identification of `oid`: its name, or `_#<oid>` for
    /// anonymous (virtual) objects.
    ///
    /// Atoms — the overwhelmingly common case on reporting paths — borrow
    /// the stored name; only integers, strings (which display quoted) and
    /// anonymous objects allocate.
    pub fn display_name(&self, oid: Oid) -> Cow<'_, str> {
        match self.name_of(oid) {
            Some(Name::Atom(s)) => Cow::Borrowed(s.as_str()),
            Some(n) => Cow::Owned(n.to_string()),
            None => Cow::Owned(format!("_{oid}")),
        }
    }

    /// Allocate a fresh, unnamed (virtual) object.
    pub fn new_virtual(&mut self) -> Oid {
        let oid = Oid(self.objects.len() as u32);
        self.objects.push(ObjectInfo {
            name: None,
            is_virtual: true,
        });
        oid
    }

    /// `true` if `oid` was created as a virtual object.
    pub fn is_virtual(&self, oid: Oid) -> bool {
        self.objects.get(oid.index()).is_some_and(|o| o.is_virtual)
    }

    /// Does the universe contain `oid`?
    pub fn contains(&self, oid: Oid) -> bool {
        oid.index() < self.objects.len()
    }

    /// Number of objects in the universe.
    pub fn num_objects(&self) -> usize {
        self.objects.len()
    }

    /// Iterate over all objects.
    pub fn objects(&self) -> impl Iterator<Item = Oid> + '_ {
        (0..self.objects.len() as u32).map(Oid)
    }

    /// Iterate over all registered names and the objects they denote, in
    /// interned-oid order.
    ///
    /// The underlying map iterates in a per-process random order; sorting by
    /// oid here keeps every consumer that materialises the alphabet
    /// (persistence, the relational baseline loader, canonical dumps)
    /// deterministic run-to-run.
    pub fn names(&self) -> impl Iterator<Item = (&Name, Oid)> + '_ {
        let mut all: Vec<(&Name, Oid)> = self.names.iter().map(|(n, &o)| (n, o)).collect();
        all.sort_unstable_by_key(|&(_, o)| o);
        all.into_iter()
    }

    /// The object of the built-in `self` method.
    pub fn self_method(&self) -> Oid {
        self.self_method
    }

    /// Is `oid` one of the built-in comparison methods (`lt`, `ge`, ...)?
    ///
    /// Built-in methods apply to arbitrary receivers without stored facts, so
    /// index-driven receiver seeding must not be used for them.
    pub fn is_comparison_method(&self, oid: Oid) -> bool {
        self.comparison_methods.contains_key(&oid)
    }

    // -- class hierarchy ----------------------------------------------------

    /// Assert `obj isa class`.  Returns `true` if new information was added.
    pub fn add_isa(&mut self, obj: Oid, class: Oid) -> bool {
        self.isa.add(obj, class)
    }

    /// Is `obj` a (transitive) member of `class`?
    pub fn in_class(&self, obj: Oid, class: Oid) -> bool {
        self.isa.in_class(obj, class)
    }

    /// All (transitive) members of `class`.
    pub fn instances_of(&self, class: Oid) -> impl Iterator<Item = Oid> + '_ {
        self.isa.instances_of(class)
    }

    /// All (transitive) classes of `obj`.
    pub fn classes_of(&self, obj: Oid) -> impl Iterator<Item = Oid> + '_ {
        self.isa.classes_of(obj)
    }

    /// Size of the extent of `class`.
    pub fn extent_size(&self, class: Oid) -> usize {
        self.isa.extent_size(class)
    }

    /// The underlying class hierarchy.
    pub fn isa(&self) -> &Isa {
        &self.isa
    }

    // -- facts ----------------------------------------------------------------

    /// Assert a scalar fact `I_->(method)(receiver, args) = result`.
    pub fn assert_scalar(
        &mut self,
        method: Oid,
        receiver: Oid,
        args: &[Oid],
        result: Oid,
    ) -> crate::error::Result<Assert> {
        self.facts.assert_scalar(method, receiver, args, result)
    }

    /// Assert membership `member ∈ I_->>(method)(receiver, args)`.
    pub fn assert_set_member(&mut self, method: Oid, receiver: Oid, args: &[Oid], member: Oid) -> Assert {
        self.facts.assert_set_member(method, receiver, args, member)
    }

    /// Declare a (possibly empty) set-valued application.
    pub fn declare_set(&mut self, method: Oid, receiver: Oid, args: &[Oid]) {
        self.facts.declare_set(method, receiver, args)
    }

    /// Apply a scalar method, taking built-ins into account:
    ///
    /// * `self` yields the receiver;
    /// * comparison built-ins (extension) yield the receiver when the
    ///   comparison between the receiver's and the argument's names holds;
    /// * otherwise the stored scalar facts are consulted.
    pub fn apply_scalar(&self, method: Oid, receiver: Oid, args: &[Oid]) -> Option<Oid> {
        if method == self.self_method && args.is_empty() {
            return Some(receiver);
        }
        if let Some(&cmp) = self.comparison_methods.get(&method) {
            if args.len() == 1 {
                let lhs = self.name_of(receiver)?;
                let rhs = self.name_of(args[0])?;
                return match builtins::compare(cmp, lhs, rhs) {
                    Some(true) => Some(receiver),
                    _ => None,
                };
            }
            return None;
        }
        self.facts.scalar_result(method, receiver, args)
    }

    /// Apply a set-valued method (no built-ins are set-valued).  The
    /// returned run is the stored member column itself (sorted,
    /// `Arc`-shared).
    pub fn apply_set(&self, method: Oid, receiver: Oid, args: &[Oid]) -> Option<&OidRun> {
        self.facts.set_result(method, receiver, args)
    }

    /// Retract a stored scalar fact; returns the result it had.  Built-in
    /// methods (`self`, comparisons) cannot be retracted.
    ///
    /// Retraction is an extension beyond the paper used by the production /
    /// active-rule layer; the deductive engine itself only adds facts.
    pub fn retract_scalar(&mut self, method: Oid, receiver: Oid, args: &[Oid]) -> Option<Oid> {
        if method == self.self_method || self.comparison_methods.contains_key(&method) {
            return None;
        }
        self.facts.retract_scalar(method, receiver, args)
    }

    /// Retract one member from a stored set-valued fact; returns `true` if it
    /// was present.
    pub fn retract_set_member(&mut self, method: Oid, receiver: Oid, args: &[Oid], member: Oid) -> bool {
        self.facts.retract_set_member(method, receiver, args, member)
    }

    /// Monotone count of successful retractions (scalar + set member) over
    /// this structure's lifetime.  Incremental consumers (the constraint
    /// checker, the reactive layer) snapshot it alongside their watermarks:
    /// an unchanged counter proves the span is retraction-free and delta
    /// slices over it are sound; a changed one forces a full re-pass.
    pub fn retractions(&self) -> usize {
        self.facts.num_retractions()
    }

    /// Read access to the fact tables (for baselines and reporting).
    pub fn facts(&self) -> &Facts {
        &self.facts
    }

    // -- signatures -----------------------------------------------------------

    /// Add a signature declaration.
    pub fn add_signature(&mut self, sig: Signature) -> bool {
        self.sigs.add(sig)
    }

    /// Read access to the signature declarations.
    pub fn signatures(&self) -> &Signatures {
        &self.sigs
    }

    // -- canonical serialisation ----------------------------------------------

    /// A canonical, byte-stable dump of the structure's content: names in
    /// interned-oid order, then scalar facts, set members and is-a closure
    /// pairs, each section sorted by `(method/class, receiver, args)` oids.
    ///
    /// Two structures holding the same model produce identical bytes no
    /// matter in which order their facts were asserted by which evaluation
    /// mode — this is the emission boundary tests diff to show that
    /// sequential and parallel (or two repeated) runs agree exactly,
    /// without depending on hash-map iteration order.
    pub fn canonical_dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "objects: {}", self.objects.len());
        for (name, oid) in self.names() {
            let _ = writeln!(out, "name {oid} {name}");
        }
        let mut scalars: Vec<ScalarFactView<'_>> = self.facts.scalar_facts().collect();
        scalars.sort_unstable_by(|a, b| {
            (a.method, a.receiver, a.args, a.result).cmp(&(b.method, b.receiver, b.args, b.result))
        });
        for f in scalars {
            let _ = writeln!(out, "scalar {} {} {:?} -> {}", f.method, f.receiver, f.args, f.result);
        }
        let mut members: Vec<(Oid, Oid, &[Oid], Oid)> = self
            .facts
            .set_facts()
            .flat_map(|f| f.members.iter().map(move |&m| (f.method, f.receiver, f.args, m)))
            .collect();
        members.sort_unstable();
        for (method, receiver, args, member) in members {
            let _ = writeln!(out, "member {method} {receiver} {args:?} ->> {member}");
        }
        let mut pairs: Vec<(Oid, Oid)> = self.isa.pairs_since(0).to_vec();
        pairs.sort_unstable();
        for (sub, sup) in pairs {
            let _ = writeln!(out, "isa {sub} : {sup}");
        }
        out
    }

    // -- statistics -----------------------------------------------------------

    /// Summary statistics.
    pub fn stats(&self) -> StructureStats {
        StructureStats {
            objects: self.objects.len(),
            named: self.objects.iter().filter(|o| o.name.is_some()).count(),
            virtuals: self.objects.iter().filter(|o| o.is_virtual).count(),
            scalar_facts: self.facts.num_scalar(),
            set_applications: self.facts.num_set_applications(),
            set_members: self.facts.num_set_members(),
            isa_edges: self.isa.direct_size(),
        }
    }
}

impl fmt::Display for StructureStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} objects ({} named, {} virtual), {} scalar facts, {} set applications ({} members), {} isa edges",
            self.objects,
            self.named,
            self.virtuals,
            self.scalar_facts,
            self.set_applications,
            self.set_members,
            self.isa_edges
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_interned_once() {
        let mut s = Structure::new();
        let a = s.atom("mary");
        let b = s.ensure_name(&Name::atom("mary"));
        assert_eq!(a, b);
        assert_eq!(s.lookup_name(&Name::atom("mary")), Some(a));
        assert_eq!(s.name_of(a), Some(&Name::atom("mary")));
        assert_eq!(s.display_name(a), "mary");
    }

    #[test]
    fn integers_and_strings_are_objects() {
        let mut s = Structure::new();
        let i = s.int(30);
        let t = s.string("red");
        assert_ne!(i, t);
        assert_eq!(s.lookup_name(&Name::int(30)), Some(i));
        assert_eq!(s.lookup_name(&Name::string("red")), Some(t));
        assert_eq!(
            s.lookup_name(&Name::atom("red")),
            None,
            "string and atom are distinct names"
        );
    }

    #[test]
    fn virtual_objects_are_unnamed() {
        let mut s = Structure::new();
        let v = s.new_virtual();
        assert!(s.is_virtual(v));
        assert_eq!(s.name_of(v), None);
        assert!(s.display_name(v).starts_with('_'));
        assert!(s.contains(v));
        assert!(!s.contains(Oid(1_000_000)));
    }

    #[test]
    fn self_builtin_yields_receiver() {
        let mut s = Structure::new();
        let mary = s.atom("mary");
        let self_m = s.self_method();
        assert_eq!(s.apply_scalar(self_m, mary, &[]), Some(mary));
        assert_eq!(s.apply_scalar(self_m, mary, &[mary]), None, "self takes no arguments");
    }

    #[test]
    fn comparison_builtins() {
        let mut s = Structure::new();
        let three = s.int(3);
        let four = s.int(4);
        let lt = s.atom("lt");
        let ge = s.atom("ge");
        assert_eq!(s.apply_scalar(lt, three, &[four]), Some(three));
        assert_eq!(s.apply_scalar(lt, four, &[three]), None);
        assert_eq!(s.apply_scalar(ge, four, &[three]), Some(four));
        // wrong arity or non-integers: undefined
        assert_eq!(s.apply_scalar(lt, three, &[]), None);
        let mary = s.atom("mary");
        assert_eq!(s.apply_scalar(lt, mary, &[four]), None);
    }

    #[test]
    fn scalar_and_set_facts_via_structure() {
        let mut s = Structure::new();
        let (age, mary, thirty) = (s.atom("age"), s.atom("mary"), s.int(30));
        let (kids, tim) = (s.atom("kids"), s.atom("tim"));
        assert!(s.assert_scalar(age, mary, &[], thirty).unwrap().is_new());
        assert_eq!(s.apply_scalar(age, mary, &[]), Some(thirty));
        assert!(s.assert_set_member(kids, mary, &[], tim).is_new());
        assert!(s.apply_set(kids, mary, &[]).unwrap().contains(&tim));
        assert_eq!(s.apply_set(age, mary, &[]), None);
    }

    #[test]
    fn class_hierarchy_via_structure() {
        let mut s = Structure::new();
        let (a1, auto, vehicle) = (s.atom("a1"), s.atom("automobile"), s.atom("vehicle"));
        s.add_isa(auto, vehicle);
        s.add_isa(a1, auto);
        assert!(s.in_class(a1, vehicle));
        assert_eq!(s.extent_size(vehicle), 2);
        assert!(s.instances_of(vehicle).any(|o| o == a1));
        assert!(s.classes_of(a1).any(|c| c == vehicle));
    }

    #[test]
    fn stats_reflect_content() {
        let mut s = Structure::new();
        let base = s.stats();
        let (age, mary, thirty) = (s.atom("age"), s.atom("mary"), s.int(30));
        s.assert_scalar(age, mary, &[], thirty).unwrap();
        let v = s.new_virtual();
        s.add_isa(v, mary);
        let st = s.stats();
        assert_eq!(st.objects, base.objects + 4);
        assert_eq!(st.virtuals, 1);
        assert_eq!(st.scalar_facts, 1);
        assert_eq!(st.isa_edges, 1);
        assert!(st.to_string().contains("objects"));
    }

    #[test]
    fn require_name_reports_unknown_names() {
        let mut s = Structure::new();
        let mary = s.atom("mary");
        assert_eq!(s.require_name(&Name::atom("mary")).unwrap(), mary);
        let err = s.require_name(&Name::atom("nobody")).unwrap_err();
        assert!(matches!(err, crate::error::Error::UnknownName(ref m) if m.contains("nobody")));
    }

    #[test]
    fn canonical_dump_is_independent_of_fact_assertion_order() {
        let build = |flip: bool| {
            let mut s = Structure::new();
            let (kids, age) = (s.atom("kids"), s.atom("age"));
            let (a, b, c) = (s.atom("a"), s.atom("b"), s.atom("c"));
            let thirty = s.int(30);
            if flip {
                s.add_isa(c, a);
                s.assert_scalar(age, b, &[], thirty).unwrap();
                s.assert_set_member(kids, a, &[], c);
                s.assert_set_member(kids, a, &[], b);
            } else {
                s.assert_set_member(kids, a, &[], b);
                s.assert_set_member(kids, a, &[], c);
                s.assert_scalar(age, b, &[], thirty).unwrap();
                s.add_isa(c, a);
            }
            s.canonical_dump()
        };
        let d1 = build(false);
        let d2 = build(true);
        assert_eq!(d1, d2, "dump must not depend on assertion order");
        for needle in ["objects:", "name", "scalar", "member", "isa"] {
            assert!(d1.contains(needle), "dump section `{needle}` missing:\n{d1}");
        }
    }

    #[test]
    fn signatures_are_stored() {
        let mut s = Structure::new();
        let (person, age, integer) = (s.atom("person"), s.atom("age"), s.atom("integer"));
        assert!(s.add_signature(Signature {
            class: person,
            method: age,
            arg_classes: Box::new([]),
            result_classes: vec![integer],
            set_valued: false,
        }));
        assert!(s.signatures().declares_method(age));
        assert_eq!(s.signatures().len(), 1);
    }

    #[test]
    fn retracting_facts_makes_method_applications_undefined_again() {
        let mut s = Structure::new();
        let (age, kids, mary, tim, thirty) = (s.atom("age"), s.atom("kids"), s.atom("mary"), s.atom("tim"), s.int(30));
        s.assert_scalar(age, mary, &[], thirty).unwrap();
        s.assert_set_member(kids, mary, &[], tim);

        assert_eq!(s.retract_scalar(age, mary, &[]), Some(thirty));
        assert_eq!(s.apply_scalar(age, mary, &[]), None);
        assert_eq!(s.retract_scalar(age, mary, &[]), None);

        assert!(s.retract_set_member(kids, mary, &[], tim));
        assert_eq!(s.apply_set(kids, mary, &[]).map(|m| m.len()), Some(0));
        assert!(!s.retract_set_member(kids, mary, &[], tim));
    }

    #[test]
    fn built_in_methods_cannot_be_retracted() {
        let mut s = Structure::new();
        let mary = s.atom("mary");
        let self_m = s.self_method();
        assert_eq!(s.apply_scalar(self_m, mary, &[]), Some(mary));
        assert_eq!(s.retract_scalar(self_m, mary, &[]), None);
        assert_eq!(s.apply_scalar(self_m, mary, &[]), Some(mary), "self still applies");
    }
}
