//! Signature storage — typing declarations for methods.
//!
//! The paper points out (Section 2) that using methods to reference virtual
//! objects has the benefit that "the usage of methods can be controlled by
//! signatures in the same way as in \[KLW93\], which makes type checking
//! techniques applicable".  A signature declares, for members of a class, the
//! result classes of a method:
//!
//! * `person[age => integer]` — scalar method `age`, result in `integer`;
//! * `person[kids =>> person]` — set-valued method `kids`, members in `person`.
//!
//! Signatures are inherited by subclasses of the declaring class.  The type
//! checker lives in [`crate::typing`]; this module only stores declarations.

use std::collections::HashMap;

use super::Oid;

/// One signature declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature {
    /// The class whose members the signature constrains.
    pub class: Oid,
    /// The method being declared.
    pub method: Oid,
    /// Classes the call arguments must belong to (fixes the arity).
    pub arg_classes: Box<[Oid]>,
    /// Classes the result (each member, for set-valued methods) must belong to.
    pub result_classes: Vec<Oid>,
    /// `true` for `=>>` (set-valued), `false` for `=>` (scalar).
    pub set_valued: bool,
}

/// All signature declarations of a structure.
#[derive(Debug, Default, Clone)]
pub struct Signatures {
    sigs: Vec<Signature>,
    by_method: HashMap<Oid, Vec<usize>>,
}

impl Signatures {
    /// No declarations.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a declaration (duplicates are ignored).
    pub fn add(&mut self, sig: Signature) -> bool {
        if self.sigs.iter().any(|s| s == &sig) {
            return false;
        }
        let method = sig.method;
        self.by_method.entry(method).or_default().push(self.sigs.len());
        self.sigs.push(sig);
        true
    }

    /// All declarations.
    pub fn iter(&self) -> impl Iterator<Item = &Signature> + '_ {
        self.sigs.iter()
    }

    /// Declarations for a method (any class, any arity).
    pub fn for_method(&self, method: Oid) -> impl Iterator<Item = &Signature> + '_ {
        self.by_method
            .get(&method)
            .into_iter()
            .flatten()
            .map(move |&i| &self.sigs[i])
    }

    /// `true` if any declaration exists for the method.
    pub fn declares_method(&self, method: Oid) -> bool {
        self.by_method.contains_key(&method)
    }

    /// Number of declarations.
    pub fn len(&self) -> usize {
        self.sigs.len()
    }

    /// `true` if there are no declarations.
    pub fn is_empty(&self) -> bool {
        self.sigs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(i: u32) -> Oid {
        Oid(i)
    }

    fn sig(class: u32, method: u32, set: bool) -> Signature {
        Signature {
            class: o(class),
            method: o(method),
            arg_classes: Box::new([]),
            result_classes: vec![o(99)],
            set_valued: set,
        }
    }

    #[test]
    fn add_and_lookup() {
        let mut s = Signatures::new();
        assert!(s.is_empty());
        assert!(s.add(sig(1, 2, false)));
        assert!(!s.add(sig(1, 2, false)), "duplicates ignored");
        assert!(s.add(sig(1, 2, true)), "set/scalar are distinct declarations");
        assert_eq!(s.len(), 2);
        assert_eq!(s.for_method(o(2)).count(), 2);
        assert_eq!(s.for_method(o(3)).count(), 0);
        assert!(s.declares_method(o(2)));
        assert!(!s.declares_method(o(3)));
        assert_eq!(s.iter().count(), 2);
    }
}
