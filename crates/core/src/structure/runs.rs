//! Sorted, deduplicated `Oid` runs — the shared column primitive of the
//! columnar fact storage.
//!
//! An [`OidRun`] is an immutable-by-default, `Arc`-shared sorted vector of
//! distinct object identifiers.  Cloning a run is a reference-count bump;
//! mutation goes through [`Arc::make_mut`], so a `Structure` snapshot and its
//! parent share every run that neither side has touched (copy-on-write per
//! run).  Because the data is sorted and dense:
//!
//! * membership tests are a binary search over a contiguous slice,
//! * iteration order is ascending `Oid` order — the same order the previous
//!   `BTreeSet<Oid>` backing produced, so every canonical dump and
//!   deterministic enumeration downstream is byte-identical,
//! * whole runs can be handed to the factorized answer representation
//!   ([`crate::semantics::factorized`]) zero-copy: an answer DAG leaf holds
//!   the same `Arc` as the fact table.

use std::collections::BTreeSet;
use std::ops::Deref;
use std::sync::{Arc, OnceLock};

use super::Oid;

/// A sorted run of distinct `Oid`s, `Arc`-shared and copy-on-write.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OidRun(Arc<Vec<Oid>>);

impl OidRun {
    /// An empty run.
    pub fn new() -> Self {
        Self::default()
    }

    /// A shared reference to the canonical empty run, for `unwrap_or` on
    /// lookup paths that must not allocate.
    pub fn empty_ref() -> &'static OidRun {
        static EMPTY: OnceLock<OidRun> = OnceLock::new();
        EMPTY.get_or_init(OidRun::new)
    }

    /// Is `oid` a member of the run?  Binary search over the sorted column.
    pub fn contains(&self, oid: &Oid) -> bool {
        self.0.binary_search(oid).is_ok()
    }

    /// Insert `oid`, keeping the run sorted.  Returns `true` if it was not
    /// present.  Copies the underlying vector only when shared.
    pub fn insert(&mut self, oid: Oid) -> bool {
        match self.0.binary_search(&oid) {
            Ok(_) => false,
            Err(pos) => {
                Arc::make_mut(&mut self.0).insert(pos, oid);
                true
            }
        }
    }

    /// Remove `oid`.  Returns `true` if it was present.
    pub fn remove(&mut self, oid: &Oid) -> bool {
        match self.0.binary_search(oid) {
            Ok(pos) => {
                Arc::make_mut(&mut self.0).remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Iterate the members in ascending `Oid` order.
    pub fn iter(&self) -> std::slice::Iter<'_, Oid> {
        self.0.iter()
    }

    /// The members as a contiguous sorted slice.
    pub fn as_slice(&self) -> &[Oid] {
        &self.0
    }
}

impl Deref for OidRun {
    type Target = [Oid];

    fn deref(&self) -> &[Oid] {
        &self.0
    }
}

impl<'a> IntoIterator for &'a OidRun {
    type Item = &'a Oid;
    type IntoIter = std::slice::Iter<'a, Oid>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

/// Build a run from an iterator (sorts and deduplicates).
impl FromIterator<Oid> for OidRun {
    fn from_iter<I: IntoIterator<Item = Oid>>(iter: I) -> Self {
        let mut v: Vec<Oid> = iter.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        OidRun(Arc::new(v))
    }
}

/// A run equals a `BTreeSet` with the same members — both are sorted and
/// deduplicated, so this is a plain sequence comparison.  Keeps tests (and
/// callers migrating off the old `BTreeSet` backing) comparing directly.
impl PartialEq<BTreeSet<Oid>> for OidRun {
    fn eq(&self, other: &BTreeSet<Oid>) -> bool {
        self.0.len() == other.len() && self.0.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(i: u32) -> Oid {
        Oid(i)
    }

    #[test]
    fn insert_keeps_sorted_unique() {
        let mut r = OidRun::new();
        assert!(r.insert(o(5)));
        assert!(r.insert(o(1)));
        assert!(r.insert(o(3)));
        assert!(!r.insert(o(3)), "duplicate");
        assert_eq!(r.as_slice(), &[o(1), o(3), o(5)]);
        assert!(r.contains(&o(3)));
        assert!(!r.contains(&o(4)));
    }

    #[test]
    fn remove_and_empty_ref() {
        let mut r = OidRun::from_iter([o(2), o(1)]);
        assert!(r.remove(&o(1)));
        assert!(!r.remove(&o(1)));
        assert_eq!(r.len(), 1);
        assert!(OidRun::empty_ref().is_empty());
    }

    #[test]
    fn clone_is_shared_until_mutated() {
        let mut a = OidRun::from_iter([o(1), o(2)]);
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.0, &b.0), "clone shares the column");
        a.insert(o(3));
        assert_eq!(b.as_slice(), &[o(1), o(2)], "copy-on-write detaches");
        assert_eq!(a.as_slice(), &[o(1), o(2), o(3)]);
    }

    #[test]
    fn equals_btreeset_with_same_members() {
        let r = OidRun::from_iter([o(3), o(1)]);
        let s: BTreeSet<Oid> = [o(1), o(3)].into_iter().collect();
        assert_eq!(r, s);
        let t: BTreeSet<Oid> = [o(1), o(2)].into_iter().collect();
        assert_ne!(r, t);
    }
}
