//! Method fact tables — the interpretations `I_->` (scalar methods) and
//! `I_->>` (set-valued methods) of a semantic structure.
//!
//! A scalar fact states `I_->(method)(receiver, args...) = result`; a set
//! fact states `member ∈ I_->>(method)(receiver, args...)`.  Facts are stored
//! in dense vectors with hash indexes by method, by (method, result/member),
//! by receiver and by the compound `(method, receiver)` application key,
//! which back the engine's matching of molecules with unbound positions.
//!
//! Two properties of the storage are load-bearing for the engine's semi-naive
//! evaluation (see [`crate::semantics::delta`]):
//!
//! * **insertion order**: scalar facts keep their dense-vector position and
//!   set-member insertions are recorded in an append-only log, so "the facts
//!   added since watermark `k`" is an O(delta) slice;
//! * **allocation-free lookups**: point lookups resolve through a nested
//!   `(method, receiver)`-keyed application index instead of building a boxed
//!   `(method, receiver, args)` key per call.
//!
//! Watermark slices are only meaningful across a span without retractions:
//! [`Facts::retract_scalar`] reorders the dense vector (swap-remove) and
//! [`Facts::retract_set_member`] leaves the insertion log untouched.  The
//! deductive engine only ever adds facts while evaluating, so this holds for
//! every fixpoint run; the reactive layer retracts *between* runs.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::error::{Error, Result};

use super::Oid;

/// A stored scalar fact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScalarFact {
    /// The method object.
    pub method: Oid,
    /// The receiver object.
    pub receiver: Oid,
    /// The argument objects.
    pub args: Box<[Oid]>,
    /// The result object.
    pub result: Oid,
}

/// A stored set-valued fact (one per `(method, receiver, args)` application,
/// holding all members).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetFact {
    /// The method object.
    pub method: Oid,
    /// The receiver object.
    pub receiver: Oid,
    /// The argument objects.
    pub args: Box<[Oid]>,
    /// The members of the result set.
    pub members: BTreeSet<Oid>,
}

/// Outcome of asserting a fact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Assert {
    /// The fact was not present before.
    New,
    /// The fact was already present; nothing changed.
    Unchanged,
}

impl Assert {
    /// `true` if the assertion added new information.
    pub fn is_new(self) -> bool {
        matches!(self, Assert::New)
    }
}

/// Nested application index: resolves `(method, receiver, args)` to the
/// position of the stored application.
///
/// Zero-argument applications — the overwhelmingly common case on every join
/// hot path — are resolved with a single hash lookup on the `(Oid, Oid)`
/// pair.  Applications with arguments go through a nested per-`(method,
/// receiver)` map keyed by the argument tuple, looked up through
/// `Borrow<[Oid]>`.  Neither path allocates.
#[derive(Debug, Default, Clone)]
struct AppIndex {
    zero: HashMap<(Oid, Oid), usize>,
    with_args: HashMap<(Oid, Oid), ArgsIndex>,
}

/// Per-`(method, receiver)` index of the applications with arguments,
/// keyed by the argument tuple (looked up through `Borrow<[Oid]>`).
/// An ordered map: iteration follows argument-tuple order, so enumerating
/// the applications of a compound key is deterministic without sorting.
type ArgsIndex = BTreeMap<Box<[Oid]>, usize>;

impl AppIndex {
    fn get(&self, method: Oid, receiver: Oid, args: &[Oid]) -> Option<usize> {
        if args.is_empty() {
            self.zero.get(&(method, receiver)).copied()
        } else {
            self.with_args.get(&(method, receiver))?.get(args).copied()
        }
    }

    fn insert(&mut self, method: Oid, receiver: Oid, args: &[Oid], idx: usize) {
        if args.is_empty() {
            self.zero.insert((method, receiver), idx);
        } else {
            self.with_args
                .entry((method, receiver))
                .or_default()
                .insert(args.into(), idx);
        }
    }

    fn remove(&mut self, method: Oid, receiver: Oid, args: &[Oid]) -> Option<usize> {
        if args.is_empty() {
            self.zero.remove(&(method, receiver))
        } else {
            let inner = self.with_args.get_mut(&(method, receiver))?;
            let idx = inner.remove(args)?;
            if inner.is_empty() {
                self.with_args.remove(&(method, receiver));
            }
            Some(idx)
        }
    }

    /// All stored application positions for the compound `(method, receiver)`
    /// key: the zero-argument application first, then the
    /// applications-with-arguments in argument-tuple order.  Deterministic
    /// (the inner map is ordered) and allocation-free on both paths.
    fn indices_of(&self, method: Oid, receiver: Oid) -> impl Iterator<Item = usize> + '_ {
        self.zero.get(&(method, receiver)).copied().into_iter().chain(
            self.with_args
                .get(&(method, receiver))
                .into_iter()
                .flat_map(|inner| inner.values().copied()),
        )
    }
}

/// The fact tables of a structure.
#[derive(Debug, Default, Clone)]
pub struct Facts {
    scalar: Vec<ScalarFact>,
    scalar_app: AppIndex,
    scalar_by_method: HashMap<Oid, Vec<usize>>,
    scalar_by_method_result: HashMap<(Oid, Oid), Vec<usize>>,
    scalar_by_receiver: HashMap<Oid, Vec<usize>>,

    set: Vec<SetFact>,
    set_app: AppIndex,
    set_by_method: HashMap<Oid, Vec<usize>>,
    set_by_method_member: HashMap<(Oid, Oid), Vec<usize>>,
    set_by_receiver: HashMap<Oid, Vec<usize>>,

    set_member_count: usize,
    /// Append-only insertion log of set members: `(application index,
    /// member)` in assertion order.  Backs the engine's delta slices.
    set_log: Vec<(u32, Oid)>,
}

impl Facts {
    /// Empty fact tables.
    pub fn new() -> Self {
        Self::default()
    }

    // -- scalar ------------------------------------------------------------

    /// Assert `I_->(method)(receiver, args) = result`.
    ///
    /// Returns an error if a *different* result is already stored for the
    /// same application: scalar methods are partial functions, so conflicting
    /// results indicate an inconsistent program.
    pub fn assert_scalar(&mut self, method: Oid, receiver: Oid, args: &[Oid], result: Oid) -> Result<Assert> {
        if let Some(idx) = self.scalar_app.get(method, receiver, args) {
            let existing = self.scalar[idx].result;
            if existing == result {
                return Ok(Assert::Unchanged);
            }
            return Err(Error::Other(format!(
                "conflicting scalar results for method {:?} on receiver {:?}: {:?} vs {:?}",
                method, receiver, existing, result
            )));
        }
        let idx = self.scalar.len();
        self.scalar.push(ScalarFact {
            method,
            receiver,
            args: args.into(),
            result,
        });
        self.scalar_app.insert(method, receiver, args, idx);
        self.scalar_by_method.entry(method).or_default().push(idx);
        self.scalar_by_method_result
            .entry((method, result))
            .or_default()
            .push(idx);
        self.scalar_by_receiver.entry(receiver).or_default().push(idx);
        Ok(Assert::New)
    }

    /// Look up the scalar result of a method application, if defined.
    ///
    /// Resolves through the nested `(method, receiver)` application index:
    /// allocation-free for both the zero-argument common case and
    /// applications with arguments.
    pub fn scalar_result(&self, method: Oid, receiver: Oid, args: &[Oid]) -> Option<Oid> {
        self.scalar_app
            .get(method, receiver, args)
            .map(|i| self.scalar[i].result)
    }

    /// The dense-vector position of the scalar fact for `(method, receiver,
    /// args)`, if defined.  Positions are assigned in assertion order and
    /// stable while no scalar fact is retracted, so they double as generation
    /// stamps: `index >= k` means "asserted at or after watermark `k`".
    pub fn scalar_index(&self, method: Oid, receiver: Oid, args: &[Oid]) -> Option<usize> {
        self.scalar_app.get(method, receiver, args)
    }

    /// The scalar fact stored at dense-vector position `idx`.
    pub fn scalar_fact_at(&self, idx: usize) -> &ScalarFact {
        &self.scalar[idx]
    }

    /// All scalar facts for the compound `(method, receiver)` key — every
    /// argument tuple the method is defined for on this receiver.
    pub fn scalar_facts_of_method_receiver(
        &self,
        method: Oid,
        receiver: Oid,
    ) -> impl Iterator<Item = &ScalarFact> + '_ {
        self.scalar_app
            .indices_of(method, receiver)
            .map(move |i| &self.scalar[i])
    }

    /// All scalar facts for a method.
    pub fn scalar_facts_of_method(&self, method: Oid) -> impl Iterator<Item = &ScalarFact> + '_ {
        self.scalar_by_method
            .get(&method)
            .into_iter()
            .flatten()
            .map(move |&i| &self.scalar[i])
    }

    /// All scalar facts for a method with a given result.
    pub fn scalar_facts_with_result(&self, method: Oid, result: Oid) -> impl Iterator<Item = &ScalarFact> + '_ {
        self.scalar_by_method_result
            .get(&(method, result))
            .into_iter()
            .flatten()
            .map(move |&i| &self.scalar[i])
    }

    /// All scalar facts whose receiver is `receiver`.
    pub fn scalar_facts_of_receiver(&self, receiver: Oid) -> impl Iterator<Item = &ScalarFact> + '_ {
        self.scalar_by_receiver
            .get(&receiver)
            .into_iter()
            .flatten()
            .map(move |&i| &self.scalar[i])
    }

    /// Every scalar fact.
    pub fn scalar_facts(&self) -> impl Iterator<Item = &ScalarFact> + '_ {
        self.scalar.iter()
    }

    /// Number of scalar facts.
    pub fn num_scalar(&self) -> usize {
        self.scalar.len()
    }

    /// Retract the scalar fact for `(method, receiver, args)`, if present.
    /// Returns the result the application had.
    ///
    /// Retraction is an extension beyond the paper (bottom-up evaluation of
    /// deductive rules only ever adds facts); it exists for the production /
    /// active-rule layer (`pathlog-reactive`) and for the object store's
    /// update operations.
    pub fn retract_scalar(&mut self, method: Oid, receiver: Oid, args: &[Oid]) -> Option<Oid> {
        let idx = self.scalar_app.remove(method, receiver, args)?;
        let fact = self.scalar.swap_remove(idx);
        remove_index(&mut self.scalar_by_method, &fact.method, idx);
        remove_index(&mut self.scalar_by_method_result, &(fact.method, fact.result), idx);
        remove_index(&mut self.scalar_by_receiver, &fact.receiver, idx);
        // `swap_remove` moved the previously-last fact (if any) into `idx`;
        // re-point every index entry that referred to its old position.
        let old = self.scalar.len();
        if idx < old {
            let moved = self.scalar[idx].clone();
            self.scalar_app.insert(moved.method, moved.receiver, &moved.args, idx);
            replace_index(&mut self.scalar_by_method, &moved.method, old, idx);
            replace_index(
                &mut self.scalar_by_method_result,
                &(moved.method, moved.result),
                old,
                idx,
            );
            replace_index(&mut self.scalar_by_receiver, &moved.receiver, old, idx);
        }
        Some(fact.result)
    }

    // -- set-valued --------------------------------------------------------

    /// Assert `member ∈ I_->>(method)(receiver, args)`.
    pub fn assert_set_member(&mut self, method: Oid, receiver: Oid, args: &[Oid], member: Oid) -> Assert {
        let idx = match self.set_app.get(method, receiver, args) {
            Some(idx) => idx,
            None => {
                let idx = self.set.len();
                self.set.push(SetFact {
                    method,
                    receiver,
                    args: args.into(),
                    members: BTreeSet::new(),
                });
                self.set_app.insert(method, receiver, args, idx);
                self.set_by_method.entry(method).or_default().push(idx);
                self.set_by_receiver.entry(receiver).or_default().push(idx);
                idx
            }
        };
        if self.set[idx].members.insert(member) {
            self.set_by_method_member.entry((method, member)).or_default().push(idx);
            self.set_member_count += 1;
            self.set_log.push((idx as u32, member));
            Assert::New
        } else {
            Assert::Unchanged
        }
    }

    /// Declare an (initially empty) set-valued application, so that
    /// `set_result` reports it as defined.  Used when loading data where a
    /// set attribute exists but has no members.
    pub fn declare_set(&mut self, method: Oid, receiver: Oid, args: &[Oid]) {
        if self.set_app.get(method, receiver, args).is_some() {
            return;
        }
        let idx = self.set.len();
        self.set.push(SetFact {
            method,
            receiver,
            args: args.into(),
            members: BTreeSet::new(),
        });
        self.set_app.insert(method, receiver, args, idx);
        self.set_by_method.entry(method).or_default().push(idx);
        self.set_by_receiver.entry(receiver).or_default().push(idx);
    }

    /// Look up the member set of a set-valued application, if defined.
    ///
    /// Resolves through the nested `(method, receiver)` application index:
    /// allocation-free for both the zero-argument common case and
    /// applications with arguments.
    pub fn set_result(&self, method: Oid, receiver: Oid, args: &[Oid]) -> Option<&BTreeSet<Oid>> {
        self.set_app.get(method, receiver, args).map(|i| &self.set[i].members)
    }

    /// The dense-vector position of the set application for `(method,
    /// receiver, args)`, if defined.  Used with
    /// [`Facts::set_members_since`] to identify applications in delta
    /// slices.
    pub fn set_index(&self, method: Oid, receiver: Oid, args: &[Oid]) -> Option<usize> {
        self.set_app.get(method, receiver, args)
    }

    /// The set application stored at dense-vector position `idx`.
    pub fn set_fact_at(&self, idx: usize) -> &SetFact {
        &self.set[idx]
    }

    /// All set applications for the compound `(method, receiver)` key —
    /// every argument tuple the method is defined for on this receiver.
    pub fn set_facts_of_method_receiver(&self, method: Oid, receiver: Oid) -> impl Iterator<Item = &SetFact> + '_ {
        self.set_app.indices_of(method, receiver).map(move |i| &self.set[i])
    }

    /// Number of set-member insertions recorded so far — the current
    /// watermark for [`Facts::set_members_since`].
    pub fn num_set_member_inserts(&self) -> usize {
        self.set_log.len()
    }

    /// The scalar facts in dense positions `[lo, hi)` — a snapshot-window
    /// slice.  Both bounds are clamped to the table, so a window captured
    /// before later growth (or beyond it) degrades to an empty/shorter slice
    /// instead of panicking.  Yields `(position, fact)` pairs in assertion
    /// order; O(window).
    pub fn scalar_facts_in(&self, lo: usize, hi: usize) -> impl Iterator<Item = (usize, &ScalarFact)> + '_ {
        let hi = hi.min(self.scalar.len());
        let lo = lo.min(hi);
        self.scalar[lo..hi].iter().enumerate().map(move |(i, f)| (lo + i, f))
    }

    /// The set members inserted in the log window `[lo, hi)`, as
    /// `(application index, member)` pairs in insertion order — the bounded
    /// counterpart of [`Facts::set_members_since`] used by snapshot-window
    /// evaluation, where facts asserted *after* the window's upper watermark
    /// belong to the next window and must not leak into this one.
    pub fn set_members_in(&self, lo: usize, hi: usize) -> impl Iterator<Item = (usize, Oid)> + '_ {
        let hi = hi.min(self.set_log.len());
        let lo = lo.min(hi);
        self.set_log[lo..hi].iter().map(|&(idx, member)| (idx as usize, member))
    }

    /// The set members inserted at or after watermark `mark`, as
    /// `(application index, member)` pairs in insertion order.  O(delta):
    /// a slice of the append-only insertion log.  Only meaningful across a
    /// span without retractions (see the module docs).
    pub fn set_members_since(&self, mark: usize) -> impl Iterator<Item = (usize, Oid)> + '_ {
        self.set_log[mark.min(self.set_log.len())..]
            .iter()
            .map(|&(idx, member)| (idx as usize, member))
    }

    /// All set facts for a method.
    pub fn set_facts_of_method(&self, method: Oid) -> impl Iterator<Item = &SetFact> + '_ {
        self.set_by_method
            .get(&method)
            .into_iter()
            .flatten()
            .map(move |&i| &self.set[i])
    }

    /// All set facts (for a method) that contain `member`.
    pub fn set_facts_containing(&self, method: Oid, member: Oid) -> impl Iterator<Item = &SetFact> + '_ {
        self.set_by_method_member
            .get(&(method, member))
            .into_iter()
            .flatten()
            .map(move |&i| &self.set[i])
    }

    /// All set facts whose receiver is `receiver`.
    pub fn set_facts_of_receiver(&self, receiver: Oid) -> impl Iterator<Item = &SetFact> + '_ {
        self.set_by_receiver
            .get(&receiver)
            .into_iter()
            .flatten()
            .map(move |&i| &self.set[i])
    }

    /// Every set fact.
    pub fn set_facts(&self) -> impl Iterator<Item = &SetFact> + '_ {
        self.set.iter()
    }

    /// Number of set-valued applications (not members).
    pub fn num_set_applications(&self) -> usize {
        self.set.len()
    }

    /// Total number of set members across all applications.
    pub fn num_set_members(&self) -> usize {
        self.set_member_count
    }

    /// Retract `member` from `I_->>(method)(receiver, args)`.  Returns `true`
    /// if the member was present.  The application itself stays defined
    /// (possibly empty), mirroring [`Facts::declare_set`].
    pub fn retract_set_member(&mut self, method: Oid, receiver: Oid, args: &[Oid], member: Oid) -> bool {
        let Some(idx) = self.set_app.get(method, receiver, args) else {
            return false;
        };
        if !self.set[idx].members.remove(&member) {
            return false;
        }
        self.set_member_count -= 1;
        remove_index(&mut self.set_by_method_member, &(method, member), idx);
        true
    }
}

/// Remove one occurrence of `idx` from the posting list under `key`.
fn remove_index<K: std::hash::Hash + Eq>(index: &mut HashMap<K, Vec<usize>>, key: &K, idx: usize) {
    if let Some(list) = index.get_mut(key) {
        if let Some(pos) = list.iter().position(|&i| i == idx) {
            list.swap_remove(pos);
        }
        if list.is_empty() {
            index.remove(key);
        }
    }
}

/// Re-point one occurrence of `old` to `new` in the posting list under `key`.
fn replace_index<K: std::hash::Hash + Eq>(index: &mut HashMap<K, Vec<usize>>, key: &K, old: usize, new: usize) {
    if let Some(list) = index.get_mut(key) {
        if let Some(pos) = list.iter().position(|&i| i == old) {
            list[pos] = new;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(i: u32) -> Oid {
        Oid(i)
    }

    #[test]
    fn scalar_assert_and_lookup() {
        let mut f = Facts::new();
        assert!(f.assert_scalar(o(1), o(10), &[], o(20)).unwrap().is_new());
        assert!(!f.assert_scalar(o(1), o(10), &[], o(20)).unwrap().is_new());
        assert_eq!(f.scalar_result(o(1), o(10), &[]), Some(o(20)));
        assert_eq!(f.scalar_result(o(1), o(11), &[]), None);
        assert_eq!(f.num_scalar(), 1);
    }

    #[test]
    fn scalar_conflict_is_an_error() {
        let mut f = Facts::new();
        f.assert_scalar(o(1), o(10), &[], o(20)).unwrap();
        assert!(f.assert_scalar(o(1), o(10), &[], o(21)).is_err());
    }

    #[test]
    fn scalar_args_distinguish_applications() {
        let mut f = Facts::new();
        // john.salary@(1993) and john.salary@(1994) are different applications.
        f.assert_scalar(o(1), o(10), &[o(1993)], o(50)).unwrap();
        f.assert_scalar(o(1), o(10), &[o(1994)], o(60)).unwrap();
        assert_eq!(f.scalar_result(o(1), o(10), &[o(1993)]), Some(o(50)));
        assert_eq!(f.scalar_result(o(1), o(10), &[o(1994)]), Some(o(60)));
        assert_eq!(f.scalar_result(o(1), o(10), &[]), None);
    }

    #[test]
    fn set_assert_and_lookup() {
        let mut f = Facts::new();
        assert!(f.assert_set_member(o(2), o(10), &[], o(30)).is_new());
        assert!(f.assert_set_member(o(2), o(10), &[], o(31)).is_new());
        assert!(!f.assert_set_member(o(2), o(10), &[], o(30)).is_new());
        let members = f.set_result(o(2), o(10), &[]).unwrap();
        assert_eq!(members.len(), 2);
        assert!(members.contains(&o(30)));
        assert_eq!(f.num_set_applications(), 1);
        assert_eq!(f.num_set_members(), 2);
    }

    #[test]
    fn declared_empty_set_is_defined() {
        let mut f = Facts::new();
        assert_eq!(f.set_result(o(2), o(10), &[]), None);
        f.declare_set(o(2), o(10), &[]);
        assert_eq!(f.set_result(o(2), o(10), &[]).map(|s| s.len()), Some(0));
        // declaring again is a no-op
        f.declare_set(o(2), o(10), &[]);
        assert_eq!(f.num_set_applications(), 1);
    }

    #[test]
    fn method_indexes() {
        let mut f = Facts::new();
        f.assert_scalar(o(1), o(10), &[], o(20)).unwrap();
        f.assert_scalar(o(1), o(11), &[], o(20)).unwrap();
        f.assert_scalar(o(1), o(12), &[], o(21)).unwrap();
        f.assert_scalar(o(9), o(10), &[], o(20)).unwrap();
        assert_eq!(f.scalar_facts_of_method(o(1)).count(), 3);
        assert_eq!(f.scalar_facts_with_result(o(1), o(20)).count(), 2);
        assert_eq!(f.scalar_facts_of_receiver(o(10)).count(), 2);
        assert_eq!(f.scalar_facts().count(), 4);

        f.assert_set_member(o(2), o(10), &[], o(30));
        f.assert_set_member(o(2), o(11), &[], o(30));
        f.assert_set_member(o(2), o(11), &[], o(31));
        assert_eq!(f.set_facts_of_method(o(2)).count(), 2);
        assert_eq!(f.set_facts_containing(o(2), o(30)).count(), 2);
        assert_eq!(f.set_facts_containing(o(2), o(31)).count(), 1);
        assert_eq!(f.set_facts_of_receiver(o(11)).count(), 1);
        assert_eq!(f.set_facts().count(), 2);
    }

    #[test]
    fn compound_method_receiver_index_spans_argument_tuples() {
        let mut f = Facts::new();
        // Three scalar applications of method 1 on receiver 10 with distinct
        // argument tuples, plus noise on other keys.
        f.assert_scalar(o(1), o(10), &[], o(20)).unwrap();
        f.assert_scalar(o(1), o(10), &[o(1993)], o(21)).unwrap();
        f.assert_scalar(o(1), o(10), &[o(1994)], o(22)).unwrap();
        f.assert_scalar(o(1), o(11), &[], o(23)).unwrap();
        f.assert_scalar(o(2), o(10), &[], o(24)).unwrap();
        let results: BTreeSet<Oid> = f
            .scalar_facts_of_method_receiver(o(1), o(10))
            .map(|s| s.result)
            .collect();
        assert_eq!(results, [o(20), o(21), o(22)].into_iter().collect());
        assert_eq!(f.scalar_facts_of_method_receiver(o(1), o(11)).count(), 1);
        assert_eq!(f.scalar_facts_of_method_receiver(o(9), o(10)).count(), 0);

        f.assert_set_member(o(3), o(10), &[], o(30));
        f.assert_set_member(o(3), o(10), &[o(7)], o(31));
        f.assert_set_member(o(3), o(11), &[], o(32));
        assert_eq!(f.set_facts_of_method_receiver(o(3), o(10)).count(), 2);
        assert_eq!(f.set_facts_of_method_receiver(o(3), o(12)).count(), 0);
    }

    #[test]
    fn scalar_indices_are_insertion_ordered_generation_stamps() {
        let mut f = Facts::new();
        f.assert_scalar(o(1), o(10), &[], o(20)).unwrap();
        let mark = f.num_scalar();
        f.assert_scalar(o(1), o(11), &[], o(21)).unwrap();
        f.assert_scalar(o(2), o(10), &[o(5)], o(22)).unwrap();
        assert_eq!(f.scalar_index(o(1), o(10), &[]), Some(0));
        assert!(f.scalar_index(o(1), o(11), &[]).unwrap() >= mark);
        assert!(f.scalar_index(o(2), o(10), &[o(5)]).unwrap() >= mark);
        assert_eq!(f.scalar_index(o(2), o(10), &[]), None);
        // The slice [mark..] is exactly the facts asserted after the mark.
        let since: Vec<Oid> = (mark..f.num_scalar()).map(|i| f.scalar_fact_at(i).result).collect();
        assert_eq!(since, vec![o(21), o(22)]);
    }

    #[test]
    fn set_member_log_yields_delta_slices() {
        let mut f = Facts::new();
        f.assert_set_member(o(2), o(10), &[], o(30));
        f.assert_set_member(o(2), o(10), &[], o(31));
        let mark = f.num_set_member_inserts();
        assert_eq!(mark, 2);
        // Re-asserting an existing member must not grow the log.
        f.assert_set_member(o(2), o(10), &[], o(30));
        assert_eq!(f.num_set_member_inserts(), mark);
        f.assert_set_member(o(2), o(11), &[], o(32));
        f.assert_set_member(o(4), o(10), &[o(7)], o(33));
        let delta: Vec<(Oid, Oid, Oid)> = f
            .set_members_since(mark)
            .map(|(idx, member)| {
                let fact = f.set_fact_at(idx);
                (fact.method, fact.receiver, member)
            })
            .collect();
        assert_eq!(delta, vec![(o(2), o(11), o(32)), (o(4), o(10), o(33))]);
        // A mark beyond the log is an empty slice, not a panic.
        assert_eq!(f.set_members_since(1_000).count(), 0);
        assert_eq!(f.set_members_since(f.num_set_member_inserts()).count(), 0);
    }

    #[test]
    fn bounded_window_slices_exclude_later_entries() {
        let mut f = Facts::new();
        f.assert_scalar(o(1), o(10), &[], o(20)).unwrap();
        f.assert_set_member(o(2), o(10), &[], o(30));
        let lo_scalar = f.num_scalar();
        let lo_members = f.num_set_member_inserts();
        f.assert_scalar(o(1), o(11), &[], o(21)).unwrap();
        f.assert_set_member(o(2), o(11), &[], o(31));
        let hi_scalar = f.num_scalar();
        let hi_members = f.num_set_member_inserts();
        // Entries past the upper watermark belong to the next window.
        f.assert_scalar(o(1), o(12), &[], o(22)).unwrap();
        f.assert_set_member(o(2), o(12), &[], o(32));

        let scalars: Vec<(usize, Oid)> = f
            .scalar_facts_in(lo_scalar, hi_scalar)
            .map(|(i, fact)| (i, fact.receiver))
            .collect();
        assert_eq!(scalars, vec![(1, o(11))]);
        let members: Vec<Oid> = f.set_members_in(lo_members, hi_members).map(|(_, m)| m).collect();
        assert_eq!(members, vec![o(31)]);
        // Clamped bounds degrade to empty slices instead of panicking.
        assert_eq!(f.scalar_facts_in(10, 100).count(), 0);
        assert_eq!(f.set_members_in(5, 2).count(), 0);
        assert_eq!(f.scalar_facts_in(0, f.num_scalar()).count(), 3);
    }

    #[test]
    fn retract_scalar_removes_the_fact_and_reports_its_result() {
        let mut f = Facts::new();
        f.assert_scalar(o(1), o(10), &[], o(20)).unwrap();
        f.assert_scalar(o(1), o(11), &[], o(21)).unwrap();
        assert_eq!(f.retract_scalar(o(1), o(10), &[]), Some(o(20)));
        assert_eq!(f.retract_scalar(o(1), o(10), &[]), None, "already gone");
        assert_eq!(f.scalar_result(o(1), o(10), &[]), None);
        assert_eq!(f.scalar_result(o(1), o(11), &[]), Some(o(21)));
        assert_eq!(f.num_scalar(), 1);
        // The fact can now be re-asserted with a different result.
        f.assert_scalar(o(1), o(10), &[], o(99)).unwrap();
        assert_eq!(f.scalar_result(o(1), o(10), &[]), Some(o(99)));
    }

    #[test]
    fn retract_scalar_keeps_every_index_consistent_after_the_swap() {
        let mut f = Facts::new();
        // Three facts; retracting the first forces the last to move into its slot.
        f.assert_scalar(o(1), o(10), &[], o(20)).unwrap();
        f.assert_scalar(o(1), o(11), &[], o(20)).unwrap();
        f.assert_scalar(o(3), o(12), &[o(7)], o(22)).unwrap();
        assert_eq!(f.retract_scalar(o(1), o(10), &[]), Some(o(20)));
        // the moved fact is still reachable through every index
        assert_eq!(f.scalar_result(o(3), o(12), &[o(7)]), Some(o(22)));
        assert_eq!(f.scalar_facts_of_method(o(3)).count(), 1);
        assert_eq!(f.scalar_facts_with_result(o(3), o(22)).count(), 1);
        assert_eq!(f.scalar_facts_of_receiver(o(12)).count(), 1);
        assert_eq!(f.scalar_facts_of_method(o(1)).count(), 1);
        assert_eq!(f.scalar_facts_with_result(o(1), o(20)).count(), 1);
        assert_eq!(f.scalar_facts_of_receiver(o(10)).count(), 0);
        assert_eq!(f.scalar_facts().count(), 2);
    }

    #[test]
    fn retract_set_member_removes_only_that_member() {
        let mut f = Facts::new();
        f.assert_set_member(o(2), o(10), &[], o(30));
        f.assert_set_member(o(2), o(10), &[], o(31));
        assert!(f.retract_set_member(o(2), o(10), &[], o(30)));
        assert!(!f.retract_set_member(o(2), o(10), &[], o(30)), "already gone");
        assert!(!f.retract_set_member(o(2), o(99), &[], o(30)), "undefined application");
        assert_eq!(f.set_result(o(2), o(10), &[]).unwrap().len(), 1);
        assert_eq!(f.num_set_members(), 1);
        assert_eq!(f.set_facts_containing(o(2), o(30)).count(), 0);
        assert_eq!(f.set_facts_containing(o(2), o(31)).count(), 1);
        // The application stays defined even when it becomes empty.
        assert!(f.retract_set_member(o(2), o(10), &[], o(31)));
        assert_eq!(f.set_result(o(2), o(10), &[]).map(|s| s.len()), Some(0));
    }
}
