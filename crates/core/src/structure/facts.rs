//! Method fact tables — the interpretations `I_->` (scalar methods) and
//! `I_->>` (set-valued methods) of a semantic structure.
//!
//! A scalar fact states `I_->(method)(receiver, args...) = result`; a set
//! fact states `member ∈ I_->>(method)(receiver, args...)`.
//!
//! # Columnar layout
//!
//! Facts are stored column-wise, grouped per `(method, receiver)` key:
//! each group holds parallel columns (argument tuples in a flattened
//! `Oid` column with an offset table, results, member runs) with rows kept
//! **sorted by argument tuple**.  The group columns sit behind an `Arc`, so
//! cloning a `Structure` (snapshot windows, reactive simulations) bumps a
//! reference count per group and copies nothing; the first mutation of a
//! group after a clone detaches just that group (copy-on-write).  Point
//! lookups resolve with one hash probe to the group plus a binary search over
//! its argument column — allocation-free, like the nested application index
//! this layout replaces.  Set members are [`OidRun`] columns: sorted,
//! deduplicated, `Arc`-shared — the engine's factorized answer DAGs
//! ([`crate::semantics::factorized`]) reference them zero-copy.
//!
//! Iteration hands out [`ScalarFactView`]/[`SetFactView`] values — `Copy`
//! structs of borrowed columns — in the exact orders the previous
//! row-oriented backing produced: global enumeration follows assertion
//! order (through the dense slot/application tables), per-`(method,
//! receiver)` enumeration follows argument-tuple order (zero-argument row
//! first), and secondary indexes (`by_method`, `by_receiver`,
//! `by_method_result`, `by_method_member`) keep posting lists in assertion
//! order.  Canonical dumps and deterministic enumeration downstream are
//! byte-identical to the row backend (property-tested).
//!
//! Two properties of the storage are load-bearing for the engine's
//! semi-naive evaluation (see [`crate::semantics::delta`]):
//!
//! * **insertion order**: scalar facts keep their dense slot position and
//!   set-member insertions are recorded in an append-only log, so "the facts
//!   added since watermark `k`" is an O(delta) slice;
//! * **allocation-free lookups**: point lookups resolve through the group
//!   table instead of building a boxed `(method, receiver, args)` key per
//!   call.
//!
//! Watermark slices are only meaningful across a span without retractions:
//! [`Facts::retract_scalar`] reorders the dense slot table (swap-remove) and
//! [`Facts::retract_set_member`] leaves the insertion log untouched.  The
//! deductive engine only ever adds facts while evaluating, so this holds for
//! every fixpoint run; the reactive layer retracts *between* runs.

use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::Arc;

use crate::error::{Error, Result};

use super::runs::OidRun;
use super::Oid;

/// A borrowed view of one stored scalar fact: `method(receiver, args...) ->
/// result`.  Cheap to copy; the argument tuple borrows the group's column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScalarFactView<'a> {
    /// The method object.
    pub method: Oid,
    /// The receiver object.
    pub receiver: Oid,
    /// The argument objects.
    pub args: &'a [Oid],
    /// The result object.
    pub result: Oid,
}

/// A borrowed view of one stored set-valued application (one per `(method,
/// receiver, args)`, holding all members).  Cheap to copy; the members
/// reference the group's `Arc`-shared run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SetFactView<'a> {
    /// The method object.
    pub method: Oid,
    /// The receiver object.
    pub receiver: Oid,
    /// The argument objects.
    pub args: &'a [Oid],
    /// The members of the result set, as a sorted run.
    pub members: &'a OidRun,
}

/// Outcome of asserting a fact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Assert {
    /// The fact was not present before.
    New,
    /// The fact was already present; nothing changed.
    Unchanged,
}

impl Assert {
    /// `true` if the assertion added new information.
    pub fn is_new(self) -> bool {
        matches!(self, Assert::New)
    }
}

/// A flattened column of argument tuples: all tuples concatenated in
/// `flat`, with `offsets[row]..offsets[row + 1]` delimiting row `row`.
/// Rows are kept sorted by tuple (lexicographic slice order, so the
/// zero-argument tuple sorts first), which makes point lookups a binary
/// search and per-group enumeration deterministic without sorting.
#[derive(Debug, Clone)]
struct ArgsCol {
    flat: Vec<Oid>,
    offsets: Vec<u32>,
}

impl ArgsCol {
    fn new() -> Self {
        ArgsCol {
            flat: Vec::new(),
            offsets: vec![0],
        }
    }

    fn rows(&self) -> usize {
        self.offsets.len() - 1
    }

    fn get(&self, row: usize) -> &[Oid] {
        &self.flat[self.offsets[row] as usize..self.offsets[row + 1] as usize]
    }

    /// Binary search for the row holding `args`: `Ok(row)` if present,
    /// `Err(insertion_row)` otherwise.
    fn find(&self, args: &[Oid]) -> std::result::Result<usize, usize> {
        let (mut lo, mut hi) = (0, self.rows());
        while lo < hi {
            let mid = (lo + hi) / 2;
            match self.get(mid).cmp(args) {
                Ordering::Less => lo = mid + 1,
                Ordering::Greater => hi = mid,
                Ordering::Equal => return Ok(mid),
            }
        }
        Err(lo)
    }

    fn insert(&mut self, row: usize, args: &[Oid]) {
        let at = self.offsets[row] as usize;
        self.flat.splice(at..at, args.iter().copied());
        let len = args.len() as u32;
        self.offsets.insert(row + 1, self.offsets[row] + len);
        for off in &mut self.offsets[row + 2..] {
            *off += len;
        }
    }

    fn remove(&mut self, row: usize) {
        let lo = self.offsets[row] as usize;
        let hi = self.offsets[row + 1] as usize;
        self.flat.drain(lo..hi);
        let len = (hi - lo) as u32;
        self.offsets.remove(row + 1);
        for off in &mut self.offsets[row + 1..] {
            *off -= len;
        }
    }
}

/// The columns of one scalar `(method, receiver)` group, rows sorted by
/// argument tuple.  `slots[row]` is the row's dense global slot (assertion
/// order), kept in sync with [`Facts::scalar_slots`].
#[derive(Debug, Clone)]
struct ScalarCols {
    args: ArgsCol,
    results: Vec<Oid>,
    slots: Vec<u32>,
}

impl ScalarCols {
    fn new() -> Self {
        ScalarCols {
            args: ArgsCol::new(),
            results: Vec::new(),
            slots: Vec::new(),
        }
    }
}

#[derive(Debug, Clone)]
struct ScalarGroup {
    method: Oid,
    receiver: Oid,
    cols: Arc<ScalarCols>,
}

/// The columns of one set-valued `(method, receiver)` group, rows sorted by
/// argument tuple.  `apps[row]` is the row's dense global application index
/// (creation order), kept in sync with [`Facts::set_apps`].
#[derive(Debug, Clone)]
struct SetCols {
    args: ArgsCol,
    members: Vec<OidRun>,
    apps: Vec<u32>,
}

impl SetCols {
    fn new() -> Self {
        SetCols {
            args: ArgsCol::new(),
            members: Vec::new(),
            apps: Vec::new(),
        }
    }
}

#[derive(Debug, Clone)]
struct SetGroup {
    method: Oid,
    receiver: Oid,
    cols: Arc<SetCols>,
}

/// The fact tables of a structure.
#[derive(Debug, Default, Clone)]
pub struct Facts {
    scalar_groups: Vec<ScalarGroup>,
    scalar_group_of: HashMap<(Oid, Oid), u32>,
    /// Dense slot table: `slot -> (group, row)`, in assertion order.  Slot
    /// numbers double as generation stamps (see [`Facts::scalar_index`]).
    scalar_slots: Vec<(u32, u32)>,
    scalar_by_method: HashMap<Oid, Vec<u32>>,
    scalar_by_method_result: HashMap<(Oid, Oid), Vec<u32>>,
    scalar_by_receiver: HashMap<Oid, Vec<u32>>,

    set_groups: Vec<SetGroup>,
    set_group_of: HashMap<(Oid, Oid), u32>,
    /// Dense application table: `app -> (group, row)`, in creation order.
    /// Append-only: set applications are never removed.
    set_apps: Vec<(u32, u32)>,
    set_by_method: HashMap<Oid, Vec<u32>>,
    set_by_method_member: HashMap<(Oid, Oid), Vec<u32>>,
    set_by_receiver: HashMap<Oid, Vec<u32>>,

    set_member_count: usize,
    /// Append-only insertion log of set members: `(application index,
    /// member)` in assertion order.  Backs the engine's delta slices.
    set_log: Vec<(u32, Oid)>,

    /// Monotone count of successful retractions (scalar + set member).
    /// Watermark windows captured before a retraction are invalid (the
    /// slot table reorders, the insertion log over-reports); incremental
    /// consumers compare this counter to detect the invalidation and fall
    /// back to a full pass — see [`Facts::num_retractions`].
    retractions: usize,

    /// Append-only journal of the method objects touched by every
    /// successful mutation — asserts *and* retracts, scalar and set.
    /// Unlike the fact watermarks nothing is ever removed from it, so
    /// "which method keys changed since mark `k`" stays answerable across
    /// retraction-bearing spans — see [`Facts::mutation_keys_since`].
    mutation_log: Vec<Oid>,
}

impl Facts {
    /// Empty fact tables.
    pub fn new() -> Self {
        Self::default()
    }

    // -- scalar ------------------------------------------------------------

    fn scalar_view(&self, slot: usize) -> ScalarFactView<'_> {
        let (g, row) = self.scalar_slots[slot];
        let grp = &self.scalar_groups[g as usize];
        ScalarFactView {
            method: grp.method,
            receiver: grp.receiver,
            args: grp.cols.args.get(row as usize),
            result: grp.cols.results[row as usize],
        }
    }

    /// Insert a new row into group `g` (which must not contain `args`) and
    /// register it in the slot table and the secondary indexes.
    fn scalar_insert_row(&mut self, g: u32, row: usize, args: &[Oid], result: Oid) {
        let slot = self.scalar_slots.len() as u32;
        let grp = &mut self.scalar_groups[g as usize];
        let (method, receiver) = (grp.method, grp.receiver);
        let cols = Arc::make_mut(&mut grp.cols);
        cols.args.insert(row, args);
        cols.results.insert(row, result);
        cols.slots.insert(row, slot);
        // Rows after the insertion point shifted up by one; re-point their
        // slot-table entries.
        for &s in &cols.slots[row + 1..] {
            self.scalar_slots[s as usize].1 += 1;
        }
        self.scalar_slots.push((g, row as u32));
        self.scalar_by_method.entry(method).or_default().push(slot);
        self.scalar_by_method_result
            .entry((method, result))
            .or_default()
            .push(slot);
        self.scalar_by_receiver.entry(receiver).or_default().push(slot);
        self.mutation_log.push(method);
    }

    /// Assert `I_->(method)(receiver, args) = result`.
    ///
    /// Returns an error if a *different* result is already stored for the
    /// same application: scalar methods are partial functions, so conflicting
    /// results indicate an inconsistent program.
    pub fn assert_scalar(&mut self, method: Oid, receiver: Oid, args: &[Oid], result: Oid) -> Result<Assert> {
        if let Some(&g) = self.scalar_group_of.get(&(method, receiver)) {
            match self.scalar_groups[g as usize].cols.args.find(args) {
                Ok(row) => {
                    let existing = self.scalar_groups[g as usize].cols.results[row];
                    if existing == result {
                        return Ok(Assert::Unchanged);
                    }
                    Err(Error::Other(format!(
                        "conflicting scalar results for method {:?} on receiver {:?}: {:?} vs {:?}",
                        method, receiver, existing, result
                    )))
                }
                Err(row) => {
                    self.scalar_insert_row(g, row, args, result);
                    Ok(Assert::New)
                }
            }
        } else {
            let g = self.scalar_groups.len() as u32;
            self.scalar_groups.push(ScalarGroup {
                method,
                receiver,
                cols: Arc::new(ScalarCols::new()),
            });
            self.scalar_group_of.insert((method, receiver), g);
            self.scalar_insert_row(g, 0, args, result);
            Ok(Assert::New)
        }
    }

    /// Look up the scalar result of a method application, if defined.
    ///
    /// One hash probe to the `(method, receiver)` group plus a binary search
    /// over its argument column: allocation-free for both the zero-argument
    /// common case and applications with arguments.
    pub fn scalar_result(&self, method: Oid, receiver: Oid, args: &[Oid]) -> Option<Oid> {
        let &g = self.scalar_group_of.get(&(method, receiver))?;
        let cols = &self.scalar_groups[g as usize].cols;
        let row = cols.args.find(args).ok()?;
        Some(cols.results[row])
    }

    /// The dense slot position of the scalar fact for `(method, receiver,
    /// args)`, if defined.  Positions are assigned in assertion order and
    /// stable while no scalar fact is retracted, so they double as generation
    /// stamps: `index >= k` means "asserted at or after watermark `k`".
    pub fn scalar_index(&self, method: Oid, receiver: Oid, args: &[Oid]) -> Option<usize> {
        let &g = self.scalar_group_of.get(&(method, receiver))?;
        let cols = &self.scalar_groups[g as usize].cols;
        let row = cols.args.find(args).ok()?;
        Some(cols.slots[row] as usize)
    }

    /// The scalar fact stored at dense slot position `idx`.
    pub fn scalar_fact_at(&self, idx: usize) -> ScalarFactView<'_> {
        self.scalar_view(idx)
    }

    /// All scalar facts for the compound `(method, receiver)` key — every
    /// argument tuple the method is defined for on this receiver, in
    /// argument-tuple order (zero-argument row first): a contiguous walk of
    /// the group's columns.
    pub fn scalar_facts_of_method_receiver(
        &self,
        method: Oid,
        receiver: Oid,
    ) -> impl Iterator<Item = ScalarFactView<'_>> + '_ {
        self.scalar_group_of
            .get(&(method, receiver))
            .into_iter()
            .flat_map(move |&g| {
                let grp = &self.scalar_groups[g as usize];
                (0..grp.cols.results.len()).map(move |row| ScalarFactView {
                    method: grp.method,
                    receiver: grp.receiver,
                    args: grp.cols.args.get(row),
                    result: grp.cols.results[row],
                })
            })
    }

    /// All scalar facts for a method.
    pub fn scalar_facts_of_method(&self, method: Oid) -> impl Iterator<Item = ScalarFactView<'_>> + '_ {
        self.scalar_by_method
            .get(&method)
            .into_iter()
            .flatten()
            .map(move |&i| self.scalar_view(i as usize))
    }

    /// All scalar facts for a method with a given result.
    pub fn scalar_facts_with_result(&self, method: Oid, result: Oid) -> impl Iterator<Item = ScalarFactView<'_>> + '_ {
        self.scalar_by_method_result
            .get(&(method, result))
            .into_iter()
            .flatten()
            .map(move |&i| self.scalar_view(i as usize))
    }

    /// All scalar facts whose receiver is `receiver`.
    pub fn scalar_facts_of_receiver(&self, receiver: Oid) -> impl Iterator<Item = ScalarFactView<'_>> + '_ {
        self.scalar_by_receiver
            .get(&receiver)
            .into_iter()
            .flatten()
            .map(move |&i| self.scalar_view(i as usize))
    }

    /// Every scalar fact, in assertion order.
    pub fn scalar_facts(&self) -> impl Iterator<Item = ScalarFactView<'_>> + '_ {
        (0..self.scalar_slots.len()).map(move |i| self.scalar_view(i))
    }

    /// Number of scalar facts.
    pub fn num_scalar(&self) -> usize {
        self.scalar_slots.len()
    }

    /// Retract the scalar fact for `(method, receiver, args)`, if present.
    /// Returns the result the application had.
    ///
    /// Retraction is an extension beyond the paper (bottom-up evaluation of
    /// deductive rules only ever adds facts); it exists for the production /
    /// active-rule layer (`pathlog-reactive`) and for the object store's
    /// update operations.
    pub fn retract_scalar(&mut self, method: Oid, receiver: Oid, args: &[Oid]) -> Option<Oid> {
        let &g = self.scalar_group_of.get(&(method, receiver))?;
        let row = self.scalar_groups[g as usize].cols.args.find(args).ok()?;
        let grp = &mut self.scalar_groups[g as usize];
        let cols = Arc::make_mut(&mut grp.cols);
        let slot = cols.slots[row] as usize;
        let result = cols.results[row];
        cols.args.remove(row);
        cols.results.remove(row);
        cols.slots.remove(row);
        // Rows after the removed one shifted down by one.
        for &s in &cols.slots[row..] {
            self.scalar_slots[s as usize].1 -= 1;
        }
        remove_index(&mut self.scalar_by_method, &method, slot);
        remove_index(&mut self.scalar_by_method_result, &(method, result), slot);
        remove_index(&mut self.scalar_by_receiver, &receiver, slot);
        // `swap_remove` moves the previously-last slot (if any) into `slot`;
        // re-point every index entry that referred to its old position.
        self.scalar_slots.swap_remove(slot);
        let old = self.scalar_slots.len();
        if slot < old {
            let (mg, mrow) = self.scalar_slots[slot];
            let mgrp = &mut self.scalar_groups[mg as usize];
            let (mmethod, mreceiver) = (mgrp.method, mgrp.receiver);
            let mcols = Arc::make_mut(&mut mgrp.cols);
            mcols.slots[mrow as usize] = slot as u32;
            let mresult = mcols.results[mrow as usize];
            replace_index(&mut self.scalar_by_method, &mmethod, old, slot);
            replace_index(&mut self.scalar_by_method_result, &(mmethod, mresult), old, slot);
            replace_index(&mut self.scalar_by_receiver, &mreceiver, old, slot);
        }
        self.retractions += 1;
        self.mutation_log.push(method);
        Some(result)
    }

    // -- set-valued --------------------------------------------------------

    fn set_find(&self, method: Oid, receiver: Oid, args: &[Oid]) -> Option<usize> {
        let &g = self.set_group_of.get(&(method, receiver))?;
        let cols = &self.set_groups[g as usize].cols;
        let row = cols.args.find(args).ok()?;
        Some(cols.apps[row] as usize)
    }

    /// Create the (initially empty) application row for `(method, receiver,
    /// args)` and register it; `args` must not already have a row.
    fn set_create_app(&mut self, method: Oid, receiver: Oid, args: &[Oid]) -> usize {
        let g = match self.set_group_of.get(&(method, receiver)) {
            Some(&g) => g,
            None => {
                let g = self.set_groups.len() as u32;
                self.set_groups.push(SetGroup {
                    method,
                    receiver,
                    cols: Arc::new(SetCols::new()),
                });
                self.set_group_of.insert((method, receiver), g);
                g
            }
        };
        let app = self.set_apps.len();
        let grp = &mut self.set_groups[g as usize];
        let cols = Arc::make_mut(&mut grp.cols);
        let row = cols.args.find(args).unwrap_err();
        cols.args.insert(row, args);
        cols.members.insert(row, OidRun::new());
        cols.apps.insert(row, app as u32);
        for &a in &cols.apps[row + 1..] {
            self.set_apps[a as usize].1 += 1;
        }
        self.set_apps.push((g, row as u32));
        self.set_by_method.entry(method).or_default().push(app as u32);
        self.set_by_receiver.entry(receiver).or_default().push(app as u32);
        app
    }

    /// Assert `member ∈ I_->>(method)(receiver, args)`.
    pub fn assert_set_member(&mut self, method: Oid, receiver: Oid, args: &[Oid], member: Oid) -> Assert {
        let app = match self.set_find(method, receiver, args) {
            Some(app) => app,
            None => self.set_create_app(method, receiver, args),
        };
        let (g, row) = self.set_apps[app];
        let cols = Arc::make_mut(&mut self.set_groups[g as usize].cols);
        if cols.members[row as usize].insert(member) {
            self.set_by_method_member
                .entry((method, member))
                .or_default()
                .push(app as u32);
            self.set_member_count += 1;
            self.set_log.push((app as u32, member));
            self.mutation_log.push(method);
            Assert::New
        } else {
            Assert::Unchanged
        }
    }

    /// Declare an (initially empty) set-valued application, so that
    /// `set_result` reports it as defined.  Used when loading data where a
    /// set attribute exists but has no members.
    pub fn declare_set(&mut self, method: Oid, receiver: Oid, args: &[Oid]) {
        if self.set_find(method, receiver, args).is_none() {
            self.set_create_app(method, receiver, args);
        }
    }

    /// Look up the member run of a set-valued application, if defined.
    ///
    /// One hash probe to the `(method, receiver)` group plus a binary search
    /// over its argument column; the returned run is the stored column
    /// itself (sorted, `Arc`-shared).
    pub fn set_result(&self, method: Oid, receiver: Oid, args: &[Oid]) -> Option<&OidRun> {
        let &g = self.set_group_of.get(&(method, receiver))?;
        let cols = &self.set_groups[g as usize].cols;
        let row = cols.args.find(args).ok()?;
        Some(&cols.members[row])
    }

    /// The dense application index for `(method, receiver, args)`, if
    /// defined.  Used with [`Facts::set_members_since`] to identify
    /// applications in delta slices.
    pub fn set_index(&self, method: Oid, receiver: Oid, args: &[Oid]) -> Option<usize> {
        self.set_find(method, receiver, args)
    }

    /// The set application stored at dense application index `idx`.
    pub fn set_fact_at(&self, idx: usize) -> SetFactView<'_> {
        let (g, row) = self.set_apps[idx];
        let grp = &self.set_groups[g as usize];
        SetFactView {
            method: grp.method,
            receiver: grp.receiver,
            args: grp.cols.args.get(row as usize),
            members: &grp.cols.members[row as usize],
        }
    }

    /// All set applications for the compound `(method, receiver)` key —
    /// every argument tuple the method is defined for on this receiver, in
    /// argument-tuple order (zero-argument row first): a contiguous walk of
    /// the group's columns.
    pub fn set_facts_of_method_receiver(
        &self,
        method: Oid,
        receiver: Oid,
    ) -> impl Iterator<Item = SetFactView<'_>> + '_ {
        self.set_group_of
            .get(&(method, receiver))
            .into_iter()
            .flat_map(move |&g| {
                let grp = &self.set_groups[g as usize];
                (0..grp.cols.members.len()).map(move |row| SetFactView {
                    method: grp.method,
                    receiver: grp.receiver,
                    args: grp.cols.args.get(row),
                    members: &grp.cols.members[row],
                })
            })
    }

    /// Number of set-member insertions recorded so far — the current
    /// watermark for [`Facts::set_members_since`].
    pub fn num_set_member_inserts(&self) -> usize {
        self.set_log.len()
    }

    /// The scalar facts in dense positions `[lo, hi)` — a snapshot-window
    /// slice.  Both bounds are clamped to the table, so a window captured
    /// before later growth (or beyond it) degrades to an empty/shorter slice
    /// instead of panicking.  Yields `(position, fact)` pairs in assertion
    /// order; O(window).
    pub fn scalar_facts_in(&self, lo: usize, hi: usize) -> impl Iterator<Item = (usize, ScalarFactView<'_>)> + '_ {
        let hi = hi.min(self.scalar_slots.len());
        let lo = lo.min(hi);
        (lo..hi).map(move |i| (i, self.scalar_view(i)))
    }

    /// The set members inserted in the log window `[lo, hi)`, as
    /// `(application index, member)` pairs in insertion order — the bounded
    /// counterpart of [`Facts::set_members_since`] used by snapshot-window
    /// evaluation, where facts asserted *after* the window's upper watermark
    /// belong to the next window and must not leak into this one.
    pub fn set_members_in(&self, lo: usize, hi: usize) -> impl Iterator<Item = (usize, Oid)> + '_ {
        let hi = hi.min(self.set_log.len());
        let lo = lo.min(hi);
        self.set_log[lo..hi].iter().map(|&(idx, member)| (idx as usize, member))
    }

    /// The set members inserted at or after watermark `mark`, as
    /// `(application index, member)` pairs in insertion order.  O(delta):
    /// a slice of the append-only insertion log.  Only meaningful across a
    /// span without retractions (see the module docs).
    pub fn set_members_since(&self, mark: usize) -> impl Iterator<Item = (usize, Oid)> + '_ {
        self.set_log[mark.min(self.set_log.len())..]
            .iter()
            .map(|&(idx, member)| (idx as usize, member))
    }

    /// All set facts for a method.
    pub fn set_facts_of_method(&self, method: Oid) -> impl Iterator<Item = SetFactView<'_>> + '_ {
        self.set_by_method
            .get(&method)
            .into_iter()
            .flatten()
            .map(move |&i| self.set_fact_at(i as usize))
    }

    /// All set facts (for a method) that contain `member`.
    pub fn set_facts_containing(&self, method: Oid, member: Oid) -> impl Iterator<Item = SetFactView<'_>> + '_ {
        self.set_by_method_member
            .get(&(method, member))
            .into_iter()
            .flatten()
            .map(move |&i| self.set_fact_at(i as usize))
    }

    /// All set facts whose receiver is `receiver`.
    pub fn set_facts_of_receiver(&self, receiver: Oid) -> impl Iterator<Item = SetFactView<'_>> + '_ {
        self.set_by_receiver
            .get(&receiver)
            .into_iter()
            .flatten()
            .map(move |&i| self.set_fact_at(i as usize))
    }

    /// Every set fact, in application-creation order.
    pub fn set_facts(&self) -> impl Iterator<Item = SetFactView<'_>> + '_ {
        (0..self.set_apps.len()).map(move |i| self.set_fact_at(i))
    }

    /// Number of set-valued applications (not members).
    pub fn num_set_applications(&self) -> usize {
        self.set_apps.len()
    }

    /// Total number of set members across all applications.
    pub fn num_set_members(&self) -> usize {
        self.set_member_count
    }

    /// Retract `member` from `I_->>(method)(receiver, args)`.  Returns `true`
    /// if the member was present.  The application itself stays defined
    /// (possibly empty), mirroring [`Facts::declare_set`].
    pub fn retract_set_member(&mut self, method: Oid, receiver: Oid, args: &[Oid], member: Oid) -> bool {
        let Some(app) = self.set_find(method, receiver, args) else {
            return false;
        };
        let (g, row) = self.set_apps[app];
        let cols = Arc::make_mut(&mut self.set_groups[g as usize].cols);
        if !cols.members[row as usize].remove(&member) {
            return false;
        }
        self.set_member_count -= 1;
        remove_index(&mut self.set_by_method_member, &(method, member), app);
        self.retractions += 1;
        self.mutation_log.push(method);
        true
    }

    /// Monotone count of successful retractions over the lifetime of these
    /// tables.  Unlike the fact counts this never decreases, so two
    /// snapshots of it bracket a span: equal counters mean no retraction
    /// happened in between and watermark slices over the span are sound.
    pub fn num_retractions(&self) -> usize {
        self.retractions
    }

    /// Length of the mutation journal — the current watermark for
    /// [`Facts::mutation_keys_since`].
    pub fn mutation_len(&self) -> usize {
        self.mutation_log.len()
    }

    /// The method objects touched by every successful mutation (assert or
    /// retract, scalar or set member) at or after watermark `mark`, in
    /// mutation order, with repeats.  The journal is append-only even
    /// across retractions, so — unlike the fact-count watermarks — this
    /// slice stays sound over retraction-bearing spans.  It answers "which
    /// method keys *may* have changed", not "which facts were added"; the
    /// incremental constraint checker uses it to keep constraints whose
    /// reads are disjoint from a retraction delta on their cached results.
    pub fn mutation_keys_since(&self, mark: usize) -> &[Oid] {
        &self.mutation_log[mark.min(self.mutation_log.len())..]
    }
}

/// Remove one occurrence of `idx` from the posting list under `key`.
fn remove_index<K: std::hash::Hash + Eq>(index: &mut HashMap<K, Vec<u32>>, key: &K, idx: usize) {
    if let Some(list) = index.get_mut(key) {
        if let Some(pos) = list.iter().position(|&i| i as usize == idx) {
            list.swap_remove(pos);
        }
        if list.is_empty() {
            index.remove(key);
        }
    }
}

/// Re-point one occurrence of `old` to `new` in the posting list under `key`.
fn replace_index<K: std::hash::Hash + Eq>(index: &mut HashMap<K, Vec<u32>>, key: &K, old: usize, new: usize) {
    if let Some(list) = index.get_mut(key) {
        if let Some(pos) = list.iter().position(|&i| i as usize == old) {
            list[pos] = new as u32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn o(i: u32) -> Oid {
        Oid(i)
    }

    #[test]
    fn scalar_assert_and_lookup() {
        let mut f = Facts::new();
        assert!(f.assert_scalar(o(1), o(10), &[], o(20)).unwrap().is_new());
        assert!(!f.assert_scalar(o(1), o(10), &[], o(20)).unwrap().is_new());
        assert_eq!(f.scalar_result(o(1), o(10), &[]), Some(o(20)));
        assert_eq!(f.scalar_result(o(1), o(11), &[]), None);
        assert_eq!(f.num_scalar(), 1);
    }

    #[test]
    fn mutation_journal_records_asserts_and_retracts() {
        let mut f = Facts::new();
        assert_eq!(f.mutation_len(), 0);
        f.assert_scalar(o(1), o(10), &[], o(20)).unwrap();
        f.assert_set_member(o(2), o(10), &[], o(30));
        // Duplicates change nothing and are not journaled.
        f.assert_scalar(o(1), o(10), &[], o(20)).unwrap();
        f.assert_set_member(o(2), o(10), &[], o(30));
        assert_eq!(f.mutation_keys_since(0), &[o(1), o(2)]);
        let mark = f.mutation_len();
        // Retractions append too — the journal survives them.
        assert!(f.retract_scalar(o(1), o(10), &[]).is_some());
        assert!(f.retract_set_member(o(2), o(10), &[], o(30)));
        // Failed retractions are not journaled.
        assert!(f.retract_scalar(o(1), o(10), &[]).is_none());
        assert!(!f.retract_set_member(o(2), o(10), &[], o(30)));
        assert_eq!(f.mutation_keys_since(mark), &[o(1), o(2)]);
        assert_eq!(f.num_retractions(), 2);
        // Out-of-range marks clamp instead of panicking.
        assert!(f.mutation_keys_since(999).is_empty());
    }

    #[test]
    fn scalar_conflict_is_an_error() {
        let mut f = Facts::new();
        f.assert_scalar(o(1), o(10), &[], o(20)).unwrap();
        assert!(f.assert_scalar(o(1), o(10), &[], o(21)).is_err());
    }

    #[test]
    fn scalar_args_distinguish_applications() {
        let mut f = Facts::new();
        // john.salary@(1993) and john.salary@(1994) are different applications.
        f.assert_scalar(o(1), o(10), &[o(1993)], o(50)).unwrap();
        f.assert_scalar(o(1), o(10), &[o(1994)], o(60)).unwrap();
        assert_eq!(f.scalar_result(o(1), o(10), &[o(1993)]), Some(o(50)));
        assert_eq!(f.scalar_result(o(1), o(10), &[o(1994)]), Some(o(60)));
        assert_eq!(f.scalar_result(o(1), o(10), &[]), None);
    }

    #[test]
    fn set_assert_and_lookup() {
        let mut f = Facts::new();
        assert!(f.assert_set_member(o(2), o(10), &[], o(30)).is_new());
        assert!(f.assert_set_member(o(2), o(10), &[], o(31)).is_new());
        assert!(!f.assert_set_member(o(2), o(10), &[], o(30)).is_new());
        let members = f.set_result(o(2), o(10), &[]).unwrap();
        assert_eq!(members.len(), 2);
        assert!(members.contains(&o(30)));
        assert_eq!(f.num_set_applications(), 1);
        assert_eq!(f.num_set_members(), 2);
    }

    #[test]
    fn declared_empty_set_is_defined() {
        let mut f = Facts::new();
        assert_eq!(f.set_result(o(2), o(10), &[]), None);
        f.declare_set(o(2), o(10), &[]);
        assert_eq!(f.set_result(o(2), o(10), &[]).map(|s| s.len()), Some(0));
        // declaring again is a no-op
        f.declare_set(o(2), o(10), &[]);
        assert_eq!(f.num_set_applications(), 1);
    }

    #[test]
    fn method_indexes() {
        let mut f = Facts::new();
        f.assert_scalar(o(1), o(10), &[], o(20)).unwrap();
        f.assert_scalar(o(1), o(11), &[], o(20)).unwrap();
        f.assert_scalar(o(1), o(12), &[], o(21)).unwrap();
        f.assert_scalar(o(9), o(10), &[], o(20)).unwrap();
        assert_eq!(f.scalar_facts_of_method(o(1)).count(), 3);
        assert_eq!(f.scalar_facts_with_result(o(1), o(20)).count(), 2);
        assert_eq!(f.scalar_facts_of_receiver(o(10)).count(), 2);
        assert_eq!(f.scalar_facts().count(), 4);

        f.assert_set_member(o(2), o(10), &[], o(30));
        f.assert_set_member(o(2), o(11), &[], o(30));
        f.assert_set_member(o(2), o(11), &[], o(31));
        assert_eq!(f.set_facts_of_method(o(2)).count(), 2);
        assert_eq!(f.set_facts_containing(o(2), o(30)).count(), 2);
        assert_eq!(f.set_facts_containing(o(2), o(31)).count(), 1);
        assert_eq!(f.set_facts_of_receiver(o(11)).count(), 1);
        assert_eq!(f.set_facts().count(), 2);
    }

    #[test]
    fn compound_method_receiver_index_spans_argument_tuples() {
        let mut f = Facts::new();
        // Three scalar applications of method 1 on receiver 10 with distinct
        // argument tuples, plus noise on other keys.
        f.assert_scalar(o(1), o(10), &[], o(20)).unwrap();
        f.assert_scalar(o(1), o(10), &[o(1993)], o(21)).unwrap();
        f.assert_scalar(o(1), o(10), &[o(1994)], o(22)).unwrap();
        f.assert_scalar(o(1), o(11), &[], o(23)).unwrap();
        f.assert_scalar(o(2), o(10), &[], o(24)).unwrap();
        let results: BTreeSet<Oid> = f
            .scalar_facts_of_method_receiver(o(1), o(10))
            .map(|s| s.result)
            .collect();
        assert_eq!(results, [o(20), o(21), o(22)].into_iter().collect());
        assert_eq!(f.scalar_facts_of_method_receiver(o(1), o(11)).count(), 1);
        assert_eq!(f.scalar_facts_of_method_receiver(o(9), o(10)).count(), 0);

        f.assert_set_member(o(3), o(10), &[], o(30));
        f.assert_set_member(o(3), o(10), &[o(7)], o(31));
        f.assert_set_member(o(3), o(11), &[], o(32));
        assert_eq!(f.set_facts_of_method_receiver(o(3), o(10)).count(), 2);
        assert_eq!(f.set_facts_of_method_receiver(o(3), o(12)).count(), 0);
    }

    #[test]
    fn compound_enumeration_is_zero_arg_first_then_args_order() {
        let mut f = Facts::new();
        // Asserted out of order: the columnar rows stay sorted by tuple.
        f.assert_scalar(o(1), o(10), &[o(1994)], o(22)).unwrap();
        f.assert_scalar(o(1), o(10), &[], o(20)).unwrap();
        f.assert_scalar(o(1), o(10), &[o(1993)], o(21)).unwrap();
        let results: Vec<Oid> = f
            .scalar_facts_of_method_receiver(o(1), o(10))
            .map(|s| s.result)
            .collect();
        assert_eq!(results, vec![o(20), o(21), o(22)]);
        // The slot table still reports assertion order globally.
        let global: Vec<Oid> = f.scalar_facts().map(|s| s.result).collect();
        assert_eq!(global, vec![o(22), o(20), o(21)]);
    }

    #[test]
    fn scalar_indices_are_insertion_ordered_generation_stamps() {
        let mut f = Facts::new();
        f.assert_scalar(o(1), o(10), &[], o(20)).unwrap();
        let mark = f.num_scalar();
        f.assert_scalar(o(1), o(11), &[], o(21)).unwrap();
        f.assert_scalar(o(2), o(10), &[o(5)], o(22)).unwrap();
        assert_eq!(f.scalar_index(o(1), o(10), &[]), Some(0));
        assert!(f.scalar_index(o(1), o(11), &[]).unwrap() >= mark);
        assert!(f.scalar_index(o(2), o(10), &[o(5)]).unwrap() >= mark);
        assert_eq!(f.scalar_index(o(2), o(10), &[]), None);
        // The slice [mark..] is exactly the facts asserted after the mark.
        let since: Vec<Oid> = (mark..f.num_scalar()).map(|i| f.scalar_fact_at(i).result).collect();
        assert_eq!(since, vec![o(21), o(22)]);
    }

    #[test]
    fn generation_stamps_survive_in_group_row_shifts() {
        let mut f = Facts::new();
        // The second assertion lands *before* the first in the group's
        // sorted rows ([] < [5]); the global stamps must stay in assertion
        // order regardless.
        f.assert_scalar(o(1), o(10), &[o(5)], o(20)).unwrap();
        let mark = f.num_scalar();
        f.assert_scalar(o(1), o(10), &[], o(21)).unwrap();
        assert_eq!(f.scalar_index(o(1), o(10), &[o(5)]), Some(0));
        assert_eq!(f.scalar_index(o(1), o(10), &[]), Some(mark));
        assert_eq!(f.scalar_fact_at(0).result, o(20));
        assert_eq!(f.scalar_fact_at(mark).result, o(21));
    }

    #[test]
    fn set_member_log_yields_delta_slices() {
        let mut f = Facts::new();
        f.assert_set_member(o(2), o(10), &[], o(30));
        f.assert_set_member(o(2), o(10), &[], o(31));
        let mark = f.num_set_member_inserts();
        assert_eq!(mark, 2);
        // Re-asserting an existing member must not grow the log.
        f.assert_set_member(o(2), o(10), &[], o(30));
        assert_eq!(f.num_set_member_inserts(), mark);
        f.assert_set_member(o(2), o(11), &[], o(32));
        f.assert_set_member(o(4), o(10), &[o(7)], o(33));
        let delta: Vec<(Oid, Oid, Oid)> = f
            .set_members_since(mark)
            .map(|(idx, member)| {
                let fact = f.set_fact_at(idx);
                (fact.method, fact.receiver, member)
            })
            .collect();
        assert_eq!(delta, vec![(o(2), o(11), o(32)), (o(4), o(10), o(33))]);
        // A mark beyond the log is an empty slice, not a panic.
        assert_eq!(f.set_members_since(1_000).count(), 0);
        assert_eq!(f.set_members_since(f.num_set_member_inserts()).count(), 0);
    }

    #[test]
    fn application_indices_survive_in_group_row_shifts() {
        let mut f = Facts::new();
        // Two applications in one group, the second sorting before the
        // first; the log's application indices must keep resolving to the
        // right rows after the shift.
        f.assert_set_member(o(2), o(10), &[o(7)], o(30));
        f.assert_set_member(o(2), o(10), &[], o(31));
        let delta: Vec<(Oid, Oid)> = f
            .set_members_since(0)
            .map(|(idx, member)| {
                let fact = f.set_fact_at(idx);
                (member, fact.args.first().copied().unwrap_or(o(0)))
            })
            .collect();
        assert_eq!(delta, vec![(o(30), o(7)), (o(31), o(0))]);
    }

    #[test]
    fn bounded_window_slices_exclude_later_entries() {
        let mut f = Facts::new();
        f.assert_scalar(o(1), o(10), &[], o(20)).unwrap();
        f.assert_set_member(o(2), o(10), &[], o(30));
        let lo_scalar = f.num_scalar();
        let lo_members = f.num_set_member_inserts();
        f.assert_scalar(o(1), o(11), &[], o(21)).unwrap();
        f.assert_set_member(o(2), o(11), &[], o(31));
        let hi_scalar = f.num_scalar();
        let hi_members = f.num_set_member_inserts();
        // Entries past the upper watermark belong to the next window.
        f.assert_scalar(o(1), o(12), &[], o(22)).unwrap();
        f.assert_set_member(o(2), o(12), &[], o(32));

        let scalars: Vec<(usize, Oid)> = f
            .scalar_facts_in(lo_scalar, hi_scalar)
            .map(|(i, fact)| (i, fact.receiver))
            .collect();
        assert_eq!(scalars, vec![(1, o(11))]);
        let members: Vec<Oid> = f.set_members_in(lo_members, hi_members).map(|(_, m)| m).collect();
        assert_eq!(members, vec![o(31)]);
        // Clamped bounds degrade to empty slices instead of panicking.
        assert_eq!(f.scalar_facts_in(10, 100).count(), 0);
        assert_eq!(f.set_members_in(5, 2).count(), 0);
        assert_eq!(f.scalar_facts_in(0, f.num_scalar()).count(), 3);
    }

    #[test]
    fn retract_scalar_removes_the_fact_and_reports_its_result() {
        let mut f = Facts::new();
        f.assert_scalar(o(1), o(10), &[], o(20)).unwrap();
        f.assert_scalar(o(1), o(11), &[], o(21)).unwrap();
        assert_eq!(f.retract_scalar(o(1), o(10), &[]), Some(o(20)));
        assert_eq!(f.retract_scalar(o(1), o(10), &[]), None, "already gone");
        assert_eq!(f.scalar_result(o(1), o(10), &[]), None);
        assert_eq!(f.scalar_result(o(1), o(11), &[]), Some(o(21)));
        assert_eq!(f.num_scalar(), 1);
        // The fact can now be re-asserted with a different result.
        f.assert_scalar(o(1), o(10), &[], o(99)).unwrap();
        assert_eq!(f.scalar_result(o(1), o(10), &[]), Some(o(99)));
    }

    #[test]
    fn retract_scalar_keeps_every_index_consistent_after_the_swap() {
        let mut f = Facts::new();
        // Three facts; retracting the first forces the last to move into its slot.
        f.assert_scalar(o(1), o(10), &[], o(20)).unwrap();
        f.assert_scalar(o(1), o(11), &[], o(20)).unwrap();
        f.assert_scalar(o(3), o(12), &[o(7)], o(22)).unwrap();
        assert_eq!(f.retract_scalar(o(1), o(10), &[]), Some(o(20)));
        // the moved fact is still reachable through every index
        assert_eq!(f.scalar_result(o(3), o(12), &[o(7)]), Some(o(22)));
        assert_eq!(f.scalar_facts_of_method(o(3)).count(), 1);
        assert_eq!(f.scalar_facts_with_result(o(3), o(22)).count(), 1);
        assert_eq!(f.scalar_facts_of_receiver(o(12)).count(), 1);
        assert_eq!(f.scalar_facts_of_method(o(1)).count(), 1);
        assert_eq!(f.scalar_facts_with_result(o(1), o(20)).count(), 1);
        assert_eq!(f.scalar_facts_of_receiver(o(10)).count(), 0);
        assert_eq!(f.scalar_facts().count(), 2);
    }

    #[test]
    fn retract_scalar_within_one_group_keeps_the_slot_table_consistent() {
        let mut f = Facts::new();
        // Three rows in one group; retract the middle one by tuple order.
        f.assert_scalar(o(1), o(10), &[], o(20)).unwrap();
        f.assert_scalar(o(1), o(10), &[o(3)], o(21)).unwrap();
        f.assert_scalar(o(1), o(10), &[o(5)], o(22)).unwrap();
        assert_eq!(f.retract_scalar(o(1), o(10), &[o(3)]), Some(o(21)));
        assert_eq!(f.num_scalar(), 2);
        assert_eq!(f.scalar_result(o(1), o(10), &[]), Some(o(20)));
        assert_eq!(f.scalar_result(o(1), o(10), &[o(5)]), Some(o(22)));
        // Every slot resolves to a live row.
        let results: BTreeSet<Oid> = f.scalar_facts().map(|s| s.result).collect();
        assert_eq!(results, [o(20), o(22)].into_iter().collect());
        assert_eq!(f.scalar_facts_of_method_receiver(o(1), o(10)).count(), 2);
    }

    #[test]
    fn retract_set_member_removes_only_that_member() {
        let mut f = Facts::new();
        f.assert_set_member(o(2), o(10), &[], o(30));
        f.assert_set_member(o(2), o(10), &[], o(31));
        assert!(f.retract_set_member(o(2), o(10), &[], o(30)));
        assert!(!f.retract_set_member(o(2), o(10), &[], o(30)), "already gone");
        assert!(!f.retract_set_member(o(2), o(99), &[], o(30)), "undefined application");
        assert_eq!(f.set_result(o(2), o(10), &[]).unwrap().len(), 1);
        assert_eq!(f.num_set_members(), 1);
        assert_eq!(f.set_facts_containing(o(2), o(30)).count(), 0);
        assert_eq!(f.set_facts_containing(o(2), o(31)).count(), 1);
        // The application stays defined even when it becomes empty.
        assert!(f.retract_set_member(o(2), o(10), &[], o(31)));
        assert_eq!(f.set_result(o(2), o(10), &[]).map(|s| s.len()), Some(0));
    }

    #[test]
    fn cloned_tables_share_group_columns_until_mutated() {
        let mut f = Facts::new();
        f.assert_set_member(o(2), o(10), &[], o(30));
        f.assert_scalar(o(1), o(10), &[], o(20)).unwrap();
        let snap = f.clone();
        assert!(Arc::ptr_eq(&f.set_groups[0].cols, &snap.set_groups[0].cols));
        assert!(Arc::ptr_eq(&f.scalar_groups[0].cols, &snap.scalar_groups[0].cols));
        // Mutating one side detaches only the touched group.
        f.assert_set_member(o(2), o(10), &[], o(31));
        assert!(!Arc::ptr_eq(&f.set_groups[0].cols, &snap.set_groups[0].cols));
        assert!(Arc::ptr_eq(&f.scalar_groups[0].cols, &snap.scalar_groups[0].cols));
        assert_eq!(snap.set_result(o(2), o(10), &[]).unwrap().len(), 1);
        assert_eq!(f.set_result(o(2), o(10), &[]).unwrap().len(), 2);
    }

    #[test]
    fn retraction_counter_is_monotone_and_counts_only_successes() {
        let mut f = Facts::new();
        f.assert_scalar(o(1), o(10), &[], o(20)).unwrap();
        f.assert_set_member(o(2), o(10), &[], o(30));
        assert_eq!(f.num_retractions(), 0, "assertions do not count");
        assert_eq!(f.retract_scalar(o(1), o(10), &[]), Some(o(20)));
        assert_eq!(f.num_retractions(), 1);
        assert_eq!(f.retract_scalar(o(1), o(10), &[]), None, "no-op misses do not count");
        assert!(!f.retract_set_member(o(2), o(10), &[], o(99)));
        assert_eq!(f.num_retractions(), 1);
        assert!(f.retract_set_member(o(2), o(10), &[], o(30)));
        assert_eq!(f.num_retractions(), 2, "monotone even though the tables shrank");
    }
}
