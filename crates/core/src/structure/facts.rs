//! Method fact tables — the interpretations `I_->` (scalar methods) and
//! `I_->>` (set-valued methods) of a semantic structure.
//!
//! A scalar fact states `I_->(method)(receiver, args...) = result`; a set
//! fact states `member ∈ I_->>(method)(receiver, args...)`.  Facts are stored
//! in dense vectors with hash indexes by key, by method, by
//! (method, result/member) and by receiver, which back the engine's matching
//! of molecules with unbound positions.

use std::collections::{BTreeSet, HashMap};

use crate::error::{Error, Result};

use super::Oid;

/// Key identifying one method application: `(method, receiver, args)`.
pub type FactKey = (Oid, Oid, Box<[Oid]>);

/// A stored scalar fact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScalarFact {
    /// The method object.
    pub method: Oid,
    /// The receiver object.
    pub receiver: Oid,
    /// The argument objects.
    pub args: Box<[Oid]>,
    /// The result object.
    pub result: Oid,
}

/// A stored set-valued fact (one per `(method, receiver, args)` application,
/// holding all members).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetFact {
    /// The method object.
    pub method: Oid,
    /// The receiver object.
    pub receiver: Oid,
    /// The argument objects.
    pub args: Box<[Oid]>,
    /// The members of the result set.
    pub members: BTreeSet<Oid>,
}

/// Outcome of asserting a fact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Assert {
    /// The fact was not present before.
    New,
    /// The fact was already present; nothing changed.
    Unchanged,
}

impl Assert {
    /// `true` if the assertion added new information.
    pub fn is_new(self) -> bool {
        matches!(self, Assert::New)
    }
}

/// The fact tables of a structure.
#[derive(Debug, Default, Clone)]
pub struct Facts {
    scalar: Vec<ScalarFact>,
    scalar_key: HashMap<FactKey, usize>,
    scalar_by_method: HashMap<Oid, Vec<usize>>,
    scalar_by_method_result: HashMap<(Oid, Oid), Vec<usize>>,
    scalar_by_receiver: HashMap<Oid, Vec<usize>>,

    set: Vec<SetFact>,
    set_key: HashMap<FactKey, usize>,
    set_by_method: HashMap<Oid, Vec<usize>>,
    set_by_method_member: HashMap<(Oid, Oid), Vec<usize>>,
    set_by_receiver: HashMap<Oid, Vec<usize>>,

    set_member_count: usize,
}

impl Facts {
    /// Empty fact tables.
    pub fn new() -> Self {
        Self::default()
    }

    // -- scalar ------------------------------------------------------------

    /// Assert `I_->(method)(receiver, args) = result`.
    ///
    /// Returns an error if a *different* result is already stored for the
    /// same application: scalar methods are partial functions, so conflicting
    /// results indicate an inconsistent program.
    pub fn assert_scalar(&mut self, method: Oid, receiver: Oid, args: &[Oid], result: Oid) -> Result<Assert> {
        let key: FactKey = (method, receiver, args.into());
        if let Some(&idx) = self.scalar_key.get(&key) {
            let existing = self.scalar[idx].result;
            if existing == result {
                return Ok(Assert::Unchanged);
            }
            return Err(Error::Other(format!(
                "conflicting scalar results for method {:?} on receiver {:?}: {:?} vs {:?}",
                method, receiver, existing, result
            )));
        }
        let idx = self.scalar.len();
        self.scalar.push(ScalarFact {
            method,
            receiver,
            args: key.2.clone(),
            result,
        });
        self.scalar_key.insert(key, idx);
        self.scalar_by_method.entry(method).or_default().push(idx);
        self.scalar_by_method_result
            .entry((method, result))
            .or_default()
            .push(idx);
        self.scalar_by_receiver.entry(receiver).or_default().push(idx);
        Ok(Assert::New)
    }

    /// Look up the scalar result of a method application, if defined.
    pub fn scalar_result(&self, method: Oid, receiver: Oid, args: &[Oid]) -> Option<Oid> {
        // Avoid allocating the boxed key for the common zero-arg case by
        // checking the per-receiver index first when it is small.
        let key: FactKey = (method, receiver, args.into());
        self.scalar_key.get(&key).map(|&i| self.scalar[i].result)
    }

    /// All scalar facts for a method.
    pub fn scalar_facts_of_method(&self, method: Oid) -> impl Iterator<Item = &ScalarFact> + '_ {
        self.scalar_by_method
            .get(&method)
            .into_iter()
            .flatten()
            .map(move |&i| &self.scalar[i])
    }

    /// All scalar facts for a method with a given result.
    pub fn scalar_facts_with_result(&self, method: Oid, result: Oid) -> impl Iterator<Item = &ScalarFact> + '_ {
        self.scalar_by_method_result
            .get(&(method, result))
            .into_iter()
            .flatten()
            .map(move |&i| &self.scalar[i])
    }

    /// All scalar facts whose receiver is `receiver`.
    pub fn scalar_facts_of_receiver(&self, receiver: Oid) -> impl Iterator<Item = &ScalarFact> + '_ {
        self.scalar_by_receiver
            .get(&receiver)
            .into_iter()
            .flatten()
            .map(move |&i| &self.scalar[i])
    }

    /// Every scalar fact.
    pub fn scalar_facts(&self) -> impl Iterator<Item = &ScalarFact> + '_ {
        self.scalar.iter()
    }

    /// Number of scalar facts.
    pub fn num_scalar(&self) -> usize {
        self.scalar.len()
    }

    /// Retract the scalar fact for `(method, receiver, args)`, if present.
    /// Returns the result the application had.
    ///
    /// Retraction is an extension beyond the paper (bottom-up evaluation of
    /// deductive rules only ever adds facts); it exists for the production /
    /// active-rule layer (`pathlog-reactive`) and for the object store's
    /// update operations.
    pub fn retract_scalar(&mut self, method: Oid, receiver: Oid, args: &[Oid]) -> Option<Oid> {
        let key: FactKey = (method, receiver, args.into());
        let idx = self.scalar_key.remove(&key)?;
        let fact = self.scalar.swap_remove(idx);
        remove_index(&mut self.scalar_by_method, &fact.method, idx);
        remove_index(&mut self.scalar_by_method_result, &(fact.method, fact.result), idx);
        remove_index(&mut self.scalar_by_receiver, &fact.receiver, idx);
        // `swap_remove` moved the previously-last fact (if any) into `idx`;
        // re-point every index entry that referred to its old position.
        let old = self.scalar.len();
        if idx < old {
            let moved = self.scalar[idx].clone();
            let moved_key: FactKey = (moved.method, moved.receiver, moved.args.clone());
            self.scalar_key.insert(moved_key, idx);
            replace_index(&mut self.scalar_by_method, &moved.method, old, idx);
            replace_index(
                &mut self.scalar_by_method_result,
                &(moved.method, moved.result),
                old,
                idx,
            );
            replace_index(&mut self.scalar_by_receiver, &moved.receiver, old, idx);
        }
        Some(fact.result)
    }

    // -- set-valued --------------------------------------------------------

    /// Assert `member ∈ I_->>(method)(receiver, args)`.
    pub fn assert_set_member(&mut self, method: Oid, receiver: Oid, args: &[Oid], member: Oid) -> Assert {
        let key: FactKey = (method, receiver, args.into());
        let idx = match self.set_key.get(&key) {
            Some(&idx) => idx,
            None => {
                let idx = self.set.len();
                self.set.push(SetFact {
                    method,
                    receiver,
                    args: key.2.clone(),
                    members: BTreeSet::new(),
                });
                self.set_key.insert(key, idx);
                self.set_by_method.entry(method).or_default().push(idx);
                self.set_by_receiver.entry(receiver).or_default().push(idx);
                idx
            }
        };
        if self.set[idx].members.insert(member) {
            self.set_by_method_member.entry((method, member)).or_default().push(idx);
            self.set_member_count += 1;
            Assert::New
        } else {
            Assert::Unchanged
        }
    }

    /// Declare an (initially empty) set-valued application, so that
    /// `set_result` reports it as defined.  Used when loading data where a
    /// set attribute exists but has no members.
    pub fn declare_set(&mut self, method: Oid, receiver: Oid, args: &[Oid]) {
        let key: FactKey = (method, receiver, args.into());
        if self.set_key.contains_key(&key) {
            return;
        }
        let idx = self.set.len();
        self.set.push(SetFact {
            method,
            receiver,
            args: key.2.clone(),
            members: BTreeSet::new(),
        });
        self.set_key.insert(key, idx);
        self.set_by_method.entry(method).or_default().push(idx);
        self.set_by_receiver.entry(receiver).or_default().push(idx);
    }

    /// Look up the member set of a set-valued application, if defined.
    pub fn set_result(&self, method: Oid, receiver: Oid, args: &[Oid]) -> Option<&BTreeSet<Oid>> {
        let key: FactKey = (method, receiver, args.into());
        self.set_key.get(&key).map(|&i| &self.set[i].members)
    }

    /// All set facts for a method.
    pub fn set_facts_of_method(&self, method: Oid) -> impl Iterator<Item = &SetFact> + '_ {
        self.set_by_method
            .get(&method)
            .into_iter()
            .flatten()
            .map(move |&i| &self.set[i])
    }

    /// All set facts (for a method) that contain `member`.
    pub fn set_facts_containing(&self, method: Oid, member: Oid) -> impl Iterator<Item = &SetFact> + '_ {
        self.set_by_method_member
            .get(&(method, member))
            .into_iter()
            .flatten()
            .map(move |&i| &self.set[i])
    }

    /// All set facts whose receiver is `receiver`.
    pub fn set_facts_of_receiver(&self, receiver: Oid) -> impl Iterator<Item = &SetFact> + '_ {
        self.set_by_receiver
            .get(&receiver)
            .into_iter()
            .flatten()
            .map(move |&i| &self.set[i])
    }

    /// Every set fact.
    pub fn set_facts(&self) -> impl Iterator<Item = &SetFact> + '_ {
        self.set.iter()
    }

    /// Number of set-valued applications (not members).
    pub fn num_set_applications(&self) -> usize {
        self.set.len()
    }

    /// Total number of set members across all applications.
    pub fn num_set_members(&self) -> usize {
        self.set_member_count
    }

    /// Retract `member` from `I_->>(method)(receiver, args)`.  Returns `true`
    /// if the member was present.  The application itself stays defined
    /// (possibly empty), mirroring [`Facts::declare_set`].
    pub fn retract_set_member(&mut self, method: Oid, receiver: Oid, args: &[Oid], member: Oid) -> bool {
        let key: FactKey = (method, receiver, args.into());
        let Some(&idx) = self.set_key.get(&key) else {
            return false;
        };
        if !self.set[idx].members.remove(&member) {
            return false;
        }
        self.set_member_count -= 1;
        remove_index(&mut self.set_by_method_member, &(method, member), idx);
        true
    }
}

/// Remove one occurrence of `idx` from the posting list under `key`.
fn remove_index<K: std::hash::Hash + Eq>(index: &mut HashMap<K, Vec<usize>>, key: &K, idx: usize) {
    if let Some(list) = index.get_mut(key) {
        if let Some(pos) = list.iter().position(|&i| i == idx) {
            list.swap_remove(pos);
        }
        if list.is_empty() {
            index.remove(key);
        }
    }
}

/// Re-point one occurrence of `old` to `new` in the posting list under `key`.
fn replace_index<K: std::hash::Hash + Eq>(index: &mut HashMap<K, Vec<usize>>, key: &K, old: usize, new: usize) {
    if let Some(list) = index.get_mut(key) {
        if let Some(pos) = list.iter().position(|&i| i == old) {
            list[pos] = new;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(i: u32) -> Oid {
        Oid(i)
    }

    #[test]
    fn scalar_assert_and_lookup() {
        let mut f = Facts::new();
        assert!(f.assert_scalar(o(1), o(10), &[], o(20)).unwrap().is_new());
        assert!(!f.assert_scalar(o(1), o(10), &[], o(20)).unwrap().is_new());
        assert_eq!(f.scalar_result(o(1), o(10), &[]), Some(o(20)));
        assert_eq!(f.scalar_result(o(1), o(11), &[]), None);
        assert_eq!(f.num_scalar(), 1);
    }

    #[test]
    fn scalar_conflict_is_an_error() {
        let mut f = Facts::new();
        f.assert_scalar(o(1), o(10), &[], o(20)).unwrap();
        assert!(f.assert_scalar(o(1), o(10), &[], o(21)).is_err());
    }

    #[test]
    fn scalar_args_distinguish_applications() {
        let mut f = Facts::new();
        // john.salary@(1993) and john.salary@(1994) are different applications.
        f.assert_scalar(o(1), o(10), &[o(1993)], o(50)).unwrap();
        f.assert_scalar(o(1), o(10), &[o(1994)], o(60)).unwrap();
        assert_eq!(f.scalar_result(o(1), o(10), &[o(1993)]), Some(o(50)));
        assert_eq!(f.scalar_result(o(1), o(10), &[o(1994)]), Some(o(60)));
        assert_eq!(f.scalar_result(o(1), o(10), &[]), None);
    }

    #[test]
    fn set_assert_and_lookup() {
        let mut f = Facts::new();
        assert!(f.assert_set_member(o(2), o(10), &[], o(30)).is_new());
        assert!(f.assert_set_member(o(2), o(10), &[], o(31)).is_new());
        assert!(!f.assert_set_member(o(2), o(10), &[], o(30)).is_new());
        let members = f.set_result(o(2), o(10), &[]).unwrap();
        assert_eq!(members.len(), 2);
        assert!(members.contains(&o(30)));
        assert_eq!(f.num_set_applications(), 1);
        assert_eq!(f.num_set_members(), 2);
    }

    #[test]
    fn declared_empty_set_is_defined() {
        let mut f = Facts::new();
        assert_eq!(f.set_result(o(2), o(10), &[]), None);
        f.declare_set(o(2), o(10), &[]);
        assert_eq!(f.set_result(o(2), o(10), &[]).map(|s| s.len()), Some(0));
        // declaring again is a no-op
        f.declare_set(o(2), o(10), &[]);
        assert_eq!(f.num_set_applications(), 1);
    }

    #[test]
    fn method_indexes() {
        let mut f = Facts::new();
        f.assert_scalar(o(1), o(10), &[], o(20)).unwrap();
        f.assert_scalar(o(1), o(11), &[], o(20)).unwrap();
        f.assert_scalar(o(1), o(12), &[], o(21)).unwrap();
        f.assert_scalar(o(9), o(10), &[], o(20)).unwrap();
        assert_eq!(f.scalar_facts_of_method(o(1)).count(), 3);
        assert_eq!(f.scalar_facts_with_result(o(1), o(20)).count(), 2);
        assert_eq!(f.scalar_facts_of_receiver(o(10)).count(), 2);
        assert_eq!(f.scalar_facts().count(), 4);

        f.assert_set_member(o(2), o(10), &[], o(30));
        f.assert_set_member(o(2), o(11), &[], o(30));
        f.assert_set_member(o(2), o(11), &[], o(31));
        assert_eq!(f.set_facts_of_method(o(2)).count(), 2);
        assert_eq!(f.set_facts_containing(o(2), o(30)).count(), 2);
        assert_eq!(f.set_facts_containing(o(2), o(31)).count(), 1);
        assert_eq!(f.set_facts_of_receiver(o(11)).count(), 1);
        assert_eq!(f.set_facts().count(), 2);
    }

    #[test]
    fn retract_scalar_removes_the_fact_and_reports_its_result() {
        let mut f = Facts::new();
        f.assert_scalar(o(1), o(10), &[], o(20)).unwrap();
        f.assert_scalar(o(1), o(11), &[], o(21)).unwrap();
        assert_eq!(f.retract_scalar(o(1), o(10), &[]), Some(o(20)));
        assert_eq!(f.retract_scalar(o(1), o(10), &[]), None, "already gone");
        assert_eq!(f.scalar_result(o(1), o(10), &[]), None);
        assert_eq!(f.scalar_result(o(1), o(11), &[]), Some(o(21)));
        assert_eq!(f.num_scalar(), 1);
        // The fact can now be re-asserted with a different result.
        f.assert_scalar(o(1), o(10), &[], o(99)).unwrap();
        assert_eq!(f.scalar_result(o(1), o(10), &[]), Some(o(99)));
    }

    #[test]
    fn retract_scalar_keeps_every_index_consistent_after_the_swap() {
        let mut f = Facts::new();
        // Three facts; retracting the first forces the last to move into its slot.
        f.assert_scalar(o(1), o(10), &[], o(20)).unwrap();
        f.assert_scalar(o(1), o(11), &[], o(20)).unwrap();
        f.assert_scalar(o(3), o(12), &[o(7)], o(22)).unwrap();
        assert_eq!(f.retract_scalar(o(1), o(10), &[]), Some(o(20)));
        // the moved fact is still reachable through every index
        assert_eq!(f.scalar_result(o(3), o(12), &[o(7)]), Some(o(22)));
        assert_eq!(f.scalar_facts_of_method(o(3)).count(), 1);
        assert_eq!(f.scalar_facts_with_result(o(3), o(22)).count(), 1);
        assert_eq!(f.scalar_facts_of_receiver(o(12)).count(), 1);
        assert_eq!(f.scalar_facts_of_method(o(1)).count(), 1);
        assert_eq!(f.scalar_facts_with_result(o(1), o(20)).count(), 1);
        assert_eq!(f.scalar_facts_of_receiver(o(10)).count(), 0);
        assert_eq!(f.scalar_facts().count(), 2);
    }

    #[test]
    fn retract_set_member_removes_only_that_member() {
        let mut f = Facts::new();
        f.assert_set_member(o(2), o(10), &[], o(30));
        f.assert_set_member(o(2), o(10), &[], o(31));
        assert!(f.retract_set_member(o(2), o(10), &[], o(30)));
        assert!(!f.retract_set_member(o(2), o(10), &[], o(30)), "already gone");
        assert!(!f.retract_set_member(o(2), o(99), &[], o(30)), "undefined application");
        assert_eq!(f.set_result(o(2), o(10), &[]).unwrap().len(), 1);
        assert_eq!(f.num_set_members(), 1);
        assert_eq!(f.set_facts_containing(o(2), o(30)).count(), 0);
        assert_eq!(f.set_facts_containing(o(2), o(31)).count(), 1);
        // The application stays defined even when it becomes empty.
        assert!(f.retract_set_member(o(2), o(10), &[], o(31)));
        assert_eq!(f.set_result(o(2), o(10), &[]).map(|s| s.len()), Some(0));
    }
}
