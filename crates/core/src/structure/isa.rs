//! The class hierarchy: a binary relation `isa ⊆ U × U` relating objects to
//! classes (Section 3 of the paper).
//!
//! Because PathLog does not distinguish between objects, classes and methods,
//! class membership reduces to a single binary relation on objects, ordered
//! transitively: if `p1 isa employee` and `employee isa person` then
//! `p1 isa person`.
//!
//! The paper models the relation as a partial order (hence reflexive).  This
//! implementation keeps the *transitive closure of the asserted edges* and
//! deliberately omits reflexivity: including every class in its own extent
//! would make `X : employee` also bind `X` to the class object `employee`,
//! which is never what the paper's example answers contain.  The deviation is
//! documented in `DESIGN.md`.
//!
//! Extents and ancestor sets are stored as [`OidRun`] columns: sorted,
//! deduplicated, `Arc`-shared.  Membership tests are binary searches over a
//! contiguous run, iteration is ascending-`Oid` (the same order the previous
//! `BTreeSet` backing produced), and cloning a structure shares every run
//! copy-on-write.  Class extents are handed to the factorized answer DAGs
//! ([`crate::semantics::factorized`]) zero-copy.

use std::collections::HashMap;

use super::runs::OidRun;
use super::Oid;

/// Incrementally maintained transitive closure of the is-a relation.
#[derive(Debug, Default, Clone)]
pub struct Isa {
    /// Direct edges `sub -> sup`, as asserted.
    direct_up: HashMap<Oid, OidRun>,
    /// Direct edges `sup -> sub`.
    direct_down: HashMap<Oid, OidRun>,
    /// Transitive closure: all (strict) ancestors of an object.
    up: HashMap<Oid, OidRun>,
    /// Transitive closure: all (strict) descendants of an object.
    down: HashMap<Oid, OidRun>,
    /// Number of pairs in the transitive closure.
    pairs: usize,
    /// Append-only insertion log of closure pairs `(sub, sup)`, in the order
    /// they entered the closure.  Backs the engine's semi-naive delta slices
    /// (is-a edges are never retracted, so the log never goes stale).
    log: Vec<(Oid, Oid)>,
}

impl Isa {
    /// An empty hierarchy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assert `sub isa sup`.  Returns `true` if the transitive closure grew.
    pub fn add(&mut self, sub: Oid, sup: Oid) -> bool {
        self.direct_up.entry(sub).or_default().insert(sup);
        self.direct_down.entry(sup).or_default().insert(sub);

        if self.up.get(&sub).is_some_and(|s| s.contains(&sup)) {
            return false;
        }

        // New closure pairs: every descendant of `sub` (plus `sub`) is now
        // below every ancestor of `sup` (plus `sup`).
        let mut lows: OidRun = self.down.get(&sub).cloned().unwrap_or_default();
        lows.insert(sub);
        let mut highs: OidRun = self.up.get(&sup).cloned().unwrap_or_default();
        highs.insert(sup);

        let mut grew = false;
        for &lo in &lows {
            for &hi in &highs {
                if lo == hi {
                    continue;
                }
                if self.up.entry(lo).or_default().insert(hi) {
                    self.down.entry(hi).or_default().insert(lo);
                    self.pairs += 1;
                    self.log.push((lo, hi));
                    grew = true;
                }
            }
        }
        grew
    }

    /// Is `obj` a member of `class` (transitively)?
    pub fn in_class(&self, obj: Oid, class: Oid) -> bool {
        self.up.get(&obj).is_some_and(|s| s.contains(&class))
    }

    /// All (transitive) classes of `obj`, in ascending `Oid` order.
    pub fn classes_of(&self, obj: Oid) -> impl Iterator<Item = Oid> + '_ {
        self.up.get(&obj).into_iter().flatten().copied()
    }

    /// All (transitive) members of `class`, in ascending `Oid` order.
    pub fn instances_of(&self, class: Oid) -> impl Iterator<Item = Oid> + '_ {
        self.down.get(&class).into_iter().flatten().copied()
    }

    /// The extent of `class` as a sorted run, if non-empty — the stored
    /// column itself (`Arc`-shared), for zero-copy hand-off to factorized
    /// answers.
    pub fn extent_run(&self, class: Oid) -> Option<&OidRun> {
        self.down.get(&class)
    }

    /// Number of members of `class`.
    pub fn extent_size(&self, class: Oid) -> usize {
        self.down.get(&class).map_or(0, |r| r.len())
    }

    /// Directly asserted edges, for persistence and debugging, sorted by
    /// `(sub, sup)` so emitted output is deterministic (the map over
    /// subjects iterates in per-process random order).
    pub fn direct_edges(&self) -> impl Iterator<Item = (Oid, Oid)> + '_ {
        let mut all: Vec<(Oid, Oid)> = self
            .direct_up
            .iter()
            .flat_map(|(&sub, sups)| sups.iter().map(move |&sup| (sub, sup)))
            .collect();
        all.sort_unstable();
        all.into_iter()
    }

    /// Number of pairs in the transitive closure.  Doubles as the current
    /// watermark for [`Isa::pairs_since`].
    pub fn closure_size(&self) -> usize {
        self.pairs
    }

    /// The closure pairs `(sub, sup)` added at or after watermark `mark`, in
    /// insertion order.  O(delta): a slice of the append-only insertion log.
    pub fn pairs_since(&self, mark: usize) -> &[(Oid, Oid)] {
        &self.log[mark.min(self.log.len())..]
    }

    /// The closure pairs added in the log window `[lo, hi)` — the bounded
    /// counterpart of [`Isa::pairs_since`] used by snapshot-window
    /// evaluation.  Both bounds are clamped to the log.
    pub fn pairs_in(&self, lo: usize, hi: usize) -> &[(Oid, Oid)] {
        let hi = hi.min(self.log.len());
        &self.log[lo.min(hi)..hi]
    }

    /// Number of directly asserted edges.
    pub fn direct_size(&self) -> usize {
        self.direct_up.values().map(|r| r.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(i: u32) -> Oid {
        Oid(i)
    }

    #[test]
    fn direct_membership() {
        let mut isa = Isa::new();
        assert!(isa.add(o(1), o(10)));
        assert!(isa.in_class(o(1), o(10)));
        assert!(!isa.in_class(o(10), o(1)));
        assert!(!isa.in_class(o(1), o(1)), "membership is not reflexive");
    }

    #[test]
    fn transitivity() {
        let mut isa = Isa::new();
        // automobile isa vehicle, a1 isa automobile => a1 isa vehicle
        isa.add(o(20), o(21));
        isa.add(o(1), o(20));
        assert!(isa.in_class(o(1), o(21)));
        assert!(isa.in_class(o(1), o(20)));
        assert!(isa.in_class(o(20), o(21)));
    }

    #[test]
    fn transitivity_when_edges_added_in_any_order() {
        let mut isa = Isa::new();
        isa.add(o(1), o(20)); // a1 isa automobile
        isa.add(o(20), o(21)); // automobile isa vehicle (added later)
        assert!(isa.in_class(o(1), o(21)));
        // deeper chain: vehicle isa thing
        isa.add(o(21), o(22));
        assert!(isa.in_class(o(1), o(22)));
        assert!(isa.in_class(o(20), o(22)));
    }

    #[test]
    fn duplicate_edges_do_not_grow() {
        let mut isa = Isa::new();
        assert!(isa.add(o(1), o(2)));
        assert!(!isa.add(o(1), o(2)));
        assert_eq!(isa.closure_size(), 1);
        assert_eq!(isa.direct_size(), 1);
    }

    #[test]
    fn implied_edge_does_not_grow_closure() {
        let mut isa = Isa::new();
        isa.add(o(1), o(2));
        isa.add(o(2), o(3));
        assert!(!isa.add(o(1), o(3)), "already implied transitively");
    }

    #[test]
    fn extents_and_classes() {
        let mut isa = Isa::new();
        isa.add(o(1), o(10));
        isa.add(o(2), o(10));
        isa.add(o(10), o(11));
        let mut ext: Vec<_> = isa.instances_of(o(11)).collect();
        ext.sort();
        assert_eq!(ext, vec![o(1), o(2), o(10)]);
        assert_eq!(isa.extent_size(o(10)), 2);
        assert_eq!(isa.extent_run(o(10)).unwrap().as_slice(), &[o(1), o(2)]);
        let cls: Vec<_> = isa.classes_of(o(1)).collect();
        assert_eq!(cls.len(), 2);
        assert_eq!(isa.direct_edges().count(), 3);
    }

    #[test]
    fn closure_log_yields_delta_slices() {
        let mut isa = Isa::new();
        isa.add(o(1), o(10));
        let mark = isa.closure_size();
        assert_eq!(mark, 1);
        // Duplicate edge: closure unchanged, log unchanged.
        isa.add(o(1), o(10));
        assert_eq!(isa.pairs_since(mark).len(), 0);
        // One asserted edge can add several closure pairs at once.
        isa.add(o(10), o(11));
        let delta: std::collections::BTreeSet<(Oid, Oid)> = isa.pairs_since(mark).iter().copied().collect();
        assert_eq!(delta, [(o(1), o(11)), (o(10), o(11))].into_iter().collect());
        assert_eq!(isa.pairs_since(isa.closure_size()).len(), 0);
        assert_eq!(isa.pairs_since(1_000).len(), 0);
        // The full log replays the whole closure.
        assert_eq!(isa.pairs_since(0).len(), isa.closure_size());
    }

    #[test]
    fn bounded_pair_windows_exclude_later_entries() {
        let mut isa = Isa::new();
        isa.add(o(1), o(10));
        let lo = isa.closure_size();
        isa.add(o(2), o(10));
        let hi = isa.closure_size();
        isa.add(o(3), o(10)); // past the window
        assert_eq!(isa.pairs_in(lo, hi), &[(o(2), o(10))]);
        assert_eq!(isa.pairs_in(0, isa.closure_size()).len(), 3);
        // Clamped bounds degrade to empty slices instead of panicking.
        assert!(isa.pairs_in(7, 100).is_empty());
        assert!(isa.pairs_in(2, 1).is_empty());
    }

    #[test]
    fn diamond_hierarchy() {
        let mut isa = Isa::new();
        // d isa b, d isa c, b isa a, c isa a
        isa.add(o(4), o(2));
        isa.add(o(4), o(3));
        isa.add(o(2), o(1));
        isa.add(o(3), o(1));
        assert!(isa.in_class(o(4), o(1)));
        assert_eq!(isa.classes_of(o(4)).count(), 3);
        assert_eq!(isa.extent_size(o(1)), 3);
    }
}
