//! Print the experiment tables recorded in `EXPERIMENTS.md`.
//!
//! For every experiment the binary reports the answer sizes (which must agree
//! across PathLog and the baselines) and wall-clock timings of a few
//! repetitions.  Criterion (`cargo bench`) produces the statistically sound
//! numbers; this binary exists so the full table can be regenerated in
//! seconds with `cargo run --release -p pathlog_bench --bin experiments`.
//!
//! With `--json <path>` the tables are additionally written as a
//! machine-readable JSON document (`BENCH_results.json` by convention), so
//! the perf trajectory can be tracked across pull requests and archived by
//! CI.

use std::time::Instant;

use pathlog_baseline::RelationalDb;
use pathlog_bench::{
    colours, columnar_factorized, constraints_commit, flogic_translation, join_planning, manager_query, parsing,
    parts_explosion, reactive_rules, rss, serving, sql_frontend, transitive_closure, two_dimensional, virtual_objects,
    workloads, Row,
};

fn time_ms(mut f: impl FnMut() -> usize) -> (usize, f64) {
    // warm up once, then take the best of three runs.
    let result = f();
    let mut best = f64::MAX;
    for _ in 0..3 {
        let start = Instant::now();
        let r = f();
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(r, result, "non-deterministic experiment result");
        best = best.min(elapsed);
    }
    (result, best)
}

/// All experiment tables of one run, accumulated for printing and JSON.
#[derive(Default)]
struct Report {
    tables: Vec<(String, Vec<Row>)>,
    /// Per-arm peak-RSS increments in kilobytes, recorded into the JSON
    /// meta block (0 on platforms without `/proc` support).
    peak_rss_kb: Vec<(String, u64)>,
}

/// The number of hardware threads the host exposes.  Recorded in the JSON
/// meta block so committed BENCH results are interpretable: on a 1-core
/// container the parallel arms can only measure scheduling overhead, and a
/// reader must be able to tell that from the document alone.
fn detected_cores() -> usize {
    std::thread::available_parallelism().map(usize::from).unwrap_or(1)
}

impl Report {
    fn table(&mut self, title: &str, rows: Vec<Row>) {
        println!("\n== {title} ==");
        for row in &rows {
            println!("{row}");
        }
        self.tables.push((title.to_string(), rows));
    }

    /// Record one arm's peak-RSS increment for the JSON meta block.
    fn record_peak_rss(&mut self, arm: &str, kb: u64) {
        self.peak_rss_kb.push((arm.to_string(), kb));
    }

    /// Serialise as JSON.  The values are answer sizes and millisecond
    /// timings; names are plain ASCII, so escaping quotes and backslashes
    /// suffices.
    fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut rss = String::from("{");
        for (i, (arm, kb)) in self.peak_rss_kb.iter().enumerate() {
            if i > 0 {
                rss.push_str(", ");
            }
            rss.push_str(&format!("\"{}\": {kb}", esc(arm)));
        }
        rss.push('}');
        let mut out = format!(
            "{{\n  \"meta\": {{\"detected_cores\": {}, \"peak_rss_kb\": {rss}}},\n  \"experiments\": [\n",
            detected_cores()
        );
        for (t, (title, rows)) in self.tables.iter().enumerate() {
            out.push_str(&format!(
                "    {{\n      \"name\": \"{}\",\n      \"rows\": [\n",
                esc(title)
            ));
            for (i, row) in rows.iter().enumerate() {
                out.push_str(&format!("        {{\"scale\": \"{}\", \"values\": {{", esc(&row.scale)));
                for (j, (name, value)) in row.values.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!("\"{}\": {}", esc(name), format_number(*value)));
                }
                out.push_str("}}");
                out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
            }
            out.push_str("      ]\n    }");
            out.push_str(if t + 1 < self.tables.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// JSON-safe number formatting (finite floats only; fixed precision keeps
/// diffs readable).
fn format_number(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.4}")
    }
}

fn main() {
    let args = parse_args();
    let mut report = Report::default();
    // E17/E18/E19/E20/E21/E22 are the cross-check gates the CI matrix arms
    // invoke in isolation via `--only e17|...|e22`; a full run includes all
    // of them.
    let wants = |name: &str| args.only.is_none() || args.only.as_deref() == Some(name);
    if args.only.is_none() {
        all_experiments(&mut report);
    }
    if wants("e17") {
        e17_executor_ablation(&mut report);
    }
    if wants("e18") {
        e18_reactive_executor(&mut report);
    }
    if wants("e19") {
        e19_columnar_factorized(&mut report, args.scale);
    }
    if wants("e20") {
        e20_constraint_commits(&mut report);
    }
    if wants("e21") {
        e21_join_planning(&mut report);
    }
    if wants("e22") {
        e22_snapshot_serving(&mut report);
    }
    match args.only.as_deref() {
        None => println!("\nAll experiments finished; answers agreed across PathLog and the baselines."),
        Some("e17") => println!(
            "\nE17 cross-checks passed: every executor/schedule arm matched the sequential fixpoint \
             (cross-rule arms bit-identical EvalStats)."
        ),
        Some("e19") => println!(
            "\nE19 cross-checks passed: every parallel closure arm's canonical dump was bit-identical \
             to the sequential reference, and the factorized enumeration matched the materialized \
             tuples answer-for-answer."
        ),
        Some("e20") => println!(
            "\nE20 cross-checks passed: incremental check-on-commit rejected the same violations in \
             the same order as the forced full re-check while solving strictly fewer conditions, \
             and quarantined commits degraded (tainted) answers instead of dropping them."
        ),
        Some("e21") => println!(
            "\nE21 cross-checks passed: every planned arm (sequential and 1/2/4/8 workers) was \
             canonical-dump-identical to the unplanned sequential reference with identical \
             non-planner EvalStats, and the planner counters were positive, mode-independent and \
             zero under Planner::Off."
        ),
        Some("e22") => println!(
            "\nE22 cross-checks passed: every reader session's pinned canonical dump was \
             bit-identical to the sequential oracle's dump for that epoch at every sessions x \
             workers arm, and every retained epoch was reclaimed once its last session dropped."
        ),
        Some(_) => println!(
            "\nE18 cross-checks passed: pooled reactive evaluation matched the sequential runs \
             bit-for-bit (firing traces, stats, canonical dumps), and delta-gated matching solved \
             strictly fewer conditions than full re-matching."
        ),
    }
    println!("(detected cores: {})", detected_cores());
    if detected_cores() <= 1 {
        println!(
            "CAVEAT: this host exposes a single hardware thread — the parallel arms \
             (E16/E17/E18/E21/E22) measure scheduling overhead, not scaling. Re-run on a \
             multi-core host (CI regenerates the scaling arms when it detects >1 core)."
        );
    }
    if let Some(path) = args.json {
        // Guard the committed full-results document: a partial run writes
        // only the tables it produced, which must not clobber
        // BENCH_results.json by accident.
        if args.only.is_some() && path.ends_with("BENCH_results.json") {
            eprintln!("refusing to overwrite {path} with a partial (--only) run; choose another --json path");
            std::process::exit(2);
        }
        std::fs::write(&path, report.to_json()).expect("write JSON results");
        println!("Wrote machine-readable results to {path}");
    }
}

/// E1–E16: the full answer-size + timing table set.
fn all_experiments(report: &mut Report) {
    let scales = [200usize, 1_000, 5_000];

    // E1 — colours of employees' automobiles
    let mut rows = Vec::new();
    for &n in &scales {
        let s = workloads::company(n);
        let db = RelationalDb::from_structure(&s);
        let (answer, pathlog_ms) = time_ms(|| colours::pathlog(&s));
        let (answer1, onedim_ms) = time_ms(|| colours::onedim(&s));
        let (answer2, relational_ms) = time_ms(|| colours::relational(&db));
        assert_eq!(answer, answer1);
        assert_eq!(answer, answer2);
        rows.push(Row {
            scale: format!("employees={n}"),
            values: vec![
                ("answers".into(), answer as f64),
                ("pathlog_ms".into(), pathlog_ms),
                ("onedim_ms".into(), onedim_ms),
                ("relational_ms".into(), relational_ms),
            ],
        });
    }
    report.table("E1: colours of employees' automobiles (1.1-1.3)", rows);

    // E2 — two-dimensional reference vs conjunction of paths
    let mut rows = Vec::new();
    for &n in &scales {
        let s = workloads::company(n);
        let db = RelationalDb::from_structure(&s);
        let (_, pathlog_ms) = time_ms(|| two_dimensional::pathlog(&s));
        let (_, onedim_ms) = time_ms(|| two_dimensional::onedim(&s));
        let (answers, relational_ms) = time_ms(|| two_dimensional::relational(&s, &db));
        rows.push(Row {
            scale: format!("employees={n}"),
            values: vec![
                ("colours".into(), answers as f64),
                ("pathlog_ms".into(), pathlog_ms),
                ("onedim_ms".into(), onedim_ms),
                ("relational_ms".into(), relational_ms),
            ],
        });
    }
    report.table(
        "E2: two-dimensional reference (2.1) vs conjunction of paths (1.4)",
        rows,
    );

    // E3 — manager query
    let mut rows = Vec::new();
    for &n in &scales {
        let s = workloads::company(n);
        let db = RelationalDb::from_structure(&s);
        let (answer, pathlog_ms) = time_ms(|| manager_query::pathlog(&s));
        let (answer1, onedim_ms) = time_ms(|| manager_query::onedim(&s));
        let (answer2, relational_ms) = time_ms(|| manager_query::relational(&s, &db));
        assert_eq!(answer, answer1);
        assert_eq!(answer, answer2);
        rows.push(Row {
            scale: format!("employees={n}"),
            values: vec![
                ("managers".into(), answer as f64),
                ("pathlog_ms".into(), pathlog_ms),
                ("onedim_ms".into(), onedim_ms),
                ("relational_ms".into(), relational_ms),
            ],
        });
    }
    report.table("E3: manager query (Section 2)", rows);

    // E4/E6/E9 — virtual objects vs views
    let mut rows = Vec::new();
    for &n in &scales {
        let s = workloads::company(n);
        let (addresses, rule_ms) = time_ms(|| virtual_objects::pathlog_addresses(&s));
        let (view_objs, view_ms) = time_ms(|| virtual_objects::xsql_view_addresses(&s));
        let (_, boss_rule_ms) = time_ms(|| virtual_objects::pathlog_virtual_bosses(&s));
        let (_, boss_view_ms) = time_ms(|| virtual_objects::xsql_employee_boss_view(&s));
        assert_eq!(addresses, view_objs);
        rows.push(Row {
            scale: format!("employees={n}"),
            values: vec![
                ("virtuals".into(), addresses as f64),
                ("address_rule_ms".into(), rule_ms),
                ("address_view_ms".into(), view_ms),
                ("boss_rule_ms".into(), boss_rule_ms),
                ("boss_view_ms".into(), boss_view_ms),
            ],
        });
    }
    report.table("E4/E6/E9: virtual objects (2.4, 6.1) vs XSQL views (6.3)", rows);

    // E7 — transitive closure.  `desc_rules_ms` runs the default engine
    // (cost-based planner + compiled rule bodies); `desc_unplanned_ms` is
    // the PR 9 ablation arm on the interpreted written-order path.
    let mut rows = Vec::new();
    for &(depth, fanout) in &[(4usize, 2usize), (6, 2), (8, 2), (5, 3)] {
        let s = workloads::genealogy(depth, fanout);
        let db = RelationalDb::from_structure(&s);
        let (pairs, desc_ms) = time_ms(|| transitive_closure::pathlog_desc(&s));
        let (pairs_unplanned, unplanned_ms) = time_ms(|| {
            let mut s2 = s.clone();
            let program = pathlog_parser::parse_program(transitive_closure::DESC_RULES).expect("valid rules");
            pathlog_core::engine::Engine::with_options(pathlog_core::engine::EvalOptions {
                planner: pathlog_core::plan::Planner::Off,
                ..Default::default()
            })
            .load_program(&mut s2, &program)
            .expect("rules evaluate")
            .set_members
        });
        let (pairs1, generic_ms) = time_ms(|| transitive_closure::pathlog_generic(&s));
        let (pairs2, rel_ms) = time_ms(|| transitive_closure::relational(&db));
        assert_eq!(pairs, pairs_unplanned);
        assert_eq!(pairs, pairs1);
        assert_eq!(pairs, pairs2);
        rows.push(Row {
            scale: format!("depth={depth} fanout={fanout}"),
            values: vec![
                ("closure_pairs".into(), pairs as f64),
                ("desc_rules_ms".into(), desc_ms),
                ("desc_unplanned_ms".into(), unplanned_ms),
                ("generic_tc_ms".into(), generic_ms),
                ("relational_ms".into(), rel_ms),
            ],
        });
    }
    report.table("E7: transitive closure (6.4, kids.tc) vs relational semi-naive", rows);

    // E10 — parser
    let (count, parse_ms) = time_ms(parsing::parse_all);
    report.table(
        "E10: parser over the paper's expressions",
        vec![Row {
            scale: format!("expressions={count}"),
            values: vec![("parse_all_ms".into(), parse_ms)],
        }],
    );

    // E11 — direct semantics vs F-logic translation
    let mut rows = Vec::new();
    for &n in &scales {
        let s = workloads::company(n);
        let (answers, direct_ms) = time_ms(|| flogic_translation::direct(&s));
        let (answers1, translated_ms) = time_ms(|| flogic_translation::translated(&s));
        assert_eq!(answers, answers1);
        rows.push(Row {
            scale: format!("employees={n}"),
            values: vec![
                ("answers".into(), answers as f64),
                ("direct_ms".into(), direct_ms),
                ("translated_ms".into(), translated_ms),
                ("flat_atoms".into(), flogic_translation::translation_atoms() as f64),
            ],
        });
    }
    report.table(
        "E11: direct semantics vs F-logic translation (Section 2 contrast)",
        rows,
    );

    // E12 — object-SQL frontend vs native PathLog
    let mut rows = Vec::new();
    let catalog = sql_frontend::catalog();
    for &n in &scales {
        let s = workloads::company(n);
        let (answers, sql_ms) = time_ms(|| sql_frontend::sql(&s, &catalog));
        let (answers1, native_ms) = time_ms(|| sql_frontend::native(&s));
        assert_eq!(answers, answers1);
        rows.push(Row {
            scale: format!("employees={n}"),
            values: vec![
                ("colours".into(), answers as f64),
                ("sql_ms".into(), sql_ms),
                ("native_pathlog_ms".into(), native_ms),
            ],
        });
    }
    report.table("E12: object-SQL frontend (1.4) vs native PathLog", rows);

    // E13 — production rules and active triggers
    let mut rows = Vec::new();
    for &n in &[100usize, 500, 2_000] {
        let s = workloads::company(n);
        let (firings, production_ms) = time_ms(|| reactive_rules::production_minimum_wage(&s));
        let (cascade, active_ms) = time_ms(|| reactive_rules::active_salary_cascade(&s, 50));
        rows.push(Row {
            scale: format!("employees={n}"),
            values: vec![
                ("production_firings".into(), firings as f64),
                ("production_ms".into(), production_ms),
                ("cascade_firings".into(), cascade as f64),
                ("active_50_updates_ms".into(), active_ms),
            ],
        });
    }
    report.table("E13: production rules / active triggers (Section 7 outlook)", rows);

    // E14 — parts explosion (transitive closure on a DAG)
    let mut rows = Vec::new();
    for &depth in &[4usize, 6, 8] {
        let s = workloads::bom(depth);
        let db = RelationalDb::from_structure(&s);
        let (members, pathlog_ms) = time_ms(|| parts_explosion::pathlog(&s));
        let (members1, rel_ms) = time_ms(|| parts_explosion::relational(&db));
        assert_eq!(members, members1);
        rows.push(Row {
            scale: format!("depth={depth}"),
            values: vec![
                ("closure_pairs".into(), members as f64),
                ("pathlog_ms".into(), pathlog_ms),
                ("relational_ms".into(), rel_ms),
            ],
        });
    }
    report.table("E14: parts explosion closure (bill-of-materials DAG)", rows);

    // E15 — the semi-naive ablation (delta_driven on/off) on the deepest
    // recursive workloads, matching the `ablation_delta_driven` bench group.
    let mut rows = Vec::new();
    for &(depth, fanout) in &[(8usize, 2usize), (10, 2)] {
        let s = workloads::genealogy(depth, fanout);
        // The same program E16 runs through `pathlog_desc_with_mode`, so the
        // two ablations always benchmark an identical workload.
        let program = pathlog_parser::parse_program(transitive_closure::PARALLEL_ABLATION_RULES)
            .expect("ablation program parses");
        let run = |delta: bool, planner: pathlog_core::plan::Planner| {
            let mut s2 = s.clone();
            let engine = pathlog_core::engine::Engine::with_options(pathlog_core::engine::EvalOptions {
                delta_driven: delta,
                planner,
                ..Default::default()
            });
            engine
                .load_program(&mut s2, &program)
                .expect("rules evaluate")
                .set_members
        };
        let (members_on, on_ms) = time_ms(|| run(true, pathlog_core::plan::Planner::CostBased));
        // The PR 9 ablation arm: semi-naive but on the interpreted
        // written-order path (the planner only affects delta passes, so the
        // naive arm has no planned variant).
        let (members_unplanned, unplanned_ms) = time_ms(|| run(true, pathlog_core::plan::Planner::Off));
        let (members_off, off_ms) = time_ms(|| run(false, pathlog_core::plan::Planner::Off));
        assert_eq!(members_on, members_unplanned, "planned and unplanned must agree");
        assert_eq!(members_on, members_off, "naive and semi-naive must agree");
        rows.push(Row {
            scale: format!("depth={depth} fanout={fanout}"),
            values: vec![
                // desc pairs plus the summary rule's copies — not the bare
                // closure size E7 reports.
                ("derived_set_members".into(), members_on as f64),
                ("delta_on_ms".into(), on_ms),
                ("delta_on_unplanned_ms".into(), unplanned_ms),
                ("delta_off_ms".into(), off_ms),
                ("speedup".into(), off_ms / on_ms),
            ],
        });
    }
    report.table("E15: ablation_delta_driven (semi-naive vs naive evaluation)", rows);

    // E16 — parallel sharded delta evaluation: the same semi-naive workload
    // with the per-rule delta solves fanned over 1/2/4/8 worker threads.
    // Every parallel arm is cross-checked against the sequential run: the
    // derived-member counts and the full EvalStats must be identical (the
    // merge is canonical, so parallel mode is observationally equal), which
    // makes this table double as the CI smoke gate for parallel evaluation.
    let mut rows = Vec::new();
    for &(depth, fanout) in &[(8usize, 2usize), (10, 2)] {
        let s = workloads::genealogy(depth, fanout);
        // Capture the EvalStats from inside the timed closure instead of
        // re-running the whole fixpoint once more per arm just to fetch them.
        let mut seq_stats = None;
        let (seq_members, seq_ms) = time_ms(|| {
            let (members, stats) =
                transitive_closure::pathlog_desc_with_mode(&s, pathlog_core::engine::EvalMode::Sequential);
            seq_stats = Some(stats);
            members
        });
        let seq_stats = seq_stats.expect("sequential arm ran");
        // Aggregate the arms' counters with EvalStats::merge.  The final
        // total is implied by the per-arm equality asserts above it — this
        // exists to exercise the saturating merge end-to-end, not to add
        // coverage.
        let mut aggregate = seq_stats;
        let mut values = vec![
            ("derived_set_members".into(), seq_members as f64),
            ("sequential_ms".into(), seq_ms),
        ];
        let mut w4_ms = seq_ms;
        for workers in [1usize, 2, 4, 8] {
            let mode = pathlog_core::engine::EvalMode::Parallel { workers };
            let mut par_stats = None;
            let (members, ms) = time_ms(|| {
                let (members, stats) = transitive_closure::pathlog_desc_with_mode(&s, mode);
                par_stats = Some(stats);
                members
            });
            let stats = par_stats.expect("parallel arm ran");
            assert_eq!(
                members, seq_members,
                "parallel ({workers} workers) and sequential answer counts must match"
            );
            assert_eq!(
                stats, seq_stats,
                "parallel ({workers} workers) and sequential EvalStats must match"
            );
            aggregate.merge(&stats);
            if workers == 4 {
                w4_ms = ms;
            }
            values.push((format!("workers{workers}_ms"), ms));
        }
        assert_eq!(
            aggregate.derived(),
            seq_stats.derived() * 5,
            "aggregated totals must be five identical runs"
        );
        // PR 9 ablation arm: the same 4-worker run on the interpreted
        // written-order path.  Identical except for the planner counters.
        let mut unplanned_stats = None;
        let (unplanned_members, unplanned_w4_ms) = time_ms(|| {
            let ((members, stats), _) = transitive_closure::pathlog_desc_with_options(
                &s,
                pathlog_core::engine::EvalOptions {
                    mode: pathlog_core::engine::EvalMode::Parallel { workers: 4 },
                    planner: pathlog_core::plan::Planner::Off,
                    ..Default::default()
                },
            );
            unplanned_stats = Some(stats);
            members
        });
        let unplanned_stats = unplanned_stats.expect("unplanned arm ran");
        assert_eq!(
            unplanned_members, seq_members,
            "unplanned parallel and sequential answer counts must match"
        );
        let strip = |mut stats: pathlog_core::engine::EvalStats| {
            stats.plans_compiled = 0;
            stats.replans = 0;
            stats.seed_flips = 0;
            stats
        };
        assert_eq!(
            strip(unplanned_stats),
            strip(seq_stats),
            "unplanned and planned runs must agree on every non-planner counter"
        );
        values.push(("workers4_unplanned_ms".into(), unplanned_w4_ms));
        values.push(("speedup_w4".into(), seq_ms / w4_ms));
        rows.push(Row {
            scale: format!("depth={depth} fanout={fanout}"),
            values,
        });
    }
    report.table("E16: parallel sharded delta evaluation (1/2/4/8 workers)", rows);
}

/// E17 — the executor ablation: spawn-per-batch (scoped) vs persistent pool
/// (pooled) executors, crossed with the two iteration schedules (snapshot-
/// window cross-rule vs legacy rule-at-a-time), at 4 workers on the
/// deep-tree `desc` workload.  Every arm's derived counts are cross-checked
/// against the sequential run (the binary aborts on mismatch — this is the
/// CI gate), the cross-rule arms' full `EvalStats` too; the per-run
/// spawned-thread counts show the pooled executor's O(workers) spawn
/// behaviour against the scoped executor's O(solves × workers).
fn e17_executor_ablation(report: &mut Report) {
    use pathlog_core::engine::{EvalMode, EvalOptions, ExecutorKind, Schedule};
    let mut rows = Vec::new();
    for &(depth, fanout) in &[(8usize, 2usize), (10, 2)] {
        let s = workloads::genealogy(depth, fanout);
        let ((seq_members, seq_stats), _) = transitive_closure::pathlog_desc_with_options(&s, EvalOptions::default());
        let (_, seq_ms) = time_ms(|| {
            transitive_closure::pathlog_desc_with_options(&s, EvalOptions::default())
                .0
                 .0
        });
        let mut values = vec![
            ("derived_set_members".into(), seq_members as f64),
            ("sequential_ms".into(), seq_ms),
        ];
        let schedules = [
            ("cross_rule", Schedule::CrossRule),
            ("rule_at_a_time", Schedule::RuleAtATime),
        ];
        let executors = [("pooled", ExecutorKind::Pooled), ("scoped", ExecutorKind::Scoped)];
        for (s_label, schedule) in schedules {
            for (e_label, executor) in executors {
                let options = EvalOptions {
                    mode: EvalMode::Parallel { workers: 4 },
                    schedule,
                    executor,
                    ..EvalOptions::default()
                };
                let mut spawned = 0usize;
                let mut arm_stats = None;
                let (members, ms) = time_ms(|| {
                    let ((members, stats), threads) = transitive_closure::pathlog_desc_with_options(&s, options);
                    spawned = threads;
                    arm_stats = Some(stats);
                    members
                });
                assert_eq!(
                    members, seq_members,
                    "E17 {s_label}/{e_label}: answer counts must match the sequential run"
                );
                if schedule == Schedule::CrossRule {
                    assert_eq!(
                        arm_stats.expect("arm ran"),
                        seq_stats,
                        "E17 {s_label}/{e_label}: cross-rule EvalStats must be bit-identical to sequential"
                    );
                }
                values.push((format!("{s_label}_{e_label}_w4_ms"), ms));
                values.push((format!("{s_label}_{e_label}_spawned_threads"), spawned as f64));
            }
        }
        rows.push(Row {
            scale: format!("depth={depth} fanout={fanout}"),
            values,
        });
    }
    report.table(
        "E17: executor ablation (pooled vs scoped x cross-rule vs rule-at-a-time, 4 workers)",
        rows,
    );
}

/// E18 — reactive evaluation through the executor: the production
/// classification workload (delta-gated vs full re-match, pooled at 1/2/4/8
/// workers) and the active-store fan-out workload (snapshot-rounds schedule
/// at 1/2/4/8 workers, mutations/sec).  Every arm is cross-checked against
/// the sequential run — firing traces, stats and canonical dumps must be
/// bit-identical, and delta gating must solve strictly fewer conditions
/// than full re-matching (counter-asserted, not just timed) — so this table
/// doubles as the CI gate for pooled reactive evaluation.
fn e18_reactive_executor(report: &mut Report) {
    use pathlog_core::engine::EvalMode;
    use pathlog_reactive::{ActiveOptions, CascadeSchedule, ProductionOptions};
    let mut rows = Vec::new();
    for &n in &[100usize, 300] {
        let s = workloads::company(n);

        // --- Production arm: sequential delta-gated reference.
        let (seq_stats, seq_trace, seq_dump) = reactive_rules::production_classify(&s, ProductionOptions::default());
        let (_, seq_ms) = time_ms(|| {
            reactive_rules::production_classify(&s, ProductionOptions::default())
                .0
                .firings
        });
        // Full re-matching ablation: identical run, strictly more solves.
        let full_options = ProductionOptions {
            delta_gated: false,
            ..ProductionOptions::default()
        };
        let (full_stats, full_trace, full_dump) = reactive_rules::production_classify(&s, full_options);
        let (_, full_ms) = time_ms(|| reactive_rules::production_classify(&s, full_options).0.firings);
        assert_eq!(full_trace, seq_trace, "E18: full re-match must fire identically");
        assert_eq!(full_dump, seq_dump, "E18: full re-match must reach the same structure");
        assert_eq!(full_stats.firings, seq_stats.firings);
        assert!(
            seq_stats.condition_solves < full_stats.condition_solves,
            "E18: delta gating must reduce condition solves ({} vs {})",
            seq_stats.condition_solves,
            full_stats.condition_solves
        );
        let mut values = vec![
            ("production_firings".into(), seq_stats.firings as f64),
            ("gated_condition_solves".into(), seq_stats.condition_solves as f64),
            ("full_condition_solves".into(), full_stats.condition_solves as f64),
            ("production_seq_ms".into(), seq_ms),
            ("production_full_rematch_ms".into(), full_ms),
        ];
        for workers in [1usize, 2, 4, 8] {
            let options = ProductionOptions {
                mode: EvalMode::Parallel { workers },
                ..ProductionOptions::default()
            };
            let mut arm = None;
            let (_, ms) = time_ms(|| {
                let (stats, trace, dump) = reactive_rules::production_classify(&s, options);
                let firings = stats.firings;
                arm = Some((stats, trace, dump));
                firings
            });
            let (stats, trace, dump) = arm.expect("arm ran");
            assert_eq!(stats, seq_stats, "E18: pooled ({workers}w) production stats must match");
            assert_eq!(trace, seq_trace, "E18: pooled ({workers}w) firing order must match");
            assert_eq!(dump, seq_dump, "E18: pooled ({workers}w) structure must match");
            values.push((format!("production_w{workers}_ms"), ms));
        }

        // --- Active arm: snapshot-rounds schedule, 3 external mutations per
        // update; the immediate schedule must agree on this fan-out workload
        // (no two rules of one event interact).
        let updates = 50usize;
        let rounds = ActiveOptions {
            schedule: CascadeSchedule::Rounds,
            ..ActiveOptions::default()
        };
        let (rounds_stats, rounds_dump) = reactive_rules::active_fanout_updates(&s, updates, rounds);
        let (_, rounds_ms) = time_ms(|| reactive_rules::active_fanout_updates(&s, updates, rounds).0.firings);
        let (imm_stats, imm_dump) = reactive_rules::active_fanout_updates(&s, updates, ActiveOptions::default());
        assert_eq!(
            imm_stats, rounds_stats,
            "E18: immediate and rounds schedules must agree on the fan-out workload"
        );
        assert_eq!(
            imm_dump, rounds_dump,
            "E18: the schedules must reach the same structure"
        );
        let mutations_per_sec = |ms: f64| (updates as f64 * 3.0) / (ms / 1e3);
        values.push(("active_firings".into(), rounds_stats.firings as f64));
        values.push(("active_seq_mutations_per_sec".into(), mutations_per_sec(rounds_ms)));
        for workers in [1usize, 2, 4, 8] {
            let options = ActiveOptions {
                schedule: CascadeSchedule::Rounds,
                mode: EvalMode::Parallel { workers },
                ..ActiveOptions::default()
            };
            let mut arm = None;
            let (_, ms) = time_ms(|| {
                let (stats, dump) = reactive_rules::active_fanout_updates(&s, updates, options);
                let firings = stats.firings;
                arm = Some((stats, dump));
                firings
            });
            let (stats, dump) = arm.expect("arm ran");
            assert_eq!(stats, rounds_stats, "E18: pooled ({workers}w) active stats must match");
            assert_eq!(
                dump, rounds_dump,
                "E18: pooled ({workers}w) active structure must match"
            );
            values.push((format!("active_w{workers}_mutations_per_sec"), mutations_per_sec(ms)));
        }
        rows.push(Row {
            scale: format!("employees={n}"),
            values,
        });
    }
    report.table(
        "E18: reactive evaluation through the executor (delta-gated production + pooled active rounds)",
        rows,
    );
}

/// E19 — columnar fact storage + factorized path answers.  The memory gate
/// of the columnar refactor: on the depth-10 `desc` closure (at the datagen
/// scale selected with `--scale`), every parallel/executor closure arm must
/// produce a canonical dump bit-identical to the sequential reference, the
/// factorized answer DAG of `X..desc` must enumerate answer-for-answer
/// identically to the materialized tuples, and the DAG's peak-RSS increment
/// is reported against the tuple representation's (factorized measured
/// first, so allocator reuse biases the comparison *against* it).  The
/// second table tracks representation size across the E7 depth sweep: DAG
/// nodes must grow sub-linearly in the tuple count.
fn e19_columnar_factorized(report: &mut Report, scale: usize) {
    use pathlog_core::engine::{EvalMode, EvalOptions, ExecutorKind};
    let tenfold = scale >= 10;

    // --- Memory arm: depth-10 transitive closure.
    let s = workloads::genealogy_at_scale(10, 2, tenfold);
    let closed = columnar_factorized::close(&s);
    let reference = closed.canonical_dump();
    for workers in [1usize, 2, 4, 8] {
        for (label, executor) in [("pooled", ExecutorKind::Pooled), ("scoped", ExecutorKind::Scoped)] {
            let options = EvalOptions {
                mode: EvalMode::Parallel { workers },
                executor,
                ..EvalOptions::default()
            };
            let dump = columnar_factorized::closed_dump(&s, options);
            assert_eq!(
                dump, reference,
                "E19 {label} w{workers}: canonical dump must be bit-identical to the sequential reference"
            );
        }
    }
    let (fact, fact_kb) = rss::measure(|| columnar_factorized::factorized(&closed));
    let (tuples, tuples_kb) = rss::measure(|| columnar_factorized::materialized(&closed));
    assert!(fact.is_factorized(), "E19: X..desc must take the factorized path");
    assert_eq!(fact.count(), tuples.len() as u64, "E19: answer counts must match");
    assert!(
        columnar_factorized::enumeration_matches(&fact, &tuples),
        "E19: factorized enumeration must be bit-identical to the materialized tuples"
    );
    report.record_peak_rss(&format!("e19_factorized_scale{scale}"), fact_kb);
    report.record_peak_rss(&format!("e19_materialized_scale{scale}"), tuples_kb);
    // The headline claim, asserted only when the platform measured both
    // arms meaningfully (>= 64 kB increments; /proc may be unavailable).
    if fact_kb >= 64 && tuples_kb >= 64 {
        assert!(
            tuples_kb >= 2 * fact_kb,
            "E19: factorized answers must at least halve the peak-RSS increment ({tuples_kb} kB vs {fact_kb} kB)"
        );
    }
    let (_, fact_ms) = time_ms(|| columnar_factorized::factorized(&closed).node_count());
    let (_, mat_ms) = time_ms(|| columnar_factorized::materialized(&closed).len());
    report.table(
        "E19: columnar + factorized answers (depth-10 closure memory arm)",
        vec![Row {
            scale: format!("depth=10 fanout=2 scale={scale}"),
            values: vec![
                ("answers".into(), tuples.len() as f64),
                ("dag_nodes".into(), fact.node_count() as f64),
                ("materialized_peak_rss_kb".into(), tuples_kb as f64),
                ("factorized_peak_rss_kb".into(), fact_kb as f64),
                ("materialized_ms".into(), mat_ms),
                ("factorized_ms".into(), fact_ms),
            ],
        }],
    );

    // --- Representation-size sweep over the E7 depths.
    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    for &depth in &[4usize, 6, 8, 10] {
        let s = workloads::genealogy(depth, 2);
        let closed = columnar_factorized::close(&s);
        let fact = columnar_factorized::factorized(&closed);
        let tuples = columnar_factorized::materialized(&closed);
        assert!(
            columnar_factorized::enumeration_matches(&fact, &tuples),
            "E19 depth={depth}: factorized enumeration must match the tuples"
        );
        let nodes = fact.node_count();
        assert!(
            nodes < tuples.len(),
            "E19 depth={depth}: the DAG must be smaller than the tuple list"
        );
        let ratio = nodes as f64 / tuples.len() as f64;
        ratios.push(ratio);
        rows.push(Row {
            scale: format!("depth={depth} fanout=2"),
            values: vec![
                ("answers".into(), tuples.len() as f64),
                ("dag_nodes".into(), nodes as f64),
                ("nodes_per_answer".into(), ratio),
            ],
        });
    }
    assert!(
        ratios.last().unwrap() < ratios.first().unwrap(),
        "E19: DAG nodes must grow sub-linearly in the answer count across the depth sweep"
    );
    report.table("E19b: factorized representation size across the E7 depth sweep", rows);
}

/// E20 — check-on-commit integrity constraints: guarded transactions over
/// the datagen company store.  The incremental arm re-solves only the
/// constraints whose read keys intersect the commit's delta; the full arm
/// (an out-of-band touch before every transaction forces a shadow rebuild)
/// re-solves everything.  Both arms must reject the same violations in the
/// same order while the incremental arm performs strictly fewer condition
/// solves (counter-asserted — the CI gate), and the pooled-executor arm
/// must agree with the sequential one.  The quarantine arm commits pay cuts
/// below the wage floor under `ConstraintPolicy::Quarantine` and serves the
/// salary query tolerantly: every classical answer is still served, tainted
/// answers are annotated rather than dropped.
fn e20_constraint_commits(report: &mut Report) {
    use pathlog_core::engine::{Engine, EvalMode, EvalOptions, ExecutorKind};
    let mut rows = Vec::new();
    for &n in &[100usize, 300] {
        let updates = 100usize;

        let inc = constraints_commit::run_commits(n, updates, false, Engine::new());
        let (_, inc_ms) = time_ms(|| constraints_commit::run_commits(n, updates, false, Engine::new()).committed);
        let full = constraints_commit::run_commits(n, updates, true, Engine::new());
        let (_, full_ms) = time_ms(|| constraints_commit::run_commits(n, updates, true, Engine::new()).committed);
        assert_eq!(
            inc.rejections, full.rejections,
            "E20: incremental and full re-check must reject the same violations in the same order"
        );
        assert_eq!(
            inc.committed, full.committed,
            "E20: the arms must commit the same batches"
        );
        assert!(inc.rejected > 0, "E20: the workload must exercise rejection");
        assert!(
            inc.stats.condition_solves < full.stats.condition_solves,
            "E20: incremental checking must solve strictly fewer conditions ({} vs {})",
            inc.stats.condition_solves,
            full.stats.condition_solves
        );
        assert!(
            inc.stats.constraints_skipped > 0,
            "E20: delta gating must skip unaffected constraints"
        );

        // The pooled-executor arm must agree with the sequential guard.
        let pooled_engine = Engine::with_options(EvalOptions {
            mode: EvalMode::Parallel { workers: 4 },
            executor: ExecutorKind::Pooled,
            ..EvalOptions::default()
        });
        let pooled = constraints_commit::run_commits(n, updates, false, pooled_engine);
        assert_eq!(
            pooled.rejections, inc.rejections,
            "E20: the pooled guard must reject identically to the sequential one"
        );
        assert_eq!(pooled.stats.condition_solves, inc.stats.condition_solves);

        // Quarantine arm: pay cuts commit tagged; answers degrade, not drop.
        let cuts = 10usize;
        let q = constraints_commit::run_quarantine(n, cuts);
        assert!(q.quarantined >= cuts, "E20: every pay cut must tag at least one fact");
        assert!(q.tainted > 0, "E20: quarantined salaries must taint their answers");
        assert_eq!(
            q.tainted + q.clean,
            q.classical,
            "E20: tolerant evaluation must serve every classical answer"
        );
        let (_, tolerant_ms) = time_ms(|| constraints_commit::run_quarantine(n, cuts).tainted);

        rows.push(Row {
            scale: format!("employees={n} commits={updates}"),
            values: vec![
                ("committed".into(), inc.committed as f64),
                ("rejected".into(), inc.rejected as f64),
                ("baseline_violations".into(), inc.baseline_violations as f64),
                ("incremental_condition_solves".into(), inc.stats.condition_solves as f64),
                ("full_condition_solves".into(), full.stats.condition_solves as f64),
                ("constraints_skipped".into(), inc.stats.constraints_skipped as f64),
                ("incremental_ms".into(), inc_ms),
                ("full_recheck_ms".into(), full_ms),
                ("quarantined_facts".into(), q.quarantined as f64),
                ("tainted_answers".into(), q.tainted as f64),
                ("clean_answers".into(), q.clean as f64),
                ("quarantine_run_ms".into(), tolerant_ms),
            ],
        });
    }
    report.table(
        "E20: check-on-commit constraints (incremental vs full re-check + quarantine degradation)",
        rows,
    );
}

/// E21 — the cost-based join planner (PR 9): the filtered-closure workload
/// (a recursive closure plus a 3-literal join whose written order is
/// deliberately bad) evaluated planned vs unplanned, sequentially and at
/// 1/2/4/8 workers.  Every arm is counter-asserted, not just timed: the
/// planned model must be bit-identical (canonical dump) to the unplanned
/// sequential reference at every worker count, the non-planner `EvalStats`
/// identical across all arms, the planner counters (`plans_compiled`,
/// `replans`, `seed_flips`) zero when off, positive and mode-independent
/// when on — so this table doubles as the CI gate for planned evaluation.
fn e21_join_planning(report: &mut Report) {
    use pathlog_core::engine::{EvalMode, EvalOptions, EvalStats};
    use pathlog_core::plan::Planner;

    let strip = |mut stats: EvalStats| {
        stats.plans_compiled = 0;
        stats.replans = 0;
        stats.seed_flips = 0;
        stats
    };
    let mut rows = Vec::new();
    for &(depth, fanout) in &[(6usize, 2usize), (8, 2), (5, 3)] {
        let s = join_planning::workload(depth, fanout);
        // Unplanned sequential is the reference model.
        let (ref_stats, ref_dump) = join_planning::run(
            &s,
            EvalOptions {
                planner: Planner::Off,
                ..EvalOptions::default()
            },
        );
        assert_eq!(ref_stats.plans_compiled, 0, "E21: Planner::Off must compile nothing");
        assert_eq!(ref_stats.seed_flips, 0, "E21: Planner::Off must never flip a seed");
        let (_, unplanned_ms) = time_ms(|| {
            join_planning::run(
                &s,
                EvalOptions {
                    planner: Planner::Off,
                    ..EvalOptions::default()
                },
            )
            .0
            .set_members
        });
        let mut values = vec![
            ("derived_set_members".into(), ref_stats.set_members as f64),
            ("unplanned_seq_ms".into(), unplanned_ms),
        ];
        let mut planned_counters: Option<(usize, usize, usize)> = None;
        let mut planned_seq_ms = f64::NAN;
        for workers in [0usize, 1, 2, 4, 8] {
            let options = EvalOptions {
                planner: Planner::CostBased,
                mode: if workers == 0 {
                    EvalMode::Sequential
                } else {
                    EvalMode::Parallel { workers }
                },
                ..EvalOptions::default()
            };
            let label = if workers == 0 {
                "planned_seq_ms".to_string()
            } else {
                format!("planned_w{workers}_ms")
            };
            let (stats, dump) = join_planning::run(&s, options);
            assert_eq!(
                dump, ref_dump,
                "E21 {label}: planned model must be bit-identical to the unplanned sequential reference"
            );
            assert_eq!(
                strip(stats),
                strip(ref_stats),
                "E21 {label}: non-planner EvalStats must match the unplanned reference"
            );
            assert!(stats.plans_compiled > 0, "E21 {label}: the planner must compile rules");
            let counters = (stats.plans_compiled, stats.replans, stats.seed_flips);
            match planned_counters {
                None => planned_counters = Some(counters),
                Some(expected) => assert_eq!(
                    counters, expected,
                    "E21 {label}: planner counters must not depend on mode or worker count"
                ),
            }
            let (_, ms) = time_ms(|| join_planning::run(&s, options).0.set_members);
            if workers == 0 {
                planned_seq_ms = ms;
            }
            values.push((label, ms));
        }
        let (compiled, replans, flips) = planned_counters.expect("planned arms ran");
        values.push(("plans_compiled".into(), compiled as f64));
        values.push(("replans".into(), replans as f64));
        values.push(("seed_flips".into(), flips as f64));
        values.push(("planned_speedup_seq".into(), unplanned_ms / planned_seq_ms));
        rows.push(Row {
            scale: format!("depth={depth} fanout={fanout}"),
            values,
        });
    }
    report.table(
        "E21: cost-based join planning (planned vs unplanned, filtered closure, 1/2/4/8 workers)",
        rows,
    );
}

/// E22 — the MVCC snapshot serving layer (PR 10): concurrent pinned-snapshot
/// reader sessions over the single-writer guarded commit pipeline, a
/// sessions x check-workers grid.  Every arm is oracle-checked, not just
/// timed: each reader reports its pinned epoch's canonical dump, and every
/// observed `(epoch, dump)` pair must be bit-identical to what a sequential
/// replay of the identical history records — snapshot isolation holds even
/// while the writer commits epochs ahead of the pinned readers.  The
/// registry counters close the loop: one publish per commit plus the
/// bootstrap, one pin per read, zero epochs retained after the run.
fn e22_snapshot_serving(report: &mut Report) {
    let employees = 60usize;
    let commits = 40usize;
    let oracle = serving::sequential_oracle(employees, commits);
    let mut rows = Vec::new();
    for &sessions in &[4usize, 16] {
        for &workers in &[1usize, 4] {
            let params = serving::ServingParams {
                employees,
                sessions,
                commits,
                workers,
            };
            let run = serving::run(&params);
            assert_eq!(run.committed + run.rejected, commits);
            assert!(run.rejected > 0, "E22: the schedule must exercise rejected commits");
            assert_eq!(
                run.dumps.len(),
                run.committed + 1,
                "E22: readers must observe every published epoch"
            );
            for (epoch, dump) in &run.dumps {
                assert_eq!(
                    oracle.get(epoch),
                    Some(dump),
                    "E22: epoch {epoch} dump diverged from the sequential oracle \
                     (sessions={sessions} workers={workers})"
                );
            }
            let reads_per_epoch = run.reads as f64 / run.stats.epochs_published as f64;
            let (_, serve_ms) = time_ms(|| serving::run(&params).reads);
            rows.push(Row {
                scale: format!("sessions={sessions} workers={workers}"),
                values: vec![
                    ("reads".into(), run.reads as f64),
                    ("epochs_published".into(), run.stats.epochs_published as f64),
                    ("reads_per_epoch".into(), reads_per_epoch),
                    ("read_p50_us".into(), serving::percentile_us(&run.read_us, 50.0) as f64),
                    ("read_p95_us".into(), serving::percentile_us(&run.read_us, 95.0) as f64),
                    ("read_p99_us".into(), serving::percentile_us(&run.read_us, 99.0) as f64),
                    (
                        "commit_p50_us".into(),
                        serving::percentile_us(&run.commit_us, 50.0) as f64,
                    ),
                    (
                        "commit_p99_us".into(),
                        serving::percentile_us(&run.commit_us, 99.0) as f64,
                    ),
                    ("snapshots_pinned".into(), run.stats.snapshots_pinned as f64),
                    ("snapshots_reclaimed".into(), run.stats.snapshots_reclaimed as f64),
                    ("pinned_after".into(), run.pinned_after as f64),
                    ("run_ms".into(), serve_ms),
                ],
            });
        }
    }
    report.table(
        "E22: MVCC snapshot serving (reader sessions x check workers, oracle-checked)",
        rows,
    );
}

/// Command-line arguments: `[--json <path>] [--only e17|e18|e19|e20|e21] [--scale 1|10]`.
struct Args {
    json: Option<String>,
    only: Option<String>,
    /// Datagen scale multiplier: 1 uses the default presets, 10 the
    /// `scaled10` presets (E19's large-scale memory arm).
    scale: usize,
}

/// Parse the command line (exits with usage on anything unexpected).
fn parse_args() -> Args {
    let mut args = Args {
        json: None,
        only: None,
        scale: 1,
    };
    let mut raw = std::env::args().skip(1);
    while let Some(flag) = raw.next() {
        match (flag.as_str(), raw.next()) {
            ("--json", Some(path)) => args.json = Some(path),
            ("--only", Some(table)) if ["e17", "e18", "e19", "e20", "e21", "e22"].contains(&table.as_str()) => {
                args.only = Some(table)
            }
            ("--scale", Some(n)) if n == "1" || n == "10" => args.scale = n.parse().expect("validated"),
            _ => {
                eprintln!("usage: experiments [--json <path>] [--only e17|e18|e19|e20|e21|e22] [--scale 1|10]");
                std::process::exit(2);
            }
        }
    }
    args
}
