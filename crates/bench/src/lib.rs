//! Shared harness for the PathLog experiments.
//!
//! Every experiment in `EXPERIMENTS.md` is a function here, used both by the
//! Criterion benches (`benches/*.rs`) and by the `experiments` binary that
//! prints the result tables.  Each function takes a prepared
//! [`Structure`] (so data generation is outside the measured region) and
//! returns a small, checkable result (a count or a set size), which the
//! integration tests compare across the PathLog engine and the baselines.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::BTreeSet;

use pathlog_baseline::relational::{queries as relq, tc};
use pathlog_baseline::{evaluate_onedim, materialize, OneDimQuery, RelationalDb, ViewDef};
use pathlog_core::names::Name;
use pathlog_core::prelude::*;
use pathlog_datagen::{CompanyParams, GenealogyParams};
use pathlog_parser::{parse_program, parse_term};

/// Workload construction shared by benches, examples and tests.
pub mod workloads {
    use super::*;

    /// A company structure with roughly `employees` employees.
    pub fn company(employees: usize) -> Structure {
        pathlog_datagen::company_structure(&CompanyParams::scaled(employees))
    }

    /// A genealogy structure of the given depth and fan-out.
    pub fn genealogy(depth: usize, fanout: usize) -> Structure {
        pathlog_datagen::genealogy_structure(&GenealogyParams {
            roots: 1,
            depth,
            fanout,
            seed: 42,
        })
    }

    /// The genealogy workload with the datagen scale presets applied: the
    /// default single-tree parameters, or the 10x preset
    /// ([`GenealogyParams::scaled10`], ten independent trees) when
    /// `tenfold` is set — the E19 memory experiment's large-scale arm.
    pub fn genealogy_at_scale(depth: usize, fanout: usize, tenfold: bool) -> Structure {
        let base = if tenfold {
            GenealogyParams::scaled10()
        } else {
            GenealogyParams::default()
        };
        pathlog_datagen::genealogy_structure(&GenealogyParams { depth, fanout, ..base })
    }

    /// The exact six-person family of Section 6.
    pub fn paper_family() -> Structure {
        pathlog_datagen::paper_family().to_structure()
    }

    /// A bill-of-materials (parts explosion) structure of the given depth.
    pub fn bom(depth: usize) -> Structure {
        pathlog_datagen::bom_structure(&pathlog_datagen::BomParams::with_depth(depth))
    }
}

/// Experiment E1: colours of employees' automobiles (queries 1.1–1.3).
pub mod colours {
    use super::*;

    /// PathLog formulation: one reference, `X:employee..vehicles:automobile.color[Z]`.
    pub fn pathlog(structure: &Structure) -> usize {
        let term = parse_term("X : employee..vehicles : automobile.color[Z]").expect("valid query");
        let engine = Engine::new();
        let colours: BTreeSet<Oid> = engine
            .query_term(structure, &term)
            .expect("query evaluates")
            .into_iter()
            .map(|a| a.object)
            .collect();
        colours.len()
    }

    /// O2SQL-style formulation (query 1.1): two range variables + membership condition.
    pub fn onedim(structure: &Structure) -> usize {
        let q = OneDimQuery::new()
            .from_class("X", "employee")
            .from_set("Y", "X", "vehicles")
            .where_isa("Y", "automobile")
            .select_path("Y", &["color"]);
        evaluate_onedim(structure, &q).len()
    }

    /// Flat relational formulation: three joins.
    pub fn relational(db: &RelationalDb) -> usize {
        relq::employee_automobile_colours(db).len()
    }
}

/// Experiment E2: the two-dimensional reference (2.1) versus the conjunction
/// of one-dimensional paths (1.4) and the relational plan.
pub mod two_dimensional {
    use super::*;

    /// The paper's reference (2.1), evaluated as a single PathLog reference.
    pub fn pathlog(structure: &Structure) -> usize {
        let term =
            parse_term("X : employee[age -> 30; city -> newYork]..vehicles : automobile[cylinders -> 4].color[Z]")
                .expect("valid query");
        Engine::new()
            .query_term(structure, &term)
            .expect("query evaluates")
            .len()
    }

    /// The same question as a conjunction of one-dimensional paths (1.4).
    pub fn onedim(structure: &Structure) -> usize {
        let q = OneDimQuery::new()
            .from_class("X", "employee")
            .from_set("Y", "X", "vehicles")
            .where_path_const("X", &["age"], Name::Int(30))
            .where_path_const("X", &["city"], Name::atom("newYork"))
            .where_isa("Y", "automobile")
            .where_path_const("Y", &["cylinders"], Name::Int(4))
            .select_var("X")
            .select_path("Y", &["color"]);
        evaluate_onedim(structure, &q).len()
    }

    /// The relational plan (six joins + three selections).
    pub fn relational(structure: &Structure, db: &RelationalDb) -> usize {
        relq::filtered_automobile_colours(structure, db).len()
    }
}

/// Experiment E3: the Section 2 manager query (red vehicle, produced in
/// Detroit, president is the owner).
pub mod manager_query {
    use super::*;

    /// One PathLog reference.
    pub fn pathlog(structure: &Structure) -> usize {
        let term = parse_term("X : manager..vehicles[color -> red].producedBy[cityOf -> detroit; president -> X]")
            .expect("valid query");
        let engine = Engine::new();
        let managers: BTreeSet<Oid> = engine
            .query_term(structure, &term)
            .expect("query evaluates")
            .into_iter()
            .filter_map(|a| a.bindings.get(&Var::new("X")))
            .collect();
        managers.len()
    }

    /// O2SQL-style: several FROM and WHERE clauses.
    pub fn onedim(structure: &Structure) -> usize {
        let q = OneDimQuery::new()
            .from_class("X", "manager")
            .from_set("Y", "X", "vehicles")
            .where_path_const("Y", &["color"], Name::atom("red"))
            .where_path_const("Y", &["producedBy", "cityOf"], Name::atom("detroit"))
            .where_path_var("Y", &["producedBy", "president"], "X")
            .select_var("X");
        evaluate_onedim(structure, &q).len()
    }

    /// Relational join plan.
    pub fn relational(structure: &Structure, db: &RelationalDb) -> usize {
        relq::manager_red_detroit_presidents(structure, db).len()
    }
}

/// Experiment E4/E6/E9: virtual objects (the address rule 2.4 and the
/// employee-boss rule 6.1) versus XSQL-style views (6.3).
pub mod virtual_objects {
    use super::*;

    /// Materialise address objects with the PathLog rule (2.4).  Returns the
    /// number of virtual objects created.
    pub fn pathlog_addresses(structure: &Structure) -> usize {
        let mut s = structure.clone();
        let program =
            parse_program("X.address[street -> X.street; city -> X.city] <- X : employee.").expect("valid rule");
        let stats = Engine::new().load_program(&mut s, &program).expect("rule evaluates");
        stats.virtual_objects
    }

    /// Materialise the same information with an XSQL-style view.  Returns the
    /// number of view objects created.
    pub fn xsql_view_addresses(structure: &Structure) -> usize {
        let mut s = structure.clone();
        let view = ViewDef::new("Address", "employee")
            .attr("street", &["street"])
            .attr("city", &["city"]);
        materialize(&mut s, &view).objects
    }

    /// The employee-boss rule (6.1): every employee gets a (virtual) boss that
    /// works for the same department.
    pub fn pathlog_virtual_bosses(structure: &Structure) -> usize {
        let mut s = structure.clone();
        let program = parse_program("X.boss2[worksFor -> D] <- X : employee[worksFor -> D].").expect("valid rule");
        let stats = Engine::new().load_program(&mut s, &program).expect("rule evaluates");
        stats.virtual_objects
    }

    /// The XSQL view (6.3) for the same derived information.
    pub fn xsql_employee_boss_view(structure: &Structure) -> usize {
        let mut s = structure.clone();
        let view = ViewDef::new("EmployeeBoss", "employee").attr("WorksFor", &["worksFor"]);
        materialize(&mut s, &view).objects
    }
}

/// Experiment E7: transitive closure (`desc` rules 6.4 and generic `kids.tc`)
/// versus the relational semi-naive baseline.
pub mod transitive_closure {
    use super::*;

    /// The PathLog program of (6.4).
    pub const DESC_RULES: &str = "X[desc ->> {Y}] <- X[kids ->> {Y}].\n\
                                  X[desc ->> {Y}] <- X..desc[kids ->> {Y}].";

    /// The generic transitive-closure program of Section 6, guarded by a
    /// class of base methods so that `tc` is only applied to extensionally
    /// given methods (the unguarded program has an infinite minimal model —
    /// see DESIGN.md).
    pub const GENERIC_TC_RULES: &str = "kids : baseMethod.\n\
                                        X[(M.tc) ->> {Y}] <- M : baseMethod, X[M ->> {Y}].\n\
                                        X[(M.tc) ->> {Y}] <- M : baseMethod, X..(M.tc)[M ->> {Y}].";

    /// Evaluate the `desc` rules; returns the total number of derived set members.
    pub fn pathlog_desc(structure: &Structure) -> usize {
        let mut s = structure.clone();
        let program = parse_program(DESC_RULES).expect("valid rules");
        Engine::new()
            .load_program(&mut s, &program)
            .expect("rules evaluate")
            .set_members
    }

    /// Evaluate the generic `kids.tc` rules; returns the derived set members.
    pub fn pathlog_generic(structure: &Structure) -> usize {
        let mut s = structure.clone();
        let program = parse_program(GENERIC_TC_RULES).expect("valid rules");
        Engine::new()
            .load_program(&mut s, &program)
            .expect("rules evaluate")
            .set_members
    }

    /// Relational semi-naive closure of the flat `kids` relation; returns the
    /// number of pairs in the closure.
    pub fn relational(db: &RelationalDb) -> usize {
        let base = db.attr("kids", "parent", "child");
        tc::transitive_closure(&base).len()
    }

    /// The deep-tree closure workload of the parallel ablation: the `desc`
    /// rules plus the set-copying summary rule (a second stratum with
    /// virtual-object heads), the same program as `ablation_delta_driven`.
    pub const PARALLEL_ABLATION_RULES: &str = "X[desc ->> {Y}] <- X[kids ->> {Y}].\n\
                                               X[desc ->> {Y}] <- X..desc[kids ->> {Y}].\n\
                                               X.summary[descendants ->> X..desc] <- X[kids ->> {Y}].";

    /// Evaluate the parallel-ablation program under an explicit evaluation
    /// mode (semi-naive in both cases); returns the derived set members and
    /// the run's [`EvalStats`] so callers can cross-check the modes.
    pub fn pathlog_desc_with_mode(structure: &Structure, mode: EvalMode) -> (usize, EvalStats) {
        pathlog_desc_with_options(
            structure,
            EvalOptions {
                mode,
                ..EvalOptions::default()
            },
        )
        .0
    }

    /// Evaluate the parallel-ablation program under arbitrary
    /// [`EvalOptions`] (schedule, executor, mode) on a throwaway engine —
    /// the E17 executor-ablation entry point.  Returns `((set members,
    /// stats), threads spawned by the run's engine)`, so callers can report
    /// the pooled executor's O(workers) spawn count against the scoped
    /// executor's O(solves × workers).
    pub fn pathlog_desc_with_options(structure: &Structure, options: EvalOptions) -> ((usize, EvalStats), usize) {
        let mut s = structure.clone();
        let program = parse_program(PARALLEL_ABLATION_RULES).expect("valid rules");
        let engine = Engine::with_options(options);
        let stats = engine.load_program(&mut s, &program).expect("rules evaluate");
        ((stats.set_members, stats), engine.threads_spawned())
    }
}

/// Experiment E10: parser throughput over the paper's concrete syntax.
pub mod parsing {
    use super::*;

    /// Every concrete-syntax expression quoted in the paper.
    pub const PAPER_EXPRESSIONS: &[&str] = &[
        "X : employee[age -> 30; city -> newYork]..vehicles : automobile[cylinders -> 4].color[Z]",
        "X[age -> 30; city -> newYork].vehicles[cylinders -> 4][Y].color[Z]",
        "X : manager..vehicles[color -> red].producedBy[cityOf -> detroit; president -> X]",
        "mary.spouse[boss -> mary].age",
        "mary.spouse[boss -> mary[age -> 25]]",
        "john.salary@(1994)",
        "mary[age -> 30; boss -> peter]",
        "L : (integer.list)",
        "p1..assistants[salary -> 1000]",
        "p2[friends ->> {p3, p4}]",
        "p2[friends ->> p1..assistants]",
        "p1..assistants.salary",
        "p1..assistants..projects",
        "p1.paidFor@(p1..vehicles)",
        "p1[assistants ->> {X[salary -> 1000]}]",
        "john..kids..kids",
        "X[power -> Y] <- X : automobile.engineOf[power -> Y].",
        "X.boss[worksFor -> D] <- X : employee[worksFor -> D].",
        "Z[worksFor -> D] <- X : employee[worksFor -> D].boss[Z].",
        "X.address[street -> X.street; city -> X.city] <- X : person.",
        "X[desc ->> {Y}] <- X[kids ->> {Y}].",
        "X[desc ->> {Y}] <- X..desc[kids ->> {Y}].",
        "X[(M.tc) ->> {Y}] <- X[M ->> {Y}].",
        "X[(M.tc) ->> {Y}] <- X..(M.tc)[M ->> {Y}].",
        "peter[kids ->> {tim, mary}].",
    ];

    /// Parse every paper expression once; returns the number parsed.
    pub fn parse_all() -> usize {
        let mut n = 0;
        for src in PAPER_EXPRESSIONS {
            if src.contains("<-") || src.trim_end().ends_with("}.") {
                pathlog_parser::parse_rule(src).expect("paper rule parses");
            } else {
                parse_term(src).expect("paper expression parses");
            }
            n += 1;
        }
        n
    }
}

/// Experiment E11: the direct semantics versus the F-logic translation
/// baseline (the contrast drawn in Section 2: "semantics is only sketched by
/// a transformation into F-logic, while we will give a direct semantics").
pub mod flogic_translation {
    use super::*;
    use pathlog_flogic::{FlatEngine, Translator};

    /// The filtered two-dimensional query used as the measured workload.
    pub const QUERY: &str = "?- X : employee..vehicles : automobile[cylinders -> 4].color[Z].";

    /// Answer the query with the direct semantics.
    pub fn direct(structure: &Structure) -> usize {
        let program = parse_program(QUERY).expect("query parses");
        Engine::new()
            .query(structure, &program.queries[0])
            .expect("query evaluates")
            .len()
    }

    /// Translate the query into flat molecules and answer it with the flat
    /// evaluator (includes translation time, which is part of the approach).
    pub fn translated(structure: &Structure) -> usize {
        let program = parse_program(QUERY).expect("query parses");
        let (flat, _) = Translator::new().program(&program).expect("query translates");
        FlatEngine::new()
            .query(structure, &flat.queries[0])
            .expect("flat query evaluates")
            .len()
    }

    /// The number of flat atoms the single PathLog reference expands into —
    /// the compactness measure of the "second dimension".
    pub fn translation_atoms() -> usize {
        let program = parse_program(QUERY).expect("query parses");
        let (_, stats) = Translator::new().program(&program).expect("query translates");
        stats.flat_atoms
    }
}

/// Experiment E12: the object-SQL frontend (O2SQL/XSQL surface syntax
/// compiled to PathLog) versus the native PathLog formulation.
pub mod sql_frontend {
    use super::*;
    use pathlog_sqlfront::{compile_query, execute_query, Catalog};

    /// Query (1.4) on the SQL surface.
    pub const SQL: &str = "SELECT Z FROM employee X, automobile Y WHERE X.vehicles[Y].color[Z] AND Y.cylinders[4]";
    /// The same question as a native PathLog reference.
    pub const PATHLOG: &str = "X : employee..vehicles : automobile[cylinders -> 4].color[Z]";

    /// The catalog the SQL compiler needs (which attributes are set-valued).
    pub fn catalog() -> Catalog {
        Catalog::with_set_attrs(["vehicles", "assistants", "friends", "kids"])
    }

    /// Compile the SQL text and execute it; returns the number of result rows.
    pub fn sql(structure: &Structure, catalog: &Catalog) -> usize {
        let compiled = compile_query(SQL, catalog).expect("SQL compiles");
        execute_query(structure, &compiled).expect("SQL executes").1.len()
    }

    /// Compile only (parse + translation to PathLog); returns the number of
    /// body literals of the compiled query.
    pub fn sql_compile_only(catalog: &Catalog) -> usize {
        compile_query(SQL, catalog).expect("SQL compiles").query.body.len()
    }

    /// Parse and evaluate the native PathLog reference; returns the number of
    /// distinct colours (the same result-column the SQL query projects).
    pub fn native(structure: &Structure) -> usize {
        let term = parse_term(PATHLOG).expect("reference parses");
        let colours: BTreeSet<Oid> = Engine::new()
            .query_term(structure, &term)
            .expect("reference evaluates")
            .into_iter()
            .filter_map(|a| a.bindings.get(&Var::new("Z")))
            .collect();
        colours.len()
    }
}

/// Experiment E13: production rules and active triggers (the paper's "other
/// kinds of rule languages") over the company workload.
pub mod reactive_rules {
    use super::*;
    use pathlog_core::program::Literal;
    use pathlog_core::term::{Filter, Term};
    use pathlog_reactive::{Action, ActiveStore, EcaAction, EcaRule, Event, ProductionEngine, ProductionRule};

    /// Run the minimum-wage production rule set (retract + assert) to
    /// quiescence; returns the number of rule firings.
    pub fn production_minimum_wage(structure: &Structure) -> usize {
        let mut s = structure.clone();
        s.int(60_000);
        let mut engine = ProductionEngine::new();
        engine.add_rule(ProductionRule::new(
            "minimum-wage",
            vec![
                Literal::pos(
                    Term::var("X")
                        .isa("employee")
                        .filter(Filter::scalar("salary", Term::var("S"))),
                ),
                Literal::pos(Term::var("S").scalar_args("lt", vec![Term::int(60_000)])),
            ],
            vec![
                Action::Retract(Term::var("X").filter(Filter::scalar("salary", Term::var("S")))),
                Action::Assert(Term::var("X").filter(Filter::scalar("salary", Term::int(60_000)))),
            ],
        ));
        engine.run(&mut s).expect("production rules reach quiescence").firings
    }

    /// E18 production workload: a three-phase classification cascade whose
    /// later phases stop touching the earlier phases' read keys — the shape
    /// delta-gated re-matching exploits (`staff` reads only `employee`,
    /// the band rules read `staff`/`salary`, and band assertions wake no
    /// rule at all).  Returns the run's statistics, the firing trace and
    /// the quiescent structure's canonical dump, so callers can cross-check
    /// arms bit-for-bit.
    pub fn production_classify(
        structure: &Structure,
        options: pathlog_reactive::ProductionOptions,
    ) -> (pathlog_reactive::ProductionStats, Vec<pathlog_reactive::Firing>, String) {
        let mut s = structure.clone();
        // The band threshold must exist in the universe for the comparison
        // literals to valuate it.
        s.int(60_000);
        let mut engine = ProductionEngine::with_options(options);
        engine.add_rule(ProductionRule::new(
            "staff",
            vec![Literal::pos(Term::var("X").isa("employee"))],
            vec![Action::Assert(Term::var("X").isa("staff"))],
        ));
        engine.add_rule(ProductionRule::new(
            "low-band",
            vec![
                Literal::pos(
                    Term::var("X")
                        .isa("staff")
                        .filter(Filter::scalar("salary", Term::var("S"))),
                ),
                Literal::pos(Term::var("S").scalar_args("lt", vec![Term::int(60_000)])),
            ],
            vec![Action::Assert(Term::var("X").isa("lowBand"))],
        ));
        engine.add_rule(ProductionRule::new(
            "high-band",
            vec![
                Literal::pos(
                    Term::var("X")
                        .isa("staff")
                        .filter(Filter::scalar("salary", Term::var("S"))),
                ),
                Literal::pos(Term::var("S").scalar_args("ge", vec![Term::int(60_000)])),
            ],
            vec![Action::Assert(Term::var("X").isa("highBand"))],
        ));
        let (stats, trace) = engine.run_traced(&mut s).expect("classification reaches quiescence");
        (stats, trace, s.canonical_dump())
    }

    /// E18 active workload: `updates` salary updates through a store whose
    /// fan-out rule set matches several rules per event (the batch shape the
    /// pooled rounds schedule parallelises) plus a second-level audit
    /// cascade.  Each update performs three external mutations (retract
    /// salary, retract the stale bonus, assert the new salary).  Returns the
    /// aggregated statistics and the final structure's canonical dump.
    pub fn active_fanout_updates(
        structure: &Structure,
        updates: usize,
        options: pathlog_reactive::ActiveOptions,
    ) -> (pathlog_reactive::ActiveStats, String) {
        use pathlog_reactive::ActiveStats;
        let mut store = ActiveStore::with_options(structure.clone(), options);
        store.add_rule(EcaRule::new(
            "mark-paid",
            Event::ScalarAsserted(Name::atom("salary")),
            vec![Literal::pos(Term::var("Receiver").isa("employee"))],
            vec![EcaAction::AddIsA {
                object: Term::var("Receiver"),
                class: Name::atom("paid"),
            }],
        ));
        store.add_rule(EcaRule::new(
            "keep-history",
            Event::ScalarAsserted(Name::atom("salary")),
            vec![Literal::pos(Term::var("Receiver").isa("employee"))],
            vec![EcaAction::AddSetMember {
                receiver: Term::var("Receiver"),
                method: Name::atom("payHistory"),
                member: Term::var("Value"),
            }],
        ));
        store.add_rule(EcaRule::new(
            "derive-bonus",
            Event::ScalarAsserted(Name::atom("salary")),
            vec![],
            vec![EcaAction::AssertScalar {
                receiver: Term::var("Receiver"),
                method: Name::atom("bonusBase"),
                value: Term::var("Value"),
            }],
        ));
        store.add_rule(EcaRule::new(
            "audit",
            Event::ScalarAsserted(Name::atom("bonusBase")),
            vec![],
            vec![EcaAction::AddIsA {
                object: Term::var("Receiver"),
                class: Name::atom("audited"),
            }],
        ));
        let salary = store.oid("salary");
        let bonus = store.oid("bonusBase");
        let mut total = ActiveStats::default();
        for i in 0..updates {
            let employee = store.oid(&format!("e{i}"));
            let amount = store.int(70_000 + i as i64);
            total.merge(&store.retract_scalar(salary, employee).expect("retraction triggers run"));
            total.merge(
                &store
                    .retract_scalar(bonus, employee)
                    .expect("bonus retraction triggers run"),
            );
            total.merge(
                &store
                    .assert_scalar(salary, employee, amount)
                    .expect("assertion triggers run"),
            );
        }
        (total, store.into_structure().canonical_dump())
    }

    /// Push `updates` salary updates through an active store with a
    /// two-level trigger cascade; returns the total number of trigger firings.
    pub fn active_salary_cascade(structure: &Structure, updates: usize) -> usize {
        let mut store = ActiveStore::new(structure.clone());
        store.add_rule(EcaRule::new(
            "derive-bonus",
            Event::ScalarAsserted(Name::atom("salary")),
            vec![Literal::pos(Term::var("Receiver").isa("employee"))],
            vec![EcaAction::AssertScalar {
                receiver: Term::var("Receiver"),
                method: Name::atom("bonusBase"),
                value: Term::var("Value"),
            }],
        ));
        store.add_rule(EcaRule::new(
            "audit",
            Event::ScalarAsserted(Name::atom("bonusBase")),
            vec![],
            vec![EcaAction::AddIsA {
                object: Term::var("Receiver"),
                class: Name::atom("audited"),
            }],
        ));
        let salary = store.oid("salary");
        let mut firings = 0;
        for i in 0..updates {
            let employee = store.oid(&format!("e{i}"));
            let amount = store.int(70_000 + i as i64);
            store.retract_scalar(salary, employee).expect("retraction triggers run");
            // the bonusBase from the previous round must not conflict
            let bonus = store.oid("bonusBase");
            store
                .retract_scalar(bonus, employee)
                .expect("bonus retraction triggers run");
            firings += store
                .assert_scalar(salary, employee, amount)
                .expect("assertion triggers run")
                .firings;
        }
        firings
    }
}

/// Experiment E14: the Section 6 transitive-closure rules on a
/// bill-of-materials DAG (deep recursion with shared sub-assemblies).
pub mod parts_explosion {
    use super::*;

    /// The closure rules, with `subparts` in place of `kids`.
    pub const CONTAINS_RULES: &str = "X[contains ->> {Y}] <- X[subparts ->> {Y}].\n\
                                      X[contains ->> {Y}] <- X..contains[subparts ->> {Y}].";

    /// Evaluate the closure rules; returns the derived set members.
    pub fn pathlog(structure: &Structure) -> usize {
        let mut s = structure.clone();
        let program = parse_program(CONTAINS_RULES).expect("closure rules parse");
        Engine::new()
            .load_program(&mut s, &program)
            .expect("closure rules evaluate")
            .set_members
    }

    /// Relational semi-naive closure of the flat `subparts` relation.
    pub fn relational(db: &RelationalDb) -> usize {
        let base = db.attr("subparts", "parent", "child");
        tc::transitive_closure(&base).len()
    }
}

/// Experiment E21: the cost-based join planner (PR 9).
pub mod join_planning {
    use super::*;

    /// The filtered-closure workload: the recursive `desc` closure plus a
    /// 3-literal join whose *written* order is deliberately bad — the big
    /// derived `desc` relation comes first, then the `kids` join, and the
    /// highly selective `special` class test dead last.  The interpreted
    /// written-order path enumerates the full closure per pass; the planner
    /// reorders to seed from `special` (a handful of objects) and join
    /// outward, so the planned arm must be outright faster here.
    pub const FILTERED_CLOSURE_RULES: &str = "X[desc ->> {Y}] <- X[kids ->> {Y}].\n\
                                              X[desc ->> {Y}] <- X..desc[kids ->> {Y}].\n\
                                              X[sdesc ->> {Y}] <- X[desc ->> {Y}], Y[kids ->> {Z}], Z : special.";

    /// A genealogy tree of `depth`/`fanout` with a sparse `special` class:
    /// every 37th distinct child node (in oid order) is special, so the
    /// class stays a small fraction of the universe at every scale.
    pub fn workload(depth: usize, fanout: usize) -> Structure {
        let mut s = workloads::genealogy(depth, fanout);
        let kids = s.atom("kids");
        let special = s.atom("special");
        let mut members: Vec<Oid> = s
            .facts()
            .set_facts()
            .filter(|f| f.method == kids)
            .flat_map(|f| f.members.iter().copied())
            .collect();
        members.sort_unstable();
        members.dedup();
        for &o in members.iter().step_by(37) {
            s.add_isa(o, special);
        }
        s
    }

    /// Evaluate the filtered-closure rules under `options`; returns the
    /// run's [`EvalStats`] and the model's canonical dump, so callers can
    /// counter-assert planned ≡ unplanned bit for bit.
    pub fn run(structure: &Structure, options: EvalOptions) -> (EvalStats, String) {
        let mut s = structure.clone();
        let program = parse_program(FILTERED_CLOSURE_RULES).expect("filtered-closure rules parse");
        let stats = Engine::with_options(options)
            .load_program(&mut s, &program)
            .expect("filtered-closure rules evaluate");
        (stats, s.canonical_dump())
    }

    /// Evaluate with just a planner selection (sequential, all other
    /// options default); returns the derived set members — the
    /// Criterion-bench entry point.
    pub fn members(structure: &Structure, planner: Planner) -> usize {
        run(
            structure,
            EvalOptions {
                planner,
                ..EvalOptions::default()
            },
        )
        .0
        .set_members
    }
}

/// Peak-RSS measurement for the memory experiments (Linux only; zero on
/// platforms or containers where `/proc` is unavailable, so callers must
/// gate assertions on a non-zero reading).
pub mod rss {
    /// The process's peak resident set size in kilobytes (`VmHWM` from
    /// `/proc/self/status`), or 0 when it cannot be read.
    pub fn peak_rss_kb() -> u64 {
        let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
            return 0;
        };
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                return rest.trim().trim_end_matches("kB").trim().parse().unwrap_or(0);
            }
        }
        0
    }

    /// Reset the peak-RSS watermark to the current RSS (write `5` to
    /// `/proc/self/clear_refs`, Linux >= 4.0).  Returns whether the reset
    /// succeeded; per-arm deltas are only meaningful when it did.
    pub fn reset_peak_rss() -> bool {
        std::fs::write("/proc/self/clear_refs", "5").is_ok()
    }

    /// Measure the peak-RSS increment of running `f`: reset the watermark,
    /// run, and report `(result, delta_kb)`.  The delta is 0 when the
    /// platform does not support the reset (never negative).
    pub fn measure<T>(f: impl FnOnce() -> T) -> (T, u64) {
        let supported = reset_peak_rss();
        let before = peak_rss_kb();
        let result = f();
        let after = peak_rss_kb();
        let delta = if supported { after.saturating_sub(before) } else { 0 };
        (result, delta)
    }
}

/// Experiment E19: columnar fact storage + factorized path answers — the
/// memory side of the refactor.  Compares the exploded tuple representation
/// of `X..desc` answers against the factorized DAG (which shares the fact
/// table's member runs), on the closure of a deep genealogy.
pub mod columnar_factorized {
    use super::*;

    /// The query whose answers are product-shaped after closure.
    pub const QUERY: &str = "X..desc";

    /// Run the `desc` closure rules on a clone of `structure` and return the
    /// closed structure (shared by both representation arms, so the closure
    /// itself is outside any measured region).
    pub fn close(structure: &Structure) -> Structure {
        let mut s = structure.clone();
        let program = parse_program(transitive_closure::DESC_RULES).expect("closure rules parse");
        Engine::new().load_program(&mut s, &program).expect("closure evaluates");
        s
    }

    /// Run the closure under arbitrary options and return the canonical
    /// dump — the E19 bit-identity cross-check against the sequential
    /// reference.
    pub fn closed_dump(structure: &Structure, options: EvalOptions) -> String {
        let mut s = structure.clone();
        let program = parse_program(transitive_closure::DESC_RULES).expect("closure rules parse");
        Engine::with_options(options)
            .load_program(&mut s, &program)
            .expect("closure evaluates");
        s.canonical_dump()
    }

    /// Materialize the exploded answer tuples of [`QUERY`].
    pub fn materialized(closed: &Structure) -> Vec<Answer> {
        let term = parse_term(QUERY).expect("query parses");
        Engine::new().query_term(closed, &term).expect("query evaluates")
    }

    /// Build the factorized answer DAG of [`QUERY`].
    pub fn factorized(closed: &Structure) -> FactorizedAnswers {
        let term = parse_term(QUERY).expect("query parses");
        Engine::new()
            .query_term_factorized(closed, &term)
            .expect("query evaluates")
    }

    /// Check that the factorized enumeration is bit-identical to the
    /// materialized tuples — same answers, same order — without
    /// re-materializing the DAG into a second tuple vector.
    pub fn enumeration_matches(fact: &FactorizedAnswers, tuples: &[Answer]) -> bool {
        let mut i = 0usize;
        let mut ok = true;
        fact.for_each(&mut |bindings, object| {
            ok = ok && i < tuples.len() && tuples[i].bindings == *bindings && tuples[i].object == object;
            i += 1;
        });
        ok && i == tuples.len()
    }
}

/// Experiment E20: check-on-commit integrity constraints.  Guarded
/// transactions over the datagen company store, comparing the incremental
/// (delta-gated) constraint check at commit against a forced full re-check,
/// plus the quarantine arm: inconsistency-tolerant degradation under pay
/// cuts that violate the wage-floor constraint.
pub mod constraints_commit {
    use super::*;
    use pathlog_oodb::{CommitError, ObjectStore, Value};

    /// The wage floor of the `underpaid` denial constraint.
    pub const WAGE_FLOOR: i64 = 40_000;

    /// The guarded company store at the given scale.  One salary is pinned
    /// to the exact floor so the comparison literal's threshold is interned
    /// in the structure the guard shadows (builtins only relate interned
    /// integers).
    pub fn store(employees: usize) -> ObjectStore {
        let mut db = pathlog_datagen::generate_company(&CompanyParams::scaled(employees));
        db.set("e0", "salary", Value::Int(WAGE_FLOOR)).expect("e0 exists");
        db
    }

    /// The E20 denial constraints: no self-bossing, no self-friendship, no
    /// salary below the wage floor.  `wage_policy` selects what happens to
    /// wage violations (the structural rules always reject).
    pub fn constraints(wage_policy: ConstraintPolicy) -> ConstraintSet {
        [
            Constraint::new(
                "self_boss",
                vec![Literal::pos(
                    Term::var("X").filter(Filter::scalar("boss", Term::var("X"))),
                )],
                ConstraintPolicy::Reject,
            )
            .expect("range-restricted"),
            Constraint::new(
                "self_friend",
                vec![Literal::pos(
                    Term::var("X").filter(Filter::set("friends", vec![Term::var("X")])),
                )],
                ConstraintPolicy::Reject,
            )
            .expect("range-restricted"),
            Constraint::new(
                "underpaid",
                vec![
                    Literal::pos(
                        Term::var("X")
                            .isa("employee")
                            .filter(Filter::scalar("salary", Term::var("S"))),
                    ),
                    Literal::pos(Term::var("S").scalar_args("lt", vec![Term::int(WAGE_FLOOR)])),
                ],
                wage_policy,
            )
            .expect("range-restricted"),
        ]
        .into_iter()
        .collect()
    }

    /// The outcome of one guarded-commit run.
    pub struct CommitRun {
        /// Commits that passed the check.
        pub committed: usize,
        /// Commits rejected (and rolled back) by a constraint.
        pub rejected: usize,
        /// Constraint names of the rejecting violations, in commit order —
        /// the cross-check between the incremental and full arms.
        pub rejections: Vec<String>,
        /// Wage violations already present in the generated data, accepted
        /// at install time (inconsistency tolerance of pre-existing state).
        pub baseline_violations: usize,
        /// The guard's cumulative check counters.
        pub stats: CheckStats,
    }

    /// Run `updates` guarded commits over a fresh store: friend-edge adds,
    /// with every fifth commit attempting an illegal self-friendship that
    /// must be rejected and rolled back.  With `force_full`, an out-of-band
    /// store touch before each transaction invalidates the guard's shadow,
    /// so every commit pays a full shadow rebuild and re-solves every
    /// constraint — the ablation baseline the incremental path is measured
    /// against.
    pub fn run_commits(employees: usize, updates: usize, force_full: bool, engine: Engine) -> CommitRun {
        let mut db = store(employees);
        let baseline = db
            .set_constraints(constraints(ConstraintPolicy::Reject), engine)
            .expect("constraints install");
        let (mut committed, mut rejected) = (0usize, 0usize);
        let mut rejections = Vec::new();
        for i in 0..updates {
            if force_full {
                let city = db.get("e0", "city").cloned().expect("e0 has a city");
                db.set("e0", "city", city).expect("out-of-band touch");
            }
            let a = format!("e{}", i % employees);
            if i % 5 == 4 {
                let mut txn = db.begin();
                txn.add(&a, "friends", Value::obj(&a)).expect("stage self-friendship");
                match txn.commit() {
                    Err(CommitError::Rejected { violations, .. }) => {
                        rejected += 1;
                        rejections.extend(violations.into_iter().map(|v| v.constraint.to_string()));
                    }
                    other => panic!("self-friendship must be rejected, got {other:?}"),
                }
            } else {
                let mut b = format!("e{}", (i * 7 + 1) % employees);
                if b == a {
                    b = format!("e{}", (i * 7 + 2) % employees);
                }
                let mut txn = db.begin();
                txn.add(&a, "friends", Value::obj(&b)).expect("stage friend edge");
                let receipt = txn.commit().expect("legal friend edge commits");
                assert!(receipt.checked, "the guard checked the commit");
                committed += 1;
            }
        }
        let stats = db.constraint_guard().expect("guard installed").stats();
        CommitRun {
            committed,
            rejected,
            rejections,
            baseline_violations: baseline.len(),
            stats,
        }
    }

    /// The salary query served during degraded operation.
    pub fn salary_query() -> Query {
        Query::new(vec![
            Literal::pos(Term::var("X").isa("employee")),
            Literal::pos(Term::var("X").filter(Filter::scalar("salary", Term::var("S")))),
        ])
    }

    /// The outcome of the quarantine (tolerant-degradation) arm.
    pub struct QuarantineRun {
        /// Violations quarantined (facts tagged, commit allowed) over the run.
        pub quarantined: usize,
        /// Tolerant answers whose derivation needs a quarantined fact.
        pub tainted: usize,
        /// Tolerant answers derivable from the consistent part alone.
        pub clean: usize,
        /// Classical answer count on the same (inconsistent) structure —
        /// must equal `tainted + clean`: quarantine degrades answers, it
        /// does not drop them.
        pub classical: usize,
    }

    /// Under a `Quarantine` wage policy, commit `cuts` pay cuts below the
    /// wage floor — each commits successfully with its violating facts
    /// tagged — then serve the salary query tolerantly and classically.
    pub fn run_quarantine(employees: usize, cuts: usize) -> QuarantineRun {
        let mut db = store(employees);
        let engine = Engine::with_options(EvalOptions {
            tolerance: Tolerance::Tolerant,
            ..EvalOptions::default()
        });
        db.set_constraints(constraints(ConstraintPolicy::Quarantine), engine)
            .expect("constraints install");
        let mut quarantined = 0usize;
        for i in 0..cuts {
            let a = format!("e{}", (i * 3) % employees);
            let mut txn = db.begin();
            txn.set(&a, "salary", Value::Int(10_000 + i as i64))
                .expect("stage pay cut");
            let receipt = txn.commit().expect("quarantine policy commits");
            quarantined += receipt.quarantined.len();
        }
        let answers = db.tolerant_query(&salary_query()).expect("tolerant query serves");
        let tainted = answers
            .answers
            .iter()
            .filter(|a| !matches!(a.status, ConsistencyStatus::Clean))
            .count();
        let clean = answers.answers.len() - tainted;
        let classical = Engine::new()
            .query(&db.to_structure(), &salary_query())
            .expect("classical query serves")
            .len();
        QuarantineRun {
            quarantined,
            tainted,
            clean,
            classical,
        }
    }
}

/// Experiment 22: the MVCC snapshot serving layer — many concurrent
/// pinned-snapshot reader sessions over a single-writer guarded commit
/// pipeline ([`ObjectStore::begin_session`](pathlog_oodb::ObjectStore::begin_session)).
///
/// The workload replays the E20 commit schedule (friend-edge adds, every
/// fifth an illegal self-friendship the guard rejects) while fanning a
/// fresh [`Session`](pathlog_oodb::Session) to every reader thread after
/// each commit attempt.  Readers dump and query their pinned epoch while
/// the writer races ahead, so epoch `k` pins are routinely alive during
/// commits at epochs `> k` — exactly the isolation the cross-check
/// verifies: every observed `(epoch, canonical_dump)` pair must be
/// bit-identical to the one a **sequential oracle** records when it
/// replays the identical history with no concurrency at all.
pub mod serving {
    use super::*;
    use pathlog_oodb::{CommitError, ObjectStore, Value};
    use std::collections::BTreeMap;
    use std::sync::mpsc;
    use std::time::Instant;

    /// One arm of the E22 grid.
    #[derive(Debug, Clone, Copy)]
    pub struct ServingParams {
        /// Company scale (employees).
        pub employees: usize,
        /// Concurrent reader threads; each receives one session per commit
        /// attempt.
        pub sessions: usize,
        /// Writer commit attempts (every fifth is rejected by the guard and
        /// publishes no epoch).
        pub commits: usize,
        /// Constraint-check worker threads on the commit pipeline (`<= 1`
        /// means a sequential engine).
        pub workers: usize,
    }

    /// The outcome of one serving run.  Construction already asserts the
    /// invariants that do not need the oracle (epoch monotonicity, readers
    /// at the same epoch agreeing, full reclamation); the caller checks
    /// the dumps against [`sequential_oracle`].
    #[derive(Debug)]
    pub struct ServingRun {
        /// Commits that passed the guard (each published one epoch).
        pub committed: usize,
        /// Commits rejected and rolled back (no epoch published).
        pub rejected: usize,
        /// Reader session reads completed (`sessions * (commits + 1)`,
        /// counting the pre-commit bootstrap round).
        pub reads: usize,
        /// Per-read latency samples (pin + dump + salary query), in µs.
        pub read_us: Vec<u64>,
        /// Per-commit-attempt writer latencies (begin/stage/commit), in µs.
        pub commit_us: Vec<u64>,
        /// The canonical dump every reader observed at each pinned epoch —
        /// already asserted identical across readers of the same epoch.
        pub dumps: BTreeMap<Epoch, String>,
        /// Registry lifetime counters at the end of the run.
        pub stats: SnapshotStats,
        /// Epochs still retained after all sessions dropped — an epoch
        /// leak unless zero.
        pub pinned_after: usize,
    }

    fn check_engine(workers: usize) -> Engine {
        if workers <= 1 {
            Engine::new()
        } else {
            Engine::with_options(EvalOptions {
                mode: EvalMode::Parallel { workers },
                executor: ExecutorKind::Pooled,
                ..EvalOptions::default()
            })
        }
    }

    /// The guarded store every arm (and the oracle) starts from.
    fn guarded_store(employees: usize, workers: usize) -> ObjectStore {
        let mut db = constraints_commit::store(employees);
        db.set_constraints(
            constraints_commit::constraints(ConstraintPolicy::Reject),
            check_engine(workers),
        )
        .expect("constraints install");
        db
    }

    /// Perform commit attempt `i` of the shared schedule.  Returns the
    /// published epoch for a committed transaction, `None` for the every-
    /// fifth rejected self-friendship; panics on any other outcome.
    fn commit_step(db: &mut ObjectStore, i: usize, employees: usize) -> Option<Epoch> {
        let a = format!("e{}", i % employees);
        if i % 5 == 4 {
            let mut txn = db.begin();
            txn.add(&a, "friends", Value::obj(&a)).expect("stage self-friendship");
            match txn.commit() {
                Err(CommitError::Rejected { .. }) => None,
                other => panic!("self-friendship must be rejected, got {other:?}"),
            }
        } else {
            let mut b = format!("e{}", (i * 7 + 1) % employees);
            if b == a {
                b = format!("e{}", (i * 7 + 2) % employees);
            }
            let mut txn = db.begin();
            txn.add(&a, "friends", Value::obj(&b)).expect("stage friend edge");
            let receipt = txn.commit().expect("legal friend edge commits");
            Some(receipt.epoch.expect("serving is active, commits publish"))
        }
    }

    /// Run one concurrent arm: `sessions` reader threads consume pinned
    /// sessions over channels while the single writer replays the commit
    /// schedule without waiting for them.
    pub fn run(params: &ServingParams) -> ServingRun {
        let ServingParams {
            employees,
            sessions,
            commits,
            workers,
        } = *params;
        let mut db = guarded_store(employees, workers);

        let (result_tx, result_rx) = mpsc::channel::<(Epoch, String, usize, u64)>();
        let mut feeds = Vec::with_capacity(sessions);
        let mut readers = Vec::with_capacity(sessions);
        for _ in 0..sessions {
            let (tx, rx) = mpsc::channel::<pathlog_oodb::Session>();
            let results = result_tx.clone();
            feeds.push(tx);
            readers.push(std::thread::spawn(move || {
                let query = constraints_commit::salary_query();
                for session in rx {
                    let start = Instant::now();
                    let epoch = session.epoch();
                    let dump = session.canonical_dump();
                    let answers = session.query(&query).expect("snapshot query serves").len();
                    let us = start.elapsed().as_micros() as u64;
                    if results.send((epoch, dump, answers, us)).is_err() {
                        break;
                    }
                }
            }));
        }
        drop(result_tx);

        // Bootstrap round: activate serving (first publish) before the
        // first commit, same as the oracle, and give every reader a
        // pre-commit epoch to report.
        for feed in &feeds {
            feed.send(db.begin_session()).expect("reader alive");
        }

        let (mut committed, mut rejected) = (0usize, 0usize);
        let mut last_epoch = db.version();
        let mut commit_us = Vec::with_capacity(commits);
        for i in 0..commits {
            let start = Instant::now();
            let published = commit_step(&mut db, i, employees);
            commit_us.push(start.elapsed().as_micros() as u64);
            match published {
                Some(epoch) => {
                    assert!(epoch > last_epoch, "epochs are strictly increasing");
                    last_epoch = epoch;
                    committed += 1;
                }
                None => rejected += 1,
            }
            for feed in &feeds {
                feed.send(db.begin_session()).expect("reader alive");
            }
        }
        drop(feeds);

        let mut dumps: BTreeMap<Epoch, String> = BTreeMap::new();
        let mut read_us = Vec::new();
        let mut reads = 0usize;
        for (epoch, dump, answers, us) in result_rx {
            assert!(answers > 0, "the salary query answers on every snapshot");
            match dumps.get(&epoch) {
                Some(seen) => assert_eq!(seen, &dump, "readers pinned to epoch {epoch} disagree"),
                None => {
                    dumps.insert(epoch, dump);
                }
            }
            read_us.push(us);
            reads += 1;
        }
        for reader in readers {
            reader.join().expect("reader thread exits cleanly");
        }
        assert_eq!(reads, sessions * (commits + 1), "every fed session was read");

        let stats = db.serving_stats();
        let pinned_after = db.pinned_epochs();
        assert_eq!(pinned_after, 0, "all epochs reclaimed after sessions drop");
        assert_eq!(
            stats.epochs_published,
            committed + 1,
            "one epoch per commit plus the bootstrap publish"
        );
        assert_eq!(stats.snapshots_pinned, reads, "one pin per session");
        assert!(
            stats.snapshots_reclaimed <= stats.snapshots_pinned,
            "reclamations cannot outnumber pins"
        );
        ServingRun {
            committed,
            rejected,
            reads,
            read_us,
            commit_us,
            dumps,
            stats,
            pinned_after,
        }
    }

    /// The sequential oracle: replay the identical history — same store
    /// bootstrap, same serving activation point, same commit schedule —
    /// with a sequential check engine and **no concurrency**, recording
    /// the canonical dump a session pins after every commit attempt.
    /// Identical histories assign identical oids, so each concurrent
    /// arm's observed dumps must match these bit-for-bit.
    pub fn sequential_oracle(employees: usize, commits: usize) -> BTreeMap<Epoch, String> {
        let mut db = guarded_store(employees, 1);
        let mut dumps = BTreeMap::new();
        let bootstrap = db.begin_session();
        dumps.insert(bootstrap.epoch(), bootstrap.canonical_dump());
        drop(bootstrap);
        for i in 0..commits {
            commit_step(&mut db, i, employees);
            let session = db.begin_session();
            dumps.entry(session.epoch()).or_insert_with(|| session.canonical_dump());
        }
        dumps
    }

    /// The `p`-th percentile (0–100) of `samples`, by nearest-rank on a
    /// sorted copy.  Zero on an empty slice.
    pub fn percentile_us(samples: &[u64], p: f64) -> u64 {
        if samples.is_empty() {
            return 0;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }
}

/// One row of an experiment report: the scale point and the measured values.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Scale label, e.g. `employees=1000` or `depth=8`.
    pub scale: String,
    /// (series name, value) pairs.
    pub values: Vec<(String, f64)>,
}

impl std::fmt::Display for Row {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:<20}", self.scale)?;
        for (name, value) in &self.values {
            write!(f, " {name}={value:.3}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pathlog_and_baselines_agree_on_colours() {
        let s = workloads::company(100);
        let db = RelationalDb::from_structure(&s);
        let a = colours::pathlog(&s);
        let b = colours::onedim(&s);
        let c = colours::relational(&db);
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert!(a > 0);
    }

    #[test]
    fn pathlog_and_baselines_agree_on_two_dimensional_query() {
        let s = workloads::company(200);
        let db = RelationalDb::from_structure(&s);
        let b = two_dimensional::onedim(&s);
        let c = two_dimensional::relational(&s, &db);
        // The relational plan projects colours only; the one-dimensional
        // query returns (X, colour) pairs, so compare colour counts by
        // re-deriving them from the PathLog answers instead.
        let term =
            parse_term("X : employee[age -> 30; city -> newYork]..vehicles : automobile[cylinders -> 4].color[Z]")
                .unwrap();
        let answers = Engine::new().query_term(&s, &term).unwrap();
        let colours: BTreeSet<Oid> = answers.iter().map(|a| a.object).collect();
        let pairs: BTreeSet<(Option<Oid>, Oid)> = answers
            .iter()
            .map(|a| (a.bindings.get(&Var::new("X")), a.object))
            .collect();
        assert_eq!(colours.len(), c);
        assert_eq!(pairs.len(), b);
    }

    #[test]
    fn pathlog_and_baselines_agree_on_manager_query() {
        let s = workloads::company(300);
        let db = RelationalDb::from_structure(&s);
        let a = manager_query::pathlog(&s);
        let b = manager_query::onedim(&s);
        let c = manager_query::relational(&s, &db);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn virtual_objects_and_views_materialise_the_same_count() {
        let s = workloads::company(100);
        let rule_count = virtual_objects::pathlog_addresses(&s);
        let view_count = virtual_objects::xsql_view_addresses(&s);
        assert_eq!(rule_count, view_count);
        assert!(rule_count > 0);
        assert_eq!(
            virtual_objects::pathlog_virtual_bosses(&s),
            virtual_objects::xsql_employee_boss_view(&s)
        );
    }

    #[test]
    fn transitive_closure_counts_agree() {
        let s = workloads::genealogy(5, 2);
        let db = RelationalDb::from_structure(&s);
        let a = transitive_closure::pathlog_desc(&s);
        let b = transitive_closure::relational(&db);
        assert_eq!(a, b);
        let c = transitive_closure::pathlog_generic(&s);
        assert_eq!(a, c, "generic kids.tc derives the same closure");
    }

    #[test]
    fn paper_family_closure_has_five_descendants_of_peter() {
        let s = workloads::paper_family();
        let mut s2 = s.clone();
        let program = parse_program(transitive_closure::DESC_RULES).unwrap();
        Engine::new().load_program(&mut s2, &program).unwrap();
        let desc = Engine::new()
            .eval_ground(&s2, &parse_term("peter..desc").unwrap())
            .unwrap();
        assert_eq!(desc.len(), 5);
    }

    #[test]
    fn parallel_and_sequential_ablation_agree() {
        // The worker counts here must stay aligned with the E16/E17
        // cross-checks and the CI experiments job: 1/2/4/8.
        let s = workloads::genealogy(7, 2);
        let (seq_members, seq_stats) = transitive_closure::pathlog_desc_with_mode(&s, EvalMode::Sequential);
        for workers in [1usize, 2, 4, 8] {
            let (members, stats) = transitive_closure::pathlog_desc_with_mode(&s, EvalMode::Parallel { workers });
            assert_eq!(members, seq_members, "answer counts must match at {workers} workers");
            assert_eq!(stats, seq_stats, "EvalStats must match at {workers} workers");
        }
        assert!(seq_members > 0);
    }

    #[test]
    fn executor_and_schedule_ablation_arms_agree_on_the_fixpoint() {
        let s = workloads::genealogy(6, 2);
        let ((seq_members, seq_stats), _) = transitive_closure::pathlog_desc_with_options(&s, EvalOptions::default());
        for schedule in [Schedule::CrossRule, Schedule::RuleAtATime] {
            for executor in [ExecutorKind::Pooled, ExecutorKind::Scoped] {
                let options = EvalOptions {
                    mode: EvalMode::Parallel { workers: 4 },
                    schedule,
                    executor,
                    ..EvalOptions::default()
                };
                let ((members, stats), _) = transitive_closure::pathlog_desc_with_options(&s, options);
                assert_eq!(
                    members, seq_members,
                    "derived counts must match for {schedule:?}/{executor:?}"
                );
                if schedule == Schedule::CrossRule {
                    assert_eq!(stats, seq_stats, "cross-rule EvalStats must match {executor:?}");
                }
            }
        }
    }

    #[test]
    fn all_paper_expressions_parse() {
        assert_eq!(parsing::parse_all(), parsing::PAPER_EXPRESSIONS.len());
    }

    #[test]
    fn direct_and_translated_evaluation_agree() {
        let s = workloads::company(150);
        assert_eq!(flogic_translation::direct(&s), flogic_translation::translated(&s));
        assert!(
            flogic_translation::translation_atoms() >= 5,
            "one reference expands into a conjunction"
        );
    }

    #[test]
    fn sql_frontend_and_native_pathlog_agree() {
        let s = workloads::company(150);
        let catalog = sql_frontend::catalog();
        assert_eq!(sql_frontend::sql(&s, &catalog), sql_frontend::native(&s));
        assert!(sql_frontend::sql_compile_only(&catalog) >= 3);
    }

    #[test]
    fn reactive_experiments_run_on_the_company_workload() {
        let s = workloads::company(80);
        let firings = reactive_rules::production_minimum_wage(&s);
        assert!(firings > 0, "some employee is below the threshold");
        let cascade = reactive_rules::active_salary_cascade(&s, 10);
        assert_eq!(
            cascade, 20,
            "each update fires derive-bonus plus the cascaded audit trigger"
        );
    }

    #[test]
    fn parts_explosion_counts_agree_with_the_relational_closure() {
        let s = workloads::bom(5);
        let db = RelationalDb::from_structure(&s);
        assert_eq!(parts_explosion::pathlog(&s), parts_explosion::relational(&db));
        assert!(parts_explosion::pathlog(&s) > 0);
    }

    #[test]
    fn guarded_commits_cross_check_incremental_against_full_rechecks() {
        let inc = constraints_commit::run_commits(60, 20, false, Engine::new());
        let full = constraints_commit::run_commits(60, 20, true, Engine::new());
        assert_eq!(inc.rejections, full.rejections, "same violations in the same order");
        assert_eq!(inc.committed, full.committed);
        assert!(inc.rejected > 0);
        assert!(
            inc.stats.condition_solves < full.stats.condition_solves,
            "incremental must solve strictly fewer conditions"
        );
        assert!(inc.stats.constraints_skipped > 0);
    }

    #[test]
    fn quarantined_pay_cuts_degrade_answers_without_dropping_them() {
        let q = constraints_commit::run_quarantine(60, 6);
        assert!(q.quarantined >= 6);
        assert!(q.tainted > 0);
        assert_eq!(q.tainted + q.clean, q.classical);
    }

    #[test]
    fn serving_readers_match_the_sequential_oracle() {
        let oracle = serving::sequential_oracle(30, 15);
        let run = serving::run(&serving::ServingParams {
            employees: 30,
            sessions: 4,
            commits: 15,
            workers: 2,
        });
        assert_eq!(run.committed + run.rejected, 15);
        assert_eq!(run.rejected, 3);
        assert_eq!(run.dumps.len(), run.committed + 1);
        for (epoch, dump) in &run.dumps {
            assert_eq!(
                oracle.get(epoch),
                Some(dump),
                "epoch {epoch} dump diverged from the sequential oracle"
            );
        }
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let v = [5u64, 1, 3, 2, 4];
        assert_eq!(serving::percentile_us(&v, 50.0), 3);
        assert_eq!(serving::percentile_us(&v, 95.0), 5);
        assert_eq!(serving::percentile_us(&v, 100.0), 5);
        assert_eq!(serving::percentile_us(&[], 50.0), 0);
    }

    #[test]
    fn row_display() {
        let r = Row {
            scale: "employees=1000".into(),
            values: vec![("pathlog_ms".into(), 1.5)],
        };
        assert!(r.to_string().contains("pathlog_ms=1.500"));
    }
}
