//! Experiment E22: the MVCC snapshot serving layer — concurrent pinned
//! reader sessions over the single-writer guarded commit pipeline, plus the
//! sequential oracle replay the concurrent arms are cross-checked against.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathlog_bench::serving::{self, ServingParams};

fn bench_serving(c: &mut Criterion) {
    let mut group = c.benchmark_group("e22_serving");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    let employees = 60usize;
    let commits = 40usize;
    for &sessions in &[4usize, 16] {
        for &workers in &[1usize, 4] {
            let params = ServingParams {
                employees,
                sessions,
                commits,
                workers,
            };
            group.bench_with_input(
                BenchmarkId::new("concurrent", format!("sessions{sessions}_workers{workers}")),
                &params,
                |b, p| b.iter(|| serving::run(p).reads),
            );
        }
    }
    group.bench_function(BenchmarkId::new("sequential_oracle", "replay"), |b| {
        b.iter(|| serving::sequential_oracle(employees, commits).len())
    });
    group.finish();
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
