//! Experiment E13: production rules and active triggers over the company
//! workload (the paper's "other kinds of rule languages").
//!
//! Series: running the minimum-wage production rule set to quiescence, and
//! pushing a batch of salary updates through a two-level trigger cascade,
//! over increasing database sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathlog_bench::{reactive_rules, workloads};

fn bench_reactive_rules(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_reactive_rules");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for &employees in &[100usize, 250, 500] {
        let structure = workloads::company(employees);
        group.bench_with_input(
            BenchmarkId::new("production_minimum_wage", employees),
            &structure,
            |b, s| b.iter(|| reactive_rules::production_minimum_wage(s)),
        );
        group.bench_with_input(
            BenchmarkId::new("active_salary_cascade_50", employees),
            &structure,
            |b, s| b.iter(|| reactive_rules::active_salary_cascade(s, 50)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_reactive_rules);
criterion_main!(benches);
