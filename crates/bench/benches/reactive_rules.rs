//! Experiment E13: production rules and active triggers over the company
//! workload (the paper's "other kinds of rule languages"), and the E18
//! reactive-executor ablation (delta-gated vs full re-matching, pooled vs
//! sequential condition batches).
//!
//! Series: running the minimum-wage production rule set to quiescence, and
//! pushing a batch of salary updates through a two-level trigger cascade,
//! over increasing database sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathlog_bench::{reactive_rules, workloads};
use pathlog_core::engine::EvalMode;
use pathlog_reactive::{ActiveOptions, CascadeSchedule, ProductionOptions};

fn bench_reactive_rules(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_reactive_rules");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for &employees in &[100usize, 250, 500] {
        let structure = workloads::company(employees);
        group.bench_with_input(
            BenchmarkId::new("production_minimum_wage", employees),
            &structure,
            |b, s| b.iter(|| reactive_rules::production_minimum_wage(s)),
        );
        group.bench_with_input(
            BenchmarkId::new("active_salary_cascade_50", employees),
            &structure,
            |b, s| b.iter(|| reactive_rules::active_salary_cascade(s, 50)),
        );
    }
    group.finish();
}

/// The E18 axes: delta-gated vs full production re-matching, and the
/// active rounds schedule sequential vs pooled at 4 workers.
fn bench_reactive_executor(c: &mut Criterion) {
    let mut group = c.benchmark_group("e18_reactive_executor");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for &employees in &[100usize, 250] {
        let structure = workloads::company(employees);
        group.bench_with_input(
            BenchmarkId::new("production_delta_gated", employees),
            &structure,
            |b, s| {
                b.iter(|| {
                    reactive_rules::production_classify(s, ProductionOptions::default())
                        .0
                        .firings
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("production_full_rematch", employees),
            &structure,
            |b, s| {
                b.iter(|| {
                    reactive_rules::production_classify(
                        s,
                        ProductionOptions {
                            delta_gated: false,
                            ..ProductionOptions::default()
                        },
                    )
                    .0
                    .firings
                })
            },
        );
        let rounds = ActiveOptions {
            schedule: CascadeSchedule::Rounds,
            ..ActiveOptions::default()
        };
        group.bench_with_input(
            BenchmarkId::new("active_rounds_seq_50", employees),
            &structure,
            |b, s| b.iter(|| reactive_rules::active_fanout_updates(s, 50, rounds).0.firings),
        );
        let pooled = ActiveOptions {
            mode: EvalMode::Parallel { workers: 4 },
            ..rounds
        };
        group.bench_with_input(
            BenchmarkId::new("active_rounds_pooled4_50", employees),
            &structure,
            |b, s| b.iter(|| reactive_rules::active_fanout_updates(s, 50, pooled).0.firings),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_reactive_rules, bench_reactive_executor);
criterion_main!(benches);
