//! Experiment E7: transitive closure — the `desc` rules (6.4) and the generic
//! `kids.tc` rules vs. the relational semi-naive baseline, over trees of
//! increasing depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathlog_baseline::RelationalDb;
use pathlog_bench::{transitive_closure, workloads};

fn bench_transitive_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_transitive_closure");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &(depth, fanout) in &[(4usize, 2usize), (6, 2), (8, 2), (5, 3)] {
        let label = format!("d{depth}f{fanout}");
        let structure = workloads::genealogy(depth, fanout);
        let db = RelationalDb::from_structure(&structure);
        group.bench_with_input(BenchmarkId::new("pathlog_desc", &label), &structure, |b, s| {
            b.iter(|| transitive_closure::pathlog_desc(s))
        });
        group.bench_with_input(BenchmarkId::new("pathlog_generic_tc", &label), &structure, |b, s| {
            b.iter(|| transitive_closure::pathlog_generic(s))
        });
        group.bench_with_input(BenchmarkId::new("relational_seminaive", &label), &db, |b, db| {
            b.iter(|| transitive_closure::relational(db))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_transitive_closure);
criterion_main!(benches);
