//! Experiments E4/E6/E9: materialising virtual objects with PathLog rules
//! (address rule 2.4, employee-boss rule 6.1) vs. XSQL-style views (6.3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathlog_bench::{virtual_objects, workloads};

fn bench_virtual_objects(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_virtual_objects");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &employees in &[200usize, 1_000, 5_000] {
        let structure = workloads::company(employees);
        group.bench_with_input(BenchmarkId::new("pathlog_addresses", employees), &structure, |b, s| {
            b.iter(|| virtual_objects::pathlog_addresses(s))
        });
        group.bench_with_input(
            BenchmarkId::new("xsql_view_addresses", employees),
            &structure,
            |b, s| b.iter(|| virtual_objects::xsql_view_addresses(s)),
        );
        group.bench_with_input(
            BenchmarkId::new("pathlog_virtual_bosses", employees),
            &structure,
            |b, s| b.iter(|| virtual_objects::pathlog_virtual_bosses(s)),
        );
        group.bench_with_input(
            BenchmarkId::new("xsql_employee_boss_view", employees),
            &structure,
            |b, s| b.iter(|| virtual_objects::xsql_employee_boss_view(s)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_virtual_objects);
criterion_main!(benches);
