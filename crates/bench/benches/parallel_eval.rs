//! Parallel sharded delta evaluation: the semi-naive `desc` closure workload
//! with per-rule delta solves fanned over worker threads
//! (`EvalMode::Parallel`), against the sequential semi-naive arm.
//!
//! Scaling depends on the host: the fan-out unit is one rule's per-literal
//! delta passes split into per-method shards, so the win appears on
//! multi-core machines with large per-iteration deltas (deep trees).  On a
//! single-core container the parallel arms measure the scheduling overhead
//! instead — the `experiments` binary records both honestly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathlog_bench::{transitive_closure, workloads};
use pathlog_core::engine::{EvalMode, EvalOptions, ExecutorKind, Schedule};

fn bench_parallel_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_workers");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &(depth, fanout) in &[(8usize, 2usize), (10, 2)] {
        let structure = workloads::genealogy(depth, fanout);
        let label = format!("d{depth}f{fanout}");
        group.bench_with_input(BenchmarkId::new("sequential", &label), &structure, |b, s| {
            b.iter(|| transitive_closure::pathlog_desc_with_mode(s, EvalMode::Sequential).0)
        });
        for workers in [2usize, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("workers{workers}"), &label),
                &structure,
                |b, s| b.iter(|| transitive_closure::pathlog_desc_with_mode(s, EvalMode::Parallel { workers }).0),
            );
        }
    }
    group.finish();
}

/// The E17 axes: spawn-per-batch (scoped) vs persistent-pool (pooled)
/// executors, crossed with the cross-rule and rule-at-a-time schedules, at a
/// fixed 4 workers.  Note the per-iteration caveat: each `b.iter` call
/// builds a throwaway engine, so the pooled arm pays its pool creation once
/// per measured run — the steady-state win (pool reused across many
/// `run_rules` calls of one engine) is what E17 reports via spawn counts.
fn bench_executor_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("executor_ablation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let structure = workloads::genealogy(8, 2);
    let schedules = [
        ("cross_rule", Schedule::CrossRule),
        ("rule_at_a_time", Schedule::RuleAtATime),
    ];
    let executors = [("pooled", ExecutorKind::Pooled), ("scoped", ExecutorKind::Scoped)];
    for (s_label, schedule) in schedules {
        for (e_label, executor) in executors {
            let options = EvalOptions {
                mode: EvalMode::Parallel { workers: 4 },
                schedule,
                executor,
                ..EvalOptions::default()
            };
            group.bench_with_input(
                BenchmarkId::new(format!("{s_label}_{e_label}"), "d8f2_w4"),
                &structure,
                |b, s| b.iter(|| transitive_closure::pathlog_desc_with_options(s, options).0 .0),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_eval, bench_executor_ablation);
criterion_main!(benches);
