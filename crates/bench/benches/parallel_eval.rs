//! Parallel sharded delta evaluation: the semi-naive `desc` closure workload
//! with per-rule delta solves fanned over worker threads
//! (`EvalMode::Parallel`), against the sequential semi-naive arm.
//!
//! Scaling depends on the host: the fan-out unit is one rule's per-literal
//! delta passes split into per-method shards, so the win appears on
//! multi-core machines with large per-iteration deltas (deep trees).  On a
//! single-core container the parallel arms measure the scheduling overhead
//! instead — the `experiments` binary records both honestly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathlog_bench::{transitive_closure, workloads};
use pathlog_core::engine::EvalMode;

fn bench_parallel_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_workers");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &(depth, fanout) in &[(8usize, 2usize), (10, 2)] {
        let structure = workloads::genealogy(depth, fanout);
        let label = format!("d{depth}f{fanout}");
        group.bench_with_input(BenchmarkId::new("sequential", &label), &structure, |b, s| {
            b.iter(|| transitive_closure::pathlog_desc_with_mode(s, EvalMode::Sequential).0)
        });
        for workers in [2usize, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("workers{workers}"), &label),
                &structure,
                |b, s| b.iter(|| transitive_closure::pathlog_desc_with_mode(s, EvalMode::Parallel { workers }).0),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_eval);
criterion_main!(benches);
