//! Experiment E19: columnar fact storage + factorized path answers — the
//! speed side.  Benchmarks building the factorized answer DAG of `X..desc`
//! against materializing the exploded tuples, on the closed genealogy at
//! increasing depth, plus the lazy enumeration of the DAG (which must cost
//! no more than walking the tuple vector it replaces).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathlog_bench::{columnar_factorized, workloads};

fn bench_e19_columnar(c: &mut Criterion) {
    let mut group = c.benchmark_group("e19_columnar");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &depth in &[6usize, 8, 10] {
        let label = format!("d{depth}f2");
        let closed = columnar_factorized::close(&workloads::genealogy(depth, 2));
        group.bench_with_input(BenchmarkId::new("materialized_tuples", &label), &closed, |b, s| {
            b.iter(|| columnar_factorized::materialized(s).len())
        });
        group.bench_with_input(BenchmarkId::new("factorized_dag", &label), &closed, |b, s| {
            b.iter(|| columnar_factorized::factorized(s).node_count())
        });
        let fact = columnar_factorized::factorized(&closed);
        group.bench_with_input(BenchmarkId::new("factorized_enumerate", &label), &fact, |b, f| {
            b.iter(|| {
                let mut n = 0u64;
                f.for_each(&mut |_, _| n += 1);
                n
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e19_columnar);
criterion_main!(benches);
