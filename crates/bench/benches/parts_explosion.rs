//! Experiment E14: transitive closure on a bill-of-materials DAG.
//!
//! Series: the PathLog closure rules vs. the relational semi-naive baseline
//! over parts hierarchies of increasing depth (with shared sub-assemblies,
//! so the structure is a DAG rather than a tree).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathlog_baseline::RelationalDb;
use pathlog_bench::{parts_explosion, workloads};

fn bench_parts_explosion(c: &mut Criterion) {
    let mut group = c.benchmark_group("e14_parts_explosion");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for &depth in &[4usize, 6, 8] {
        let structure = workloads::bom(depth);
        let db = RelationalDb::from_structure(&structure);
        group.bench_with_input(BenchmarkId::new("pathlog", depth), &structure, |b, s| {
            b.iter(|| parts_explosion::pathlog(s))
        });
        group.bench_with_input(BenchmarkId::new("relational", depth), &db, |b, db| {
            b.iter(|| parts_explosion::relational(db))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parts_explosion);
criterion_main!(benches);
