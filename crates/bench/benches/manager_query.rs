//! Experiment E3: the Section 2 manager query (red vehicle, produced in
//! Detroit, president is the owner) — one PathLog reference vs. multi-clause
//! baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathlog_baseline::RelationalDb;
use pathlog_bench::{manager_query, workloads};

fn bench_manager_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_manager_query");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &employees in &[200usize, 1_000, 5_000] {
        let structure = workloads::company(employees);
        let db = RelationalDb::from_structure(&structure);
        group.bench_with_input(BenchmarkId::new("pathlog", employees), &structure, |b, s| {
            b.iter(|| manager_query::pathlog(s))
        });
        group.bench_with_input(BenchmarkId::new("onedim", employees), &structure, |b, s| {
            b.iter(|| manager_query::onedim(s))
        });
        group.bench_with_input(
            BenchmarkId::new("relational", employees),
            &(structure.clone(), db),
            |b, (s, db)| b.iter(|| manager_query::relational(s, db)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_manager_query);
criterion_main!(benches);
