//! Experiment E2: the two-dimensional reference (2.1) vs. the conjunction of
//! one-dimensional paths (1.4) vs. the relational plan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathlog_baseline::RelationalDb;
use pathlog_bench::{two_dimensional, workloads};

fn bench_two_dimensional(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_two_dimensional");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &employees in &[200usize, 1_000, 5_000] {
        let structure = workloads::company(employees);
        let db = RelationalDb::from_structure(&structure);
        group.bench_with_input(BenchmarkId::new("pathlog", employees), &structure, |b, s| {
            b.iter(|| two_dimensional::pathlog(s))
        });
        group.bench_with_input(BenchmarkId::new("onedim", employees), &structure, |b, s| {
            b.iter(|| two_dimensional::onedim(s))
        });
        group.bench_with_input(
            BenchmarkId::new("relational", employees),
            &(structure.clone(), db),
            |b, (s, db)| b.iter(|| two_dimensional::relational(s, db)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_two_dimensional);
criterion_main!(benches);
