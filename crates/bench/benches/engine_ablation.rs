//! Ablation: the engine's semi-naive evaluation (`delta_driven`) — per-rule
//! watermark deltas with per-literal delta joins — against naive full
//! re-solves, on the recursive `desc` workload where it matters most.
//! DESIGN.md calls this design choice out; this bench quantifies it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathlog_core::prelude::*;
use pathlog_parser::parse_program;

fn run(structure: &Structure, program: &Program, delta: bool) -> usize {
    let mut s = structure.clone();
    let engine = Engine::with_options(EvalOptions {
        delta_driven: delta,
        ..EvalOptions::default()
    });
    engine
        .load_program(&mut s, program)
        .expect("rules evaluate")
        .set_members
}

fn bench_engine_ablation(c: &mut Criterion) {
    let program = parse_program(
        "X[desc ->> {Y}] <- X[kids ->> {Y}].
         X[desc ->> {Y}] <- X..desc[kids ->> {Y}].
         X.summary[descendants ->> X..desc] <- X[kids ->> {Y}].",
    )
    .expect("valid program");

    let mut group = c.benchmark_group("ablation_delta_driven");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &(depth, fanout) in &[(6usize, 2usize), (8, 2), (10, 2)] {
        let structure = pathlog_bench::workloads::genealogy(depth, fanout);
        let label = format!("d{depth}f{fanout}");
        group.bench_with_input(BenchmarkId::new("delta_on", &label), &structure, |b, s| {
            b.iter(|| run(s, &program, true))
        });
        group.bench_with_input(BenchmarkId::new("delta_off", &label), &structure, |b, s| {
            b.iter(|| run(s, &program, false))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine_ablation);
criterion_main!(benches);
