//! Experiment E1: colours of employees' automobiles (queries 1.1–1.3).
//!
//! Series: PathLog single reference vs. O2SQL-style one-dimensional query
//! vs. flat relational join plan, over increasing database sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathlog_baseline::RelationalDb;
use pathlog_bench::{colours, workloads};

fn bench_colours(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_colours");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &employees in &[200usize, 1_000, 5_000] {
        let structure = workloads::company(employees);
        let db = RelationalDb::from_structure(&structure);
        group.bench_with_input(BenchmarkId::new("pathlog", employees), &structure, |b, s| {
            b.iter(|| colours::pathlog(s))
        });
        group.bench_with_input(BenchmarkId::new("onedim", employees), &structure, |b, s| {
            b.iter(|| colours::onedim(s))
        });
        group.bench_with_input(BenchmarkId::new("relational", employees), &db, |b, db| {
            b.iter(|| colours::relational(db))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_colours);
criterion_main!(benches);
