//! Experiment E12: the object-SQL frontend versus native PathLog.
//!
//! Series: compiling + executing the XSQL formulation of query (1.4) through
//! `pathlog-sqlfront` vs. parsing + evaluating the native PathLog reference,
//! plus the compilation step alone.  The shape: compilation overhead is a
//! small constant; evaluation costs are identical because both roads execute
//! the same PathLog query.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathlog_bench::{sql_frontend, workloads};

fn bench_sql_frontend(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_sql_frontend");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let catalog = sql_frontend::catalog();
    for &employees in &[200usize, 1_000, 5_000] {
        let structure = workloads::company(employees);
        group.bench_with_input(BenchmarkId::new("sql", employees), &structure, |b, s| {
            b.iter(|| sql_frontend::sql(s, &catalog))
        });
        group.bench_with_input(BenchmarkId::new("native_pathlog", employees), &structure, |b, s| {
            b.iter(|| sql_frontend::native(s))
        });
    }
    group.bench_function("compile_only", |b| b.iter(|| sql_frontend::sql_compile_only(&catalog)));
    group.finish();
}

criterion_group!(benches, bench_sql_frontend);
criterion_main!(benches);
