//! Experiment E10: parser throughput over every concrete-syntax expression
//! quoted in the paper.

use criterion::{criterion_group, criterion_main, Criterion};
use pathlog_bench::parsing;

fn bench_parser(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_parser");
    group.bench_function("parse_all_paper_expressions", |b| b.iter(parsing::parse_all));
    group.finish();
}

criterion_group!(benches, bench_parser);
criterion_main!(benches);
