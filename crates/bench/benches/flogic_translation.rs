//! Experiment E11: direct semantics versus the F-logic translation baseline.
//!
//! Series: answering the filtered two-dimensional query with the direct
//! PathLog engine vs. translating it into a conjunction of flat molecules and
//! answering the translation, over increasing database sizes.  The shape the
//! paper predicts: the direct semantics is never worse, and the translation
//! additionally pays a per-query rewriting cost and loses the single-
//! reference formulation (8 flat atoms for one reference).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathlog_bench::{flogic_translation, workloads};

fn bench_flogic_translation(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_flogic_translation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &employees in &[200usize, 1_000, 5_000] {
        let structure = workloads::company(employees);
        group.bench_with_input(BenchmarkId::new("direct", employees), &structure, |b, s| {
            b.iter(|| flogic_translation::direct(s))
        });
        group.bench_with_input(BenchmarkId::new("translated", employees), &structure, |b, s| {
            b.iter(|| flogic_translation::translated(s))
        });
    }
    group.bench_function("translation_only", |b| b.iter(flogic_translation::translation_atoms));
    group.finish();
}

criterion_group!(benches, bench_flogic_translation);
criterion_main!(benches);
