//! Experiment E21: the cost-based join planner — the speed side.
//! Benchmarks the filtered-closure workload (recursive `desc` closure plus
//! a 3-literal join written in deliberately bad order) with the planner on
//! and off, plus the plain E7 closure as the regression guard for the
//! planner's overhead on bodies it cannot improve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathlog_bench::{join_planning, transitive_closure, workloads};
use pathlog_core::plan::Planner;

fn bench_e21_join_planning(c: &mut Criterion) {
    let mut group = c.benchmark_group("e21_join_planning");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &(depth, fanout) in &[(6usize, 2usize), (8, 2), (5, 3)] {
        let label = format!("d{depth}f{fanout}");
        let s = join_planning::workload(depth, fanout);
        group.bench_with_input(BenchmarkId::new("filtered_closure_planned", &label), &s, |b, s| {
            b.iter(|| join_planning::members(s, Planner::CostBased))
        });
        group.bench_with_input(BenchmarkId::new("filtered_closure_unplanned", &label), &s, |b, s| {
            b.iter(|| join_planning::members(s, Planner::Off))
        });
        // The E7 closure under the planner: single-literal recursive bodies,
        // so this measures pure planner/compile overhead on the workload the
        // E7 gap is judged against.
        let plain = workloads::genealogy(depth, fanout);
        group.bench_with_input(BenchmarkId::new("desc_closure_planned", &label), &plain, |b, s| {
            b.iter(|| transitive_closure::pathlog_desc(s))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e21_join_planning);
criterion_main!(benches);
