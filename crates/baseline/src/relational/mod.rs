//! A small relational algebra engine — the "flat relations" baseline.
//!
//! Section 1 of the paper motivates object-oriented data models by the cost
//! of organising application structures "by a set of flat relations".  To
//! quantify that comparison, this module translates a PathLog semantic
//! structure into flat relations (one unary relation per class extent, one
//! binary relation per attribute) and evaluates the paper's example queries
//! as select/project/join plans.
//!
//! The engine is deliberately a straightforward hash-join implementation: the
//! point of the baseline is the *plan shape* (how many joins a query needs
//! without path expressions), not a state-of-the-art optimiser.

pub mod queries;
pub mod tc;

use std::collections::{BTreeSet, HashMap};

use pathlog_core::names::Name;
use pathlog_core::structure::{Oid, Structure};

/// A relation: named columns and rows of object identifiers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    /// Column names.
    pub columns: Vec<String>,
    /// Rows; every row has exactly `columns.len()` entries.
    pub rows: Vec<Vec<Oid>>,
}

impl Relation {
    /// An empty relation with the given columns.
    pub fn new(columns: &[&str]) -> Self {
        Relation {
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// A relation built from rows.
    pub fn from_rows(columns: &[&str], rows: Vec<Vec<Oid>>) -> Self {
        let r = Relation {
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows,
        };
        debug_assert!(r.rows.iter().all(|row| row.len() == r.columns.len()));
        r
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Index of a column.
    pub fn column(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Keep the rows satisfying a predicate.
    pub fn select(&self, predicate: impl Fn(&[Oid]) -> bool) -> Relation {
        Relation {
            columns: self.columns.clone(),
            rows: self.rows.iter().filter(|r| predicate(r)).cloned().collect(),
        }
    }

    /// Keep rows whose `column` equals `value`.
    pub fn select_eq(&self, column: &str, value: Oid) -> Relation {
        let idx = self.column(column).expect("select_eq: unknown column");
        self.select(|row| row[idx] == value)
    }

    /// Project onto the given columns (in the given order).
    pub fn project(&self, columns: &[&str]) -> Relation {
        let idxs: Vec<usize> = columns
            .iter()
            .map(|c| self.column(c).expect("project: unknown column"))
            .collect();
        Relation {
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: self.rows.iter().map(|r| idxs.iter().map(|&i| r[i]).collect()).collect(),
        }
    }

    /// Remove duplicate rows.
    pub fn distinct(&self) -> Relation {
        let mut seen = BTreeSet::new();
        Relation {
            columns: self.columns.clone(),
            rows: self
                .rows
                .iter()
                .filter(|r| seen.insert((*r).clone()))
                .cloned()
                .collect(),
        }
    }

    /// Rename a column.
    pub fn rename(&self, from: &str, to: &str) -> Relation {
        Relation {
            columns: self
                .columns
                .iter()
                .map(|c| if c == from { to.to_string() } else { c.clone() })
                .collect(),
            rows: self.rows.clone(),
        }
    }

    /// Union of two relations over the same columns.
    pub fn union(&self, other: &Relation) -> Relation {
        assert_eq!(self.columns, other.columns, "union: schema mismatch");
        let mut rows = self.rows.clone();
        rows.extend(other.rows.iter().cloned());
        Relation {
            columns: self.columns.clone(),
            rows,
        }
        .distinct()
    }

    /// Natural hash join on all shared columns.
    pub fn join(&self, other: &Relation) -> Relation {
        let shared: Vec<String> = self
            .columns
            .iter()
            .filter(|c| other.columns.contains(c))
            .cloned()
            .collect();
        let left_keys: Vec<usize> = shared.iter().map(|c| self.column(c).unwrap()).collect();
        let right_keys: Vec<usize> = shared.iter().map(|c| other.column(c).unwrap()).collect();
        let right_extra: Vec<usize> = (0..other.columns.len()).filter(|i| !right_keys.contains(i)).collect();

        let mut columns = self.columns.clone();
        columns.extend(right_extra.iter().map(|&i| other.columns[i].clone()));

        // build hash table on the smaller side conceptually; here: on `other`.
        let mut table: HashMap<Vec<Oid>, Vec<&Vec<Oid>>> = HashMap::new();
        for row in &other.rows {
            let key: Vec<Oid> = right_keys.iter().map(|&i| row[i]).collect();
            table.entry(key).or_default().push(row);
        }

        let mut rows = Vec::new();
        for row in &self.rows {
            let key: Vec<Oid> = left_keys.iter().map(|&i| row[i]).collect();
            if let Some(matches) = table.get(&key) {
                for m in matches {
                    let mut out = row.clone();
                    out.extend(right_extra.iter().map(|&i| m[i]));
                    rows.push(out);
                }
            }
        }
        Relation { columns, rows }
    }
}

/// A PathLog structure flattened into relations.
#[derive(Debug, Clone)]
pub struct RelationalDb {
    /// `class(x)` extents, keyed by class name.
    pub classes: HashMap<String, Relation>,
    /// `attr(x, v)` relations (scalar and set-valued alike), keyed by
    /// attribute name; columns are `subject` and `value`.
    pub attrs: HashMap<String, Relation>,
}

impl RelationalDb {
    /// Flatten a structure: one unary relation per named class with a
    /// non-empty extent, one binary relation per named method.
    pub fn from_structure(structure: &Structure) -> Self {
        let mut classes: HashMap<String, Relation> = HashMap::new();
        for (name, class) in structure.names() {
            if let Name::Atom(a) = name {
                let rows: Vec<Vec<Oid>> = structure.instances_of(class).map(|o| vec![o]).collect();
                if !rows.is_empty() {
                    classes.insert(a.clone(), Relation::from_rows(&["subject"], rows));
                }
            }
        }
        let mut attrs: HashMap<String, Relation> = HashMap::new();
        for fact in structure.facts().scalar_facts() {
            if let Some(Name::Atom(a)) = structure.name_of(fact.method) {
                attrs
                    .entry(a.clone())
                    .or_insert_with(|| Relation::new(&["subject", "value"]))
                    .rows
                    .push(vec![fact.receiver, fact.result]);
            }
        }
        for fact in structure.facts().set_facts() {
            if let Some(Name::Atom(a)) = structure.name_of(fact.method) {
                let rel = attrs
                    .entry(a.clone())
                    .or_insert_with(|| Relation::new(&["subject", "value"]));
                for &m in fact.members {
                    rel.rows.push(vec![fact.receiver, m]);
                }
            }
        }
        RelationalDb { classes, attrs }
    }

    /// The extent of a class (empty if unknown), with the column renamed to
    /// `var`.
    pub fn class(&self, name: &str, var: &str) -> Relation {
        self.classes
            .get(name)
            .cloned()
            .unwrap_or_else(|| Relation::new(&["subject"]))
            .rename("subject", var)
    }

    /// An attribute relation (empty if unknown) with columns renamed to
    /// `subject_var` and `value_var`.
    pub fn attr(&self, name: &str, subject_var: &str, value_var: &str) -> Relation {
        self.attrs
            .get(name)
            .cloned()
            .unwrap_or_else(|| Relation::new(&["subject", "value"]))
            .rename("subject", subject_var)
            .rename("value", value_var)
    }

    /// Total number of tuples over all relations.
    pub fn total_tuples(&self) -> usize {
        self.classes.values().map(Relation::len).sum::<usize>() + self.attrs.values().map(Relation::len).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(i: u32) -> Oid {
        Oid(i)
    }

    #[test]
    fn select_project_distinct() {
        let r = Relation::from_rows(&["a", "b"], vec![vec![o(1), o(2)], vec![o(1), o(3)], vec![o(2), o(2)]]);
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        assert_eq!(r.select_eq("a", o(1)).len(), 2);
        let p = r.project(&["a"]);
        assert_eq!(p.columns, vec!["a"]);
        assert_eq!(p.distinct().len(), 2);
    }

    #[test]
    fn join_on_shared_columns() {
        let owners = Relation::from_rows(&["person", "vehicle"], vec![vec![o(1), o(10)], vec![o(2), o(11)]]);
        let colors = Relation::from_rows(
            &["vehicle", "color"],
            vec![vec![o(10), o(100)], vec![o(11), o(101)], vec![o(12), o(102)]],
        );
        let joined = owners.join(&colors);
        assert_eq!(joined.columns, vec!["person", "vehicle", "color"]);
        assert_eq!(joined.len(), 2);
        let red_of_1 = joined.select_eq("person", o(1)).project(&["color"]);
        assert_eq!(red_of_1.rows, vec![vec![o(100)]]);
    }

    #[test]
    fn join_without_shared_columns_is_cross_product() {
        let a = Relation::from_rows(&["x"], vec![vec![o(1)], vec![o(2)]]);
        let b = Relation::from_rows(&["y"], vec![vec![o(3)], vec![o(4)]]);
        assert_eq!(a.join(&b).len(), 4);
    }

    #[test]
    fn union_and_rename() {
        let a = Relation::from_rows(&["x"], vec![vec![o(1)], vec![o(2)]]);
        let b = Relation::from_rows(&["x"], vec![vec![o(2)], vec![o(3)]]);
        assert_eq!(a.union(&b).len(), 3);
        assert_eq!(a.rename("x", "y").columns, vec!["y"]);
    }

    #[test]
    fn flatten_structure() {
        let mut s = Structure::new();
        let (employee, e1, e2) = (s.atom("employee"), s.atom("e1"), s.atom("e2"));
        let (vehicles, v1) = (s.atom("vehicles"), s.atom("v1"));
        let (color, red) = (s.atom("color"), s.atom("red"));
        s.add_isa(e1, employee);
        s.add_isa(e2, employee);
        s.assert_set_member(vehicles, e1, &[], v1);
        s.assert_scalar(color, v1, &[], red).unwrap();
        let db = RelationalDb::from_structure(&s);
        assert_eq!(db.class("employee", "x").len(), 2);
        assert_eq!(db.attr("vehicles", "x", "v").len(), 1);
        assert_eq!(db.attr("color", "v", "c").len(), 1);
        assert_eq!(db.class("nosuch", "x").len(), 0);
        assert!(db.total_tuples() >= 4);

        // the joined query: colours of employees' vehicles
        let q = db
            .class("employee", "x")
            .join(&db.attr("vehicles", "x", "v"))
            .join(&db.attr("color", "v", "c"));
        assert_eq!(q.project(&["c"]).distinct().len(), 1);
    }
}
