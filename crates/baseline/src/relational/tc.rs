//! Semi-naive transitive closure over a binary relation.
//!
//! The relational comparator for the `desc` / `kids.tc` rules of Section 6:
//! given the flat `kids(parent, child)` relation, compute its transitive
//! closure with the textbook semi-naive iteration (join only the delta of the
//! previous round against the base relation).

use std::collections::{BTreeSet, HashMap};

use pathlog_core::structure::Oid;

use super::Relation;

/// Compute the transitive closure of a binary relation given as
/// `(subject, value)` pairs.  Returns a relation with the same columns.
pub fn transitive_closure(base: &Relation) -> Relation {
    assert_eq!(base.columns.len(), 2, "transitive closure needs a binary relation");
    // adjacency: subject -> values
    let mut adj: HashMap<Oid, Vec<Oid>> = HashMap::new();
    for row in &base.rows {
        adj.entry(row[0]).or_default().push(row[1]);
    }

    let mut closure: BTreeSet<(Oid, Oid)> = base.rows.iter().map(|r| (r[0], r[1])).collect();
    let mut delta: BTreeSet<(Oid, Oid)> = closure.clone();

    while !delta.is_empty() {
        let mut next: BTreeSet<(Oid, Oid)> = BTreeSet::new();
        for &(x, y) in &delta {
            if let Some(zs) = adj.get(&y) {
                for &z in zs {
                    let pair = (x, z);
                    if !closure.contains(&pair) {
                        next.insert(pair);
                    }
                }
            }
        }
        for &pair in &next {
            closure.insert(pair);
        }
        delta = next;
    }

    Relation {
        columns: base.columns.clone(),
        rows: closure.into_iter().map(|(a, b)| vec![a, b]).collect(),
    }
}

/// The descendants of one subject according to the closure of `base`
/// (convenience for query-shaped benchmarks: closure restricted to one root).
pub fn descendants_of(base: &Relation, root: Oid) -> BTreeSet<Oid> {
    let mut adj: HashMap<Oid, Vec<Oid>> = HashMap::new();
    for row in &base.rows {
        adj.entry(row[0]).or_default().push(row[1]);
    }
    let mut out = BTreeSet::new();
    let mut stack = vec![root];
    while let Some(x) = stack.pop() {
        if let Some(ys) = adj.get(&x) {
            for &y in ys {
                if out.insert(y) {
                    stack.push(y);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(i: u32) -> Oid {
        Oid(i)
    }

    fn chain(n: u32) -> Relation {
        Relation::from_rows(&["parent", "child"], (0..n).map(|i| vec![o(i), o(i + 1)]).collect())
    }

    #[test]
    fn closure_of_a_chain() {
        let base = chain(4); // 0->1->2->3->4
        let tc = transitive_closure(&base);
        // n*(n+1)/2 pairs for a chain of 5 nodes / 4 edges: 4+3+2+1 = 10
        assert_eq!(tc.len(), 10);
        assert!(tc.rows.contains(&vec![o(0), o(4)]));
        assert!(!tc.rows.contains(&vec![o(4), o(0)]));
    }

    #[test]
    fn closure_of_a_tree_matches_paper_family() {
        // peter(0) -> tim(1), mary(2); tim -> sally(3); mary -> tom(4), paul(5)
        let base = Relation::from_rows(
            &["parent", "child"],
            vec![
                vec![o(0), o(1)],
                vec![o(0), o(2)],
                vec![o(1), o(3)],
                vec![o(2), o(4)],
                vec![o(2), o(5)],
            ],
        );
        let tc = transitive_closure(&base);
        let peters: BTreeSet<Oid> = tc.rows.iter().filter(|r| r[0] == o(0)).map(|r| r[1]).collect();
        assert_eq!(peters, [o(1), o(2), o(3), o(4), o(5)].into_iter().collect());
        assert_eq!(descendants_of(&base, o(0)), peters);
        assert_eq!(descendants_of(&base, o(1)), [o(3)].into_iter().collect());
    }

    #[test]
    fn closure_handles_cycles() {
        let base = Relation::from_rows(&["a", "b"], vec![vec![o(1), o(2)], vec![o(2), o(1)]]);
        let tc = transitive_closure(&base);
        assert_eq!(tc.len(), 4); // (1,2) (2,1) (1,1) (2,2)
        assert!(descendants_of(&base, o(1)).contains(&o(1)));
    }

    #[test]
    fn closure_of_empty_relation() {
        let base = Relation::new(&["a", "b"]);
        assert!(transitive_closure(&base).is_empty());
        assert!(descendants_of(&base, o(1)).is_empty());
    }
}
