//! The paper's example queries as relational join plans.
//!
//! These are the "flat relations" formulations PathLog is compared against:
//! each path step of the object-oriented query becomes one join.

use std::collections::BTreeSet;

use pathlog_core::names::Name;
use pathlog_core::structure::{Oid, Structure};

use super::{Relation, RelationalDb};

fn name_oid(structure: &Structure, name: &str) -> Option<Oid> {
    structure.lookup_name(&Name::atom(name))
}

/// Queries (1.1)/(1.2): the colours of the automobiles belonging to
/// employees.  Plan: `employee ⋈ vehicles ⋈ automobile ⋈ color`, projected
/// on the colour.
pub fn employee_automobile_colours(db: &RelationalDb) -> Relation {
    db.class("employee", "x")
        .join(&db.attr("vehicles", "x", "y"))
        .join(&db.class("automobile", "y"))
        .join(&db.attr("color", "y", "z"))
        .project(&["z"])
        .distinct()
}

/// Query (1.4)/(2.1): as above, restricted to 30-year-old employees living in
/// New York and automobiles with 4 cylinders.
pub fn filtered_automobile_colours(structure: &Structure, db: &RelationalDb) -> Relation {
    let thirty = structure.lookup_name(&Name::Int(30));
    let four = structure.lookup_name(&Name::Int(4));
    let new_york = name_oid(structure, "newYork");
    let (Some(thirty), Some(four), Some(new_york)) = (thirty, four, new_york) else {
        return Relation::new(&["z"]);
    };
    db.class("employee", "x")
        .join(&db.attr("age", "x", "xage").select_eq("xage", thirty))
        .join(&db.attr("city", "x", "xcity").select_eq("xcity", new_york))
        .join(&db.attr("vehicles", "x", "y"))
        .join(&db.class("automobile", "y"))
        .join(&db.attr("cylinders", "y", "cyl").select_eq("cyl", four))
        .join(&db.attr("color", "y", "z"))
        .project(&["z"])
        .distinct()
}

/// The Section 2 manager query: managers with a red vehicle produced by a
/// company located in Detroit whose president is the manager themselves.
pub fn manager_red_detroit_presidents(structure: &Structure, db: &RelationalDb) -> BTreeSet<Oid> {
    let (Some(red), Some(detroit)) = (name_oid(structure, "red"), name_oid(structure, "detroit")) else {
        return BTreeSet::new();
    };
    let joined = db
        .class("manager", "x")
        .join(&db.attr("vehicles", "x", "y"))
        .join(&db.attr("color", "y", "c").select_eq("c", red))
        .join(&db.attr("producedBy", "y", "p"))
        .join(&db.attr("cityOf", "p", "pc").select_eq("pc", detroit))
        .join(&db.attr("president", "p", "pr"));
    let xi = joined.column("x").unwrap();
    let pi = joined.column("pr").unwrap();
    joined.rows.iter().filter(|r| r[xi] == r[pi]).map(|r| r[xi]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-built world where the expected answers are known exactly.
    fn world() -> Structure {
        let mut s = Structure::new();
        let (employee, manager, automobile, vehicle) = (
            s.atom("employee"),
            s.atom("manager"),
            s.atom("automobile"),
            s.atom("vehicle"),
        );
        s.add_isa(manager, employee);
        s.add_isa(automobile, vehicle);
        let (vehicles, color, cylinders, age, city) = (
            s.atom("vehicles"),
            s.atom("color"),
            s.atom("cylinders"),
            s.atom("age"),
            s.atom("city"),
        );
        let (produced_by, city_of, president) = (s.atom("producedBy"), s.atom("cityOf"), s.atom("president"));
        let (red, blue, ny, detroit) = (s.atom("red"), s.atom("blue"), s.atom("newYork"), s.atom("detroit"));
        let (thirty, four, six) = (s.int(30), s.int(4), s.int(6));

        let (m1, e1) = (s.atom("m1"), s.atom("e1"));
        s.add_isa(m1, manager);
        s.add_isa(e1, employee);
        s.assert_scalar(age, m1, &[], thirty).unwrap();
        s.assert_scalar(age, e1, &[], thirty).unwrap();
        s.assert_scalar(city, e1, &[], ny).unwrap();
        s.assert_scalar(city, m1, &[], detroit).unwrap();

        let (a1, a2, v1) = (s.atom("a1"), s.atom("a2"), s.atom("v1"));
        s.add_isa(a1, automobile);
        s.add_isa(a2, automobile);
        s.add_isa(v1, vehicle);
        s.assert_set_member(vehicles, e1, &[], a1);
        s.assert_set_member(vehicles, e1, &[], v1);
        s.assert_set_member(vehicles, m1, &[], a2);
        s.assert_scalar(color, a1, &[], blue).unwrap();
        s.assert_scalar(color, a2, &[], red).unwrap();
        s.assert_scalar(color, v1, &[], red).unwrap();
        s.assert_scalar(cylinders, a1, &[], four).unwrap();
        s.assert_scalar(cylinders, a2, &[], six).unwrap();

        let comp = s.atom("comp0");
        s.assert_scalar(produced_by, a2, &[], comp).unwrap();
        s.assert_scalar(city_of, comp, &[], detroit).unwrap();
        s.assert_scalar(president, comp, &[], m1).unwrap();
        s
    }

    #[test]
    fn colours_of_employee_automobiles() {
        let s = world();
        let db = RelationalDb::from_structure(&s);
        let colours = employee_automobile_colours(&db);
        // a1 (blue) of e1 and a2 (red) of m1 (managers are employees);
        // v1 is not an automobile, so its colour does not count.
        assert_eq!(colours.len(), 2);
    }

    #[test]
    fn filtered_colours() {
        let s = world();
        let db = RelationalDb::from_structure(&s);
        let colours = filtered_automobile_colours(&s, &db);
        // only e1 is 30 and in newYork; its only automobile with 4 cylinders
        // is a1, which is blue.
        let blue = s.lookup_name(&Name::atom("blue")).unwrap();
        assert_eq!(colours.rows, vec![vec![blue]]);
    }

    #[test]
    fn manager_query() {
        let s = world();
        let db = RelationalDb::from_structure(&s);
        let managers = manager_red_detroit_presidents(&s, &db);
        let m1 = s.lookup_name(&Name::atom("m1")).unwrap();
        assert_eq!(managers, [m1].into_iter().collect());
    }

    #[test]
    fn missing_constants_yield_empty_results() {
        let s = Structure::new();
        let db = RelationalDb::from_structure(&s);
        assert!(filtered_automobile_colours(&s, &db).is_empty());
        assert!(manager_red_detroit_presidents(&s, &db).is_empty());
    }
}
