//! A one-dimensional path-expression evaluator in the style of O2SQL / XSQL.
//!
//! This baseline implements the query formulation the paper starts from:
//! range variables over class extents or over set-valued attributes of other
//! variables (`FROM X IN employee, Y IN X.vehicles`), plus WHERE conditions
//! that are *one-dimensional* paths compared against constants or variables
//! (`Y.color = red`, `Y.producedBy.president = X`).  Because a path can only
//! go into depth, every additional property of an intermediate object needs a
//! separate condition — exactly the limitation PathLog's second dimension
//! removes.
//!
//! Evaluation is a straightforward nested-loop over the range variables with
//! early condition checking, which is how such queries are naively executed.

use std::collections::BTreeSet;

use pathlog_core::names::Name;
use pathlog_core::structure::{Oid, Structure};

/// Where a range variable draws its objects from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RangeSource {
    /// All members of a class (`FROM X IN employee`).
    Class(String),
    /// The members of a set-valued attribute of an earlier variable
    /// (`FROM Y IN X.vehicles`).
    SetAttr {
        /// The earlier range variable.
        of: String,
        /// The set-valued attribute.
        attr: String,
    },
}

/// One range variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeVar {
    /// Variable name.
    pub var: String,
    /// Source of its objects.
    pub source: RangeSource,
}

/// The right-hand side of a path condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rhs {
    /// A constant (name).
    Const(Name),
    /// Another range variable.
    Var(String),
}

/// A WHERE condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Condition {
    /// `start.m1.m2...mk = rhs` — a scalar path compared for equality.
    PathEq {
        /// The range variable the path starts from.
        start: String,
        /// The scalar methods applied in order.
        methods: Vec<String>,
        /// What the result must equal.
        rhs: Rhs,
    },
    /// `var IN class` — class membership of a range variable.
    IsA {
        /// The range variable.
        var: String,
        /// The class name.
        class: String,
    },
}

/// What the query returns per satisfying binding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectItem {
    /// The object bound to a range variable.
    Var(String),
    /// The result of a scalar path applied to a range variable.
    Path {
        /// The range variable the path starts from.
        start: String,
        /// The scalar methods applied in order.
        methods: Vec<String>,
    },
}

/// A one-dimensional query: SELECT items FROM ranges WHERE conditions.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OneDimQuery {
    /// The range variables, in dependency order.
    pub ranges: Vec<RangeVar>,
    /// The conjunctive conditions.
    pub conditions: Vec<Condition>,
    /// The select list.
    pub select: Vec<SelectItem>,
}

impl OneDimQuery {
    /// Start building a query.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `FROM var IN class`.
    pub fn from_class(mut self, var: &str, class: &str) -> Self {
        self.ranges.push(RangeVar {
            var: var.into(),
            source: RangeSource::Class(class.into()),
        });
        self
    }

    /// Add `FROM var IN of.attr`.
    pub fn from_set(mut self, var: &str, of: &str, attr: &str) -> Self {
        self.ranges.push(RangeVar {
            var: var.into(),
            source: RangeSource::SetAttr {
                of: of.into(),
                attr: attr.into(),
            },
        });
        self
    }

    /// Add `WHERE start.methods = constant`.
    pub fn where_path_const(mut self, start: &str, methods: &[&str], value: Name) -> Self {
        self.conditions.push(Condition::PathEq {
            start: start.into(),
            methods: methods.iter().map(|s| s.to_string()).collect(),
            rhs: Rhs::Const(value),
        });
        self
    }

    /// Add `WHERE start.methods = var`.
    pub fn where_path_var(mut self, start: &str, methods: &[&str], var: &str) -> Self {
        self.conditions.push(Condition::PathEq {
            start: start.into(),
            methods: methods.iter().map(|s| s.to_string()).collect(),
            rhs: Rhs::Var(var.into()),
        });
        self
    }

    /// Add `WHERE var IN class`.
    pub fn where_isa(mut self, var: &str, class: &str) -> Self {
        self.conditions.push(Condition::IsA {
            var: var.into(),
            class: class.into(),
        });
        self
    }

    /// Add `SELECT var`.
    pub fn select_var(mut self, var: &str) -> Self {
        self.select.push(SelectItem::Var(var.into()));
        self
    }

    /// Add `SELECT start.methods`.
    pub fn select_path(mut self, start: &str, methods: &[&str]) -> Self {
        self.select.push(SelectItem::Path {
            start: start.into(),
            methods: methods.iter().map(|s| s.to_string()).collect(),
        });
        self
    }
}

/// Evaluate a query, returning the distinct result tuples (one entry per
/// select item).
pub fn evaluate(structure: &Structure, query: &OneDimQuery) -> BTreeSet<Vec<Oid>> {
    let mut results = BTreeSet::new();
    let mut bindings: Vec<(String, Oid)> = Vec::new();
    eval_ranges(structure, query, 0, &mut bindings, &mut results);
    results
}

fn eval_ranges(
    structure: &Structure,
    query: &OneDimQuery,
    depth: usize,
    bindings: &mut Vec<(String, Oid)>,
    results: &mut BTreeSet<Vec<Oid>>,
) {
    if depth == query.ranges.len() {
        if query.conditions.iter().all(|c| check_condition(structure, c, bindings)) {
            if let Some(tuple) = query
                .select
                .iter()
                .map(|item| eval_select(structure, item, bindings))
                .collect::<Option<Vec<_>>>()
            {
                results.insert(tuple);
            }
        }
        return;
    }
    let range = &query.ranges[depth];
    let candidates: Vec<Oid> = match &range.source {
        RangeSource::Class(class) => match structure.lookup_name(&Name::atom(class)) {
            Some(c) => structure.instances_of(c).collect(),
            None => Vec::new(),
        },
        RangeSource::SetAttr { of, attr } => {
            let Some(&(_, subject)) = bindings.iter().find(|(v, _)| v == of) else {
                return;
            };
            let Some(attr) = structure.lookup_name(&Name::atom(attr)) else {
                return;
            };
            match structure.apply_set(attr, subject, &[]) {
                Some(members) => members.iter().copied().collect(),
                None => Vec::new(),
            }
        }
    };
    for candidate in candidates {
        bindings.push((range.var.clone(), candidate));
        // Early filtering: evaluate the conditions whose variables are all
        // bound already (this mirrors what a sensible executor would do).
        let ready = query.conditions.iter().all(|c| match condition_ready(c, bindings) {
            true => check_condition(structure, c, bindings),
            false => true,
        });
        if ready {
            eval_ranges(structure, query, depth + 1, bindings, results);
        }
        bindings.pop();
    }
}

fn lookup(bindings: &[(String, Oid)], var: &str) -> Option<Oid> {
    bindings.iter().find(|(v, _)| v == var).map(|&(_, o)| o)
}

fn condition_ready(condition: &Condition, bindings: &[(String, Oid)]) -> bool {
    match condition {
        Condition::PathEq { start, rhs, .. } => {
            lookup(bindings, start).is_some()
                && match rhs {
                    Rhs::Const(_) => true,
                    Rhs::Var(v) => lookup(bindings, v).is_some(),
                }
        }
        Condition::IsA { var, .. } => lookup(bindings, var).is_some(),
    }
}

fn check_condition(structure: &Structure, condition: &Condition, bindings: &[(String, Oid)]) -> bool {
    match condition {
        Condition::PathEq { start, methods, rhs } => {
            let Some(start) = lookup(bindings, start) else {
                return false;
            };
            let Some(result) = follow_path(structure, start, methods) else {
                return false;
            };
            match rhs {
                Rhs::Const(n) => structure.lookup_name(n) == Some(result),
                Rhs::Var(v) => lookup(bindings, v) == Some(result),
            }
        }
        Condition::IsA { var, class } => {
            let (Some(obj), Some(class)) = (lookup(bindings, var), structure.lookup_name(&Name::atom(class))) else {
                return false;
            };
            structure.in_class(obj, class)
        }
    }
}

fn eval_select(structure: &Structure, item: &SelectItem, bindings: &[(String, Oid)]) -> Option<Oid> {
    match item {
        SelectItem::Var(v) => lookup(bindings, v),
        SelectItem::Path { start, methods } => follow_path(structure, lookup(bindings, start)?, methods),
    }
}

fn follow_path(structure: &Structure, start: Oid, methods: &[String]) -> Option<Oid> {
    let mut current = start;
    for m in methods {
        let method = structure.lookup_name(&Name::atom(m))?;
        current = structure.apply_scalar(method, current, &[])?;
    }
    Some(current)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> Structure {
        let mut s = Structure::new();
        let (employee, manager, automobile, vehicle) = (
            s.atom("employee"),
            s.atom("manager"),
            s.atom("automobile"),
            s.atom("vehicle"),
        );
        s.add_isa(manager, employee);
        s.add_isa(automobile, vehicle);
        let (vehicles, color, cylinders) = (s.atom("vehicles"), s.atom("color"), s.atom("cylinders"));
        let (produced_by, city_of, president) = (s.atom("producedBy"), s.atom("cityOf"), s.atom("president"));
        let (red, blue, detroit) = (s.atom("red"), s.atom("blue"), s.atom("detroit"));
        let four = s.int(4);

        let (m1, e1) = (s.atom("m1"), s.atom("e1"));
        s.add_isa(m1, manager);
        s.add_isa(e1, employee);
        let (a1, a2) = (s.atom("a1"), s.atom("a2"));
        s.add_isa(a1, automobile);
        s.add_isa(a2, automobile);
        s.assert_set_member(vehicles, e1, &[], a1);
        s.assert_set_member(vehicles, m1, &[], a2);
        s.assert_scalar(color, a1, &[], blue).unwrap();
        s.assert_scalar(color, a2, &[], red).unwrap();
        s.assert_scalar(cylinders, a1, &[], four).unwrap();
        let comp = s.atom("comp0");
        s.assert_scalar(produced_by, a2, &[], comp).unwrap();
        s.assert_scalar(city_of, comp, &[], detroit).unwrap();
        s.assert_scalar(president, comp, &[], m1).unwrap();
        s
    }

    fn oid(s: &Structure, n: &str) -> Oid {
        s.lookup_name(&Name::atom(n)).unwrap()
    }

    #[test]
    fn query_1_1_colours_of_employee_automobiles() {
        // SELECT Y.color FROM X IN employee, Y IN X.vehicles WHERE Y IN automobile
        let s = world();
        let q = OneDimQuery::new()
            .from_class("X", "employee")
            .from_set("Y", "X", "vehicles")
            .where_isa("Y", "automobile")
            .select_path("Y", &["color"]);
        let results = evaluate(&s, &q);
        assert_eq!(results.len(), 2);
        assert!(results.contains(&vec![oid(&s, "red")]));
        assert!(results.contains(&vec![oid(&s, "blue")]));
    }

    #[test]
    fn query_1_4_with_cylinder_condition() {
        // ... AND Y.cylinders = 4 — a separate one-dimensional condition.
        let s = world();
        let q = OneDimQuery::new()
            .from_class("X", "employee")
            .from_set("Y", "X", "vehicles")
            .where_isa("Y", "automobile")
            .where_path_const("Y", &["cylinders"], Name::Int(4))
            .select_path("Y", &["color"]);
        let results = evaluate(&s, &q);
        assert_eq!(results, [vec![oid(&s, "blue")]].into_iter().collect());
    }

    #[test]
    fn manager_query_needs_three_conditions() {
        // SELECT X FROM X IN manager, Y IN X.vehicles
        // WHERE Y.color = red AND Y.producedBy.city = detroit AND Y.producedBy.president = X
        let s = world();
        let q = OneDimQuery::new()
            .from_class("X", "manager")
            .from_set("Y", "X", "vehicles")
            .where_path_const("Y", &["color"], Name::atom("red"))
            .where_path_const("Y", &["producedBy", "cityOf"], Name::atom("detroit"))
            .where_path_var("Y", &["producedBy", "president"], "X")
            .select_var("X");
        let results = evaluate(&s, &q);
        assert_eq!(results, [vec![oid(&s, "m1")]].into_iter().collect());
    }

    #[test]
    fn undefined_paths_fail_conditions() {
        let s = world();
        // a1 has no producedBy; the condition silently filters it out.
        let q = OneDimQuery::new()
            .from_class("X", "employee")
            .from_set("Y", "X", "vehicles")
            .where_path_const("Y", &["producedBy", "cityOf"], Name::atom("detroit"))
            .select_var("Y");
        let results = evaluate(&s, &q);
        assert_eq!(results.len(), 1);
    }

    #[test]
    fn unknown_classes_and_attrs_are_empty() {
        let s = world();
        let q = OneDimQuery::new().from_class("X", "spaceship").select_var("X");
        assert!(evaluate(&s, &q).is_empty());
        let q = OneDimQuery::new()
            .from_class("X", "employee")
            .from_set("Y", "X", "hats")
            .select_var("Y");
        assert!(evaluate(&s, &q).is_empty());
    }

    #[test]
    fn select_of_unbound_variable_is_skipped() {
        let s = world();
        let q = OneDimQuery::new().from_class("X", "employee").select_var("Z");
        assert!(evaluate(&s, &q).is_empty());
    }
}
