//! XSQL-style views with OID functions — the virtual-object baseline.
//!
//! Section 6 of the paper contrasts PathLog's method-based virtual objects
//! with the XSQL view mechanism (6.3):
//!
//! ```text
//! CREATE VIEW EmployeeBoss
//! SELECT WorksFor = D
//! FROM Employee X
//! OID FUNCTION OF X
//! WHERE X.WorksFor[D]
//! ```
//!
//! The view introduces a *class name* that doubles as a function symbol: the
//! derived object for source object `x` is addressed as `EmployeeBoss(x)`.
//! This module implements that mechanism so the two approaches can be
//! compared: a view definition ranges over a class, computes attribute values
//! through one-dimensional scalar paths, and materialises one new object per
//! source object, added to the structure as a member of the view class.

use pathlog_core::names::Name;
use pathlog_core::structure::{Oid, Structure};

/// How a view attribute's value is computed from the source object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewAttr {
    /// The attribute name on the view object.
    pub name: String,
    /// The scalar path (sequence of methods) applied to the source object.
    pub path: Vec<String>,
}

/// A view definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewDef {
    /// The view (class / function symbol) name, e.g. `EmployeeBoss`.
    pub name: String,
    /// The class the view ranges over, e.g. `employee`.
    pub source_class: String,
    /// The derived attributes.
    pub attrs: Vec<ViewAttr>,
    /// Source objects are kept only if every attribute path is defined.
    pub require_all: bool,
}

impl ViewDef {
    /// Start a view definition.
    pub fn new(name: &str, source_class: &str) -> Self {
        ViewDef {
            name: name.into(),
            source_class: source_class.into(),
            attrs: Vec::new(),
            require_all: true,
        }
    }

    /// Add an attribute computed by a scalar path over the source object.
    pub fn attr(mut self, name: &str, path: &[&str]) -> Self {
        self.attrs.push(ViewAttr {
            name: name.into(),
            path: path.iter().map(|s| s.to_string()).collect(),
        });
        self
    }

    /// Keep source objects even when some attribute paths are undefined.
    pub fn partial(mut self) -> Self {
        self.require_all = false;
        self
    }
}

/// Result of materialising a view.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ViewStats {
    /// Number of view objects created.
    pub objects: usize,
    /// Number of attribute facts stored on view objects.
    pub facts: usize,
}

/// Materialise a view into the structure: one new object per qualifying
/// member of the source class, named `View(source)` (the OID-function
/// convention of XSQL), member of the view class, carrying the derived
/// attributes.  Materialisation is idempotent.
pub fn materialize(structure: &mut Structure, view: &ViewDef) -> ViewStats {
    let mut stats = ViewStats::default();
    let Some(source_class) = structure.lookup_name(&Name::atom(&view.source_class)) else {
        return stats;
    };
    let view_class = structure.ensure_name(&Name::atom(&view.name));
    let sources: Vec<Oid> = structure.instances_of(source_class).collect();

    for source in sources {
        // compute attribute values first (they come from the source object)
        let mut values: Vec<(String, Oid)> = Vec::new();
        let mut complete = true;
        for attr in &view.attrs {
            match follow(structure, source, &attr.path) {
                Some(v) => values.push((attr.name.clone(), v)),
                None => complete = false,
            }
        }
        if view.require_all && !complete {
            continue;
        }
        // the OID function: View(source), realised as a derived name
        let skolem = Name::Atom(format!("{}({})", view.name, structure.display_name(source)));
        let existed = structure.lookup_name(&skolem).is_some();
        let view_obj = structure.ensure_name(&skolem);
        if !existed {
            stats.objects += 1;
        }
        structure.add_isa(view_obj, view_class);
        for (attr, value) in values {
            let method = structure.ensure_name(&Name::atom(&attr));
            if structure
                .assert_scalar(method, view_obj, &[], value)
                .map(|a| a.is_new())
                .unwrap_or(false)
            {
                stats.facts += 1;
            }
        }
    }
    stats
}

fn follow(structure: &Structure, start: Oid, path: &[String]) -> Option<Oid> {
    let mut current = start;
    for m in path {
        let method = structure.lookup_name(&Name::atom(m))?;
        current = structure.apply_scalar(method, current, &[])?;
    }
    Some(current)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> Structure {
        let mut s = Structure::new();
        let (employee, works_for) = (s.atom("employee"), s.atom("worksFor"));
        let (p1, p2, cs1, cs2) = (s.atom("p1"), s.atom("p2"), s.atom("cs1"), s.atom("cs2"));
        s.add_isa(p1, employee);
        s.add_isa(p2, employee);
        s.assert_scalar(works_for, p1, &[], cs1).unwrap();
        s.assert_scalar(works_for, p2, &[], cs2).unwrap();
        s
    }

    #[test]
    fn employee_boss_view_6_3() {
        let mut s = world();
        let view = ViewDef::new("EmployeeBoss", "employee").attr("WorksFor", &["worksFor"]);
        let stats = materialize(&mut s, &view);
        assert_eq!(stats.objects, 2);
        assert_eq!(stats.facts, 2);
        // The derived object is addressed by the function-symbol name.
        let obj = s.lookup_name(&Name::atom("EmployeeBoss(p1)")).unwrap();
        let view_class = s.lookup_name(&Name::atom("EmployeeBoss")).unwrap();
        assert!(s.in_class(obj, view_class));
        let works_for = s.lookup_name(&Name::atom("WorksFor")).unwrap();
        let cs1 = s.lookup_name(&Name::atom("cs1")).unwrap();
        assert_eq!(s.apply_scalar(works_for, obj, &[]), Some(cs1));
    }

    #[test]
    fn materialisation_is_idempotent() {
        let mut s = world();
        let view = ViewDef::new("EmployeeBoss", "employee").attr("WorksFor", &["worksFor"]);
        materialize(&mut s, &view);
        let before = s.stats();
        let again = materialize(&mut s, &view);
        assert_eq!(again.objects, 0);
        assert_eq!(again.facts, 0);
        assert_eq!(s.stats(), before);
    }

    #[test]
    fn incomplete_sources_are_skipped_or_kept() {
        let mut s = world();
        // p3 has no worksFor
        let (employee, p3) = (s.atom("employee"), s.atom("p3"));
        s.add_isa(p3, employee);
        let strict = ViewDef::new("V1", "employee").attr("WorksFor", &["worksFor"]);
        assert_eq!(materialize(&mut s, &strict).objects, 2);
        let partial = ViewDef::new("V2", "employee").attr("WorksFor", &["worksFor"]).partial();
        assert_eq!(materialize(&mut s, &partial).objects, 3);
    }

    #[test]
    fn unknown_source_class_is_empty() {
        let mut s = world();
        let view = ViewDef::new("V", "spaceship").attr("X", &["worksFor"]);
        assert_eq!(materialize(&mut s, &view), ViewStats::default());
    }

    #[test]
    fn multi_step_paths_in_view_attributes() {
        let mut s = world();
        // address view in the spirit of (2.4), but with the XSQL mechanism
        let (street, city) = (s.atom("street"), s.atom("city"));
        let p1 = s.lookup_name(&Name::atom("p1")).unwrap();
        let main_st = s.string("Main St");
        let ny = s.atom("newYork");
        s.assert_scalar(street, p1, &[], main_st).unwrap();
        s.assert_scalar(city, p1, &[], ny).unwrap();
        let view = ViewDef::new("Address", "employee")
            .attr("street", &["street"])
            .attr("city", &["city"]);
        let stats = materialize(&mut s, &view);
        assert_eq!(stats.objects, 1, "only p1 has both attributes");
        let addr = s.lookup_name(&Name::atom("Address(p1)")).unwrap();
        assert_eq!(s.apply_scalar(city, addr, &[]), Some(ny));
    }
}
