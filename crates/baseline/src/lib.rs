//! # pathlog-baseline
//!
//! The comparison systems the paper positions PathLog against, rebuilt so
//! that the benchmarks can contrast query formulations and evaluation
//! strategies on identical data:
//!
//! * [`relational`] — flat relations and select/project/join plans (the
//!   relational-model formulation Section 1 argues against), plus a
//!   semi-naive transitive closure;
//! * [`onedim`] — an O2SQL/XSQL-style evaluator for *one-dimensional* path
//!   expressions: range variables over classes and set attributes, WHERE
//!   conditions that are scalar paths compared to constants or variables;
//! * [`views`] — XSQL-style views with OID functions (query (6.3)), the
//!   mechanism PathLog's method-based virtual objects replace.
//!
//! All baselines read the same [`pathlog_core::structure::Structure`] the
//! PathLog engine evaluates against.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod onedim;
pub mod relational;
pub mod views;

pub use onedim::{evaluate as evaluate_onedim, Condition, OneDimQuery, RangeSource, RangeVar, Rhs, SelectItem};
pub use relational::{queries, tc, Relation, RelationalDb};
pub use views::{materialize, ViewAttr, ViewDef, ViewStats};
