//! Errors of the production / active rule layer.

use std::fmt;

use pathlog_core::error::Error as CoreError;

/// Errors raised while running production or active rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReactiveError {
    /// An action references something it cannot act on (e.g. retracting a
    /// path, or an action term that does not denote exactly one object).
    ///
    /// When raised mid-cascade by an active store, mutations applied before
    /// the invalid action remain committed — see [`ReactiveError::LimitExceeded`].
    InvalidAction(String),
    /// A resource limit was exceeded (cycles, cascade depth, total firings).
    ///
    /// **Partial-commit semantics:** limits are detected *while* a cascade
    /// or recognise–act run is mutating the structure, so by the time this
    /// error surfaces every mutation applied before the limit was hit is
    /// still committed — the structure is a consistent prefix of the run,
    /// not the pre-run state.  Callers that need all-or-nothing behaviour
    /// on an active store can opt into
    /// `ActiveOptions::rollback_on_error`, which restores the pre-mutation
    /// structure at the cost of one clone per external mutation.
    LimitExceeded(String),
    /// The underlying PathLog evaluation failed.
    Evaluation(String),
    /// The static analyzer rejected a rule before installation: its
    /// condition carries at least one `Error`-severity diagnostic (raised
    /// by `add_rule_checked` on [`crate::ProductionEngine`] /
    /// [`crate::ActiveStore`]).  The message lists the diagnostics.
    StaticRejected(String),
}

impl fmt::Display for ReactiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReactiveError::InvalidAction(m) => write!(f, "invalid action: {m}"),
            ReactiveError::LimitExceeded(m) => write!(f, "limit exceeded: {m}"),
            ReactiveError::Evaluation(m) => write!(f, "evaluation error: {m}"),
            ReactiveError::StaticRejected(m) => write!(f, "static analysis rejected rule: {m}"),
        }
    }
}

impl std::error::Error for ReactiveError {}

impl From<CoreError> for ReactiveError {
    fn from(e: CoreError) -> Self {
        ReactiveError::Evaluation(e.to_string())
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, ReactiveError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_kind() {
        assert!(ReactiveError::InvalidAction("x".into())
            .to_string()
            .contains("invalid action"));
        assert!(ReactiveError::LimitExceeded("x".into()).to_string().contains("limit"));
        assert!(ReactiveError::Evaluation("x".into()).to_string().contains("evaluation"));
    }

    #[test]
    fn core_errors_convert() {
        let core = CoreError::InvalidRule("bad".into());
        let converted: ReactiveError = core.into();
        assert!(matches!(converted, ReactiveError::Evaluation(_)));
        assert!(converted.to_string().contains("bad"));
    }
}
