//! Actions of production rules: assert or retract PathLog references.
//!
//! The paper closes by noting that "the main ideas of PathLog can be also
//! applied in the context of other kinds of rule languages, e.g. production
//! rules or active rules" — because references are just a way to *address*
//! objects, and how a rule set is evaluated is orthogonal.  An action
//! therefore reuses the same reference syntax as a deductive head:
//! [`Action::Assert`] makes a reference true (creating virtual objects for
//! undefined scalar head paths, exactly like the deductive engine), and
//! [`Action::Retract`] — the operation deductive rules do not have — removes
//! the facts a molecule describes.

use std::fmt;

use pathlog_core::engine::{assert_head, AssertEffect, AssertOptions};
use pathlog_core::semantics::{valuate, Bindings};
use pathlog_core::structure::{Oid, Structure};
use pathlog_core::term::{FilterValue, Term};

use crate::error::{ReactiveError, Result};

/// One action of a production rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Make the reference true (like a deductive rule head).
    Assert(Term),
    /// Retract the facts described by a molecule (scalar filters, explicit
    /// set members) for every object the receiver denotes.
    Retract(Term),
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Assert(t) => write!(f, "assert {t}"),
            Action::Retract(t) => write!(f, "retract {t}"),
        }
    }
}

/// What applying one action changed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ActionEffect {
    /// Facts added (scalar + set members + isa edges).
    pub asserted: usize,
    /// Facts removed.
    pub retracted: usize,
    /// Virtual objects created.
    pub virtual_objects: usize,
}

impl ActionEffect {
    /// Did the action change anything?
    pub fn changed(&self) -> bool {
        self.asserted + self.retracted + self.virtual_objects > 0
    }

    /// Accumulate another effect.
    pub fn absorb(&mut self, other: ActionEffect) {
        self.asserted += other.asserted;
        self.retracted += other.retracted;
        self.virtual_objects += other.virtual_objects;
    }

    fn from_assert(e: AssertEffect) -> Self {
        ActionEffect {
            asserted: e.scalar_facts + e.set_members + e.isa_edges,
            retracted: 0,
            virtual_objects: e.virtual_objects,
        }
    }
}

/// Apply one action under a variable valuation.
pub fn apply_action(
    structure: &mut Structure,
    action: &Action,
    bindings: &Bindings,
    create_virtuals: bool,
) -> Result<ActionEffect> {
    match action {
        Action::Assert(term) => {
            let (_, effect) = assert_head(structure, term, bindings, AssertOptions { create_virtuals })?;
            Ok(ActionEffect::from_assert(effect))
        }
        Action::Retract(term) => apply_retract(structure, term, bindings),
    }
}

/// Retract the facts a molecule describes.
fn apply_retract(structure: &mut Structure, term: &Term, bindings: &Bindings) -> Result<ActionEffect> {
    match term {
        Term::Paren(inner) => apply_retract(structure, inner, bindings),
        Term::Molecule(molecule) => {
            let receivers = valuate(structure, &molecule.receiver, bindings)?;
            let mut effect = ActionEffect::default();
            for receiver in receivers {
                for filter in &molecule.filters {
                    let method = single_object(structure, &filter.method, bindings, "filter method")?;
                    let args = filter
                        .args
                        .iter()
                        .map(|a| single_object(structure, a, bindings, "filter argument"))
                        .collect::<Result<Vec<Oid>>>()?;
                    match &filter.value {
                        FilterValue::Scalar(_) => {
                            if structure.retract_scalar(method, receiver, &args).is_some() {
                                effect.retracted += 1;
                            }
                        }
                        FilterValue::SetExplicit(members) => {
                            for member_term in members {
                                for member in valuate(structure, member_term, bindings)? {
                                    if structure.retract_set_member(method, receiver, &args, member) {
                                        effect.retracted += 1;
                                    }
                                }
                            }
                        }
                        FilterValue::SetRef(inner) => {
                            for member in valuate(structure, inner, bindings)? {
                                if structure.retract_set_member(method, receiver, &args, member) {
                                    effect.retracted += 1;
                                }
                            }
                        }
                        FilterValue::SigScalar(_) | FilterValue::SigSet(_) => {
                            return Err(ReactiveError::InvalidAction(
                                "signature declarations cannot be retracted".into(),
                            ));
                        }
                    }
                }
            }
            Ok(effect)
        }
        other => Err(ReactiveError::InvalidAction(format!(
            "retract needs a molecule describing the facts to remove, got `{other}`"
        ))),
    }
}

/// Valuate a term that must denote exactly one object.
fn single_object(structure: &Structure, term: &Term, bindings: &Bindings, what: &str) -> Result<Oid> {
    let objects = valuate(structure, term, bindings)?;
    match objects.len() {
        1 => Ok(objects.into_iter().next().expect("len checked")),
        0 => Err(ReactiveError::InvalidAction(format!(
            "{what} `{term}` denotes no object"
        ))),
        n => Err(ReactiveError::InvalidAction(format!(
            "{what} `{term}` denotes {n} objects, expected one"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathlog_core::names::Var;
    use pathlog_core::term::Filter;

    fn family() -> Structure {
        let mut s = Structure::new();
        let (kids, age, mary, tim, tom) = (
            s.atom("kids"),
            s.atom("age"),
            s.atom("mary"),
            s.atom("tim"),
            s.atom("tom"),
        );
        let thirty = s.int(30);
        s.assert_scalar(age, mary, &[], thirty).unwrap();
        s.assert_set_member(kids, mary, &[], tim);
        s.assert_set_member(kids, mary, &[], tom);
        s
    }

    #[test]
    fn assert_actions_add_facts_and_virtual_objects() {
        let mut s = family();
        let term = Term::name("mary")
            .scalar("address")
            .filter(Filter::scalar("city", Term::name("newYork")));
        let effect = apply_action(&mut s, &Action::Assert(term), &Bindings::new(), true).unwrap();
        assert_eq!(effect.virtual_objects, 1);
        assert_eq!(effect.asserted, 2);
        assert!(effect.changed());
    }

    #[test]
    fn retract_scalar_filters_remove_the_stored_fact() {
        let mut s = family();
        let term = Term::name("mary").filter(Filter::scalar("age", Term::var("A")));
        let effect = apply_action(&mut s, &Action::Retract(term), &Bindings::new(), true).unwrap();
        assert_eq!(effect.retracted, 1);
        let age = s.atom("age");
        let mary = s.atom("mary");
        assert_eq!(s.apply_scalar(age, mary, &[]), None);
    }

    #[test]
    fn retract_set_members_removes_only_the_named_members() {
        let mut s = family();
        let term = Term::name("mary").filter(Filter::set("kids", vec![Term::name("tim")]));
        let effect = apply_action(&mut s, &Action::Retract(term), &Bindings::new(), true).unwrap();
        assert_eq!(effect.retracted, 1);
        let kids = s.atom("kids");
        let mary = s.atom("mary");
        assert_eq!(s.apply_set(kids, mary, &[]).unwrap().len(), 1);
    }

    #[test]
    fn retract_with_bound_variables_targets_the_binding() {
        let mut s = family();
        let tom = s.atom("tom");
        let bindings = Bindings::from_pairs([(Var::new("Y"), tom)]).unwrap();
        let term = Term::name("mary").filter(Filter::set("kids", vec![Term::var("Y")]));
        let effect = apply_action(&mut s, &Action::Retract(term), &bindings, true).unwrap();
        assert_eq!(effect.retracted, 1);
        let kids = s.atom("kids");
        let mary = s.atom("mary");
        assert!(s.apply_set(kids, mary, &[]).unwrap().iter().all(|&k| k != tom));
    }

    #[test]
    fn retracting_a_bare_path_is_rejected() {
        let mut s = family();
        let err = apply_action(
            &mut s,
            &Action::Retract(Term::name("mary").scalar("age")),
            &Bindings::new(),
            true,
        )
        .unwrap_err();
        assert!(matches!(err, ReactiveError::InvalidAction(_)));
    }

    #[test]
    fn ambiguous_filter_methods_are_rejected() {
        let mut s = family();
        // An unbound variable in method position does not pin down which fact
        // to retract; the action must be refused rather than guess.
        let term = Term::name("mary").filter(Filter::scalar(Term::var("M"), Term::var("A")));
        apply_action(&mut s, &Action::Retract(term), &Bindings::new(), true).unwrap_err();
        // Nothing was removed.
        let age = s.atom("age");
        let mary = s.atom("mary");
        assert!(s.apply_scalar(age, mary, &[]).is_some());
    }

    #[test]
    fn actions_display_readably() {
        let a = Action::Assert(Term::name("mary").scalar("age"));
        assert_eq!(a.to_string(), "assert mary.age");
        let r = Action::Retract(Term::name("mary").filter(Filter::scalar("age", Term::int(30))));
        assert_eq!(r.to_string(), "retract mary[age -> 30]");
    }

    #[test]
    fn effects_accumulate() {
        let mut total = ActionEffect::default();
        assert!(!total.changed());
        total.absorb(ActionEffect {
            asserted: 2,
            retracted: 1,
            virtual_objects: 1,
        });
        total.absorb(ActionEffect {
            asserted: 1,
            retracted: 0,
            virtual_objects: 0,
        });
        assert_eq!(total.asserted, 3);
        assert_eq!(total.retracted, 1);
        assert_eq!(total.virtual_objects, 1);
    }
}
