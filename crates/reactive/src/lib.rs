//! # pathlog-reactive — production and active rules over PathLog references
//!
//! The paper's conclusion states that PathLog's techniques "can be also
//! applied in the context of other kinds of rule languages, e.g. production
//! rules or active rules", because path expressions are merely a way to
//! *reference* objects while rule evaluation is an orthogonal concern.  This
//! crate substantiates that claim with two additional rule systems that share
//! the deductive engine's matcher
//! ([`solve_body`](pathlog_core::engine::solve_body)) and its reference
//! syntax:
//!
//! * [`production`] — a forward-chaining recognise–act production system:
//!   conditions are PathLog bodies, actions assert or retract references,
//!   conflict resolution picks one instantiation per cycle.
//! * [`active`] — an event–condition–action trigger layer over a
//!   [`Structure`](pathlog_core::structure::Structure): primitive mutations
//!   raise events, conditions are PathLog bodies seeded with the event's
//!   participants, actions are further mutations (cascades are bounded).
//! * [`notify`] — the push front of the active store: subscribers receive
//!   per-epoch change / firing / quiescence notification streams over
//!   [`ActiveStore::subscribe`](active::ActiveStore::subscribe) instead of
//!   polling the structure and diffing dumps.
//!
//! Retraction — which deductive bottom-up evaluation never needs — is
//! provided by the core structure's `retract_scalar` / `retract_set_member`
//! extensions.
//!
//! ```
//! use pathlog_core::program::Literal;
//! use pathlog_core::structure::Structure;
//! use pathlog_core::term::Term;
//! use pathlog_reactive::{Action, ProductionEngine, ProductionRule};
//!
//! let mut structure = Structure::new();
//! let employee = structure.atom("employee");
//! let mary = structure.atom("mary");
//! structure.add_isa(mary, employee);
//!
//! let mut engine = ProductionEngine::new();
//! engine.add_rule(ProductionRule::new(
//!     "everyone-gets-an-address",
//!     vec![Literal::pos(Term::var("X").isa("employee"))],
//!     vec![Action::Assert(Term::var("X").scalar("address"))],
//! ));
//! let stats = engine.run(&mut structure).unwrap();
//! assert_eq!(stats.virtual_objects, 1);
//! ```

#![warn(missing_docs)]

pub mod action;
pub mod active;
pub mod analyze;
pub mod error;
pub mod notify;
pub mod production;

pub use action::{apply_action, Action, ActionEffect};
pub use active::{ActiveOptions, ActiveStats, ActiveStore, CascadeSchedule, EcaAction, EcaRule, Event};
pub use analyze::{analyze_eca_rules, analyze_production_rules, summarize_eca, summarize_production};
pub use error::{ReactiveError, Result};
pub use notify::{Notification, NotificationKind, Subscription};
pub use production::{
    ConflictResolution, Firing, ProductionEngine, ProductionOptions, ProductionRule, ProductionStats,
};

/// Re-exported evaluation mode ([`pathlog_core::engine::EvalMode`]): both
/// [`ProductionOptions`] and [`ActiveOptions`] surface it to fan condition
/// batches over the engine's persistent worker pool.
pub use pathlog_core::engine::EvalMode;
